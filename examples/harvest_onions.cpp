// The Sec. I/II harvesting attack, end to end: deploy a shadow-relay
// fleet, wait out the 25-hour HSDir ripening, rotate shadows through the
// consensus for 24 hours, and read the collected descriptors back into
// onion addresses.
//
//   $ ./harvest_onions [num_ips] [relays_per_ip]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "attack/harvester.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) {
  using namespace torsim;

  const int num_ips = argc > 1 ? std::atoi(argv[1]) : 10;
  const int relays_per_ip = argc > 2 ? std::atoi(argv[2]) : 12;

  sim::WorldConfig config;
  config.seed = 1302;
  config.honest_relays = 300;
  sim::World world(config);

  // 80 hidden services the attacker wants to enumerate.
  std::set<std::string> ground_truth;
  for (int i = 0; i < 80; ++i) {
    const auto index = world.add_service();
    ground_truth.insert(world.service(index).onion_address());
  }
  std::printf("world: %zu relays in consensus, %zu hidden services\n",
              world.consensus().size(), ground_truth.size());

  attack::HarvesterConfig hc;
  hc.num_ips = num_ips;
  hc.relays_per_ip = relays_per_ip;
  attack::ShadowHarvester harvester(hc);
  harvester.deploy(world);
  std::printf("attacker: %d IPs x %d relays deployed; ripening 26 h...\n",
              num_ips, relays_per_ip);

  const auto report = harvester.run(world, /*rotation_hours=*/24);

  std::size_t hits = 0;
  for (const auto& onion : report.onions)
    if (ground_truth.count(onion)) ++hits;

  std::printf("\nharvest complete after %d + %d hours\n", report.ripen_hours,
              report.rotation_hours);
  std::printf("  ring positions used:   %d\n", report.positions_used);
  std::printf("  descriptors collected: %lld\n",
              static_cast<long long>(report.descriptors_collected));
  std::printf("  onion addresses found: %zu / %zu (%.0f%%)\n", hits,
              ground_truth.size(),
              100.0 * static_cast<double>(hits) /
                  static_cast<double>(ground_truth.size()));
  std::printf("  client requests logged at our HSDirs: %lld\n",
              static_cast<long long>(report.fetch_requests_logged));
  std::printf("\nsample of harvested addresses:\n");
  int shown = 0;
  for (const auto& onion : report.onions) {
    if (shown++ >= 5) break;
    std::printf("  %s.onion\n", onion.c_str());
  }
  return hits * 2 >= ground_truth.size() ? 0 : 1;
}
