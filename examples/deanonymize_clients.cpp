// Sec. VI: opportunistic deanonymisation of hidden-service clients.
// The attacker runs guard relays and grinds HSDir identities onto the
// target's descriptor IDs; every descriptor fetch served by an attacker
// HSDir is wrapped in a traffic signature, and fetches whose circuit
// entered through an attacker guard reveal the client's IP. Recovered
// addresses are aggregated into the Fig. 3 country map.
//
//   $ ./deanonymize_clients [attacker_guards] [clients]
#include <cstdio>
#include <cstdlib>

#include "attack/deanonymizer.hpp"
#include "geo/client_map.hpp"
#include "sim/world.hpp"

int main(int argc, char** argv) {
  using namespace torsim;

  const int attacker_guards = argc > 1 ? std::atoi(argv[1]) : 25;
  const int clients = argc > 2 ? std::atoi(argv[2]) : 200;

  sim::WorldConfig wc;
  wc.seed = 1306;
  wc.honest_relays = 300;
  sim::World world(wc);
  const auto target = world.add_service();
  std::printf("target hidden service: %s.onion\n",
              world.service(target).onion_address().c_str());

  attack::DeanonymizerConfig dc;
  dc.guard_relays = attacker_guards;
  attack::ClientDeanonymizer attacker(dc);
  attacker.deploy_guards(world);
  const int positioned =
      attacker.position_hsdirs(world, world.service(target));
  world.step_hour();  // let the service republished to our HSDirs
  std::printf("attacker: %d guards deployed, %d HSDirs ground next to the "
              "target's descriptor IDs\n",
              attacker_guards, positioned);

  const auto geodb = geo::GeoDatabase::standard();
  util::Rng client_rng(1);
  util::Rng trace_rng(2);
  const auto onion = world.service(target).onion_address();
  for (int i = 0; i < clients; ++i) {
    hs::Client client(geodb.sample_global(client_rng),
                      5000 + static_cast<std::uint64_t>(i));
    client.maintain(world.consensus(), world.now());
    for (int round = 0; round < 3; ++round) {
      const auto outcome = client.fetch_descriptor(
          onion, world.consensus(), world.directories(), world.now());
      attacker.observe_fetch(outcome, trace_rng);
    }
  }

  const auto& report = attacker.report();
  std::printf("\nfetches observed:      %lld\n",
              static_cast<long long>(report.fetches_observed));
  std::printf("signatures injected:   %lld\n",
              static_cast<long long>(report.signatures_injected));
  std::printf("through our guards:    %lld\n",
              static_cast<long long>(report.through_our_guard));
  std::printf("clients deanonymised:  %zu of %d (%.0f%%)\n",
              report.client_addresses.size(), clients,
              100.0 * static_cast<double>(report.client_addresses.size()) /
                  clients);
  std::printf("false positives:       %lld\n",
              static_cast<long long>(report.false_positives));

  std::vector<util::Ipv4> ips;
  for (const auto addr : report.client_addresses)
    ips.emplace_back(util::Ipv4(addr));
  const auto map = geo::build_client_map(ips, geodb);
  std::printf("\nclient map (Fig. 3):\n");
  int shown = 0;
  for (const auto& row : map.rows()) {
    if (shown++ >= 12) break;
    std::printf("  %-3s %-16s %5lld  %4.1f%%\n", row.code.c_str(),
                row.name.c_str(), static_cast<long long>(row.clients),
                row.share * 100.0);
  }
  return report.client_addresses.empty() ? 1 : 0;
}
