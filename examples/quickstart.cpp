// Quickstart: stand up a simulated Tor network, publish a hidden
// service, and fetch its descriptor as a client — the minimal tour of
// the torsim public API.
//
//   $ ./quickstart
#include <cstdio>

#include "sim/world.hpp"

int main() {
  using namespace torsim;

  // A network of 400 honest relays, bootstrapped to a realistic flag mix
  // at the paper's reference date (1 Feb 2013).
  sim::WorldConfig config;
  config.seed = 42;
  config.honest_relays = 400;
  sim::World world(config);

  std::printf("network up at %s\n", util::format_utc(world.now()).c_str());
  std::printf("  consensus: %zu relays, %zu HSDirs, %zu guards\n",
              world.consensus().size(), world.consensus().hsdir_count(),
              world.consensus().with_flag(dirauth::Flag::kGuard).size());

  // Operator side: create a hidden service. Its .onion address is the
  // base32 of the SHA-1 of its public key, exactly as in Tor.
  const auto index = world.add_service();
  const hs::ServiceHost& service = world.service(index);
  std::printf("\nhidden service published: %s.onion\n",
              service.onion_address().c_str());
  for (const auto& id : service.current_descriptor_ids(world.now())) {
    std::printf("  descriptor id: %s (responsible HSDirs:",
                crypto::sha1_hex(id).substr(0, 16).c_str());
    for (const auto* e : world.consensus().responsible_hsdirs(id))
      std::printf(" %s", e->nickname.c_str());
    std::printf(")\n");
  }

  // Client side: pick guards, derive today's descriptor id from the
  // onion address, and fetch it from the responsible HSDirs.
  hs::Client client(util::Ipv4(198, 51, 100, 7), /*rng_seed=*/7);
  client.maintain(world.consensus(), world.now());
  const auto outcome = client.fetch_descriptor(
      service.onion_address(), world.consensus(), world.directories(),
      world.now());
  std::printf("\nclient fetch: %s (via guard relay #%u, HSDir relay #%u)\n",
              outcome.found ? "FOUND" : "not found", outcome.guard,
              outcome.hsdir);

  // Time passes; the descriptor ID rotates every 24 hours and the
  // service republishes to a fresh set of responsible directories.
  world.run_hours(25);
  const auto tomorrow = client.fetch_descriptor(
      service.onion_address(), world.consensus(), world.directories(),
      world.now());
  std::printf("after 25 h (new time period): %s\n",
              tomorrow.found ? "FOUND" : "not found");
  return outcome.found && tomorrow.found ? 0 : 1;
}
