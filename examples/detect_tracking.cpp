// Sec. VII: detect hidden-service tracking from consensus history.
// Replays the paper's Silk Road case study — a three-year synthetic
// archive with the three real tracking episodes injected — and runs the
// statistical detector over it.
//
//   $ ./detect_tracking [seed]
#include <cstdio>
#include <cstdlib>

#include "trackdet/scenario.hpp"

int main(int argc, char** argv) {
  using namespace torsim;
  using namespace torsim::trackdet;

  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 20130204;
  std::printf("simulating 2011-02-01 .. 2013-10-31 consensus history "
              "(seed %llu)...\n",
              static_cast<unsigned long long>(seed));
  const auto study = run_silkroad_study(seed);

  std::printf("archive: %lld daily snapshots, mean ring size %.0f\n",
              static_cast<long long>(study.report.snapshots),
              study.report.mean_hsdirs);
  std::printf("binomial suspicion threshold: > %.1f responsible periods\n\n",
              study.report.suspicion_threshold);

  std::printf("detected campaign clusters:\n");
  for (const auto& cluster : study.report.clusters) {
    std::printf("  '%s*': %zu servers, %lld periods, max ratio %.0f%s\n",
                cluster.shared_prefix.c_str(), cluster.servers.size(),
                static_cast<long long>(cluster.periods_covered),
                cluster.max_ratio,
                cluster.full_takeover ? " — FULL 6-HSDir TAKEOVER" : "");
    std::printf("      active %s .. %s\n",
                util::format_utc(cluster.first_seen).substr(0, 10).c_str(),
                util::format_utc(cluster.last_seen).substr(0, 10).c_str());
  }

  std::printf("\nper-year verdicts:\n");
  for (std::size_t y = 0; y < study.yearly.size(); ++y) {
    int campaign = 0, honest = 0;
    for (const auto& s : study.yearly[y].suspicious)
      (s.truth_campaign.empty() ? honest : campaign)++;
    std::printf("  %d: %d campaign servers, %d honest false alarms\n",
                2011 + static_cast<int>(y), campaign, honest);
  }

  std::printf("\nmost suspicious servers (name / responsible periods / "
              "fp switches / max ratio / rules hit):\n");
  int shown = 0;
  for (const auto& s : study.report.suspicious) {
    if (shown++ >= 10) break;
    const std::string truth =
        s.truth_campaign.empty() ? "" : "[" + s.truth_campaign + "]";
    std::printf("  %-14s %4lld %4lld %12.0f %2d   %s\n", s.name.c_str(),
                static_cast<long long>(s.stats.periods_responsible),
                static_cast<long long>(s.stats.fingerprint_switches),
                s.stats.max_ratio, s.flags.count(), truth.c_str());
  }
  return study.report.clusters.empty() ? 1 : 0;
}
