// The Sec. III/IV measurement pipeline on a scaled-down landscape:
// generate a calibrated hidden-service population, port-scan it across
// several days, crawl the HTTP(S) destinations two months later, apply
// the paper's exclusion rules, and classify language + topic.
//
//   $ ./classify_content [scale]   (default 0.1 = ~4k services)
#include <cstdio>
#include <cstdlib>

#include "content/pipeline.hpp"
#include "scan/cert_analysis.hpp"
#include "scan/crawler.hpp"
#include "scan/port_scanner.hpp"
#include "stats/histogram.hpp"

int main(int argc, char** argv) {
  using namespace torsim;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;

  population::PopulationConfig pc;
  pc.seed = 404;
  pc.scale = scale;
  const auto pop = population::Population::generate(pc);
  std::printf("population: %zu services (%zu published)\n", pop.size(),
              pop.published_count());

  // --- Sec. III: the multi-day port scan -----------------------------
  scan::PortScanner scanner;
  const auto scan_report = scanner.scan(pop);
  std::printf("\nport scan: %lld open ports on %lld onions "
              "(coverage %.0f%%)\n",
              static_cast<long long>(scan_report.total_open_ports()),
              static_cast<long long>(scan_report.onions_with_open_ports),
              scan_report.coverage * 100);
  for (const auto& [label, count] : scan_report.figure1(
           static_cast<std::int64_t>(50 * scale)))
    std::printf("  %s\n",
                stats::bar_line(label, count,
                                scan_report.total_open_ports(), 40)
                    .c_str());

  const auto certs = scan::analyse_certificates(pop, scan_report);
  std::printf("\nHTTPS certificates: %lld seen, %lld self-signed CN "
              "mismatches (%lld TorHost), %lld leak public DNS names\n",
              static_cast<long long>(certs.certificates_seen),
              static_cast<long long>(certs.selfsigned_mismatch),
              static_cast<long long>(certs.torhost_cn),
              static_cast<long long>(certs.public_dns_cn));

  // --- Sec. IV: crawl + classify --------------------------------------
  scan::Crawler crawler;
  const auto crawl = crawler.crawl(pop, scan_report);
  std::printf("\ncrawl: %lld destinations, %lld connected over HTTP(S)\n",
              static_cast<long long>(crawl.destinations),
              static_cast<long long>(crawl.connected));

  util::Rng rng(405);
  const auto classifier = content::TopicClassifier::make_default(rng);
  content::ContentPipeline pipeline(classifier,
                                    content::LanguageDetector::instance());
  const auto result = pipeline.run(crawl.pages);

  std::printf("\nexclusions: %zu short (%zu SSH banners), %zu 443-dups, "
              "%zu error pages\n",
              result.excluded_short, result.excluded_ssh_banner,
              result.excluded_dup443, result.excluded_error);
  std::printf("classifiable: %zu; English %zu (%.0f%%); TorHost defaults "
              "%zu; classified %zu\n",
              result.classifiable, result.english,
              100.0 * result.language_shares()[0], result.torhost_default,
              result.classified);

  std::printf("\ntopic distribution:\n");
  const auto pct = result.topic_percentages();
  for (int i = 0; i < content::kNumTopics; ++i) {
    const auto name = content::topic_name(content::topic_from_index(i));
    std::printf("  %s\n",
                stats::bar_line(std::string(name),
                                static_cast<std::int64_t>(
                                    result.topic_counts[i]),
                                static_cast<std::int64_t>(result.classified),
                                36)
                    .c_str());
  }
  return result.classified > 0 ? 0 : 1;
}
