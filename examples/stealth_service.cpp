// Authenticated ("stealth") hidden services and the full rendezvous
// protocol: a service publishes under cookie-mixed descriptor IDs, an
// authorized client completes the intro/rendezvous handshake, and an
// unauthorized client — or a measuring adversary with the onion address
// alone — cannot even locate the descriptor.
//
//   $ ./stealth_service
#include <cstdio>

#include "hs/rendezvous.hpp"
#include "sim/world.hpp"

int main() {
  using namespace torsim;

  sim::WorldConfig config;
  config.seed = 1307;
  config.honest_relays = 300;
  sim::World world(config);

  // Operator side: a cookie-protected service. The cookie is installed
  // *before* the first publication — a service that ever published
  // publicly leaves its plain descriptors on the HSDirs until expiry.
  auto service = hs::ServiceHost::create(world.rng(), world.now());
  const std::vector<std::uint8_t> cookie = {0xc0, 0x0c, 0x1e, 0x55};
  service.set_descriptor_cookie(cookie);
  service.maintain_guards(world.consensus(), world.rng(), world.now());
  service.maybe_publish(world.consensus(), world.directories(), world.rng(),
                        world.now(), /*force=*/true);
  std::printf("stealth service: %s.onion (cookie-protected)\n",
              service.onion_address().c_str());

  // An unauthorized client knows the address but not the cookie.
  hs::Client outsider(util::Ipv4(198, 51, 100, 20), 1);
  outsider.maintain(world.consensus(), world.now());
  const auto blind = outsider.fetch_descriptor(
      service.onion_address(), world.consensus(), world.directories(),
      world.now());
  std::printf("outsider fetch without cookie: %s\n",
              blind.found ? "FOUND (bug!)" : "not found — as designed");

  // An authorized client derives the cookie-mixed descriptor id.
  hs::Client member(util::Ipv4(198, 51, 100, 21), 2);
  member.maintain(world.consensus(), world.now());
  const auto authed = member.fetch_descriptor(
      service.onion_address(), world.consensus(), world.directories(),
      world.now(), cookie);
  std::printf("member fetch with cookie:      %s\n",
              authed.found ? "FOUND" : "not found");

  // The member completes the full rendezvous handshake. (The descriptor
  // fetch inside rendezvous_connect is cookie-less in this simplified
  // API, so we show the pieces separately: fetch above, then a public
  // sibling service for the handshake.)
  const auto public_index = world.add_service();
  hs::ServiceHost& public_service = world.service(public_index);
  public_service.maintain_guards(world.consensus(), world.rng(), world.now());
  const auto session = hs::rendezvous_connect(
      member, public_service, world.consensus(), world.directories(),
      world.rng(), world.now());
  std::printf("\nrendezvous with a public service: %s\n",
              session.success ? "ESTABLISHED" : to_string(session.failure));
  if (session.success) {
    std::printf("  client guard -> RP:   relay #%u -> relay #%u\n",
                session.client_guard, session.rendezvous_point);
    std::printf("  service guard -> RP:  relay #%u (intro relay #%u)\n",
                session.service_guard, session.intro_point);
    std::printf("  cookie %016llx, %d setup cells\n",
                static_cast<unsigned long long>(session.cookie),
                session.setup_cells);
  }
  return authed.found && !blind.found && session.success ? 0 : 1;
}
