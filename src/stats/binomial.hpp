// Binomial statistics for the Sec. VII suspicion test: a relay chosen as
// responsible HSDir in `k` of `n` time periods with per-period probability
// p = 6/N_hsdir is flagged when k > mu + 3*sigma.
#pragma once

#include <cstdint>

namespace torsim::stats {

/// Mean of Binomial(n, p).
double binomial_mean(std::int64_t n, double p);

/// Standard deviation of Binomial(n, p).
double binomial_stddev(std::int64_t n, double p);

/// The paper's suspicion threshold mu + 3*sigma.
double binomial_three_sigma_threshold(std::int64_t n, double p);

/// Exact binomial PMF via log-gamma (stable for large n).
double binomial_pmf(std::int64_t n, std::int64_t k, double p);

/// Upper tail P[X >= k] for X ~ Binomial(n, p); exact summation with
/// early termination, stable for the n (~1000 periods) we use.
double binomial_upper_tail(std::int64_t n, std::int64_t k, double p);

/// log(n choose k) via lgamma.
double log_choose(std::int64_t n, std::int64_t k);

}  // namespace torsim::stats
