#include "stats/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace torsim::stats {

ZipfSampler::ZipfSampler(std::size_t n, double s) : exponent_(s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n == 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    acc += 1.0 / std::pow(static_cast<double>(rank), s);
    cdf_[rank - 1] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(util::Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank == 0 || rank > cdf_.size())
    throw std::out_of_range("ZipfSampler::pmf: rank out of range");
  const double hi = cdf_[rank - 1];
  const double lo = rank >= 2 ? cdf_[rank - 2] : 0.0;
  return hi - lo;
}

std::vector<double> zipf_expected_counts(std::size_t n, double s,
                                         std::int64_t draws) {
  ZipfSampler sampler(n, s);
  std::vector<double> out(n);
  for (std::size_t rank = 1; rank <= n; ++rank)
    out[rank - 1] = sampler.pmf(rank) * static_cast<double>(draws);
  return out;
}

}  // namespace torsim::stats
