#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace torsim::stats {

double sum(std::span<const double> values) {
  double total = 0.0;
  double compensation = 0.0;
  for (double v : values) {
    const double y = v - compensation;
    const double t = total + y;
    compensation = (t - total) - y;
    total = t;
  }
  return total;
}

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return sum(values) / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double sample_variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values.size() - 1);
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p outside [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) { return percentile(values, 50.0); }

double min(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("min: empty input");
  return *std::min_element(values.begin(), values.end());
}

double max(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("max: empty input");
  return *std::max_element(values.begin(), values.end());
}

double chi_square_distance(std::span<const double> a,
                           std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("chi_square_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double denom = a[i] + b[i];
    if (denom > 0.0) acc += (a[i] - b[i]) * (a[i] - b[i]) / denom;
  }
  return 0.5 * acc;
}

std::vector<double> normalized(std::span<const double> values) {
  std::vector<double> out(values.begin(), values.end());
  const double total = sum(values);
  if (total > 0.0)
    for (double& v : out) v /= total;
  return out;
}

}  // namespace torsim::stats
