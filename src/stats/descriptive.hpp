// Descriptive statistics used by the measurement pipelines and the
// Sec. VII tracking-detection rules.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace torsim::stats {

/// Kahan-compensated sum.
double sum(std::span<const double> values);

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values);

/// Population variance (divides by n); 0 for fewer than 1 element.
double variance(std::span<const double> values);

/// Population standard deviation.
double stddev(std::span<const double> values);

/// Sample variance (divides by n-1); 0 for fewer than 2 elements.
double sample_variance(std::span<const double> values);

/// p-th percentile (0..100) with linear interpolation; values need not be
/// sorted (a sorted copy is made). Throws on empty input or p outside
/// [0, 100].
double percentile(std::span<const double> values, double p);

/// Median.
double median(std::span<const double> values);

/// Min/max; throw on empty input.
double min(std::span<const double> values);
double max(std::span<const double> values);

/// Chi-square distance between two non-negative distributions of equal
/// size: sum((a-b)^2 / (a+b)) over bins where a+b > 0. Used by tests to
/// compare measured distributions against the paper's published ones.
double chi_square_distance(std::span<const double> a,
                           std::span<const double> b);

/// Normalizes to sum 1 (no-op on an all-zero vector).
std::vector<double> normalized(std::span<const double> values);

}  // namespace torsim::stats
