// Counting histogram over arbitrary keys, plus rendering helpers used by
// the bench harnesses to print paper-style tables (Fig. 1, Fig. 2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace torsim::stats {

/// Ordered key -> count histogram.
template <typename Key>
class Histogram {
 public:
  void add(const Key& key, std::int64_t count = 1) { counts_[key] += count; }

  std::int64_t count(const Key& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  std::int64_t total() const {
    std::int64_t t = 0;
    for (const auto& [k, v] : counts_) t += v;
    return t;
  }

  std::size_t distinct() const { return counts_.size(); }

  const std::map<Key, std::int64_t>& entries() const { return counts_; }

  /// Entries sorted by descending count (ties broken by key order).
  std::vector<std::pair<Key, std::int64_t>> by_count_desc() const {
    std::vector<std::pair<Key, std::int64_t>> v(counts_.begin(),
                                                counts_.end());
    std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    return v;
  }

  /// Groups every key whose count is below `threshold` into a single
  /// "other" bucket, mirroring Fig. 1's "ports with count < 50" rule.
  /// Returns (kept entries sorted desc, other_total).
  std::pair<std::vector<std::pair<Key, std::int64_t>>, std::int64_t>
  with_other_bucket(std::int64_t threshold) const {
    std::vector<std::pair<Key, std::int64_t>> kept;
    std::int64_t other = 0;
    for (const auto& [k, v] : counts_) {
      if (v >= threshold)
        kept.emplace_back(k, v);
      else
        other += v;
    }
    std::stable_sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    return {std::move(kept), other};
  }

 private:
  std::map<Key, std::int64_t> counts_;
};

/// Renders a horizontal ASCII bar chart line: label, count, percentage bar.
std::string bar_line(std::string_view label, std::int64_t count,
                     std::int64_t total, int width = 40);

}  // namespace torsim::stats
