#include "stats/binomial.hpp"

#include <cmath>
#include <stdexcept>

namespace torsim::stats {

double binomial_mean(std::int64_t n, double p) {
  if (n < 0) throw std::invalid_argument("binomial_mean: n < 0");
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("binomial_mean: p outside [0,1]");
  return static_cast<double>(n) * p;
}

double binomial_stddev(std::int64_t n, double p) {
  if (n < 0) throw std::invalid_argument("binomial_stddev: n < 0");
  if (p < 0.0 || p > 1.0)
    throw std::invalid_argument("binomial_stddev: p outside [0,1]");
  return std::sqrt(static_cast<double>(n) * p * (1.0 - p));
}

double binomial_three_sigma_threshold(std::int64_t n, double p) {
  return binomial_mean(n, p) + 3.0 * binomial_stddev(n, p);
}

double log_choose(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) throw std::invalid_argument("log_choose: k outside [0,n]");
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::int64_t n, std::int64_t k, double p) {
  if (k < 0 || k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = log_choose(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_upper_tail(std::int64_t n, std::int64_t k, double p) {
  if (k <= 0) return 1.0;
  if (k > n) return 0.0;
  double tail = 0.0;
  for (std::int64_t i = k; i <= n; ++i) {
    const double term = binomial_pmf(n, i, p);
    tail += term;
    // PMF decays fast past the mean; stop when terms stop mattering.
    if (i > static_cast<std::int64_t>(static_cast<double>(n) * p) &&
        term < 1e-18 * (tail + 1e-300))
      break;
  }
  return tail > 1.0 ? 1.0 : tail;
}

}  // namespace torsim::stats
