#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>

namespace torsim::stats {

std::string bar_line(std::string_view label, std::int64_t count,
                     std::int64_t total, int width) {
  const double frac =
      total > 0 ? static_cast<double>(count) / static_cast<double>(total) : 0.0;
  const int bar = std::clamp(static_cast<int>(frac * width + 0.5), 0, width);
  char head[64];
  std::snprintf(head, sizeof head, "%-18.*s %8lld %5.1f%% ",
                static_cast<int>(label.size()), label.data(),
                static_cast<long long>(count), frac * 100.0);
  std::string line(head);
  line.append(static_cast<std::size_t>(bar), '#');
  return line;
}

}  // namespace torsim::stats
