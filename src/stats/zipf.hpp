// Zipf / discrete power-law sampling, used to shape the popularity tail
// of the synthetic hidden-service population (the head — Goldnet, Skynet,
// Silk Road — is pinned explicitly from Table II).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace torsim::stats {

/// Samples ranks 1..n with probability proportional to 1/rank^s.
class ZipfSampler {
 public:
  /// Builds the CDF once; O(n) memory, O(log n) sampling.
  ZipfSampler(std::size_t n, double s);

  /// Returns a rank in [1, n].
  std::size_t sample(util::Rng& rng) const;

  /// Probability mass of the given rank.
  double pmf(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  double exponent_;
};

/// Expected counts per rank when drawing `draws` Zipf(n, s) samples.
std::vector<double> zipf_expected_counts(std::size_t n, double s,
                                         std::int64_t draws);

}  // namespace torsim::stats
