// Sec. VI: opportunistic deanonymisation of hidden-service clients.
//
// The attacker (a) positions relays on the HSDir ring so they are
// responsible for the target service's descriptor (key grinding, plus
// daily re-grinding as the descriptor ID rotates), and (b) runs a set of
// long-lived guard relays. When a client fetches the target's descriptor
// from an attacker HSDir, the response is wrapped in a traffic
// signature; if the client's entry guard happens to be one of the
// attacker's guards, the guard sees the signature and learns the
// client's IP address. Success probability per fetch is roughly the
// attacker's share of guard selection.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "attack/grinding.hpp"
#include "attack/signature.hpp"
#include "hs/client.hpp"
#include "sim/world.hpp"

namespace torsim::attack {

struct DeanonymizerConfig {
  /// Number of guard relays the attacker operates.
  int guard_relays = 20;
  double guard_bandwidth_kbps = 8000.0;
  /// How many HSDir relays to position per descriptor replica.
  int hsdirs_per_replica = 1;
  /// Grinding arc width as a fraction of the ring (1e-5 of the ring
  /// practically guarantees first place after the descriptor ID).
  double grind_ring_fraction = 1e-5;
  /// Cell-trace jitter tolerance for signature detection.
  int detect_jitter = 1;
};

struct DeanonymizationReport {
  std::int64_t fetches_observed = 0;
  /// Descriptor *uploads* observed (the S&P'13 service attack).
  std::int64_t publishes_observed = 0;
  std::int64_t service_deanonymized = 0;
  std::set<std::uint32_t> service_addresses;  ///< recovered operator IPs
  /// Fetches served by one of our HSDirs (signature injected).
  std::int64_t signatures_injected = 0;
  /// Fetches whose circuit entered through one of our guards.
  std::int64_t through_our_guard = 0;
  /// Signature seen at our guard -> client address recovered.
  std::int64_t deanonymized = 0;
  /// Signature "detected" on a circuit we never injected into.
  std::int64_t false_positives = 0;
  std::set<std::uint32_t> client_addresses;  ///< recovered IPs (host order)
};

class ClientDeanonymizer {
 public:
  explicit ClientDeanonymizer(DeanonymizerConfig config = {});

  /// Injects the guard fleet. Guards need ~8 days of uptime for the
  /// flag; `pre_aged_days` backdates their start (the attacker ran them
  /// for weeks before striking).
  void deploy_guards(sim::World& world, int pre_aged_days = 30);

  /// Positions (or re-positions, after descriptor-ID rotation) HSDirs
  /// right after the target's current descriptor IDs. Grinds fresh keys
  /// and fingerprint-switches the standing relays onto them — exactly
  /// the behaviour Sec. VII's detector keys on. Returns the number of
  /// relays repositioned.
  int position_hsdirs(sim::World& world, const hs::ServiceHost& target);

  /// Processes one observed client fetch, simulating the cell trace.
  /// Returns the recovered client address when deanonymisation succeeds.
  std::optional<util::Ipv4> observe_fetch(const hs::FetchOutcome& outcome,
                                         util::Rng& rng);

  /// The original S&P'13 attack this paper adapts: when the *service*
  /// uploads its descriptor to an attacker HSDir, the directory replies
  /// with the traffic signature; if the upload circuit's guard is also
  /// the attacker's, the guard links the signature to the operator's IP.
  std::optional<util::Ipv4> observe_publish(const hs::PublishRecord& record,
                                           const util::Ipv4& service_address,
                                           util::Rng& rng);

  const DeanonymizationReport& report() const { return report_; }

  const std::vector<relay::RelayId>& guard_ids() const { return guards_; }
  const std::vector<relay::RelayId>& hsdir_ids() const { return hsdirs_; }

 private:
  bool is_our_guard(relay::RelayId id) const;
  bool is_our_hsdir(relay::RelayId id) const;

  DeanonymizerConfig config_;
  TrafficSignature signature_ = TrafficSignature::standard();
  std::vector<relay::RelayId> guards_;
  std::vector<relay::RelayId> hsdirs_;
  std::uint32_t positioned_period_ = 0;
  DeanonymizationReport report_;
};

}  // namespace torsim::attack
