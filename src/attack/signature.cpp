#include "attack/signature.hpp"

#include <stdexcept>

namespace torsim::attack {

TrafficSignature TrafficSignature::standard() {
  return TrafficSignature({12, 0, 1, 0, 25, 0, 1, 0, 12});
}

TrafficSignature::TrafficSignature(std::vector<int> pattern)
    : pattern_(std::move(pattern)) {
  if (pattern_.empty())
    throw std::invalid_argument("TrafficSignature: empty pattern");
}

void TrafficSignature::inject(CellTrace& trace) const {
  trace.insert(trace.end(), pattern_.begin(), pattern_.end());
}

bool TrafficSignature::detect(const CellTrace& trace, int jitter) const {
  if (trace.size() < pattern_.size()) return false;
  for (std::size_t start = 0; start + pattern_.size() <= trace.size();
       ++start) {
    bool match = true;
    for (std::size_t i = 0; i < pattern_.size(); ++i) {
      const int delta = trace[start + i] - pattern_[i];
      // Extra cells can ride along (positive jitter); cells never vanish.
      if (delta < 0 || delta > jitter) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

CellTrace background_trace(util::Rng& rng, int ticks) {
  return net::background_cells(rng, ticks);
}

}  // namespace torsim::attack
