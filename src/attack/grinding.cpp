#include "attack/grinding.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace torsim::attack {

std::optional<GrindResult> grind_key_after(const crypto::Sha1Digest& target,
                                           double max_ring_fraction,
                                           util::Rng& rng,
                                           std::uint64_t max_attempts) {
  const double ring_size = std::ldexp(1.0, 160);
  const double max_distance = max_ring_fraction * ring_size;
  const crypto::U160 target_value(target);
  for (std::uint64_t attempt = 1; attempt <= max_attempts; ++attempt) {
    crypto::KeyPair key = crypto::KeyPair::generate(rng);
    const crypto::U160 fp(key.fingerprint());
    if (fp == target_value) continue;  // need strictly after
    const double distance =
        fp.ring_distance_from(target_value).to_double();
    if (distance <= max_distance)
      return GrindResult{std::move(key), attempt, distance};
  }
  return std::nullopt;
}

std::optional<GrindResult> grind_onion_prefix(std::string_view prefix,
                                              util::Rng& rng,
                                              std::uint64_t max_attempts) {
  for (std::uint64_t attempt = 1; attempt <= max_attempts; ++attempt) {
    crypto::KeyPair key = crypto::KeyPair::generate(rng);
    const auto onion = crypto::onion_address(
        crypto::permanent_id_from_fingerprint(key.fingerprint()));
    if (util::starts_with(onion, prefix))
      return GrindResult{std::move(key), attempt, 0.0};
  }
  return std::nullopt;
}

}  // namespace torsim::attack
