#include "attack/harvester.hpp"

#include <stdexcept>

#include "util/logging.hpp"

namespace torsim::attack {

ShadowHarvester::ShadowHarvester(HarvesterConfig config) : config_(config) {
  if (config_.num_ips <= 0 || config_.relays_per_ip < 2)
    throw std::invalid_argument("ShadowHarvester: need >=1 IP, >=2 relays/IP");
}

void ShadowHarvester::deploy(sim::World& world) {
  if (deployed_) throw std::logic_error("ShadowHarvester: already deployed");
  deployed_ = true;
  const util::UnixTime now = world.now();
  for (int ip_index = 0; ip_index < config_.num_ips; ++ip_index) {
    const util::Ipv4 address = util::Ipv4::random_public(world.rng());
    for (int j = 0; j < config_.relays_per_ip; ++j) {
      relay::RelayConfig rc;
      rc.nickname =
          "harv" + std::to_string(ip_index) + "x" + std::to_string(j);
      rc.address = address;
      rc.or_port = static_cast<std::uint16_t>(9001 + j);
      // Strictly decreasing bandwidth makes the per-IP election order
      // deterministic: lower j wins.
      rc.bandwidth_kbps = config_.bandwidth_kbps - j;
      const relay::RelayId id =
          world.registry().create(rc, world.rng(), now);
      world.registry().get(id).set_online(true, now);
      world.set_churn_exempt(id, true);
      world.directories().store_for(id).enable_logging(true);
      relays_.push_back(id);
    }
  }
  expose_pair(world, 0);
}

bool ShadowHarvester::owns(relay::RelayId id) const {
  for (relay::RelayId mine : relays_)
    if (mine == id) return true;
  return false;
}

void ShadowHarvester::expose_pair(sim::World& world, int pair_index) {
  const int pairs = config_.relays_per_ip / 2;
  const int active = pair_index % pairs;
  for (int ip_index = 0; ip_index < config_.num_ips; ++ip_index) {
    for (int j = 0; j < config_.relays_per_ip; ++j) {
      const relay::RelayId id = relays_[static_cast<std::size_t>(
          ip_index * config_.relays_per_ip + j)];
      const bool visible = j / 2 == active;
      world.registry().get(id).set_authority_reachable(visible);
    }
  }
}

void ShadowHarvester::collect(sim::World& world,
                              HarvestReport& report) const {
  for (relay::RelayId id : relays_) {
    const hsdir::DescriptorStore* store = world.directories().find_store(id);
    if (store == nullptr) continue;
    for (const hsdir::Descriptor& d : store->all_descriptors())
      report.onions.insert(d.onion_address());
  }
}

HarvestReport ShadowHarvester::run(sim::World& world, int rotation_hours) {
  if (!deployed_) throw std::logic_error("ShadowHarvester: deploy() first");
  HarvestReport report;
  report.relays_deployed = static_cast<int>(relays_.size());

  // Ripen: 25 hours for the HSDir flag (plus one hour of margin so the
  // first consensus after ripening reflects it).
  const int ripen = 26;
  report.ripen_hours = ripen;
  {
    TRACE_SPAN(config_.trace, world.clock(), "harvest.ripen");
    for (int h = 0; h < ripen; ++h) world.step_hour();
  }

  std::set<relay::RelayId> positions;
  {
    TRACE_SPAN(config_.trace, world.clock(), "harvest.rotate");
    for (int h = 0; h < rotation_hours; ++h) {
      expose_pair(world, h);
      world.step_hour();
      for (relay::RelayId id : relays_) {
        const dirauth::ConsensusEntry* e = world.consensus().find_relay(id);
        if (e != nullptr && has_flag(e->flags, dirauth::Flag::kHSDir))
          positions.insert(id);
      }
      collect(world, report);
    }
  }
  report.rotation_hours = rotation_hours;
  report.positions_used = static_cast<int>(positions.size());

  collect(world, report);
  std::int64_t descriptors = 0;
  std::int64_t fetches = 0;
  for (relay::RelayId id : relays_) {
    const hsdir::DescriptorStore* store = world.directories().find_store(id);
    if (store == nullptr) continue;
    descriptors += static_cast<std::int64_t>(store->size());
    fetches += static_cast<std::int64_t>(store->fetch_log().size());
  }
  report.descriptors_collected = descriptors;
  report.fetch_requests_logged = fetches;
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m.counter("harvest.onions")
        .inc(static_cast<std::int64_t>(report.onions.size()));
    m.counter("harvest.descriptors").inc(report.descriptors_collected);
    m.counter("harvest.fetches_logged").inc(report.fetch_requests_logged);
    m.counter("harvest.positions_used").inc(report.positions_used);
    m.counter("harvest.relays_deployed").inc(report.relays_deployed);
  }
  if (config_.trace != nullptr)
    config_.trace->instant("harvest.done", "attack", world.now(),
                           {{"onions", static_cast<std::int64_t>(
                                           report.onions.size())},
                            {"positions", report.positions_used}});
  TORSIM_INFO() << "harvest: " << report.onions.size() << " onions from "
                << report.positions_used << " ring positions";
  return report;
}

}  // namespace torsim::attack
