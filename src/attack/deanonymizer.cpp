#include "attack/deanonymizer.hpp"

#include <algorithm>

namespace torsim::attack {

ClientDeanonymizer::ClientDeanonymizer(DeanonymizerConfig config)
    : config_(config) {}

void ClientDeanonymizer::deploy_guards(sim::World& world, int pre_aged_days) {
  const util::UnixTime now = world.now();
  const util::UnixTime aged_start =
      now - static_cast<util::Seconds>(pre_aged_days) * util::kSecondsPerDay;
  for (int i = 0; i < config_.guard_relays; ++i) {
    relay::RelayConfig rc;
    rc.nickname = "fastguard" + std::to_string(i);
    rc.address = util::Ipv4::random_public(world.rng());
    rc.bandwidth_kbps = config_.guard_bandwidth_kbps;
    const relay::RelayId id =
        world.registry().create(rc, world.rng(), aged_start);
    world.registry().get(id).set_online(true, aged_start);
    world.set_churn_exempt(id, true);
    guards_.push_back(id);
  }
  world.rebuild_consensus();
}

int ClientDeanonymizer::position_hsdirs(sim::World& world,
                                        const hs::ServiceHost& target) {
  const std::uint32_t period =
      crypto::time_period(world.now(), target.permanent_id());
  if (period == positioned_period_ && !hsdirs_.empty()) return 0;
  positioned_period_ = period;

  const util::UnixTime now = world.now();
  const util::UnixTime aged_start = now - 26 * util::kSecondsPerHour;
  int repositioned = 0;
  std::size_t slot = 0;
  const auto desc_ids =
      crypto::descriptor_ids_for_period(target.permanent_id(), period);
  for (std::uint8_t replica = 0; replica < crypto::kNumReplicas; ++replica) {
    const auto& desc_id = desc_ids[replica];
    for (int k = 0; k < config_.hsdirs_per_replica; ++k) {
      auto ground = grind_key_after(desc_id, config_.grind_ring_fraction *
                                                 static_cast<double>(k + 1),
                                    world.rng());
      if (!ground) continue;
      if (slot < hsdirs_.size()) {
        // Fingerprint-switch the standing relay onto the new key (what
        // real trackers did every day as the descriptor ID rotated).
        world.registry()
            .get(hsdirs_[slot])
            .install_identity(std::move(ground->key), now);
      } else {
        relay::RelayConfig rc;
        rc.nickname = "dirwatch" + std::to_string(slot);
        rc.address = util::Ipv4::random_public(world.rng());
        rc.bandwidth_kbps = 900.0;
        const relay::RelayId id = world.registry().create_with_key(
            rc, std::move(ground->key), aged_start);
        world.registry().get(id).set_online(true, aged_start);
        world.set_churn_exempt(id, true);
        world.directories().store_for(id).enable_logging(true);
        hsdirs_.push_back(id);
      }
      ++slot;
      ++repositioned;
    }
  }
  world.rebuild_consensus();
  return repositioned;
}

std::optional<util::Ipv4> ClientDeanonymizer::observe_publish(
    const hs::PublishRecord& record, const util::Ipv4& service_address,
    util::Rng& rng) {
  ++report_.publishes_observed;

  std::vector<std::uint32_t> hops;
  if (record.guard != relay::kInvalidRelayId) hops.push_back(record.guard);
  if (record.hsdir != relay::kInvalidRelayId) hops.push_back(record.hsdir);
  if (hops.empty()) return std::nullopt;
  net::Circuit circuit(hops);
  circuit.transmit_pattern(background_trace(rng, 12));

  const bool injected = is_our_hsdir(record.hsdir);
  if (injected) circuit.transmit_pattern(signature_.pattern());

  if (record.guard == relay::kInvalidRelayId || !is_our_guard(record.guard))
    return std::nullopt;
  const net::CellTrace* trace = circuit.observed_by(record.guard);
  if (trace == nullptr || !signature_.detect(*trace, config_.detect_jitter))
    return std::nullopt;
  if (!injected) {
    ++report_.false_positives;
    return std::nullopt;
  }
  ++report_.service_deanonymized;
  report_.service_addresses.insert(service_address.value());
  return service_address;
}

bool ClientDeanonymizer::is_our_guard(relay::RelayId id) const {
  return std::find(guards_.begin(), guards_.end(), id) != guards_.end();
}

bool ClientDeanonymizer::is_our_hsdir(relay::RelayId id) const {
  return std::find(hsdirs_.begin(), hsdirs_.end(), id) != hsdirs_.end();
}

std::optional<util::Ipv4> ClientDeanonymizer::observe_fetch(
    const hs::FetchOutcome& outcome, util::Rng& rng) {
  ++report_.fetches_observed;

  // Reconstruct the fetch circuit (client guard -> middle -> HSDir) and
  // push the request/response traffic through it cell by cell.
  std::vector<std::uint32_t> hops;
  if (outcome.guard != relay::kInvalidRelayId) hops.push_back(outcome.guard);
  if (outcome.middle != relay::kInvalidRelayId) hops.push_back(outcome.middle);
  if (outcome.hsdir != relay::kInvalidRelayId) hops.push_back(outcome.hsdir);
  if (hops.empty()) return std::nullopt;
  net::Circuit circuit(hops);
  circuit.transmit_pattern(background_trace(rng, 30));

  const bool injected = is_our_hsdir(outcome.hsdir);
  if (injected) {
    // The malicious directory wraps its response in the signature.
    circuit.transmit_pattern(signature_.pattern());
    ++report_.signatures_injected;
  }

  if (outcome.guard == relay::kInvalidRelayId ||
      !is_our_guard(outcome.guard))
    return std::nullopt;
  ++report_.through_our_guard;

  const net::CellTrace* trace = circuit.observed_by(outcome.guard);
  if (trace == nullptr) return std::nullopt;
  if (!signature_.detect(*trace, config_.detect_jitter)) return std::nullopt;
  if (!injected) {
    // Pattern matched pure background noise.
    ++report_.false_positives;
    return std::nullopt;
  }
  ++report_.deanonymized;
  report_.client_addresses.insert(outcome.client_address.value());
  return outcome.client_address;
}

}  // namespace torsim::attack
