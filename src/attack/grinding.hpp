// Identity-key grinding: regenerating keypairs until the fingerprint
// lands in a chosen arc of the 160-bit HSDir ring. This is how real
// trackers positioned relays immediately after Silk Road's descriptor
// IDs (the Sec. VII detector's "distance ratio" rule keys on exactly
// the unnaturally small distances this produces).
#pragma once

#include <cstdint>
#include <optional>

#include "crypto/digest.hpp"
#include "crypto/keypair.hpp"
#include "util/rng.hpp"

namespace torsim::attack {

/// Result of a grinding run.
struct GrindResult {
  crypto::KeyPair key;
  std::uint64_t attempts = 0;
  /// Ring distance from the target id to the ground fingerprint.
  double distance = 0.0;
};

/// Grinds until the fingerprint falls within (target, target + max_distance]
/// clockwise on the ring, or until `max_attempts` keys were tried.
/// `max_distance` is expressed as a fraction of the full ring (e.g. 1e-4
/// of the ring beats essentially every honest relay).
std::optional<GrindResult> grind_key_after(
    const crypto::Sha1Digest& target, double max_ring_fraction,
    util::Rng& rng, std::uint64_t max_attempts = 2'000'000);

/// Grinds a key whose *onion address* starts with `prefix` (base32).
/// Cost grows 32^len; practical for <= 4 characters.
std::optional<GrindResult> grind_onion_prefix(
    std::string_view prefix, util::Rng& rng,
    std::uint64_t max_attempts = 50'000'000);

}  // namespace torsim::attack
