// The Sec. I/II onion-address harvesting attack ("trawling" with
// shadow relays):
//
//  1. Rent n IP addresses and run m relays on each — n*m Tor instances,
//     of which only 2n appear in the consensus (the per-IP cap); the
//     rest are *shadow relays*, invisibly accruing uptime.
//  2. After 25 hours every instance has earned the HSDir flag.
//  3. Gradually firewall the currently active relays from the
//     authorities; shadows replace them in the consensus, each arriving
//     with an HSDir flag and a fresh random ring position.
//  4. Every position collects the descriptors (and client requests) of
//     the services it becomes responsible for; over 24 hours n*m
//     positions blanket the ring.
//
// The paper ran this with 58 EC2 instances on 4 Feb 2013 and collected
// 39,824 onion addresses.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/world.hpp"

namespace torsim::attack {

struct HarvesterConfig {
  /// Rented IP addresses (paper: 58).
  int num_ips = 58;
  /// Relays per IP; one pair is active per hour, so 24 h of rotation
  /// uses up to 2*24 relays per IP.
  int relays_per_ip = 48;
  /// Advertised bandwidth; high enough that the intended pair wins the
  /// per-IP consensus election.
  double bandwidth_kbps = 5000.0;
  /// Optional metrics sink ("harvest.*" counters). Must outlive the
  /// harvester. See docs/observability.md.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional sim-time trace sink: run() records spans for the ripen
  /// and rotation phases against the world clock.
  obs::TraceRecorder* trace = nullptr;
};

struct HarvestReport {
  /// Distinct onion addresses recovered from collected descriptors.
  std::set<std::string> onions;
  std::int64_t descriptors_collected = 0;
  /// Client descriptor-request log entries observed at our relays.
  std::int64_t fetch_requests_logged = 0;
  int ripen_hours = 0;
  int rotation_hours = 0;
  int relays_deployed = 0;
  /// Distinct ring positions that held the HSDir flag at some point.
  int positions_used = 0;
};

class ShadowHarvester {
 public:
  explicit ShadowHarvester(HarvesterConfig config = {});

  /// Phase 1: injects the relay fleet into the world (all online,
  /// exempt from honest churn) and enables request logging on their
  /// directory stores. Call once.
  void deploy(sim::World& world);

  /// Phase 2: waits for the HSDir flag to ripen (25 h), then rotates
  /// visibility pairs once per hour for `rotation_hours` hours,
  /// sweeping the fleet's fingerprints through the consensus.
  /// Advances the world clock itself.
  HarvestReport run(sim::World& world, int rotation_hours = 24);

  const std::vector<relay::RelayId>& relay_ids() const { return relays_; }

  /// True if `id` is one of the harvester's relays.
  bool owns(relay::RelayId id) const;

 private:
  /// Makes exactly the pair with index `pair_index` on each IP visible
  /// to the authorities.
  void expose_pair(sim::World& world, int pair_index);
  void collect(sim::World& world, HarvestReport& report) const;

  HarvesterConfig config_;
  std::vector<relay::RelayId> relays_;  // grouped by IP: m consecutive
  bool deployed_ = false;
};

}  // namespace torsim::attack
