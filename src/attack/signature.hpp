// The traffic signature of [Biryukov-Pustogarov-Weinmann, S&P'13],
// adapted in Sec. VI to deanonymise *clients*: a malicious HSDir wraps
// its descriptor response in a distinctive relay-cell pattern; an
// attacker-controlled guard recognises the pattern on the forwarded
// circuit and thereby links the request to the client's IP address.
//
// We model a circuit's observable behaviour as a cell trace: the number
// of cells relayed per 100 ms tick. The signature is a burst pattern
// (the original attack used ~50 PADDING cells in a recognisable rhythm).
#pragma once

#include <cstdint>
#include <vector>

#include "net/cells.hpp"
#include "util/rng.hpp"

namespace torsim::attack {

/// Cells observed per 100 ms tick on one circuit (shared with the
/// cell-level circuit model in net/).
using CellTrace = net::CellTrace;

class TrafficSignature {
 public:
  /// The default pattern used by our attacker: bursts of sizes
  /// 12, 1, 25, 1, 12 separated by silent ticks — long enough to be
  /// essentially unique against HTTP-ish background traffic.
  static TrafficSignature standard();

  explicit TrafficSignature(std::vector<int> pattern);

  const std::vector<int>& pattern() const { return pattern_; }

  /// Appends the signature to a trace (what the malicious HSDir's
  /// response does to the circuit).
  void inject(CellTrace& trace) const;

  /// Scans a trace for the signature, tolerating per-tick jitter of
  /// +-`jitter` cells (cells from other in-flight traffic). Returns true
  /// if any window matches.
  bool detect(const CellTrace& trace, int jitter = 1) const;

 private:
  std::vector<int> pattern_;
};

/// Background traffic; thin wrapper over net::background_cells kept for
/// the attack-facing API.
CellTrace background_trace(util::Rng& rng, int ticks);

}  // namespace torsim::attack
