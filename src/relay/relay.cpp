#include "relay/relay.hpp"

#include <algorithm>
#include <stdexcept>

namespace torsim::relay {

Relay::Relay(RelayId id, RelayConfig config, crypto::KeyPair key,
             util::UnixTime created)
    : id_(id),
      config_(std::move(config)),
      key_(std::move(key)),
      created_(created) {
  identity_history_.push_back({key_.fingerprint(), created});
}

util::Seconds Relay::continuous_uptime(util::UnixTime now) const {
  if (!online_) return 0;
  if (now < online_since_)
    throw std::invalid_argument("Relay::continuous_uptime: now precedes start");
  return now - online_since_;
}

void Relay::set_online(bool online, util::UnixTime now) {
  if (online == online_) return;
  if (!online && now > online_since_) completed_online_ += now - online_since_;
  online_ = online;
  if (online) online_since_ = now;
}

double Relay::fractional_uptime(util::UnixTime now) const {
  // Lifetime starts when the relay first came up, which may predate
  // created_ for relays bootstrapped with past uptime.
  const util::UnixTime birth = std::min(created_, online_since_);
  const util::Seconds lifetime = std::max<util::Seconds>(1, now - birth);
  util::Seconds online_total = completed_online_;
  if (online_ && now > online_since_) online_total += now - online_since_;
  return std::min(1.0, static_cast<double>(online_total) /
                           static_cast<double>(lifetime));
}

void Relay::rotate_identity(util::Rng& rng, util::UnixTime now) {
  install_identity(crypto::KeyPair::generate(rng), now);
}

void Relay::install_identity(crypto::KeyPair key, util::UnixTime now) {
  key_ = std::move(key);
  identity_history_.push_back({key_.fingerprint(), now});
}

}  // namespace torsim::relay
