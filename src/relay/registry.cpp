#include "relay/registry.hpp"

#include <stdexcept>

namespace torsim::relay {

RelayId Registry::create(RelayConfig config, util::Rng& rng,
                         util::UnixTime now) {
  return create_with_key(std::move(config), crypto::KeyPair::generate(rng),
                         now);
}

RelayId Registry::create_with_key(RelayConfig config, crypto::KeyPair key,
                                  util::UnixTime now) {
  const RelayId id = static_cast<RelayId>(relays_.size());
  const util::Ipv4 address = config.address;
  relays_.emplace_back(id, std::move(config), std::move(key), now);
  by_address_[address].push_back(id);
  return id;
}

Relay& Registry::get(RelayId id) {
  if (id >= relays_.size()) throw std::out_of_range("Registry::get: bad id");
  return relays_[id];
}

const Relay& Registry::get(RelayId id) const {
  if (id >= relays_.size()) throw std::out_of_range("Registry::get: bad id");
  return relays_[id];
}

std::vector<RelayId> Registry::online_ids() const {
  std::vector<RelayId> out;
  for (const Relay& r : relays_)
    if (r.online()) out.push_back(r.id());
  return out;
}

std::vector<RelayId> Registry::ids_at_address(const util::Ipv4& address) const {
  auto it = by_address_.find(address);
  return it == by_address_.end() ? std::vector<RelayId>{} : it->second;
}

}  // namespace torsim::relay
