// Owning container for all relays in a simulation.
//
// Relays live in a deque so handles stay valid as the population grows
// (relay churn, attacker injections). Lookup is by dense RelayId; the
// protocol-level fingerprint -> relay resolution lives in the consensus,
// not here, because fingerprints rotate.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "relay/relay.hpp"

namespace torsim::relay {

class Registry {
 public:
  /// Creates a relay with a fresh identity key. Returns its id.
  RelayId create(RelayConfig config, util::Rng& rng, util::UnixTime now);

  /// Creates a relay with a caller-supplied keypair (attacker-ground keys).
  RelayId create_with_key(RelayConfig config, crypto::KeyPair key,
                          util::UnixTime now);

  Relay& get(RelayId id);
  const Relay& get(RelayId id) const;

  std::size_t size() const { return relays_.size(); }

  /// Iteration support (ids are 0..size()-1, allocation order).
  std::deque<Relay>& all() { return relays_; }
  const std::deque<Relay>& all() const { return relays_; }

  /// All relays currently online.
  std::vector<RelayId> online_ids() const;

  /// All relay ids sharing the given IP address.
  std::vector<RelayId> ids_at_address(const util::Ipv4& address) const;

 private:
  std::deque<Relay> relays_;
  /// Lookup-only index (never iterated): hash map is safe and fast.
  std::unordered_map<util::Ipv4, std::vector<RelayId>> by_address_;
};

}  // namespace torsim::relay
