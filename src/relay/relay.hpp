// A simulated Tor relay.
//
// Relays carry an identity keypair (whose SHA-1 fingerprint determines
// their HSDir ring position), an IP/port, an advertised bandwidth, and a
// reachability state observed by the directory authorities. A relay can
// rotate its identity key — legitimate operators do this rarely; trackers
// do it aggressively to land on a target's descriptor ID (Sec. VII
// detects exactly this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "crypto/keypair.hpp"
#include "util/ipv4.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace torsim::relay {

/// Dense relay identifier, stable across fingerprint rotations — this is
/// the simulator's own handle, *not* visible to the protocol (the
/// protocol only ever sees fingerprints).
using RelayId = std::uint32_t;

inline constexpr RelayId kInvalidRelayId = 0xffffffffu;

/// One fingerprint-rotation record, kept so the tracking detector can be
/// validated against simulator ground truth.
struct IdentityEpoch {
  crypto::Fingerprint fingerprint;
  util::UnixTime since;
};

/// Static configuration of a relay.
struct RelayConfig {
  std::string nickname;
  util::Ipv4 address;
  std::uint16_t or_port = 9001;
  /// Advertised/measured bandwidth in KB/s; drives Guard/Fast flags and
  /// the 2-per-IP active-relay election.
  double bandwidth_kbps = 100.0;
};

class Relay {
 public:
  Relay(RelayId id, RelayConfig config, crypto::KeyPair key,
        util::UnixTime created);

  RelayId id() const { return id_; }
  const RelayConfig& config() const { return config_; }
  const crypto::KeyPair& key() const { return key_; }
  const crypto::Fingerprint& fingerprint() const { return key_.fingerprint(); }
  util::UnixTime created() const { return created_; }

  bool online() const { return online_; }
  /// When the current continuous-online stretch started (meaningful only
  /// while online).
  util::UnixTime online_since() const { return online_since_; }

  /// Seconds of continuous uptime as of `now` (0 when offline). This is
  /// the statistic the authorities use for the HSDir flag (>= 25 h).
  util::Seconds continuous_uptime(util::UnixTime now) const;

  /// Fraction of its lifetime this relay has been online — a simplified
  /// weighted-fractional-uptime, which the real authorities require to
  /// be high before granting Guard (a flapping relay never becomes a
  /// guard no matter how long its current stretch).
  double fractional_uptime(util::UnixTime now) const;

  /// Brings the relay up/down; a down/up cycle resets continuous uptime.
  void set_online(bool online, util::UnixTime now);

  /// Whether the directory authorities can reach this relay. The
  /// shadowing attack firewalls a *running* relay from the authorities:
  /// it drops out of the consensus (its shadow takes the slot) while its
  /// uptime keeps accruing and it keeps serving directory requests.
  bool authority_reachable() const { return authority_reachable_; }
  void set_authority_reachable(bool reachable) {
    authority_reachable_ = reachable;
  }

  /// Replaces the identity key (a "fingerprint switch"). Records the old
  /// and new epochs; does not reset uptime (the process keeps running —
  /// Tor reloads keys on HUP, and attackers exploited exactly this by
  /// republishing a new identity from a warm relay).
  void rotate_identity(util::Rng& rng, util::UnixTime now);

  /// Installs a specific keypair (used by attackers after grinding a key
  /// that lands next to a victim's descriptor ID).
  void install_identity(crypto::KeyPair key, util::UnixTime now);

  /// All identity epochs, oldest first; the last one is current.
  const std::vector<IdentityEpoch>& identity_history() const {
    return identity_history_;
  }

  /// Number of fingerprint switches this relay ever performed.
  std::size_t fingerprint_switches() const {
    return identity_history_.size() - 1;
  }

 private:
  RelayId id_;
  RelayConfig config_;
  crypto::KeyPair key_;
  util::UnixTime created_;
  bool online_ = false;
  bool authority_reachable_ = true;
  util::UnixTime online_since_ = 0;
  util::Seconds completed_online_ = 0;  ///< closed online stretches
  std::vector<IdentityEpoch> identity_history_;
};

}  // namespace torsim::relay
