// Encodings used by the Tor protocol surface:
//  - base32 (RFC 4648 alphabet, lowercase, unpadded) for .onion addresses
//    and descriptor IDs;
//  - base16 (lowercase hex) for relay fingerprints in directory documents.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace torsim::util {

/// Encodes bytes as lowercase unpadded RFC 4648 base32, exactly as Tor
/// renders .onion addresses (10 bytes -> 16 chars).
std::string base32_encode(std::span<const std::uint8_t> data);

/// Decodes lowercase/uppercase base32; throws std::invalid_argument on any
/// character outside the alphabet. The input length must be a multiple of
/// 8 bits' worth of full bytes (i.e. leftover bits must be zero).
std::vector<std::uint8_t> base32_decode(std::string_view text);

/// Lowercase hex.
std::string hex_encode(std::span<const std::uint8_t> data);

/// Decodes hex (either case); throws std::invalid_argument on bad input.
std::vector<std::uint8_t> hex_decode(std::string_view text);

}  // namespace torsim::util
