// IPv4 addresses for simulated relays and clients.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/rng.hpp"

namespace torsim::util {

/// An IPv4 address stored as a host-order 32-bit integer.
class Ipv4 {
 public:
  constexpr Ipv4() : value_(0) {}
  constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : value_(static_cast<std::uint32_t>(a) << 24 |
               static_cast<std::uint32_t>(b) << 16 |
               static_cast<std::uint32_t>(c) << 8 | d) {}

  /// Parses dotted-quad notation; throws std::invalid_argument on error.
  static Ipv4 parse(std::string_view text);

  /// Draws a random public-looking unicast address (avoids 0/8, 10/8,
  /// 127/8, 169.254/16, 172.16/12, 192.168/16, 224/3).
  static Ipv4 random_public(util::Rng& rng);

  std::uint32_t value() const { return value_; }
  std::string to_string() const;

  auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t value_;
};

/// (address, port) pair.
struct Endpoint {
  Ipv4 address;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  std::string to_string() const;
};

}  // namespace torsim::util

template <>
struct std::hash<torsim::util::Ipv4> {
  std::size_t operator()(const torsim::util::Ipv4& ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value());
  }
};
