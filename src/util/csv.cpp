#include "util/csv.hpp"

#include <stdexcept>

namespace torsim::util {

std::string csv_escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace torsim::util
