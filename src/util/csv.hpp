// Minimal CSV writer for experiment outputs (benches and the CLI dump
// result tables for external plotting).
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace torsim::util {

class CsvWriter {
 public:
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row; fields containing commas/quotes/newlines are quoted.
  void row(const std::vector<std::string>& fields);
  void row(std::initializer_list<std::string> fields) {
    row(std::vector<std::string>(fields));
  }

  /// Convenience for mixed field types.
  template <typename... Ts>
  void typed_row(const Ts&... fields) {
    std::vector<std::string> out;
    (out.push_back(to_field(fields)), ...);
    row(out);
  }

  std::size_t rows_written() const { return rows_; }

 private:
  static std::string to_field(const std::string& s) { return s; }
  static std::string to_field(std::string_view s) { return std::string(s); }
  static std::string to_field(const char* s) { return s; }
  template <typename T>
  static std::string to_field(const T& value) {
    std::ostringstream os;
    os << value;
    return os.str();
  }

  std::ofstream out_;
  std::size_t rows_ = 0;
};

/// Escapes one CSV field per RFC 4180.
std::string csv_escape(const std::string& field);

}  // namespace torsim::util
