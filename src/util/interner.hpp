// Deterministic string interning for the data-oriented population
// (ROADMAP item 3, docs/data-layout.md).
//
// The SoA columns in population/ and popularity/ replace owning
// std::strings with 4-byte ids into one process-wide table: onion
// addresses, class labels, paper aliases. Ids are handed out in
// insertion order, so for a fixed generation sequence every run — at
// any --threads value — assigns identical ids (interning happens only
// in serial sections; the parallel kernels read views, never intern).
//
// Storage is chunked and append-only: a returned std::string_view stays
// valid for the interner's lifetime, which for global_interner() is the
// process. That stability is what lets Population key its lookup index
// by string_view and lets callers hold views across further inserts
// (tests/data_layout_test.cpp pins both properties).
//
// Not thread-safe by contract: intern() only from serial sections.
// Lookups (find/view) are const and safe to share once the serial
// build section is done.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace torsim::util {

class StringInterner {
 public:
  /// Insertion-ordered id; dense from 0.
  using Id = std::uint32_t;

  /// Returned by try_find on unknown text; never a valid id.
  static constexpr Id kInvalidId = 0xffffffffu;

  /// The id for `text`, inserting it on first sight. Views previously
  /// returned by view() stay valid across the insert (chunked storage
  /// never reallocates filled blocks).
  Id intern(std::string_view text);

  /// The id for `text` if it was ever interned (no insertion).
  std::optional<Id> find(std::string_view text) const;

  /// The interned bytes behind `id`. Valid for the interner's lifetime.
  std::string_view view(Id id) const { return views_[id]; }

  /// Number of distinct strings interned.
  std::size_t size() const { return views_.size(); }

  /// Approximate resident footprint: chunk storage plus the id vector
  /// and hash-index overheads (the "interner_bytes" telemetry in the
  /// BENCH JSON "population" section).
  std::size_t bytes() const;

  /// Total bytes of interned string payloads (deduplicated).
  std::size_t string_bytes() const { return string_bytes_; }

 private:
  static constexpr std::size_t kBlockBytes = 64 * 1024;

  /// Copies `text` into stable chunk storage and returns the view.
  std::string_view store(std::string_view text);

  std::vector<std::unique_ptr<char[]>> blocks_;
  std::size_t block_used_ = 0;   ///< bytes used in blocks_.back()
  std::size_t block_size_ = 0;   ///< capacity of blocks_.back()
  std::size_t block_bytes_ = 0;  ///< total bytes allocated across blocks
  std::vector<std::string_view> views_;  ///< id -> stable view
  /// Lookup-only index (never iterated): hash map is safe and fast.
  /// Keys are views into blocks_, so they never dangle.
  std::unordered_map<std::string_view, Id> index_;
  std::size_t string_bytes_ = 0;
};

/// The process-wide intern table shared by population/popularity/scan.
/// Serial-section use only (see the header comment); detlint carries an
/// allowlist entry with the sharding rationale.
StringInterner& global_interner();

}  // namespace torsim::util
