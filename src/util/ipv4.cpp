#include "util/ipv4.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/strings.hpp"

namespace torsim::util {

Ipv4 Ipv4::parse(std::string_view text) {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) throw std::invalid_argument("Ipv4::parse: need 4 octets");
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3)
      throw std::invalid_argument("Ipv4::parse: bad octet");
    int octet = 0;
    for (char c : part) {
      if (c < '0' || c > '9')
        throw std::invalid_argument("Ipv4::parse: non-digit");
      octet = octet * 10 + (c - '0');
    }
    if (octet > 255) throw std::invalid_argument("Ipv4::parse: octet > 255");
    value = value << 8 | static_cast<std::uint32_t>(octet);
  }
  return Ipv4(value);
}

Ipv4 Ipv4::random_public(util::Rng& rng) {
  for (;;) {
    const auto value = static_cast<std::uint32_t>(rng.next());
    const std::uint8_t a = static_cast<std::uint8_t>(value >> 24);
    const std::uint8_t b = static_cast<std::uint8_t>(value >> 16);
    if (a == 0 || a == 10 || a == 127 || a >= 224) continue;
    if (a == 169 && b == 254) continue;
    if (a == 172 && b >= 16 && b < 32) continue;
    if (a == 192 && b == 168) continue;
    return Ipv4(value);
  }
}

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", value_ >> 24 & 0xff,
                value_ >> 16 & 0xff, value_ >> 8 & 0xff, value_ & 0xff);
  return buf;
}

std::string Endpoint::to_string() const {
  return address.to_string() + ":" + std::to_string(port);
}

}  // namespace torsim::util
