#include "util/time.hpp"

#include <cstdio>
#include <stdexcept>

namespace torsim::util {
namespace {

constexpr bool is_leap(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

constexpr int days_in_month(int y, int m) {
  constexpr int kDays[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && is_leap(y)) return 29;
  return kDays[m - 1];
}

// Days from 1970-01-01 to y-m-d (civil). Howard Hinnant's algorithm.
constexpr std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

}  // namespace

UnixTime make_utc(int year, int month, int day, int hour, int minute,
                  int second) {
  if (year < 1970 || year > 9999) throw std::out_of_range("year out of range");
  if (month < 1 || month > 12) throw std::out_of_range("month out of range");
  if (day < 1 || day > days_in_month(year, month))
    throw std::out_of_range("day out of range");
  if (hour < 0 || hour > 23 || minute < 0 || minute > 59 || second < 0 ||
      second > 59)
    throw std::out_of_range("time-of-day out of range");
  return days_from_civil(year, month, day) * kSecondsPerDay +
         hour * kSecondsPerHour + minute * kSecondsPerMinute + second;
}

CivilTime civil_from_unix(UnixTime t) {
  std::int64_t days = t / kSecondsPerDay;
  std::int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  // Inverse of days_from_civil (Howard Hinnant).
  days += 719468;
  const std::int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);

  CivilTime c;
  c.year = static_cast<int>(y + (m <= 2 ? 1 : 0));
  c.month = static_cast<int>(m);
  c.day = static_cast<int>(d);
  c.hour = static_cast<int>(rem / kSecondsPerHour);
  c.minute = static_cast<int>(rem % kSecondsPerHour / kSecondsPerMinute);
  c.second = static_cast<int>(rem % kSecondsPerMinute);
  return c;
}

std::string format_utc(UnixTime t) {
  const CivilTime c = civil_from_unix(t);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                c.month, c.day, c.hour, c.minute, c.second);
  return buf;
}

UnixTime parse_utc(std::string_view text) {
  // Strict "YYYY-MM-DD HH:MM:SS".
  if (text.size() != 19 || text[4] != '-' || text[7] != '-' ||
      text[10] != ' ' || text[13] != ':' || text[16] != ':')
    throw std::invalid_argument("parse_utc: bad shape");
  const auto number = [&](std::size_t pos, std::size_t len) {
    int value = 0;
    for (std::size_t i = pos; i < pos + len; ++i) {
      const char c = text[i];
      if (c < '0' || c > '9')
        throw std::invalid_argument("parse_utc: non-digit");
      value = value * 10 + (c - '0');
    }
    return value;
  };
  return make_utc(number(0, 4), number(5, 2), number(8, 2), number(11, 2),
                  number(14, 2), number(17, 2));
}

void Clock::advance(Seconds dt) {
  if (dt < 0) throw std::invalid_argument("Clock::advance: negative dt");
  now_ += dt;
}

void Clock::set(UnixTime t) {
  if (t < now_) throw std::invalid_argument("Clock::set: time went backwards");
  now_ = t;
}

}  // namespace torsim::util
