// Simulation time: the whole simulator runs on explicit unix-epoch
// timestamps (seconds), never on wall-clock time, so every run is
// deterministic and scenarios can be pinned to the paper's dates
// (e.g. the 4 Feb 2013 harvest).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace torsim::util {

/// Seconds since the unix epoch, as used by the (simulated) Tor protocol.
using UnixTime = std::int64_t;

/// Seconds; durations are plain integers to keep protocol arithmetic
/// (time-period computations) exactly as in the Tor rend-spec.
using Seconds = std::int64_t;

inline constexpr Seconds kSecondsPerMinute = 60;
inline constexpr Seconds kSecondsPerHour = 3600;
inline constexpr Seconds kSecondsPerDay = 86400;

/// Builds a UnixTime from a civil UTC date. Months/days are 1-based.
/// Valid for years 1970..9999; no leap seconds (like time_t).
UnixTime make_utc(int year, int month, int day, int hour = 0, int minute = 0,
                  int second = 0);

/// Civil UTC date decomposed from a UnixTime.
struct CivilTime {
  int year = 1970;
  int month = 1;   ///< 1..12
  int day = 1;     ///< 1..31
  int hour = 0;    ///< 0..23
  int minute = 0;  ///< 0..59
  int second = 0;  ///< 0..59
};

/// Inverse of make_utc.
CivilTime civil_from_unix(UnixTime t);

/// "YYYY-MM-DD HH:MM:SS" rendering, for logs and reports.
std::string format_utc(UnixTime t);

/// Inverse of format_utc; throws std::invalid_argument on malformed or
/// out-of-range input.
UnixTime parse_utc(std::string_view text);

/// A monotonically advancing simulation clock.
///
/// The clock is advanced explicitly by the simulation engine; components
/// take a `const Clock&` and query `now()`. This keeps time flow auditable
/// and makes property tests that replay histories trivial.
class Clock {
 public:
  explicit Clock(UnixTime start) : now_(start) {}

  UnixTime now() const { return now_; }

  /// Advances the clock; `dt` must be non-negative.
  void advance(Seconds dt);

  /// Jumps to an absolute time; must not move backwards.
  void set(UnixTime t);

 private:
  UnixTime now_;
};

}  // namespace torsim::util
