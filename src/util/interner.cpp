#include "util/interner.hpp"

#include <algorithm>
#include <cstring>

namespace torsim::util {

std::string_view StringInterner::store(std::string_view text) {
  if (text.empty()) return {};
  if (block_used_ + text.size() > block_size_) {
    // Oversized strings get a dedicated block so regular blocks never
    // waste more than one string's worth of tail space.
    const std::size_t need = std::max(text.size(), kBlockBytes);
    blocks_.push_back(std::make_unique<char[]>(need));
    block_size_ = need;
    block_bytes_ += need;
    block_used_ = 0;
  }
  char* dst = blocks_.back().get() + block_used_;
  std::memcpy(dst, text.data(), text.size());
  block_used_ += text.size();
  return {dst, text.size()};
}

StringInterner::Id StringInterner::intern(std::string_view text) {
  const auto it = index_.find(text);
  if (it != index_.end()) return it->second;
  const Id id = static_cast<Id>(views_.size());
  const std::string_view stable = store(text);
  views_.push_back(stable);
  index_.emplace(stable, id);
  string_bytes_ += text.size();
  return id;
}

std::optional<StringInterner::Id> StringInterner::find(
    std::string_view text) const {
  const auto it = index_.find(text);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::size_t StringInterner::bytes() const {
  // Chunk payloads + per-id view + one index slot per string. The index
  // estimate charges a bucket pointer and a node (view + id + next)
  // per entry — close enough for the telemetry this feeds.
  const std::size_t chunk_bytes = block_bytes_;
  const std::size_t view_bytes = views_.capacity() * sizeof(std::string_view);
  const std::size_t index_bytes =
      index_.size() * (sizeof(std::string_view) + sizeof(Id) + 2 * sizeof(void*));
  return chunk_bytes + view_bytes + index_bytes;
}

StringInterner& global_interner() {
  static StringInterner interner;
  return interner;
}

}  // namespace torsim::util
