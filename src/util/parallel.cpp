#include "util/parallel.hpp"

#include <algorithm>
#include <stdexcept>

namespace torsim::util {
namespace {

thread_local bool tls_in_parallel = false;

/// RAII guard for the in-parallel-region flag (save/restore, so serial
/// sub-loops inside a parallel region keep the outer flag intact).
struct RegionGuard {
  bool prev = tls_in_parallel;
  RegionGuard() { tls_in_parallel = true; }
  ~RegionGuard() { tls_in_parallel = prev; }
};

}  // namespace

int resolve_threads(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool in_parallel_region() { return tls_in_parallel; }

ThreadPool::ThreadPool(int threads) : size_(resolve_threads(threads)) {
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  for (int i = 0; i < size_ - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(std::max(resolve_threads(0), 4));
  return pool;
}

void ThreadPool::work(const std::function<void(std::size_t)>& body) {
  RegionGuard guard;
  std::size_t lo;
  while ((lo = next_.fetch_add(chunk_, std::memory_order_relaxed)) < n_) {
    const std::size_t hi = std::min(lo + chunk_, n_);
    for (std::size_t i = lo; i < hi; ++i) {
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!error_ || i < error_index_) {
          error_ = std::current_exception();
          error_index_ = i;
        }
        break;  // indexes after a throw in this chunk are skipped
      }
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return shutdown_ || (job_open_ && generation_ != seen);
      });
      if (shutdown_) return;
      seen = generation_;
      if (participants_ >= max_participants_) continue;  // job is full
      ++participants_;
      ++active_;
      body = body_;
    }
    work(*body);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::run(std::size_t n, int max_threads,
                     const std::function<void(std::size_t)>& body) {
  if (tls_in_parallel)
    throw std::logic_error(
        "ThreadPool::run: nested parallel regions are not supported; "
        "run inner call sites with threads = 1");
  if (n == 0) return;
  const int cap = (max_threads <= 0 || max_threads > size_)
                      ? size_
                      : max_threads;
  if (cap <= 1 || n == 1) {
    // Serial fast path: identical results by construction.
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Only one top-level job at a time; concurrent external callers queue.
  std::lock_guard<std::mutex> job_lock(jobs_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    // ~8 chunks per participant balances dynamic scheduling against
    // claim traffic; chunking never affects results, only timing.
    chunk_ = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(cap) * 8));
    next_.store(0, std::memory_order_relaxed);
    max_participants_ = cap;
    participants_ = 1;  // the caller
    error_ = nullptr;
    error_index_ = 0;
    ++generation_;
    job_open_ = true;
  }
  cv_.notify_all();

  work(body);  // the caller participates

  std::unique_lock<std::mutex> lock(mu_);
  job_open_ = false;  // no further joins (all indexes claimed by now)
  done_cv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& body) {
  const int resolved = resolve_threads(threads);
  if (resolved <= 1) {
    // Legacy serial path: no pool, plain loop on the caller. Running a
    // threads = 1 call site inside a parallel region is fine — that is
    // the documented way to nest. Marking the region here too keeps
    // nesting rejection independent of the outer loop's thread count.
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  if (tls_in_parallel)
    throw std::logic_error(
        "parallel_for: nested parallel regions are not supported; "
        "run inner call sites with threads = 1");
  if (n < kMinParallelGrain) {
    // Too little work to amortise pool dispatch; still marks the region
    // so nesting is rejected identically on every path.
    RegionGuard guard;
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  ThreadPool::shared().run(n, resolved, body);
}

}  // namespace torsim::util
