// Deterministic fork-join parallelism for the simulator's fan-out hot
// paths (per-service scans, per-page classification, per-onion
// descriptor-ID derivation, per-id ring lookups).
//
// Determinism contract: a parallel run is bit-identical to the serial
// (`threads == 1`) run because
//   (1) every task is a pure function of its *index* — callers derive
//       per-task RNG streams with `Rng::child(index)` (a const
//       derivation that never advances the parent), never from shared
//       mutable state, and
//   (2) results are committed in index order (ordered reduction):
//       `parallel_map` fills slot i of the output from task i, and any
//       serial fold the caller performs afterwards observes exactly the
//       serial order.
// Threads only decide *when* a task runs, never *what* it computes.
// See docs/concurrency.md for the full contract and how to add a new
// parallel call site.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace torsim::util {

/// Resolves a config `threads` knob: <= 0 means "one per hardware
/// thread" (`std::thread::hardware_concurrency()`, at least 1);
/// positive values are taken as-is. 1 selects the legacy serial path.
int resolve_threads(int threads);

/// True while the calling thread is executing inside a parallel region
/// (worker or participating caller). Nested parallel regions are
/// rejected — see parallel_for.
bool in_parallel_region();

/// Below this many tasks parallel_for runs serially regardless of the
/// `threads` knob — pool dispatch would cost more than the work it
/// spreads (e.g. a 2-descriptor publish batch). Purely a scheduling
/// decision: results are identical either way.
inline constexpr std::size_t kMinParallelGrain = 32;

/// A fixed-size pool of background workers. `size()` counts the
/// calling thread too: a pool of size k keeps k-1 background threads
/// and the caller participates in every job, so `ThreadPool(1)` spawns
/// nothing and runs jobs inline.
class ThreadPool {
 public:
  /// `threads` is resolved via resolve_threads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  /// Runs body(i) for every i in [0, n) across up to `max_threads`
  /// participants (<= 0 or > size(): the whole pool). Blocks until
  /// every index has completed. If tasks throw, every remaining chunk
  /// still runs and the exception of the *lowest* throwing index is
  /// rethrown — the same exception the serial loop would have thrown
  /// first (tasks are pure per-index, so the extra completed tasks are
  /// unobservable). Throws std::logic_error when called from inside a
  /// parallel region.
  void run(std::size_t n, int max_threads,
           const std::function<void(std::size_t)>& body);

  /// Process-wide pool used by the free parallel_for/parallel_map.
  /// Sized max(hardware_concurrency, 4) so that explicit `threads = 4`
  /// runs (the serial-equivalence goldens, the TSAN job) exercise real
  /// concurrency even inside single-core CI containers.
  static ThreadPool& shared();

 private:
  void worker_loop();
  /// Claims and runs chunks of the current job; returns when all
  /// indexes are claimed.
  void work(const std::function<void(std::size_t)>& body);

  int size_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;                  // guards all job state below
  std::condition_variable cv_;     // workers: a job opened / shutdown
  std::condition_variable done_cv_;  // caller: all participants left
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;   // bumped per job; workers join once
  bool job_open_ = false;          // workers may still join
  int max_participants_ = 1;       // caller + joined workers cap
  int participants_ = 0;           // joined this job (incl. caller)
  int active_ = 0;                 // currently inside work()
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_ = 0;
  std::size_t chunk_ = 1;
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_;
  std::size_t error_index_ = 0;

  std::mutex jobs_mu_;  // serialises concurrent top-level run() calls
};

/// Runs body(i) for i in [0, n). `threads` resolved via
/// resolve_threads(); 1 (or n < kMinParallelGrain) runs inline on the
/// caller with no pool involvement. The body must only read shared
/// state and write per-index slots — never mutate shared accumulators
/// (reduce serially over the per-index results instead). Calling a
/// parallel_for with threads != 1 from inside another parallel_for body
/// throws std::logic_error on every path, serial or parallel, so
/// nesting bugs cannot hide behind a `threads = 1` configuration.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& body);

/// Ordered-reduction map: returns {fn(0), fn(1), ..., fn(n-1)} with
/// slot i computed by task i, bit-identical to the serial
/// std::transform over indexes regardless of thread count or
/// scheduling. The result type must be default-constructible.
template <typename F>
auto parallel_map(std::size_t n, int threads, F&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<F&, std::size_t>>> {
  using T = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
  std::vector<T> out(n);
  parallel_for(n, threads, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace torsim::util
