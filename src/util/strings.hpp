// Small string utilities used across the content-analysis pipeline.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace torsim::util {

/// Splits on a single separator character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins with a separator string.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Tokenizes into "words": maximal runs of alphabetic characters
/// (ASCII letters), lowercased. Mirrors what a bag-of-words classifier
/// over crawled HTML text would see after tag stripping.
std::vector<std::string> tokenize_words(std::string_view text);

/// Counts words as tokenize_words would produce them, without allocating
/// the tokens (used by the "<20 words" exclusion rule).
std::size_t count_words(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

}  // namespace torsim::util
