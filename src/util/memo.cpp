#include "util/memo.hpp"

namespace torsim::util {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

std::atomic<std::uint64_t>& epoch_counter() {
  static std::atomic<std::uint64_t> epoch{0};
  return epoch;
}

}  // namespace

bool memo_enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_memo_enabled(bool enabled) {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

std::uint64_t memo_epoch() {
  return epoch_counter().load(std::memory_order_acquire);
}

void bump_memo_epoch() {
  epoch_counter().fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace torsim::util
