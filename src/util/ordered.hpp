// Ordered views over unordered associative containers.
//
// Hash containers are fine for accumulation and lookup, but iterating
// one leaks hash order into whatever consumes the loop — CSV rows,
// report vectors, floating-point sums. When the accumulation path is
// hot enough to justify a hash table, emit through one of these
// helpers instead of iterating the container directly; `detlint`
// (tools/detlint) flags direct iteration and recognises these as the
// ordering step. See docs/static-analysis.md.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace torsim::util {

/// The container's keys, sorted ascending. One copy per key; use for
/// maps whose values the caller wants to mutate or visit in place
/// (`for (const auto& k : sorted_keys(m)) use(m.at(k));`).
template <typename Map>
std::vector<typename Map::key_type> sorted_keys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& entry : m) keys.push_back(entry.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// (key, value) copies sorted by key ascending — the deterministic
/// replacement for `for (auto& [k, v] : unordered)` on emission paths.
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& m) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items(m.begin(), m.end());
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

}  // namespace torsim::util
