#include "util/encoding.hpp"

#include <array>
#include <stdexcept>

namespace torsim::util {
namespace {

constexpr std::string_view kBase32Alphabet = "abcdefghijklmnopqrstuvwxyz234567";

std::array<int, 256> build_base32_reverse() {
  std::array<int, 256> rev{};
  rev.fill(-1);
  for (int i = 0; i < 32; ++i) {
    rev[static_cast<unsigned char>(kBase32Alphabet[i])] = i;
    rev[static_cast<unsigned char>(kBase32Alphabet[i] - 'a' + 'A')] = i;
  }
  return rev;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string base32_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve((data.size() * 8 + 4) / 5);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (std::uint8_t byte : data) {
    buffer = (buffer << 8) | byte;
    bits += 8;
    while (bits >= 5) {
      out.push_back(kBase32Alphabet[(buffer >> (bits - 5)) & 0x1f]);
      bits -= 5;
    }
  }
  if (bits > 0) out.push_back(kBase32Alphabet[(buffer << (5 - bits)) & 0x1f]);
  return out;
}

std::vector<std::uint8_t> base32_decode(std::string_view text) {
  static const std::array<int, 256> rev = build_base32_reverse();
  std::vector<std::uint8_t> out;
  out.reserve(text.size() * 5 / 8);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : text) {
    const int v = rev[static_cast<unsigned char>(c)];
    if (v < 0) throw std::invalid_argument("base32_decode: bad character");
    buffer = (buffer << 5) | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      out.push_back(static_cast<std::uint8_t>((buffer >> (bits - 8)) & 0xff));
      bits -= 8;
    }
  }
  if (bits > 0 && (buffer & ((1u << bits) - 1)) != 0)
    throw std::invalid_argument("base32_decode: nonzero trailing bits");
  return out;
}

std::string hex_encode(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

std::vector<std::uint8_t> hex_decode(std::string_view text) {
  if (text.size() % 2 != 0)
    throw std::invalid_argument("hex_decode: odd length");
  std::vector<std::uint8_t> out;
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = hex_digit(text[i]);
    const int lo = hex_digit(text[i + 1]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("hex_decode: bad digit");
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

}  // namespace torsim::util
