// Deterministic PRNG for the whole simulator.
//
// Every stochastic component takes an explicit `Rng&` (or derives a child
// stream via `fork`), so a scenario seed fully determines the run. We use
// xoshiro256** seeded via SplitMix64 — fast, well distributed, and easy to
// reimplement for cross-checking.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace torsim::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four lanes via SplitMix64 from one 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 uniformly distributed bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Poisson-distributed count with the given mean (>= 0).
  /// Uses inversion for small means and PTRD-free normal approximation
  /// for large means (fine for simulation purposes).
  std::int64_t poisson(double mean);

  /// Exponentially distributed waiting time with the given rate (> 0).
  double exponential(double rate);

  /// Standard normal via Box–Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Geometric: number of failures before first success, p in (0,1].
  std::int64_t geometric(double p);

  /// Picks a uniformly random element index for a container of size n (> 0).
  std::size_t index(std::size_t n);

  /// Picks a uniformly random element from a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    if (v.empty()) throw std::invalid_argument("Rng::pick: empty vector");
    return v[index(v.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream; children with distinct labels
  /// are decorrelated from the parent and from each other. Advances the
  /// parent, so successive fork(label) calls with the same label yield
  /// different children.
  Rng fork(std::uint64_t label);

  /// Derives an independent child stream as a pure function of the
  /// current state and `label`: does not advance the parent, so the
  /// result is identical no matter how many children are derived, in
  /// what order, or from which thread. This is the derivation the
  /// parallel call sites use (`base.child(index)` per task) to keep
  /// parallel runs bit-identical to serial ones — see util/parallel.hpp.
  Rng child(std::uint64_t label) const;

  /// Fills `out` with random bytes (for surrogate key material).
  void fill_bytes(std::uint8_t* out, std::size_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace torsim::util
