#include "util/arena.hpp"

#include <cstring>
#include <stdexcept>

namespace torsim::util {

ByteArena::Offset ByteArena::append(const void* data, std::size_t size) {
  if (bytes_.size() + size > 0xffffffffull)
    throw std::length_error("ByteArena: offset space exhausted");
  const Offset offset = static_cast<Offset>(bytes_.size());
  if (size > 0) {
    bytes_.resize(bytes_.size() + size);
    std::memcpy(bytes_.data() + offset, data, size);
  }
  return offset;
}

}  // namespace torsim::util
