// Minimal leveled logger. The simulator is deterministic and mostly
// silent; logging exists for examples and debugging, defaulting to WARN.
#pragma once

#include <sstream>
#include <string>

namespace torsim::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr with a level prefix (thread-safe enough for our
/// single-threaded simulator; serialised via a local mutex anyway).
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace torsim::util

#define TORSIM_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::torsim::util::log_level())) \
    ;                                                          \
  else                                                         \
    ::torsim::util::detail::LogStream(level)

#define TORSIM_DEBUG() TORSIM_LOG(::torsim::util::LogLevel::kDebug)
#define TORSIM_INFO() TORSIM_LOG(::torsim::util::LogLevel::kInfo)
#define TORSIM_WARN() TORSIM_LOG(::torsim::util::LogLevel::kWarn)
#define TORSIM_ERROR() TORSIM_LOG(::torsim::util::LogLevel::kError)
