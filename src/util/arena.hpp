// Offset-addressed bump arena for descriptor payloads (docs/data-layout.md).
//
// hsdir::DescriptorStore keeps its variable-length payloads (public-key
// bytes, introduction-point fingerprints) in one of these instead of
// per-descriptor heap vectors: allocation is a pointer bump, and a
// whole consensus generation's worth of payloads is reclaimed in one
// reset. Allocations are addressed by byte offset, never by pointer, so
// the backing buffer may grow (or be compacted) without invalidating
// stored handles.
//
// Not thread-safe: each store owns its arena and mutates it only from
// the serial publish/expire sections.
#pragma once

#include <cstdint>
#include <vector>

namespace torsim::util {

class ByteArena {
 public:
  /// Byte offset of an allocation; stable across arena growth.
  using Offset = std::uint32_t;

  /// Copies `size` bytes into the arena and returns their offset.
  /// A zero-byte allocation returns the current end offset.
  Offset append(const void* data, std::size_t size);

  /// Pointer to the bytes at `offset`. Valid until the next append()
  /// (the buffer may grow) — callers copy out, they never hold this.
  const std::uint8_t* at(Offset offset) const { return bytes_.data() + offset; }

  /// Drops every allocation (capacity is kept for reuse).
  void clear() { bytes_.clear(); }

  /// Pre-sizes the backing buffer (compaction knows the packed size).
  void reserve(std::size_t bytes) { bytes_.reserve(bytes); }

  /// Releases the backing buffer entirely (epoch compaction swaps in a
  /// freshly packed arena instead; see hsdir::DescriptorStore).
  void swap(ByteArena& other) { bytes_.swap(other.bytes_); }

  std::size_t bytes_used() const { return bytes_.size(); }
  std::size_t bytes_reserved() const { return bytes_.capacity(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace torsim::util
