#include "util/rng.hpp"

#include <cmath>

namespace torsim::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // Avoid the all-zero state (astronomically unlikely, but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - ~0ULL % span;
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::int64_t Rng::poisson(double mean) {
  if (mean < 0) throw std::invalid_argument("Rng::poisson: negative mean");
  if (mean == 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double l = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform01();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for
  // simulation-scale means.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0 ? 0 : static_cast<std::int64_t>(x + 0.5);
}

double Rng::exponential(double rate) {
  if (rate <= 0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

std::int64_t Rng::geometric(double p) {
  if (p <= 0.0 || p > 1.0)
    throw std::invalid_argument("Rng::geometric: p out of (0,1]");
  if (p == 1.0) return 0;
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return static_cast<std::int64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::fork(std::uint64_t label) {
  // Mix the parent's next output with the label through SplitMix64.
  std::uint64_t state = next() ^ (label * 0xd1342543de82ef95ULL + 1);
  return Rng(splitmix64(state));
}

Rng Rng::child(std::uint64_t label) const {
  // Hash the full parent state and the label through a SplitMix64
  // chain; reading (not stepping) the state keeps this a pure function
  // of (parent, label).
  std::uint64_t state = label * 0xd1342543de82ef95ULL + 0x9e3779b97f4a7c15ULL;
  std::uint64_t seed = splitmix64(state);
  for (const std::uint64_t lane : s_) {
    state ^= lane;
    seed ^= splitmix64(state);
  }
  return Rng(seed);
}

void Rng::fill_bytes(std::uint8_t* out, std::size_t n) {
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t r = next();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<std::uint8_t>(r >> (8 * b));
  }
  if (i < n) {
    std::uint64_t r = next();
    while (i < n) {
      out[i++] = static_cast<std::uint8_t>(r);
      r >>= 8;
    }
  }
}

}  // namespace torsim::util
