#include "util/strings.hpp"

#include <cctype>
#include <stdexcept>

namespace torsim::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> tokenize_words(std::string_view text) {
  std::vector<std::string> words;
  std::string current;
  for (char c : text) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

std::size_t count_words(std::string_view text) {
  std::size_t count = 0;
  bool in_word = false;
  for (char c : text) {
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) != 0;
    if (alpha && !in_word) ++count;
    in_word = alpha;
  }
  return count;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) throw std::invalid_argument("replace_all: empty 'from'");
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

}  // namespace torsim::util
