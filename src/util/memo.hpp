// Deterministic memoization primitives for the derivation / ring-lookup
// hot paths (see docs/performance.md).
//
// The cache contract: a MemoTable only ever stores *pure* results — a
// hit must return byte-for-byte what a fresh computation would. Under
// that contract a cache can never change simulator output, only skip
// work, so scenario goldens stay byte-identical cache-on vs cache-off
// and across thread counts. The table is a fixed-capacity direct-mapped
// array that is never iterated (detlint-clean by construction: no
// unordered containers, no hash-order emission path exists) and never
// grows (a colliding insert overwrites its slot — bounded memory, no
// rehash, eviction is just overwrite).
//
// The process-wide --cache={on,off} knob lives here too: memo_enabled()
// is consulted by every caching call site, and bump_memo_epoch() lets a
// single thread invalidate every thread's thread_local shards without
// touching their storage (each shard re-checks the epoch on next use).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace torsim::util {

/// Process-wide cache knob (CLI --cache, bench --cache=). Default on.
bool memo_enabled();
void set_memo_enabled(bool enabled);

/// Global invalidation epoch for thread_local cache shards. A shard
/// stamps the epoch it was filled under and self-clears when the global
/// value has moved on — the only race-free way to "clear" storage owned
/// by other threads.
std::uint64_t memo_epoch();
void bump_memo_epoch();

/// RAII toggle for tests/benches: forces the knob for a scope and
/// restores the previous setting (bumping the epoch on the way in and
/// out so no stale shard survives the transition).
class MemoEnabledGuard {
 public:
  explicit MemoEnabledGuard(bool enabled) : previous_(memo_enabled()) {
    set_memo_enabled(enabled);
    bump_memo_epoch();
  }
  ~MemoEnabledGuard() {
    set_memo_enabled(previous_);
    bump_memo_epoch();
  }
  MemoEnabledGuard(const MemoEnabledGuard&) = delete;
  MemoEnabledGuard& operator=(const MemoEnabledGuard&) = delete;

 private:
  bool previous_;
};

/// Snapshot of one cache's lifetime totals.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  std::uint64_t lookups() const { return hits + misses; }
};

/// Relaxed atomic hit/miss/evict counters shared by every shard of one
/// logical cache. Perf telemetry only: totals depend on sharding (and
/// therefore on the thread count), so they are exported in the bench
/// JSON "cache" section and deliberately kept OUT of MetricsRegistry,
/// whose emission must stay byte-identical across thread counts and
/// cache settings.
class CacheCounters {
 public:
  void hit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  void miss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  void evict() { evictions_.fetch_add(1, std::memory_order_relaxed); }

  CacheStats snapshot() const {
    CacheStats stats;
    stats.hits = hits_.load(std::memory_order_relaxed);
    stats.misses = misses_.load(std::memory_order_relaxed);
    stats.evictions = evictions_.load(std::memory_order_relaxed);
    return stats;
  }

  void reset() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

/// FNV-1a over raw bytes — the slot-index mix for byte-array keys.
/// Fully specified (no libstdc++ std::hash dependence), so slot layout
/// is identical on every platform; layout never leaks into results
/// anyway, but reproducible eviction counts make telemetry comparable.
inline std::uint64_t memo_mix_bytes(const std::uint8_t* data,
                                    std::size_t size,
                                    std::uint64_t seed = 1469598103934665603ULL) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline std::uint64_t memo_mix_u64(std::uint64_t h, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (value >> shift) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Fixed-capacity direct-mapped memo table. One slot per hash bucket:
/// find() probes exactly one slot, store() overwrites whatever lives
/// there (an occupied slot with a different key counts as an eviction).
/// Key and Value must be trivially comparable value types; Hasher is a
/// stateless functor mapping Key -> std::uint64_t.
template <typename Key, typename Value, typename Hasher>
class MemoTable {
 public:
  /// `capacity` is rounded up to a power of two (minimum 1).
  explicit MemoTable(std::size_t capacity = 1024) {
    std::size_t rounded = 1;
    while (rounded < capacity) rounded <<= 1;
    slots_.resize(rounded);
    mask_ = rounded - 1;
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Pointer to the cached value, or nullptr on miss. The pointer is
  /// invalidated by the next store() or clear().
  // detlint: hot
  const Value* find(const Key& key) const {
    const Slot& slot = slots_[index_of(key)];
    if (!slot.occupied || !(slot.key == key)) return nullptr;
    return &slot.value;
  }

  /// Inserts (or refreshes) `key`; returns true when a *different* key
  /// was evicted from the slot.
  // detlint: hot
  bool store(const Key& key, const Value& value) {
    Slot& slot = slots_[index_of(key)];
    const bool evicted = slot.occupied && !(slot.key == key);
    slot.key = key;
    slot.value = value;
    slot.occupied = true;
    return evicted;
  }

  void clear() {
    for (Slot& slot : slots_) slot.occupied = false;
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool occupied = false;
  };

  std::size_t index_of(const Key& key) const {
    return static_cast<std::size_t>(Hasher{}(key)) & mask_;
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
};

}  // namespace torsim::util
