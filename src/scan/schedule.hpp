// The multi-day scan plan: the paper "scanned different port ranges on
// different days" between 14 and 21 Feb 2013. This type makes that plan
// explicit — the 16-bit port space is partitioned into contiguous
// ranges, one per scan day — so coverage loss from churn is attributable
// to specific (range, day) cells.
#pragma once

#include <cstdint>
#include <vector>

namespace torsim::scan {

class ScanSchedule {
 public:
  struct Range {
    std::uint16_t lo = 0;   ///< inclusive
    std::uint16_t hi = 0;   ///< inclusive
    int day = 0;
  };

  /// Partitions [0, 65535] into `days` near-equal contiguous ranges.
  static ScanSchedule contiguous(int days);

  /// The day on which `port` gets probed.
  int day_for_port(std::uint16_t port) const;

  const std::vector<Range>& ranges() const { return ranges_; }
  int days() const { return static_cast<int>(ranges_.size()); }

 private:
  std::vector<Range> ranges_;
};

}  // namespace torsim::scan
