// Sec. III: multi-day port scan of the harvested onion list.
//
// The paper scanned different port ranges on different days between
// 14–21 Feb 2013; churn (services going offline between days) and
// persistent timeouts capped coverage at 87% of ports. We reproduce the
// same process: ports are partitioned over scan days, a service answers
// a probe only if its descriptor is still published and the host is up
// on that day, and the Skynet port-55080 abnormal close is counted as an
// open port exactly as the paper did.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "fault/injector.hpp"
#include "net/service.hpp"
#include "obs/metrics.hpp"
#include "population/population.hpp"
#include "stats/histogram.hpp"
#include "util/rng.hpp"

namespace torsim::scan {

struct ScanConfig {
  std::uint64_t seed = 1302;
  /// Number of scan days (the paper: 14–21 Feb = 8 days).
  int scan_days = 8;
  /// Probability that a probe to an up service still times out
  /// (overloaded circuits — "persistently getting timeout errors").
  double probe_timeout_probability = 0.02;
  /// Worker threads for the per-service sweep fan-out; <= 0 = one per
  /// hardware thread, 1 = legacy serial path. Output is bit-identical
  /// for every value (see docs/concurrency.md).
  int threads = 0;
  /// Injected connection faults (default: none). Probes hit by a
  /// retryable fault are re-tried under the plan's RetryPolicy; see
  /// docs/fault-injection.md.
  fault::FaultPlan faults{};
  /// Optional metrics sink ("scan.*" counters, "fault.*" via the
  /// injector). Must outlive the scan. See docs/observability.md.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One per-destination observation.
struct PortObservation {
  std::string onion;
  std::uint16_t port = 0;
  net::ConnectResult result = net::ConnectResult::kClosed;
  int scan_day = 0;
  net::Protocol protocol = net::Protocol::kRawTcp;
};

struct ScanReport {
  /// Onion addresses whose descriptor could be fetched in the window.
  std::int64_t descriptors_available = 0;
  /// Onions probed (== descriptors_available).
  std::int64_t onions_scanned = 0;
  /// Fig. 1 histogram: open ports (abnormal-close counted as open).
  stats::Histogram<std::uint16_t> open_ports;
  /// All open/abnormal observations (input to the crawler).
  std::vector<PortObservation> observations;
  /// Onions with at least one open port.
  std::int64_t onions_with_open_ports = 0;
  /// Fraction of truly-open ports the scan detected.
  double coverage = 0.0;

  // -- Split probe-failure accounting (timeouts vs closed, previously
  //    conflated into silent misses) ------------------------------------
  /// Ports whose probe timed out: host down on the scan day, overloaded
  /// circuit, or an injected timeout that exhausted its retries.
  stats::Histogram<std::uint16_t> timeout_ports;
  /// Ports that answered with a clean close (including injected drops).
  stats::Histogram<std::uint16_t> closed_ports;
  std::int64_t probe_timeouts = 0;   ///< == timeout_ports.total()
  std::int64_t probes_closed = 0;    ///< == closed_ports.total()
  /// Probes whose reply came back garbled by an injected corruption
  /// (still counted open — the TCP handshake completed).
  std::int64_t probes_corrupt = 0;
  /// Probes that failed at least once but succeeded on a retry.
  std::int64_t probes_recovered = 0;
  /// Typed record of every injected fault hit during the sweep, in
  /// population order (deterministic across thread counts).
  fault::FailureLog failures;

  std::int64_t total_open_ports() const { return open_ports.total(); }
  std::int64_t unique_ports() const {
    return static_cast<std::int64_t>(open_ports.distinct());
  }

  /// Fig. 1 rendering: ports with >= `threshold` hits, descending, plus
  /// an "other" bucket (the paper used threshold 50 at full scale).
  /// Labels are views into the global intern table — formatted once per
  /// distinct port for the process lifetime, not per call.
  std::vector<std::pair<std::string_view, std::int64_t>> figure1(
      std::int64_t threshold) const;
};

class PortScanner {
 public:
  explicit PortScanner(ScanConfig config = {}) : config_(config) {}

  /// Scans every published service in the population.
  ScanReport scan(const population::Population& pop) const;

 private:
  ScanConfig config_;
};

}  // namespace torsim::scan
