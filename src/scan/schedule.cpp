#include "scan/schedule.hpp"

#include <stdexcept>

namespace torsim::scan {

ScanSchedule ScanSchedule::contiguous(int days) {
  if (days <= 0) throw std::invalid_argument("ScanSchedule: days <= 0");
  if (days > 65536) throw std::invalid_argument("ScanSchedule: too many days");
  ScanSchedule schedule;
  const std::uint32_t span = 65536u / static_cast<std::uint32_t>(days);
  std::uint32_t lo = 0;
  for (int d = 0; d < days; ++d) {
    Range range;
    range.lo = static_cast<std::uint16_t>(lo);
    range.hi = d == days - 1
                   ? 65535
                   : static_cast<std::uint16_t>(lo + span - 1);
    range.day = d;
    schedule.ranges_.push_back(range);
    lo += span;
  }
  return schedule;
}

int ScanSchedule::day_for_port(std::uint16_t port) const {
  for (const Range& range : ranges_)
    if (port >= range.lo && port <= range.hi) return range.day;
  return 0;  // unreachable for contiguous schedules
}

}  // namespace torsim::scan
