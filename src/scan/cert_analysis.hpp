// Sec. III HTTPS-certificate analysis: classify certificates seen on
// open TLS ports into self-signed/common-name-mismatch, the shared
// TorHost CN, and the deanonymising public-DNS common names.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "population/population.hpp"
#include "scan/port_scanner.hpp"

namespace torsim::scan {

struct CertFinding {
  std::string onion;
  std::uint16_t port = 443;
  std::string common_name;
  bool self_signed = true;
  bool matches_requested_host = false;
  bool public_dns_cn = false;
};

struct CertReport {
  std::int64_t certificates_seen = 0;
  /// Self-signed certificates whose CN does not match the .onion host.
  std::int64_t selfsigned_mismatch = 0;
  /// Mismatching certs bearing the shared TorHost CN.
  std::int64_t torhost_cn = 0;
  /// Certificates whose CN is a public DNS name (deanonymising).
  std::int64_t public_dns_cn = 0;
  /// Certificates whose CN matches the requested onion address.
  std::int64_t matching_cn = 0;
  std::vector<CertFinding> deanonymising;  ///< the public-DNS cases
};

/// Inspects the certificate on every HTTPS observation in the scan.
CertReport analyse_certificates(const population::Population& pop,
                                const ScanReport& scan);

}  // namespace torsim::scan
