#include "scan/crawler.hpp"

#include <algorithm>

#include "content/html.hpp"

namespace torsim::scan {
namespace {

/// Whether an HTTP GET against this protocol yields any text.
bool http_speaks(net::Protocol protocol) {
  switch (protocol) {
    case net::Protocol::kHttp:
    case net::Protocol::kHttps:
      return true;
    case net::Protocol::kSsh:
      return true;  // the SSH banner arrives before the protocol errors out
    default:
      return false;  // IRC/TorChat/raw sockets never answer an HTTP GET
  }
}

}  // namespace

CrawlReport Crawler::crawl(const population::Population& pop,
                           const ScanReport& scan) const {
  util::Rng rng(config_.seed);
  fault::FaultInjector injector(config_.faults);
  injector.set_metrics(config_.metrics);
  const int fault_attempts =
      injector.enabled() ? injector.retry().max_attempts : 1;
  const int revisits = std::max(1, config_.revisit_attempts);
  // Crawl probes must not re-draw the scan's fault decisions for the
  // same (onion, port): tag the key with a crawl epoch.
  constexpr std::uint64_t kCrawlEpoch = 0x10000;
  CrawlReport report;

  for (const PortObservation& obs : scan.observations) {
    // The paper excluded the 55080 botnet signature from the crawl.
    if (obs.port == net::kPortSkynet ||
        obs.result == net::ConnectResult::kAbnormalClose)
      continue;
    ++report.destinations;

    const auto svc = pop.find(obs.onion);
    if (!svc || !svc->alive_at_crawl()) continue;
    ++report.still_open;

    const net::PortService* ps = svc->profile().service_at(obs.port);
    if (ps == nullptr) continue;
    if (!http_speaks(ps->protocol)) continue;

    // Circuit-build success, re-visited up to `revisit_attempts` times.
    // With the default of 1 this is the exact legacy draw sequence.
    bool built = false;
    for (int visit = 1; visit <= revisits; ++visit) {
      if (rng.bernoulli(config_.connect_success)) {
        if (visit > 1) ++report.recovered_by_revisit;
        built = true;
        break;
      }
    }
    if (!built) {
      ++report.failed_timeout;
      continue;
    }

    // Injected connection faults on the established circuit.
    bool corrupted = false;
    if (injector.enabled()) {
      const std::uint64_t key = fault::FaultInjector::key_of(obs.onion);
      const std::uint64_t detail = kCrawlEpoch | obs.port;
      bool reached = false;
      bool dropped = false;
      for (int attempt = 1; attempt <= fault_attempts; ++attempt) {
        const fault::ConnectFault f = injector.connect_fault(key, detail,
                                                             attempt);
        if (f == fault::ConnectFault::kNone) {
          if (attempt > 1) ++report.recovered_by_revisit;
          reached = true;
          break;
        }
        if (f == fault::ConnectFault::kDrop) {
          report.failures.push_back({fault::FailureKind::kConnectDrop, key,
                                     detail, attempt});
          ++report.failed_closed;
          dropped = true;
          break;
        }
        if (f == fault::ConnectFault::kCorrupt) {
          report.failures.push_back({fault::FailureKind::kConnectCorrupt, key,
                                     detail, attempt});
          if (attempt > 1) ++report.recovered_by_revisit;
          ++report.corrupt_pages;
          corrupted = true;
          reached = true;
          break;
        }
        report.failures.push_back({fault::FailureKind::kConnectTimeout, key,
                                   detail, attempt});
      }
      if (!reached) {
        if (!dropped) {
          report.failures.push_back({fault::FailureKind::kRetriesExhausted,
                                     key, detail, fault_attempts});
          ++report.failed_timeout;
        }
        continue;
      }
    }
    ++report.connected;

    content::CrawlDestination dest;
    dest.onion = obs.onion;
    dest.port = obs.port;
    dest.connected = true;
    dest.protocol = ps->protocol;
    if (ps->protocol == net::Protocol::kSsh) {
      dest.text = ps->banner;
    } else if (ps->http) {
      // Tag-strip the HTML document down to text, as the paper's
      // text-extraction step did before classification.
      dest.text = content::strip_html(ps->http->body);
      dest.error_page = ps->http->error_page;
    }
    if (corrupted) {
      // The transfer died mid-stream: keep the first half of the text.
      dest.text.resize(dest.text.size() / 2);
    }
    report.pages.push_back(std::move(dest));
  }

  // The crawl is serial, but counters still summarise the finished
  // report so a re-run of the same scenario emits identical totals.
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m.counter("crawl.destinations").inc(report.destinations);
    m.counter("crawl.still_open").inc(report.still_open);
    m.counter("crawl.connected").inc(report.connected);
    m.counter("crawl.failed_timeout").inc(report.failed_timeout);
    m.counter("crawl.failed_closed").inc(report.failed_closed);
    m.counter("crawl.corrupt_pages").inc(report.corrupt_pages);
    m.counter("crawl.recovered_by_revisit")
        .inc(report.recovered_by_revisit);
    obs::Histogram& text_bytes = m.histogram(
        "crawl.page_text_bytes",
        {0, 128, 512, 2048, 8192, 32768, 131072});
    for (const content::CrawlDestination& page : report.pages)
      text_bytes.observe(static_cast<std::int64_t>(page.text.size()));
  }
  return report;
}

}  // namespace torsim::scan
