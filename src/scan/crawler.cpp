#include "scan/crawler.hpp"

#include "content/html.hpp"

namespace torsim::scan {
namespace {

/// Whether an HTTP GET against this protocol yields any text.
bool http_speaks(net::Protocol protocol) {
  switch (protocol) {
    case net::Protocol::kHttp:
    case net::Protocol::kHttps:
      return true;
    case net::Protocol::kSsh:
      return true;  // the SSH banner arrives before the protocol errors out
    default:
      return false;  // IRC/TorChat/raw sockets never answer an HTTP GET
  }
}

}  // namespace

CrawlReport Crawler::crawl(const population::Population& pop,
                           const ScanReport& scan) const {
  util::Rng rng(config_.seed);
  CrawlReport report;

  for (const PortObservation& obs : scan.observations) {
    // The paper excluded the 55080 botnet signature from the crawl.
    if (obs.port == net::kPortSkynet ||
        obs.result == net::ConnectResult::kAbnormalClose)
      continue;
    ++report.destinations;

    const population::ServiceRecord* svc = pop.find(obs.onion);
    if (svc == nullptr || !svc->alive_at_crawl) continue;
    ++report.still_open;

    const net::PortService* ps = svc->profile.service_at(obs.port);
    if (ps == nullptr) continue;
    if (!http_speaks(ps->protocol)) continue;
    if (!rng.bernoulli(config_.connect_success)) continue;
    ++report.connected;

    content::CrawlDestination dest;
    dest.onion = obs.onion;
    dest.port = obs.port;
    dest.connected = true;
    dest.protocol = ps->protocol;
    if (ps->protocol == net::Protocol::kSsh) {
      dest.text = ps->banner;
    } else if (ps->http) {
      // Tag-strip the HTML document down to text, as the paper's
      // text-extraction step did before classification.
      dest.text = content::strip_html(ps->http->body);
      dest.error_page = ps->http->error_page;
    }
    report.pages.push_back(std::move(dest));
  }
  return report;
}

}  // namespace torsim::scan
