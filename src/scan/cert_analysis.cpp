#include "scan/cert_analysis.hpp"

#include "content/corpus.hpp"

namespace torsim::scan {

CertReport analyse_certificates(const population::Population& pop,
                                const ScanReport& scan) {
  CertReport report;
  for (const PortObservation& obs : scan.observations) {
    if (obs.result != net::ConnectResult::kOpen) continue;
    const auto svc = pop.find(obs.onion);
    if (!svc) continue;
    const net::PortService* ps = svc->profile().service_at(obs.port);
    if (ps == nullptr || !ps->certificate) continue;
    const net::TlsCertificate& cert = *ps->certificate;
    ++report.certificates_seen;

    if (cert.matches_requested_host) {
      ++report.matching_cn;
      continue;
    }
    if (cert.common_name_is_public_dns()) {
      ++report.public_dns_cn;
      CertFinding finding;
      finding.onion = obs.onion;
      finding.port = obs.port;
      finding.common_name = cert.common_name;
      finding.self_signed = cert.self_signed;
      finding.matches_requested_host = false;
      finding.public_dns_cn = true;
      report.deanonymising.push_back(std::move(finding));
      continue;
    }
    if (cert.self_signed) {
      ++report.selfsigned_mismatch;
      if (cert.common_name == content::kTorHostCertCn) ++report.torhost_cn;
    }
  }
  return report;
}

}  // namespace torsim::scan
