// Sec. IV crawler: two months after the scan, connect to every non-55080
// destination found open and pull page text over HTTP(S). Non-HTTP
// protocols fail to "connect" (the paper could only connect to 6,579 of
// 7,114 using HTTP or HTTPS); port 22 yields an SSH banner, which the
// pipeline later excludes as <20 words.
#pragma once

#include <vector>

#include "content/pipeline.hpp"
#include "population/population.hpp"
#include "scan/port_scanner.hpp"
#include "util/rng.hpp"

namespace torsim::scan {

struct CrawlConfig {
  std::uint64_t seed = 1304;
  /// Probability a live destination answers the crawler (circuit
  /// build failures etc.).
  double connect_success = 0.975;
};

struct CrawlReport {
  /// Destinations attempted (open non-55080 ports from the scan).
  std::int64_t destinations = 0;
  /// Destinations whose host was still alive ("7,114 ports were open").
  std::int64_t still_open = 0;
  /// Destinations that answered over HTTP(S) ("6,579").
  std::int64_t connected = 0;
  std::vector<content::CrawlDestination> pages;
};

class Crawler {
 public:
  explicit Crawler(CrawlConfig config = {}) : config_(config) {}

  CrawlReport crawl(const population::Population& pop,
                    const ScanReport& scan) const;

 private:
  CrawlConfig config_;
};

}  // namespace torsim::scan
