// Sec. IV crawler: two months after the scan, connect to every non-55080
// destination found open and pull page text over HTTP(S). Non-HTTP
// protocols fail to "connect" (the paper could only connect to 6,579 of
// 7,114 using HTTP or HTTPS); port 22 yields an SSH banner, which the
// pipeline later excludes as <20 words.
#pragma once

#include <vector>

#include "content/pipeline.hpp"
#include "population/population.hpp"
#include "scan/port_scanner.hpp"
#include "util/rng.hpp"

namespace torsim::scan {

struct CrawlConfig {
  std::uint64_t seed = 1304;
  /// Probability a live destination answers the crawler (circuit
  /// build failures etc.).
  double connect_success = 0.975;
  /// Injected connection faults (default: none); see
  /// docs/fault-injection.md.
  fault::FaultPlan faults{};
  /// How many times a destination is visited before the crawler gives
  /// up on circuit-build failures (1 = single visit, legacy behaviour).
  int revisit_attempts = 1;
  /// Optional metrics sink ("crawl.*" counters, "fault.*" via the
  /// injector). Must outlive the crawl. See docs/observability.md.
  obs::MetricsRegistry* metrics = nullptr;
};

struct CrawlReport {
  /// Destinations attempted (open non-55080 ports from the scan).
  std::int64_t destinations = 0;
  /// Destinations whose host was still alive ("7,114 ports were open").
  std::int64_t still_open = 0;
  /// Destinations that answered over HTTP(S) ("6,579").
  std::int64_t connected = 0;
  std::vector<content::CrawlDestination> pages;

  // -- Split failure accounting (timeouts vs closed) --------------------
  /// HTTP-capable destinations that never answered: circuit-build
  /// failures plus injected timeouts that exhausted their retries.
  std::int64_t failed_timeout = 0;
  /// Destinations that actively refused (injected connection drops).
  std::int64_t failed_closed = 0;
  /// Pages fetched through an injected corruption: connected, but the
  /// text arrived truncated/garbled.
  std::int64_t corrupt_pages = 0;
  /// Destinations that failed at least once but answered on a re-visit.
  std::int64_t recovered_by_revisit = 0;
  /// Typed record of every injected fault hit during the crawl.
  fault::FailureLog failures;
};

class Crawler {
 public:
  explicit Crawler(CrawlConfig config = {}) : config_(config) {}

  CrawlReport crawl(const population::Population& pop,
                    const ScanReport& scan) const;

 private:
  CrawlConfig config_;
};

}  // namespace torsim::scan
