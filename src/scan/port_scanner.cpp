#include "scan/port_scanner.hpp"

#include "scan/schedule.hpp"
#include "util/interner.hpp"
#include "util/parallel.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace torsim::scan {

namespace {

/// Fig. 1 bar label for a port, backed by the global intern table: the
/// format + annotate work runs once per distinct port per process (the
/// old code rebuilt a std::to_string temporary on every figure1 call).
std::string_view port_label(std::uint16_t port) {
  std::string_view suffix;
  switch (port) {
    case net::kPortSkynet: suffix = "-Skynet"; break;
    case net::kPortHttp: suffix = "-http"; break;
    case net::kPortHttps: suffix = "-https"; break;
    case net::kPortSsh: suffix = "-ssh"; break;
    case net::kPortTorChat: suffix = "-TorChat"; break;
    case net::kPortIrc: suffix = "-irc"; break;
    default: break;
  }
  char buf[32];
  int len = std::snprintf(buf, sizeof buf, "%u", port);
  std::memcpy(buf + len, suffix.data(), suffix.size());
  len += static_cast<int>(suffix.size());
  util::StringInterner& interner = util::global_interner();
  return interner.view(
      interner.intern(std::string_view(buf, static_cast<std::size_t>(len))));
}

}  // namespace

std::vector<std::pair<std::string_view, std::int64_t>> ScanReport::figure1(
    std::int64_t threshold) const {
  auto [kept, other] = open_ports.with_other_bucket(threshold);
  std::vector<std::pair<std::string_view, std::int64_t>> rows;
  rows.reserve(kept.size() + 1);
  for (const auto& [port, count] : kept)
    rows.emplace_back(port_label(port), count);
  if (other > 0) rows.emplace_back("other", other);
  return rows;
}

namespace {

/// Per-service sweep result, computed independently per task and merged
/// in service order (the ordered reduction).
struct ServiceSweep {
  bool scanned = false;
  std::int64_t true_open = 0;
  std::vector<PortObservation> observations;
  std::vector<std::uint16_t> timeout_ports;
  std::vector<std::uint16_t> closed_ports;
  std::int64_t corrupt = 0;
  std::int64_t recovered = 0;
  fault::FailureLog failures;
};

}  // namespace

ScanReport PortScanner::scan(const population::Population& pop) const {
  // Each service draws from its own child stream keyed by its index in
  // the population, so the draws are identical no matter which thread
  // sweeps it or in what order. The fault injector never touches these
  // streams: its decisions are pure functions of (plan seed, probe key),
  // so raising a fault rate cannot reshuffle the base scenario.
  const util::Rng base(config_.seed);
  const ScanSchedule schedule = ScanSchedule::contiguous(config_.scan_days);
  fault::FaultInjector injector(config_.faults);
  injector.set_metrics(config_.metrics);
  const int max_attempts =
      injector.enabled() ? injector.retry().max_attempts : 1;

  const auto sweep_one = [&](std::size_t index) {
    ServiceSweep out;
    const population::Population::ServiceRef svc =
        pop.service(static_cast<population::ServiceId>(index));
    if (!svc.published_at_scan()) return out;
    out.scanned = true;
    util::Rng rng = base.child(index);
    const std::uint64_t onion_key = fault::FaultInjector::key_of(svc.onion());

    // Which scan days is this host up on? Drawn once per host so a host
    // that died mid-window misses every range scanned after its death.
    std::vector<bool> up(static_cast<std::size_t>(config_.scan_days));
    for (int d = 0; d < config_.scan_days; ++d)
      up[static_cast<std::size_t>(d)] =
          rng.bernoulli(svc.daily_availability());

    for (std::uint16_t port : svc.profile().scannable_ports()) {
      ++out.true_open;
      // Port ranges are partitioned across days: every host's port p is
      // probed on the same day, as in a real range sweep.
      const int day = schedule.day_for_port(port);
      if (!up[static_cast<std::size_t>(day)]) {
        out.timeout_ports.push_back(port);  // host down == probe timeout
        continue;
      }
      if (rng.bernoulli(config_.probe_timeout_probability)) {
        out.timeout_ports.push_back(port);  // overloaded circuit
        continue;
      }

      // Injected connection faults, bounded retries per the plan.
      bool probe_alive = true;
      bool corrupted = false;
      if (injector.enabled()) {
        bool timed_out = true;
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
          const fault::ConnectFault f =
              injector.connect_fault(onion_key, port, attempt);
          if (f == fault::ConnectFault::kNone) {
            timed_out = false;
            if (attempt > 1) ++out.recovered;
            break;
          }
          if (f == fault::ConnectFault::kDrop) {
            // A RST is definitive: the scanner records closed and moves
            // on instead of retrying.
            out.failures.push_back({fault::FailureKind::kConnectDrop,
                                    onion_key, port, attempt});
            out.closed_ports.push_back(port);
            timed_out = false;
            probe_alive = false;
            break;
          }
          if (f == fault::ConnectFault::kCorrupt) {
            out.failures.push_back({fault::FailureKind::kConnectCorrupt,
                                    onion_key, port, attempt});
            if (attempt > 1) ++out.recovered;
            ++out.corrupt;
            corrupted = true;
            timed_out = false;
            break;
          }
          out.failures.push_back({fault::FailureKind::kConnectTimeout,
                                  onion_key, port, attempt});
        }
        if (timed_out) {
          out.failures.push_back({fault::FailureKind::kRetriesExhausted,
                                  onion_key, port, max_attempts});
          out.timeout_ports.push_back(port);
          probe_alive = false;
        }
      }
      if (!probe_alive) continue;

      const net::ConnectResult result = svc.profile().connect(port);
      if (result != net::ConnectResult::kOpen &&
          result != net::ConnectResult::kAbnormalClose) {
        out.closed_ports.push_back(port);
        continue;
      }
      PortObservation obs;
      obs.onion = std::string(svc.onion());
      obs.port = port;
      obs.result = result;
      obs.scan_day = day;
      if (const net::PortService* ps = svc.profile().service_at(port))
        obs.protocol = ps->protocol;
      else
        obs.protocol = net::Protocol::kSkynetControl;  // abnormal close
      if (corrupted && obs.protocol != net::Protocol::kSkynetControl)
        obs.protocol = net::Protocol::kRawTcp;  // banner was garbage
      out.observations.push_back(std::move(obs));
    }
    return out;
  };

  std::vector<ServiceSweep> sweeps =
      util::parallel_map(pop.size(), config_.threads, sweep_one);

  // Ordered reduction: commit per-service results in population order.
  ScanReport report;
  std::int64_t true_open_total = 0;
  for (ServiceSweep& sweep : sweeps) {
    if (!sweep.scanned) continue;
    ++report.descriptors_available;
    ++report.onions_scanned;
    true_open_total += sweep.true_open;
    if (!sweep.observations.empty()) ++report.onions_with_open_ports;
    for (PortObservation& obs : sweep.observations) {
      report.open_ports.add(obs.port);
      report.observations.push_back(std::move(obs));
    }
    for (std::uint16_t port : sweep.timeout_ports) {
      report.timeout_ports.add(port);
      ++report.probe_timeouts;
    }
    for (std::uint16_t port : sweep.closed_ports) {
      report.closed_ports.add(port);
      ++report.probes_closed;
    }
    report.probes_corrupt += sweep.corrupt;
    report.probes_recovered += sweep.recovered;
    report.failures.insert(report.failures.end(), sweep.failures.begin(),
                           sweep.failures.end());
  }

  report.coverage =
      true_open_total > 0
          ? static_cast<double>(report.open_ports.total()) /
                static_cast<double>(true_open_total)
          : 0.0;

  // Serial section: counters summarise the already-merged report, so
  // the totals are independent of config_.threads by construction.
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m.counter("scan.onions_scanned").inc(report.onions_scanned);
    m.counter("scan.onions_with_open_ports")
        .inc(report.onions_with_open_ports);
    m.counter("scan.ports_open").inc(report.open_ports.total());
    m.counter("scan.ports_timeout").inc(report.probe_timeouts);
    m.counter("scan.ports_closed").inc(report.probes_closed);
    m.counter("scan.probes_corrupt").inc(report.probes_corrupt);
    m.counter("scan.probes_recovered").inc(report.probes_recovered);
    obs::Histogram& per_service = m.histogram(
        "scan.open_ports_per_onion", {0, 1, 2, 3, 5, 10, 20, 50});
    for (const ServiceSweep& sweep : sweeps) {
      if (!sweep.scanned) continue;
      per_service.observe(
          static_cast<std::int64_t>(sweep.observations.size()));
    }
  }
  return report;
}

}  // namespace torsim::scan
