// The Sec. IV content-analysis pipeline: connect to every HTTP(S)
// destination, apply the paper's exclusion rules, detect language, and
// topic-classify the English pages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "content/language_detector.hpp"
#include "content/topic_classifier.hpp"
#include "net/service.hpp"
#include "stats/histogram.hpp"

namespace torsim::content {

/// One (onion, port) crawl target with what the crawler fetched.
struct CrawlDestination {
  std::string onion;          ///< 16-char address, no suffix
  std::uint16_t port = 80;
  bool connected = false;     ///< HTTP(S) connection succeeded
  net::Protocol protocol = net::Protocol::kHttp;
  std::string text;           ///< page text / banner after tag stripping
  bool error_page = false;    ///< error message wrapped in HTML
};

/// Per-service classification output.
struct ClassifiedService {
  std::string onion;
  std::uint16_t port = 80;
  Language language = Language::kEnglish;
  Topic topic = Topic::kOther;
  double topic_confidence = 0.0;
};

/// Aggregate pipeline results: Table I, the language split, and Fig. 2.
struct PipelineResult {
  // Funnel counters, named after the paper's own accounting.
  std::size_t destinations_total = 0;   ///< crawl targets attempted
  std::size_t connected = 0;            ///< reachable over HTTP(S)
  std::size_t excluded_short = 0;       ///< fewer than 20 words
  std::size_t excluded_ssh_banner = 0;  ///< subset of short: SSH banners
  std::size_t excluded_dup443 = 0;      ///< port-443 copy of port-80 page
  std::size_t excluded_error = 0;       ///< HTML-wrapped error pages
  std::size_t classifiable = 0;         ///< survived all exclusions
  std::size_t english = 0;              ///< of classifiable
  std::size_t torhost_default = 0;      ///< English TorHost placeholders
  std::size_t classified = 0;           ///< topic-classified pages

  /// Table I: onion-address counts keyed by port.
  stats::Histogram<std::uint16_t> port_counts;

  /// Language distribution over classifiable pages.
  std::vector<std::size_t> language_counts =
      std::vector<std::size_t>(kNumLanguages, 0);

  /// Fig. 2: topic distribution over classified English pages.
  std::vector<std::size_t> topic_counts =
      std::vector<std::size_t>(kNumTopics, 0);

  std::vector<ClassifiedService> services;

  /// Fig. 2 percentages (topic_counts normalized to 100).
  std::vector<double> topic_percentages() const;
  /// Language shares over classifiable pages.
  std::vector<double> language_shares() const;
};

struct PipelineConfig {
  /// Worker threads for the per-page language + topic classification
  /// fan-out; <= 0 = one per hardware thread, 1 = legacy serial path.
  /// Output is bit-identical for every value (see docs/concurrency.md).
  int threads = 0;
};

class ContentPipeline {
 public:
  ContentPipeline(const TopicClassifier& classifier,
                  const LanguageDetector& detector,
                  PipelineConfig config = {});

  /// Runs the full Sec. IV pipeline over the crawl output.
  PipelineResult run(const std::vector<CrawlDestination>& destinations) const;

 private:
  const TopicClassifier& classifier_;
  const LanguageDetector& detector_;
  PipelineConfig config_;
};

}  // namespace torsim::content
