#include "content/language_detector.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>

#include "content/corpus.hpp"

namespace torsim::content {

void LanguageDetector::extract_ngrams(std::string_view text,
                                      std::vector<std::string>& out) {
  // Byte-level n-grams, n = 1..3, over a lowercased, space-normalized
  // copy. Byte n-grams make multi-byte UTF-8 scripts (Cyrillic, CJK,
  // Arabic) highly distinctive without any Unicode machinery.
  std::string norm;
  norm.reserve(text.size() + 2);
  norm.push_back(' ');
  bool last_space = true;
  for (char c : text) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (uc < 0x80) {
      if (std::isalpha(uc)) {
        norm.push_back(static_cast<char>(std::tolower(uc)));
        last_space = false;
      } else if (!last_space) {
        norm.push_back(' ');
        last_space = true;
      }
    } else {
      norm.push_back(c);
      last_space = false;
    }
  }
  if (!last_space) norm.push_back(' ');

  for (std::size_t n = 1; n <= 3; ++n) {
    if (norm.size() < n) continue;
    for (std::size_t i = 0; i + n <= norm.size(); ++i) {
      std::string gram = norm.substr(i, n);
      if (gram.find_first_not_of(' ') == std::string::npos) continue;
      out.push_back(std::move(gram));
    }
  }
}

LanguageDetector::LanguageDetector() {
  profiles_.resize(kNumLanguages);
  for (int li = 0; li < kNumLanguages; ++li) {
    const Language lang = language_from_index(li);
    // Training text: the language's corpus words joined by spaces. The
    // English profile additionally trains on the topic vocabularies —
    // onion pages are content-heavy, and a function-words-only profile
    // under-scores them against other Latin-script languages (langdetect
    // likewise ships profiles built from full Wikipedia text).
    std::string training;
    for (std::string_view w : language_words(lang)) {
      training += w;
      training += ' ';
    }
    if (lang == Language::kEnglish) {
      for (int t = 0; t < kNumTopics; ++t) {
        for (std::string_view w : topic_keywords(topic_from_index(t))) {
          training += w;
          training += ' ';
        }
      }
    }
    std::vector<std::string> grams;
    extract_ngrams(training, grams);

    // Ordered: iterated below to fill the profile (one-time training
    // cost; the profile's lookup table stays hashed).
    std::map<std::string, double> counts;
    for (const std::string& g : grams) counts[g] += 1.0;
    const double total = static_cast<double>(grams.size());

    // Relative frequencies with a *fixed* out-of-vocabulary penalty that
    // is identical for every language. Per-language Laplace smoothing
    // would reward tiny profiles (small vocabulary -> higher per-gram
    // mass); a shared floor makes scores comparable across profiles of
    // very different corpus sizes, as langdetect's normalized frequency
    // profiles do.
    constexpr double kOovProbability = 1e-5;
    Profile& profile = profiles_[li];
    for (auto& [gram, count] : counts) {
      const double p = std::max(count / total, 2.0 * kOovProbability);
      profile.log_prob[gram] = std::log(p);
    }
    profile.log_fallback = std::log(kOovProbability);
  }
}

LanguageGuess LanguageDetector::detect(std::string_view text) const {
  std::vector<std::string> grams;
  extract_ngrams(text, grams);
  if (grams.empty()) return {Language::kEnglish, 0.0};

  std::vector<double> scores(kNumLanguages, 0.0);
  for (int li = 0; li < kNumLanguages; ++li) {
    const Profile& profile = profiles_[li];
    double score = 0.0;
    for (const std::string& g : grams) {
      const auto it = profile.log_prob.find(g);
      score += it != profile.log_prob.end() ? it->second
                                            : profile.log_fallback;
    }
    scores[li] = score;
  }

  const auto best =
      std::max_element(scores.begin(), scores.end()) - scores.begin();
  // Posterior share via log-sum-exp, normalized per n-gram to keep the
  // confidence scale comparable across document lengths.
  const double scale = 1.0 / static_cast<double>(grams.size());
  double denom = 0.0;
  for (double s : scores)
    denom += std::exp((s - scores[best]) * scale);
  const double confidence = denom > 0.0 ? 1.0 / denom : 0.0;
  return {language_from_index(static_cast<int>(best)), confidence};
}

const LanguageDetector& LanguageDetector::instance() {
  static const LanguageDetector detector;
  return detector;
}

}  // namespace torsim::content
