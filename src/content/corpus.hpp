// Embedded corpora: per-topic keyword vocabularies and per-language
// common-word lists. These power both the synthetic page generator
// (population side) and the classifier training sets (measurement side)
// — mirroring how the paper's authors used labelled training documents
// with Mallet/uClassify and langdetect's built-in language profiles.
#pragma once

#include <string_view>
#include <vector>

#include "content/topics.hpp"

namespace torsim::content {

/// Topic-specific vocabulary (content words a page about this topic
/// disproportionately uses).
const std::vector<std::string_view>& topic_keywords(Topic topic);

/// Short multi-word phrases typical of the topic (used by the generator
/// to make pages read less like bags of words).
const std::vector<std::string_view>& topic_phrases(Topic topic);

/// Common words of each language, drawn from its actual function/content
/// words (UTF-8 for non-Latin scripts).
const std::vector<std::string_view>& language_words(Language language);

/// English function words shared by all English pages regardless of topic.
const std::vector<std::string_view>& english_stopwords();

/// The default landing page served by the TorHost free hosting service
/// (the paper found 805 of these among English pages).
std::string_view torhost_default_page();

/// The onion address of the TorHost hosting service from the paper.
inline constexpr std::string_view kTorHostOnion = "torhostg5s7pa2sn";

/// The CN seen on 1,168 TorHost-hosted HTTPS certificates.
inline constexpr std::string_view kTorHostCertCn = "esjqyk2khizsy43i.onion";

/// An SSH protocol banner (what the crawler sees on port 22).
std::string_view ssh_banner();

/// An HTML-wrapped error page body (the paper excluded 73 of these).
std::string_view html_error_page();

}  // namespace torsim::content
