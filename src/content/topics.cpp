#include "content/topics.hpp"

#include <stdexcept>

namespace torsim::content {

std::string_view topic_name(Topic topic) {
  switch (topic) {
    case Topic::kAdult: return "Adult";
    case Topic::kDrugs: return "Drugs";
    case Topic::kPolitics: return "Politics";
    case Topic::kCounterfeit: return "Counterfeit";
    case Topic::kWeapons: return "Weapons";
    case Topic::kFaqsTutorials: return "FAQs,Tutorials";
    case Topic::kSecurity: return "Security";
    case Topic::kAnonymity: return "Anonymity";
    case Topic::kHacking: return "Hacking";
    case Topic::kSoftwareHardware: return "Software,Hardware";
    case Topic::kArt: return "Art";
    case Topic::kServices: return "Services";
    case Topic::kGames: return "Games";
    case Topic::kScience: return "Science";
    case Topic::kDigitalLibs: return "Digital libs";
    case Topic::kSports: return "Sports";
    case Topic::kTechnology: return "Technology";
    case Topic::kOther: return "Other";
  }
  throw std::invalid_argument("topic_name: bad topic");
}

Topic topic_from_index(int index) {
  if (index < 0 || index >= kNumTopics)
    throw std::out_of_range("topic_from_index: out of range");
  return static_cast<Topic>(index);
}

const std::array<double, kNumTopics>& paper_topic_percentages() {
  static const std::array<double, kNumTopics> kPercent = {
      17, 15, 9, 8, 4, 4, 5, 8, 3, 7, 2, 4, 1, 1, 4, 1, 4, 3};
  return kPercent;
}

std::string_view language_name(Language language) {
  switch (language) {
    case Language::kEnglish: return "English";
    case Language::kGerman: return "German";
    case Language::kRussian: return "Russian";
    case Language::kPortuguese: return "Portuguese";
    case Language::kSpanish: return "Spanish";
    case Language::kFrench: return "French";
    case Language::kPolish: return "Polish";
    case Language::kJapanese: return "Japanese";
    case Language::kItalian: return "Italian";
    case Language::kCzech: return "Czech";
    case Language::kArabic: return "Arabic";
    case Language::kDutch: return "Dutch";
    case Language::kBasque: return "Basque";
    case Language::kChinese: return "Chinese";
    case Language::kHungarian: return "Hungarian";
    case Language::kBantu: return "Bantu";
    case Language::kSwedish: return "Swedish";
  }
  throw std::invalid_argument("language_name: bad language");
}

Language language_from_index(int index) {
  if (index < 0 || index >= kNumLanguages)
    throw std::out_of_range("language_from_index: out of range");
  return static_cast<Language>(index);
}

const std::array<double, kNumLanguages>& paper_language_shares() {
  // English 84%; the remaining 16% split with a gentle decay over the 16
  // minority languages (each < 3%, as the paper reports).
  static const std::array<double, kNumLanguages> kShares = [] {
    std::array<double, kNumLanguages> s{};
    s[0] = 0.84;
    const double weights[16] = {2.6, 2.2, 1.9, 1.6, 1.4, 1.2, 1.0, 0.9,
                                0.7, 0.6, 0.5, 0.4, 0.3, 0.3, 0.2, 0.2};
    double total = 0;
    for (double w : weights) total += w;
    for (int i = 0; i < 16; ++i) s[i + 1] = 0.16 * weights[i] / total;
    return s;
  }();
  return kShares;
}

}  // namespace torsim::content
