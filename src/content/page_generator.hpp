// Synthetic page generator: produces the textual content of hidden
// services in the simulated population. Pages are composed from the
// embedded corpora so the measurement pipeline's classifiers face
// realistic mixtures (topic keywords diluted by function words, plus
// boilerplate phrases).
#pragma once

#include <string>

#include "content/topics.hpp"
#include "util/rng.hpp"

namespace torsim::content {

class PageGenerator {
 public:
  /// Generates a page about `topic` in `language` with roughly
  /// `word_count` words. Non-English pages consist mostly of the target
  /// language's words with a sprinkle of (Latin-script) topic keywords,
  /// matching real multilingual onion pages.
  std::string generate(Topic topic, Language language, int word_count,
                       util::Rng& rng) const;

  /// English page (the classifier's input domain).
  std::string generate_english(Topic topic, int word_count,
                               util::Rng& rng) const;

  /// English page where a fraction `cross_topic_noise` of the content
  /// words are drawn from *other* topics' vocabularies — real onion
  /// pages mix subjects (a market sells drugs *and* counterfeits), which
  /// is what makes the classification ablation non-trivial.
  std::string generate_english_noisy(Topic topic, int word_count,
                                     util::Rng& rng,
                                     double cross_topic_noise) const;

  /// A page with fewer than 20 words (the paper's exclusion class).
  std::string generate_stub(util::Rng& rng) const;
};

}  // namespace torsim::content
