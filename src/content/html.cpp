#include "content/html.hpp"

#include "util/strings.hpp"

namespace torsim::content {
namespace {

std::string remove_tags(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool in_tag = false;
  for (char c : text) {
    if (c == '<') {
      in_tag = true;
    } else if (c == '>') {
      in_tag = false;
    } else if (!in_tag) {
      out.push_back(c);
    }
  }
  return out;
}

std::string decode_entities(const std::string& text) {
  std::string out = util::replace_all(text, "&lt;", "<");
  out = util::replace_all(out, "&gt;", ">");
  out = util::replace_all(out, "&quot;", "\"");
  out = util::replace_all(out, "&#39;", "'");
  out = util::replace_all(out, "&amp;", "&");
  return out;
}

}  // namespace

std::string wrap_html(std::string_view title, std::string_view body) {
  std::string out = "<html><head><title>";
  out += title;
  out += "</title></head><body>";
  out += body;
  out += "</body></html>";
  return out;
}

std::string strip_html(std::string_view html) {
  constexpr std::string_view kBodyOpen = "<body>";
  constexpr std::string_view kBodyClose = "</body>";
  const std::size_t open = html.find(kBodyOpen);
  if (open != std::string_view::npos) {
    const std::size_t begin = open + kBodyOpen.size();
    const std::size_t close = html.find(kBodyClose, begin);
    const std::string_view inner =
        close != std::string_view::npos ? html.substr(begin, close - begin)
                                        : html.substr(begin);
    return decode_entities(remove_tags(inner));
  }
  return decode_entities(remove_tags(html));
}

}  // namespace torsim::content
