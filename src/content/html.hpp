// Minimal HTML wrapping/stripping: synthetic services serve real HTML
// documents and the crawler strips them back to text before the Sec. IV
// pipeline — mirroring the paper's "we excluded all binary data" +
// text-extraction step.
#pragma once

#include <string>
#include <string_view>

namespace torsim::content {

/// Wraps plain text into a minimal HTML document. The body text is
/// embedded verbatim, so strip_html(wrap_html(t, b)) == b.
std::string wrap_html(std::string_view title, std::string_view body);

/// Extracts the text content: if a <body> element exists, its inner
/// text; otherwise the whole input with tags removed. Decodes the
/// five basic entities (&amp; &lt; &gt; &quot; &#39;).
std::string strip_html(std::string_view html);

}  // namespace torsim::content
