// The paper's 18-category topic taxonomy (Fig. 2) and 17-language set.
#pragma once

#include <array>
#include <string_view>

namespace torsim::content {

/// Fig. 2 categories, in the paper's display order.
enum class Topic : int {
  kAdult = 0,
  kDrugs,
  kPolitics,
  kCounterfeit,
  kWeapons,
  kFaqsTutorials,
  kSecurity,
  kAnonymity,
  kHacking,
  kSoftwareHardware,
  kArt,
  kServices,
  kGames,
  kScience,
  kDigitalLibs,
  kSports,
  kTechnology,
  kOther,
};

inline constexpr int kNumTopics = 18;

std::string_view topic_name(Topic topic);
Topic topic_from_index(int index);

/// Fig. 2 percentages, summing to 100, in Topic order.
/// (Adult 17, Drugs 15, Politics 9, Counterfeit 8, Weapons 4,
///  FAQs/Tutorials 4, Security 5, Anonymity 8, Hacking 3,
///  Software/Hardware 7, Art 2, Services 4, Games 1, Science 1,
///  Digital libs 4, Sports 1, Technology 4, Other 3.)
const std::array<double, kNumTopics>& paper_topic_percentages();

/// The 17 languages the paper found, English first (84%), the rest each
/// below 3%.
enum class Language : int {
  kEnglish = 0,
  kGerman,
  kRussian,
  kPortuguese,
  kSpanish,
  kFrench,
  kPolish,
  kJapanese,
  kItalian,
  kCzech,
  kArabic,
  kDutch,
  kBasque,
  kChinese,
  kHungarian,
  kBantu,
  kSwedish,
};

inline constexpr int kNumLanguages = 17;

std::string_view language_name(Language language);
Language language_from_index(int index);

/// The paper's language shares (English 0.84, the rest splitting the
/// remaining 16%), in Language order, summing to 1.
const std::array<double, kNumLanguages>& paper_language_shares();

}  // namespace torsim::content
