#include "content/topic_classifier.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

#include "content/page_generator.hpp"
#include "util/strings.hpp"

namespace torsim::content {

void TopicClassifier::train(const std::vector<LabeledDoc>& docs) {
  if (docs.empty()) throw std::invalid_argument("TopicClassifier: no docs");

  // Ordered maps at training time: the loops below iterate them, and
  // iteration order must not depend on hash layout (the lookup-only
  // word_log_prob_ tables stay hashed).
  std::vector<double> class_count(kNumTopics, 0.0);
  std::vector<std::map<std::string, double>> word_count(kNumTopics);
  std::vector<double> total_words(kNumTopics, 0.0);

  for (const LabeledDoc& doc : docs) {
    const int cls = static_cast<int>(doc.topic);
    class_count[cls] += 1.0;
    for (const std::string& w : util::tokenize_words(doc.text)) {
      word_count[cls][w] += 1.0;
      total_words[cls] += 1.0;
    }
  }

  // Shared vocabulary size for smoothing.
  std::set<std::string> vocab;
  for (const auto& counts : word_count)
    for (const auto& [w, c] : counts) vocab.insert(w);
  const double v = static_cast<double>(vocab.size());

  class_log_prior_.assign(kNumTopics, 0.0);
  word_log_prob_.assign(kNumTopics, {});
  log_fallback_.assign(kNumTopics, 0.0);
  const double n_docs = static_cast<double>(docs.size());
  for (int cls = 0; cls < kNumTopics; ++cls) {
    class_log_prior_[cls] =
        std::log((class_count[cls] + 1.0) / (n_docs + kNumTopics));
    for (const auto& [w, c] : word_count[cls])
      word_log_prob_[cls][w] = std::log((c + 1.0) / (total_words[cls] + v));
    // A class with no training documents must never win: its tiny word
    // total would otherwise give it the *highest* Laplace fallback.
    log_fallback_[cls] = class_count[cls] > 0.0
                             ? std::log(1.0 / (total_words[cls] + v))
                             : -1e9;
  }
}

TopicGuess TopicClassifier::classify(std::string_view text) const {
  if (!trained()) throw std::logic_error("TopicClassifier: not trained");
  const auto words = util::tokenize_words(text);
  std::vector<double> scores(kNumTopics);
  for (int cls = 0; cls < kNumTopics; ++cls) {
    double score = class_log_prior_[cls];
    for (const std::string& w : words) {
      const auto it = word_log_prob_[cls].find(w);
      score +=
          it != word_log_prob_[cls].end() ? it->second : log_fallback_[cls];
    }
    scores[cls] = score;
  }
  const auto best =
      std::max_element(scores.begin(), scores.end()) - scores.begin();
  const double scale =
      words.empty() ? 1.0 : 1.0 / static_cast<double>(words.size());
  double denom = 0.0;
  for (double s : scores) denom += std::exp((s - scores[best]) * scale);
  TopicGuess guess;
  guess.topic = topic_from_index(static_cast<int>(best));
  guess.confidence = denom > 0.0 ? 1.0 / denom : 0.0;
  return guess;
}

TopicClassifier TopicClassifier::make_default(util::Rng& rng,
                                              int docs_per_topic,
                                              int words_per_doc) {
  PageGenerator generator;
  std::vector<LabeledDoc> docs;
  docs.reserve(static_cast<std::size_t>(docs_per_topic) * kNumTopics);
  for (int t = 0; t < kNumTopics; ++t) {
    const Topic topic = topic_from_index(t);
    for (int i = 0; i < docs_per_topic; ++i)
      docs.push_back(
          {topic, generator.generate_english(topic, words_per_doc, rng)});
  }
  TopicClassifier classifier;
  classifier.train(docs);
  return classifier;
}

}  // namespace torsim::content
