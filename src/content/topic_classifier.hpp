// Multinomial naive-Bayes topic classification over bags of words —
// the algorithm family behind the Mallet / uClassify tooling the paper
// used for Fig. 2.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "content/topics.hpp"
#include "util/rng.hpp"

namespace torsim::content {

/// A labelled training document.
struct LabeledDoc {
  Topic topic;
  std::string text;
};

/// Classification result.
struct TopicGuess {
  Topic topic = Topic::kOther;
  double confidence = 0.0;  ///< winning-class posterior share
};

class TopicClassifier {
 public:
  /// Trains from labelled documents (add-one smoothing, class priors
  /// from label frequencies).
  void train(const std::vector<LabeledDoc>& docs);

  /// Classifies a document; requires train() first.
  TopicGuess classify(std::string_view text) const;

  bool trained() const { return !class_log_prior_.empty(); }

  /// Convenience: trains on `docs_per_topic` synthetic documents per
  /// topic produced by the page generator — the analogue of training
  /// Mallet on a hand-labelled seed corpus.
  static TopicClassifier make_default(util::Rng& rng,
                                      int docs_per_topic = 40,
                                      int words_per_doc = 120);

 private:
  std::vector<double> class_log_prior_;                 // [topic]
  /// Lookup-only (never iterated): hash map is safe and fast.
  std::vector<std::unordered_map<std::string, double>> word_log_prob_;
  std::vector<double> log_fallback_;                    // [topic]
};

}  // namespace torsim::content
