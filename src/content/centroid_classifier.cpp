#include "content/centroid_classifier.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "content/page_generator.hpp"
#include "util/strings.hpp"

namespace torsim::content {
namespace {

// Ordered map throughout: document vectors are iterated for norms,
// centroid sums, and dot products, and those floating-point reductions
// must visit terms in a platform-independent order.
std::map<std::string, double> term_frequencies(std::string_view text) {
  std::map<std::string, double> tf;
  for (const std::string& w : util::tokenize_words(text)) tf[w] += 1.0;
  return tf;
}

void l2_normalize(std::map<std::string, double>& vec) {
  double norm = 0.0;
  for (const auto& [w, v] : vec) norm += v * v;
  norm = std::sqrt(norm);
  if (norm == 0.0) return;
  for (auto& [w, v] : vec) v /= norm;
}

}  // namespace

void CentroidClassifier::train(const std::vector<LabeledDoc>& docs) {
  if (docs.empty()) throw std::invalid_argument("CentroidClassifier: no docs");

  // IDF over the training corpus (iterated below: ordered).
  std::map<std::string, double> doc_freq;
  for (const LabeledDoc& doc : docs) {
    const auto tf = term_frequencies(doc.text);
    for (const auto& [w, count] : tf) doc_freq[w] += 1.0;
  }
  const double n = static_cast<double>(docs.size());
  idf_.clear();
  for (const auto& [w, df] : doc_freq)
    idf_[w] = std::log((n + 1.0) / (df + 1.0)) + 1.0;
  default_idf_ = std::log(n + 1.0) + 1.0;

  // Per-topic centroid: mean of L2-normalized TF-IDF document vectors.
  centroids_.assign(kNumTopics, {});
  std::vector<double> class_docs(kNumTopics, 0.0);
  for (const LabeledDoc& doc : docs) {
    auto vec = term_frequencies(doc.text);
    for (auto& [w, v] : vec) {
      const auto it = idf_.find(w);
      v *= it != idf_.end() ? it->second : default_idf_;
    }
    l2_normalize(vec);
    const int cls = static_cast<int>(doc.topic);
    for (const auto& [w, v] : vec) centroids_[cls][w] += v;
    class_docs[cls] += 1.0;
  }
  for (int cls = 0; cls < kNumTopics; ++cls) {
    if (class_docs[cls] == 0.0) {
      centroids_[cls].clear();  // untrained class never matches
      continue;
    }
    for (auto& [w, v] : centroids_[cls]) v /= class_docs[cls];
    l2_normalize(centroids_[cls]);
  }
}

TopicGuess CentroidClassifier::classify(std::string_view text) const {
  if (!trained()) throw std::logic_error("CentroidClassifier: not trained");
  auto vec = term_frequencies(text);
  for (auto& [w, v] : vec) {
    const auto it = idf_.find(w);
    v *= it != idf_.end() ? it->second : default_idf_;
  }
  l2_normalize(vec);

  TopicGuess guess;
  double best = -1.0;
  double total = 0.0;
  for (int cls = 0; cls < kNumTopics; ++cls) {
    double dot = 0.0;
    for (const auto& [w, v] : vec) {
      const auto it = centroids_[cls].find(w);
      if (it != centroids_[cls].end()) dot += v * it->second;
    }
    total += dot;
    if (dot > best) {
      best = dot;
      guess.topic = topic_from_index(cls);
    }
  }
  guess.confidence = total > 0.0 ? best / total : 0.0;
  return guess;
}

CentroidClassifier CentroidClassifier::make_default(util::Rng& rng,
                                                    int docs_per_topic,
                                                    int words_per_doc) {
  PageGenerator generator;
  std::vector<LabeledDoc> docs;
  docs.reserve(static_cast<std::size_t>(docs_per_topic) * kNumTopics);
  for (int t = 0; t < kNumTopics; ++t) {
    const Topic topic = topic_from_index(t);
    for (int i = 0; i < docs_per_topic; ++i)
      docs.push_back(
          {topic, generator.generate_english(topic, words_per_doc, rng)});
  }
  CentroidClassifier classifier;
  classifier.train(docs);
  return classifier;
}

AgreementReport measure_agreement(const TopicClassifier& bayes,
                                  const CentroidClassifier& centroid,
                                  util::Rng& rng, int docs_per_topic,
                                  int words_per_doc) {
  PageGenerator generator;
  AgreementReport report;
  for (int t = 0; t < kNumTopics; ++t) {
    const Topic truth = topic_from_index(t);
    for (int i = 0; i < docs_per_topic; ++i) {
      const auto page =
          generator.generate_english(truth, words_per_doc, rng);
      const Topic a = bayes.classify(page).topic;
      const Topic b = centroid.classify(page).topic;
      ++report.documents;
      if (a == b) {
        ++report.agreed;
        if (a == truth) ++report.agreed_correct;
      }
    }
  }
  return report;
}

}  // namespace torsim::content
