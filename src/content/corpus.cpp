#include "content/corpus.hpp"

#include <array>
#include <stdexcept>

namespace torsim::content {
namespace {

using Words = std::vector<std::string_view>;

const Words kAdultKeywords = {
    "adult",  "erotic",  "explicit", "nude",    "amateur", "webcam",
    "video",  "gallery", "models",   "fetish",  "dating",  "escort",
    "photos", "cams",    "mature",   "lingerie", "sensual", "intimate",
    "membership", "preview", "uncensored", "xxx", "hot", "babes",
    "exclusive", "hdquality", "archive", "private", "verified", "swingers"};

const Words kDrugsKeywords = {
    "cannabis", "weed",     "marijuana", "cocaine",  "mdma",     "ecstasy",
    "lsd",      "heroin",   "opiates",   "pills",    "grams",    "ounce",
    "stealth",  "shipping", "vendor",    "strain",   "psychedelic",
    "mushrooms", "amphetamine", "ketamine", "hash",   "edibles",  "dose",
    "purity",   "lab", "tested", "discreet", "packaging",
    "cannabinoid", "tabs", "blotter", "microdose", "reship", "escrowed", "decarb", "tincture"};

const Words kPoliticsKeywords = {
    "freedom",   "speech",     "censorship", "corruption", "regime",
    "leaked",    "cables",     "whistleblower", "rights",  "human",
    "repression", "activist",  "protest",    "democracy",  "government",
    "surveillance", "journalist", "dissident", "revolution", "uprising",
    "transparency", "documents", "expose",    "oppression", "liberty",
    "amnesty", "detained", "samizdat", "referendum", "junta", "propaganda", "asylum", "embargo"};

const Words kCounterfeitKeywords = {
    "counterfeit", "replica",  "stolen",  "cards",    "cvv",     "dumps",
    "paypal",      "accounts", "hacked",  "fullz",    "passport", "license",
    "documents",   "bills",    "banknotes", "cloned", "skimmer", "carding",
    "balance",     "transfer", "western", "union",   "verified", "fraud",
    "hologram", "embossed", "track2", "bins", "cashout", "mule", "swipe", "novelty"};

const Words kWeaponsKeywords = {
    "firearms",  "pistol",  "rifle",   "ammunition", "rounds",   "caliber",
    "glock",     "handgun", "scope",   "tactical",   "holster",  "barrel",
    "suppressor", "magazine", "ammo",  "gunsmith",   "ordnance", "knife",
    "blade", "defense", "concealed", "shipment",
    "flashbang", "sidearm", "carbine", "optics", "trigger", "stockpile", "gauge", "muzzle"};

const Words kFaqsKeywords = {
    "tutorial", "howto",  "guide",   "instructions", "beginners", "steps",
    "learn",    "faq",    "answers", "questions",    "manual",    "setup",
    "configure", "install", "walkthrough", "tips",   "tricks",    "explained",
    "introduction", "basics", "lesson", "examples",
    "stepwise", "primer", "checklist", "troubleshooting", "glossary", "newbie", "walkthroughs", "handbook"};

const Words kSecurityKeywords = {
    "encryption", "pgp",       "gpg",      "keys",     "cipher",  "aes",
    "passwords",  "otr",       "securely", "hardening", "firewall", "audit",
    "vulnerability", "patch",  "disk",     "wipe",     "metadata", "opsec",
    "threat",     "model",     "verify",   "signatures", "fingerprint",
    "integrity",
    "keyring", "entropy", "nonce", "airgapped", "tamper", "checksum", "revocation", "passphrase"};

const Words kAnonymityKeywords = {
    "anonymous", "anonymity", "tor",     "onion",   "relay",    "circuit",
    "privacy",   "pseudonym", "remailer", "mixmaster", "i2p",    "freenet",
    "proxies",   "vpn",       "hidden",  "untraceable", "mailbox", "hosting",
    "traffic",   "analysis",  "exit",    "node",    "bridge",   "unlinkable",
    "pseudonymous", "deanonymization", "cover", "mixnet", "hop", "linkability", "burner", "compartmentalize"};

const Words kHackingKeywords = {
    "exploit",  "zero",    "day",     "rootkit", "botnet",   "malware",
    "payload",  "shellcode", "injection", "xss", "sql",      "overflow",
    "backdoor", "keylogger", "phishing", "cracked", "warez",  "leaks",
    "breach",   "database", "dox",     "ddos",    "spoofing", "bypass",
    "fuzzing", "privesc", "ransomware", "stealer", "crypter", "obfuscation", "dropper", "pwned"};

const Words kSoftwareKeywords = {
    "software",  "download", "release", "version", "linux",    "windows",
    "opensource", "compile", "binary",  "source",  "repository", "library",
    "driver",    "kernel",   "debian",  "packages", "update",   "toolchain",
    "hardware",  "arduino",  "raspberry", "chipset", "firmware", "emulator",
    "makefile", "segfault", "daemons", "libc", "overclock", "soldering", "bootloader", "changelog"};

const Words kArtKeywords = {
    "art",      "poetry",   "paintings", "drawings", "gallery",  "artists",
    "creative", "fiction",  "stories",   "novel",    "photography", "sketch",
    "sculpture", "exhibition", "canvas", "portrait", "illustration", "music",
    "ambient",  "literature", "prose",  "verse",
    "haiku", "etching", "collage", "manuscript", "zine", "aesthetics", "surreal", "monochrome"};

const Words kServicesKeywords = {
    "escrow",   "laundering", "mixer",  "tumbler",  "hitman",  "hire",
    "services", "fee",        "percent", "vouches", "jobs",    "delivery",
    "middleman", "guarantee", "refund", "contract", "payment", "invoice",
    "commission", "courier",  "broker", "settlement",
    "retainer", "deadline", "upfront", "negotiable", "confidential", "handler", "errand", "cleanup"};

const Words kGamesKeywords = {
    "chess",   "poker",   "lottery", "casino",  "bets",    "wager",
    "jackpot", "players", "tournament", "rooms", "blackjack", "roulette",
    "odds",    "winnings", "stakes", "dice",    "gaming",  "arcade",
    "puzzle",  "leaderboard", "rounds", "deposit",
    "elo", "blinds", "flop", "checkmate", "wagering", "payout", "freeroll", "gambit"};

const Words kScienceKeywords = {
    "research",  "physics",  "chemistry", "biology",  "mathematics",
    "theorem",   "quantum",  "experiment", "dataset", "hypothesis",
    "journal",   "papers",   "academic",  "study",    "analysis",
    "laboratory", "genome",  "neuroscience", "astronomy", "statistics",
    "peer",      "review",
    "reagent", "spectroscopy", "enzyme", "isotope", "preprint", "citation", "conjecture", "thermodynamics"};

const Words kDigitalLibsKeywords = {
    "library",  "ebooks",  "archive", "collection", "texts",   "pdf",
    "epub",     "catalog", "volumes", "titles",     "authors", "classics",
    "mirror",   "repository", "scans", "magazines", "journals", "index",
    "shelves",  "reading", "borrow",  "preservation",
    "ocr", "djvu", "folio", "errata", "anthology", "facsimile", "gutenberg", "bibliography"};

const Words kSportsKeywords = {
    "football", "soccer",  "league",  "matches", "scores",  "betting",
    "teams",    "season",  "players", "championship", "tennis", "basketball",
    "fixtures", "standings", "goals", "transfer", "stadium", "coach",
    "highlights", "tournament", "cup", "racing",
    "handicap", "parlay", "relegation", "offside", "paddock", "grandslam", "knockout", "qualifiers"};

const Words kTechnologyKeywords = {
    "bitcoin",  "blockchain", "mining",  "wallet",   "cryptocurrency",
    "server",   "hosting",   "bandwidth", "datacenter", "network",
    "protocol", "nodes",     "api",      "cloud",    "storage",
    "infrastructure", "latency", "uptime", "cluster", "router",
    "satoshi",  "hashrate",
    "colocation", "failover", "mempool", "sharding", "throughput", "websocket", "kernelspace", "cdn"};

const Words kOtherKeywords = {
    "random",  "misc",    "personal", "blog",    "diary",   "thoughts",
    "links",   "bookmarks", "directory", "wiki", "pastebin", "notes",
    "updates", "announcements", "board", "forum", "chat",    "community",
    "welcome", "homepage", "placeholder", "test",
    "guestbook", "changelog", "ramblings", "shoutbox", "miscellany", "snippets", "scrapbook", "doodles"};

const Words kEnglishStopwords = {
    "the",  "of",    "and",   "to",    "in",   "is",    "you",  "that",
    "it",   "he",    "was",   "for",   "on",   "are",   "as",   "with",
    "his",  "they",  "at",    "be",    "this", "have",  "from", "or",
    "one",  "had",   "by",    "word",  "but",  "not",   "what", "all",
    "were", "we",    "when",  "your",  "can",  "said",  "there", "use",
    "an",   "each",  "which", "she",   "do",   "how",   "their", "if",
    "will", "up",    "other", "about", "out",  "many",  "then", "them"};

const Words kGermanWords = {
    "der",   "die",    "und",   "in",    "den",   "von",   "zu",   "das",
    "mit",   "sich",   "des",   "auf",   "für",   "ist",   "im",   "dem",
    "nicht", "ein",    "eine",  "als",   "auch",  "es",    "an",   "werden",
    "aus",   "er",     "hat",   "dass",  "sie",   "nach",  "wird", "bei",
    "einer", "um",     "am",    "sind",  "noch",  "wie",   "einem", "über",
    "einen", "so",     "zum",   "haben", "nur",   "oder",  "aber", "vor"};

const Words kRussianWords = {
    "и",    "в",     "не",   "на",   "я",    "быть", "он",   "с",
    "что",  "а",     "по",   "это",  "она",  "этот", "к",    "но",
    "они",  "мы",    "как",  "из",   "у",    "который", "то", "за",
    "свой", "весь",  "год",  "от",   "так",  "о",    "для",  "ты",
    "же",   "все",   "тот",  "мочь", "вы",   "человек", "такой", "его",
    "сказать", "только", "или", "еще", "бы",  "себя", "один", "как"};

const Words kPortugueseWords = {
    "de",   "a",     "o",    "que",  "e",    "do",   "da",   "em",
    "um",   "para",  "é",    "com",  "não",  "uma",  "os",   "no",
    "se",   "na",    "por",  "mais", "as",   "dos",  "como", "mas",
    "foi",  "ao",    "ele",  "das",  "tem",  "à",    "seu",  "sua",
    "ou",   "ser",   "quando", "muito", "há", "nos",  "já",   "está",
    "eu",   "também", "só",  "pelo", "pela", "até",  "isso", "ela"};

const Words kSpanishWords = {
    "de",   "la",    "que",  "el",   "en",   "y",    "a",    "los",
    "del",  "se",    "las",  "por",  "un",   "para", "con",  "no",
    "una",  "su",    "al",   "lo",   "como", "más",  "pero", "sus",
    "le",   "ya",    "o",    "este", "sí",   "porque", "esta", "entre",
    "cuando", "muy", "sin",  "sobre", "también", "me", "hasta", "hay",
    "donde", "quien", "desde", "todo", "nos", "durante", "todos", "uno"};

const Words kFrenchWords = {
    "de",   "la",    "le",   "et",   "les",  "des",  "en",   "un",
    "du",   "une",   "que",  "est",  "pour", "qui",  "dans", "a",
    "par",  "plus",  "pas",  "au",   "sur",  "ne",   "se",   "ce",
    "il",   "sont",  "la",   "mais", "comme", "ou",  "si",   "leur",
    "y",    "dont",  "aux",  "avec", "cette", "ces", "fait", "son",
    "tout", "nous",  "sa",   "bien", "être", "deux", "même", "aussi"};

const Words kPolishWords = {
    "w",    "i",     "z",    "na",   "do",   "to",   "się",  "nie",
    "że",   "jest",  "o",    "a",    "jak",  "po",   "co",   "tak",
    "za",   "od",    "ale",  "czy",  "dla",  "ma",   "być",  "przez",
    "był",  "tym",   "które", "tego", "już", "lub",  "tylko", "przy",
    "może", "bardzo", "jego", "kiedy", "także", "które", "ich", "przed",
    "więc", "jeszcze", "gdy", "nawet", "czyli", "ponieważ", "aby", "można"};

const Words kJapaneseWords = {
    "の",   "に",    "は",   "を",   "た",   "が",   "で",   "て",
    "と",   "し",    "れ",   "さ",   "ある", "いる", "も",   "する",
    "から", "な",    "こと", "として", "い", "や",   "れる", "など",
    "なっ", "ない",  "この", "ため", "その", "あっ", "よう", "また",
    "もの", "という", "あり", "まで", "られ", "なる", "へ",  "か",
    "だ",   "これ",  "によって", "により", "おり", "より", "による", "ず"};

const Words kItalianWords = {
    "di",   "e",     "il",   "la",   "che",  "in",   "a",    "per",
    "un",   "è",     "del",  "non",  "con",  "le",   "si",   "una",
    "i",    "da",    "al",   "nel",  "come", "più",  "anche", "lo",
    "ma",   "della", "sono", "ha",   "alla", "su",   "dei",  "gli",
    "questo", "delle", "o",  "se",   "suo",  "ci",   "due",  "nella",
    "loro", "stato", "essere", "molto", "fatto", "dopo", "tra", "quando"};

const Words kCzechWords = {
    "a",    "se",    "v",    "na",   "je",   "že",   "o",    "s",
    "z",    "do",    "i",    "to",   "k",    "ve",   "pro",  "za",
    "by",   "ale",   "si",   "po",   "jako", "podle", "od",  "jsou",
    "které", "byl",  "jeho", "její", "nebo", "už",   "jen",  "při",
    "také", "může",  "až",   "být",  "před", "však", "bude", "ještě",
    "když", "roce",  "má",   "mezi", "tak",  "první", "byla", "co"};

const Words kArabicWords = {
    "في",   "من",    "على",  "أن",   "إلى",  "عن",   "مع",   "هذا",
    "كان",  "التي",  "الذي", "ما",   "لا",   "هو",   "و",    "قد",
    "كل",   "بعد",   "لم",   "بين",  "هذه",  "أو",   "حيث",  "عند",
    "لكن",  "منذ",   "حتى",  "إذا",  "كما",  "فيه",  "غير",  "أكثر",
    "يمكن", "خلال",  "عام",  "أي",   "ثم",   "هناك", "عليه", "نحو",
    "وقد",  "وهو",   "ولا",  "بها",  "له",   "أنه",  "بعض",  "ذلك"};

const Words kDutchWords = {
    "de",   "van",   "het",  "een",  "en",   "in",   "is",   "dat",
    "op",   "te",    "zijn", "voor", "met",  "die",  "niet", "aan",
    "er",   "om",    "ook",  "als",  "dan",  "maar", "bij",  "of",
    "uit",  "nog",   "naar", "door", "over", "ze",   "zich", "hij",
    "worden", "wordt", "kan", "meer", "geen", "al",  "tot",  "deze",
    "heeft", "hun",  "werd", "wel",  "we",   "na",   "onder", "omdat"};

const Words kBasqueWords = {
    "eta",  "da",    "ez",   "bat",  "du",   "dira", "zen",  "ere",
    "baina", "hau",  "dute", "egin", "izan", "bere", "beste", "horrek",
    "zuen", "gara",  "dago", "behar", "urte", "berri", "guztiak", "euskal",
    "horien", "gero", "oso", "ondoren", "arte", "bezala", "asko", "baino",
    "lehen", "orain", "hori", "zer",  "nola", "non",  "nor",  "zein",
    "bai",  "edo",   "ditu", "gabe", "arabera", "artean", "hala", "honen"};

const Words kChineseWords = {
    "的",   "一",    "是",   "在",   "不",   "了",   "有",   "和",
    "人",   "这",    "中",   "大",   "为",   "上",   "个",   "国",
    "我",   "以",    "要",   "他",   "时",   "来",   "用",   "们",
    "生",   "到",    "作",   "地",   "于",   "出",   "就",   "分",
    "对",   "成",    "会",   "可",   "主",   "发",   "年",   "动",
    "同",   "工",    "也",   "能",   "下",   "过",   "子",   "说"};

const Words kHungarianWords = {
    "a",    "az",    "és",   "hogy", "nem",  "is",   "egy",  "de",
    "volt", "meg",   "ez",   "el",   "vagy", "ha",   "már",  "csak",
    "mint", "még",   "ki",   "fel",  "be",   "le",   "azt",  "után",
    "minden", "van", "lehet", "kell", "ami", "amely", "első", "más",
    "ezt",  "olyan", "nagy", "új",   "két",  "magyar", "pedig", "át",
    "abban", "arra", "szerint", "majd", "most", "itt", "ők",  "között"};

const Words kBantuWords = {
    "na",   "ya",    "wa",   "kwa",  "ni",   "za",   "katika", "la",
    "hii",  "yake",  "kama", "cha",  "kuwa", "watu", "ambao",  "hiyo",
    "sasa", "pia",   "moja", "lakini", "hata", "wote", "baada", "kabla",
    "mtu",  "vya",   "wengi", "hivyo", "ndani", "nje", "juu",  "chini",
    "huo",  "wao",   "yao",  "zao",  "mimi", "wewe", "yeye",   "sisi",
    "ninyi", "habari", "nzuri", "sana", "kidogo", "kubwa", "ndogo", "leo"};

const Words kSwedishWords = {
    "och",  "i",     "att",  "det",  "som",  "en",   "på",   "är",
    "av",   "för",   "med",  "till", "den",  "har",  "de",   "inte",
    "om",   "ett",   "han",  "men",  "var",  "jag",  "sig",  "från",
    "vi",   "så",    "kan",  "när",  "år",   "under", "också", "efter",
    "eller", "nu",   "sin",  "där",  "vid",  "mot",  "ska",  "skulle",
    "kommer", "ut",  "får",  "finns", "vara", "hade", "alla", "andra"};

const Words* language_tables[kNumLanguages] = {
    &kEnglishStopwords, &kGermanWords,  &kRussianWords, &kPortugueseWords,
    &kSpanishWords,     &kFrenchWords,  &kPolishWords,  &kJapaneseWords,
    &kItalianWords,     &kCzechWords,   &kArabicWords,  &kDutchWords,
    &kBasqueWords,      &kChineseWords, &kHungarianWords, &kBantuWords,
    &kSwedishWords};

const Words* topic_tables[kNumTopics] = {
    &kAdultKeywords,     &kDrugsKeywords,       &kPoliticsKeywords,
    &kCounterfeitKeywords, &kWeaponsKeywords,   &kFaqsKeywords,
    &kSecurityKeywords,  &kAnonymityKeywords,   &kHackingKeywords,
    &kSoftwareKeywords,  &kArtKeywords,         &kServicesKeywords,
    &kGamesKeywords,     &kScienceKeywords,     &kDigitalLibsKeywords,
    &kSportsKeywords,    &kTechnologyKeywords,  &kOtherKeywords};

const std::vector<std::string_view> kTopicPhrases[kNumTopics] = {
    {"members area login", "free preview gallery", "verified models only"},
    {"worldwide stealth shipping", "lab tested purity", "bulk discount available"},
    {"freedom of speech", "leaked government documents", "human rights violations"},
    {"fresh cvv dumps", "cloned cards shipped", "verified paypal accounts"},
    {"ships disassembled parts", "untraceable serial numbers", "ammo sold separately"},
    {"step by step guide", "frequently asked questions", "complete beginners tutorial"},
    {"verify pgp signatures", "full disk encryption", "threat model first"},
    {"hidden service hosting", "anonymous mail relay", "no logs kept"},
    {"zero day exploit", "private botnet access", "database breach dumps"},
    {"open source release", "compile from source", "nightly builds available"},
    {"original poetry collection", "digital art gallery", "short fiction archive"},
    {"escrow protects both", "mixing fee percent", "satisfied customer vouches"},
    {"correspondence chess server", "bitcoin poker tables", "provably fair lottery"},
    {"peer reviewed preprints", "replication data sets", "open access journal"},
    {"rare book scans", "complete works archive", "mirrored library catalog"},
    {"live match scores", "betting odds feed", "league standings table"},
    {"bitcoin mining pool", "bulletproof hosting plans", "uptime guarantee"},
    {"personal home page", "random link list", "under construction"}};

constexpr std::string_view kTorHostPage =
    "welcome to torhost free anonymous hosting your site has been created "
    "this is the default placeholder page upload your content to replace it "
    "torhost provides free onion hosting with php and mysql support sign up "
    "is anonymous no email required start building your hidden service today";

constexpr std::string_view kSshBanner = "SSH-2.0-OpenSSH_5.9p1 Debian-5ubuntu1";

constexpr std::string_view kErrorPage =
    "<html><head><title>error</title></head><body><h1>500 internal server "
    "error</h1><p>the server encountered an internal error or "
    "misconfiguration and was unable to complete your request please "
    "contact the server administrator and inform them of the time the "
    "error occurred and anything you might have done that may have caused "
    "the error more information about this issue may be available in the "
    "server error log</p></body></html>";

}  // namespace

const std::vector<std::string_view>& topic_keywords(Topic topic) {
  const int idx = static_cast<int>(topic);
  if (idx < 0 || idx >= kNumTopics)
    throw std::out_of_range("topic_keywords: bad topic");
  return *topic_tables[idx];
}

const std::vector<std::string_view>& topic_phrases(Topic topic) {
  const int idx = static_cast<int>(topic);
  if (idx < 0 || idx >= kNumTopics)
    throw std::out_of_range("topic_phrases: bad topic");
  return kTopicPhrases[idx];
}

const std::vector<std::string_view>& language_words(Language language) {
  const int idx = static_cast<int>(language);
  if (idx < 0 || idx >= kNumLanguages)
    throw std::out_of_range("language_words: bad language");
  return *language_tables[idx];
}

const std::vector<std::string_view>& english_stopwords() {
  return kEnglishStopwords;
}

std::string_view torhost_default_page() { return kTorHostPage; }

std::string_view ssh_banner() { return kSshBanner; }

std::string_view html_error_page() { return kErrorPage; }

}  // namespace torsim::content
