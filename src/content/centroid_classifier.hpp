// TF-IDF nearest-centroid (Rocchio) topic classification — a second,
// independent classifier family. The paper cross-checked Mallet with the
// uClassify web service; we mirror that methodology with naive Bayes
// (TopicClassifier) cross-checked against this centroid model, and the
// ablation bench reports their agreement.
#pragma once

#include <map>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "content/topic_classifier.hpp"  // LabeledDoc, TopicGuess
#include "content/topics.hpp"
#include "util/rng.hpp"

namespace torsim::content {

class CentroidClassifier {
 public:
  /// Computes IDF weights over the corpus and one L2-normalized TF-IDF
  /// centroid per topic.
  void train(const std::vector<LabeledDoc>& docs);

  /// Cosine-similarity argmax against the centroids.
  TopicGuess classify(std::string_view text) const;

  bool trained() const { return !centroids_.empty(); }

  /// Same convenience constructor shape as TopicClassifier::make_default.
  static CentroidClassifier make_default(util::Rng& rng,
                                         int docs_per_topic = 40,
                                         int words_per_doc = 120);

 private:
  /// Lookup-only (never iterated): hash map is safe and fast.
  std::unordered_map<std::string, double> idf_;
  /// Iterated during training (mean + L2 normalize): ordered so the
  /// floating-point accumulation order is platform-independent.
  std::vector<std::map<std::string, double>> centroids_;
  double default_idf_ = 0.0;
};

/// Fraction of documents on which two classifiers give the same label.
struct AgreementReport {
  std::size_t documents = 0;
  std::size_t agreed = 0;
  /// Of the agreements, how many match the ground-truth label.
  std::size_t agreed_correct = 0;
  double agreement_rate() const {
    return documents > 0 ? static_cast<double>(agreed) /
                               static_cast<double>(documents)
                         : 0.0;
  }
};

/// Runs both classifiers over generated labelled pages.
AgreementReport measure_agreement(const TopicClassifier& bayes,
                                  const CentroidClassifier& centroid,
                                  util::Rng& rng, int docs_per_topic = 20,
                                  int words_per_doc = 150);

}  // namespace torsim::content
