#include "content/page_generator.hpp"

#include "content/corpus.hpp"

namespace torsim::content {

std::string PageGenerator::generate(Topic topic, Language language,
                                    int word_count, util::Rng& rng) const {
  if (language == Language::kEnglish)
    return generate_english(topic, word_count, rng);

  const auto& lang_words = language_words(language);
  const auto& keywords = topic_keywords(topic);
  std::string page;
  page.reserve(static_cast<std::size_t>(word_count) * 8);
  for (int i = 0; i < word_count; ++i) {
    if (!page.empty()) page += ' ';
    if (rng.bernoulli(0.10)) {
      page += keywords[rng.index(keywords.size())];
    } else {
      page += lang_words[rng.index(lang_words.size())];
    }
  }
  return page;
}

std::string PageGenerator::generate_english(Topic topic, int word_count,
                                            util::Rng& rng) const {
  const auto& keywords = topic_keywords(topic);
  const auto& phrases = topic_phrases(topic);
  const auto& stopwords = english_stopwords();
  std::string page;
  page.reserve(static_cast<std::size_t>(word_count) * 8);
  int words = 0;
  while (words < word_count) {
    if (!page.empty()) page += ' ';
    const double roll = rng.uniform01();
    if (roll < 0.05 && !phrases.empty()) {
      const auto phrase = phrases[rng.index(phrases.size())];
      page += phrase;
      words += 3;  // phrases are three words
    } else if (roll < 0.45) {
      page += keywords[rng.index(keywords.size())];
      ++words;
    } else {
      page += stopwords[rng.index(stopwords.size())];
      ++words;
    }
  }
  return page;
}

std::string PageGenerator::generate_english_noisy(
    Topic topic, int word_count, util::Rng& rng,
    double cross_topic_noise) const {
  const auto& keywords = topic_keywords(topic);
  const auto& stopwords = english_stopwords();
  std::string page;
  page.reserve(static_cast<std::size_t>(word_count) * 8);
  for (int i = 0; i < word_count; ++i) {
    if (!page.empty()) page += ' ';
    const double roll = rng.uniform01();
    if (roll < 0.55) {
      page += stopwords[rng.index(stopwords.size())];
    } else if (rng.bernoulli(cross_topic_noise)) {
      // A content word borrowed from some other topic.
      const int other =
          static_cast<int>(rng.uniform_int(0, kNumTopics - 1));
      const auto& noise = topic_keywords(topic_from_index(other));
      page += noise[rng.index(noise.size())];
    } else {
      page += keywords[rng.index(keywords.size())];
    }
  }
  return page;
}

std::string PageGenerator::generate_stub(util::Rng& rng) const {
  const auto& stopwords = english_stopwords();
  const int n = static_cast<int>(rng.uniform_int(1, 15));
  std::string page;
  for (int i = 0; i < n; ++i) {
    if (!page.empty()) page += ' ';
    page += stopwords[rng.index(stopwords.size())];
  }
  return page;
}

}  // namespace torsim::content
