#include "content/pipeline.hpp"

#include <map>

#include "content/corpus.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace torsim::content {

std::vector<double> PipelineResult::topic_percentages() const {
  std::vector<double> out(kNumTopics, 0.0);
  double total = 0.0;
  for (std::size_t c : topic_counts) total += static_cast<double>(c);
  if (total == 0.0) return out;
  for (int i = 0; i < kNumTopics; ++i)
    out[i] = 100.0 * static_cast<double>(topic_counts[i]) / total;
  return out;
}

std::vector<double> PipelineResult::language_shares() const {
  std::vector<double> out(kNumLanguages, 0.0);
  double total = 0.0;
  for (std::size_t c : language_counts) total += static_cast<double>(c);
  if (total == 0.0) return out;
  for (int i = 0; i < kNumLanguages; ++i)
    out[i] = static_cast<double>(language_counts[i]) / total;
  return out;
}

ContentPipeline::ContentPipeline(const TopicClassifier& classifier,
                                 const LanguageDetector& detector,
                                 PipelineConfig config)
    : classifier_(classifier), detector_(detector), config_(config) {}

namespace {

/// Where one destination leaves the Sec. IV funnel. Computed
/// independently per page, then tallied in input order.
struct PageOutcome {
  enum class Stage {
    kNotConnected,
    kShort,
    kDup443,
    kError,
    kNonEnglish,
    kTorHostDefault,
    kClassified,
  };
  Stage stage = Stage::kNotConnected;
  bool ssh_banner = false;
  Language language = Language::kEnglish;
  TopicGuess topic;
};

}  // namespace

PipelineResult ContentPipeline::run(
    const std::vector<CrawlDestination>& destinations) const {
  PipelineResult result;
  result.destinations_total = destinations.size();

  // Index port-80 page text per onion for the 443-duplicate rule
  // (read-only once the fan-out starts).
  std::map<std::string, const CrawlDestination*> port80_pages;
  for (const CrawlDestination& d : destinations)
    if (d.connected && d.port == net::kPortHttp) port80_pages[d.onion] = &d;

  const auto classify_one = [&](std::size_t index) {
    PageOutcome out;
    const CrawlDestination& d = destinations[index];
    if (!d.connected) return out;

    // Rule 1: fewer than 20 words of text (SSH banners land here: the
    // crawler spoke HTTP to port 22 and got a one-line banner back).
    if (util::count_words(d.text) < 20) {
      out.stage = PageOutcome::Stage::kShort;
      out.ssh_banner =
          d.port == net::kPortSsh || util::starts_with(d.text, "SSH-");
      return out;
    }

    // Rule 2: port-443 destination whose content is a copy of the same
    // onion's port-80 page.
    if (d.port == net::kPortHttps) {
      const auto it = port80_pages.find(d.onion);
      if (it != port80_pages.end() && it->second->text == d.text) {
        out.stage = PageOutcome::Stage::kDup443;
        return out;
      }
    }

    // Rule 3: error message embedded in an HTML page.
    if (d.error_page) {
      out.stage = PageOutcome::Stage::kError;
      return out;
    }

    const LanguageGuess lang = detector_.detect(d.text);
    out.language = lang.language;
    if (lang.language != Language::kEnglish) {
      out.stage = PageOutcome::Stage::kNonEnglish;
      return out;
    }

    // TorHost default placeholder pages are tallied separately, not
    // topic-classified (the paper set 805 of them aside).
    if (d.text == torhost_default_page()) {
      out.stage = PageOutcome::Stage::kTorHostDefault;
      return out;
    }

    out.stage = PageOutcome::Stage::kClassified;
    out.topic = classifier_.classify(d.text);
    return out;
  };

  const std::vector<PageOutcome> outcomes = util::parallel_map(
      destinations.size(), config_.threads, classify_one);

  // Ordered reduction: walk the funnel counters in input order.
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const PageOutcome& out = outcomes[i];
    const CrawlDestination& d = destinations[i];
    if (out.stage == PageOutcome::Stage::kNotConnected) continue;
    ++result.connected;
    result.port_counts.add(d.port);
    switch (out.stage) {
      case PageOutcome::Stage::kNotConnected:
        break;
      case PageOutcome::Stage::kShort:
        ++result.excluded_short;
        if (out.ssh_banner) ++result.excluded_ssh_banner;
        break;
      case PageOutcome::Stage::kDup443:
        ++result.excluded_dup443;
        break;
      case PageOutcome::Stage::kError:
        ++result.excluded_error;
        break;
      case PageOutcome::Stage::kNonEnglish:
        ++result.classifiable;
        result.language_counts[static_cast<int>(out.language)]++;
        break;
      case PageOutcome::Stage::kTorHostDefault:
        ++result.classifiable;
        result.language_counts[static_cast<int>(out.language)]++;
        ++result.english;
        ++result.torhost_default;
        break;
      case PageOutcome::Stage::kClassified:
        ++result.classifiable;
        result.language_counts[static_cast<int>(out.language)]++;
        ++result.english;
        result.topic_counts[static_cast<int>(out.topic.topic)]++;
        ++result.classified;
        result.services.push_back({d.onion, d.port, out.language,
                                   out.topic.topic, out.topic.confidence});
        break;
    }
  }
  return result;
}

}  // namespace torsim::content
