#include "content/pipeline.hpp"

#include <map>

#include "content/corpus.hpp"
#include "util/strings.hpp"

namespace torsim::content {

std::vector<double> PipelineResult::topic_percentages() const {
  std::vector<double> out(kNumTopics, 0.0);
  double total = 0.0;
  for (std::size_t c : topic_counts) total += static_cast<double>(c);
  if (total == 0.0) return out;
  for (int i = 0; i < kNumTopics; ++i)
    out[i] = 100.0 * static_cast<double>(topic_counts[i]) / total;
  return out;
}

std::vector<double> PipelineResult::language_shares() const {
  std::vector<double> out(kNumLanguages, 0.0);
  double total = 0.0;
  for (std::size_t c : language_counts) total += static_cast<double>(c);
  if (total == 0.0) return out;
  for (int i = 0; i < kNumLanguages; ++i)
    out[i] = static_cast<double>(language_counts[i]) / total;
  return out;
}

ContentPipeline::ContentPipeline(const TopicClassifier& classifier,
                                 const LanguageDetector& detector)
    : classifier_(classifier), detector_(detector) {}

PipelineResult ContentPipeline::run(
    const std::vector<CrawlDestination>& destinations) const {
  PipelineResult result;
  result.destinations_total = destinations.size();

  // Index port-80 page text per onion for the 443-duplicate rule.
  std::map<std::string, const CrawlDestination*> port80_pages;
  for (const CrawlDestination& d : destinations)
    if (d.connected && d.port == net::kPortHttp) port80_pages[d.onion] = &d;

  for (const CrawlDestination& d : destinations) {
    if (!d.connected) continue;
    ++result.connected;
    result.port_counts.add(d.port);

    // Rule 1: fewer than 20 words of text (SSH banners land here: the
    // crawler spoke HTTP to port 22 and got a one-line banner back).
    if (util::count_words(d.text) < 20) {
      ++result.excluded_short;
      if (d.port == net::kPortSsh ||
          util::starts_with(d.text, "SSH-"))
        ++result.excluded_ssh_banner;
      continue;
    }

    // Rule 2: port-443 destination whose content is a copy of the same
    // onion's port-80 page.
    if (d.port == net::kPortHttps) {
      const auto it = port80_pages.find(d.onion);
      if (it != port80_pages.end() && it->second->text == d.text) {
        ++result.excluded_dup443;
        continue;
      }
    }

    // Rule 3: error message embedded in an HTML page.
    if (d.error_page) {
      ++result.excluded_error;
      continue;
    }

    ++result.classifiable;
    const LanguageGuess lang = detector_.detect(d.text);
    result.language_counts[static_cast<int>(lang.language)]++;
    if (lang.language != Language::kEnglish) continue;
    ++result.english;

    // TorHost default placeholder pages are tallied separately, not
    // topic-classified (the paper set 805 of them aside).
    if (d.text == torhost_default_page()) {
      ++result.torhost_default;
      continue;
    }

    const TopicGuess topic = classifier_.classify(d.text);
    result.topic_counts[static_cast<int>(topic.topic)]++;
    ++result.classified;
    result.services.push_back(
        {d.onion, d.port, lang.language, topic.topic, topic.confidence});
  }
  return result;
}

}  // namespace torsim::content
