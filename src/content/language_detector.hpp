// Character n-gram naive-Bayes language detection — the same algorithm
// family as the "Langdetect" library the paper used (Shuyo 2010), with
// profiles built from the embedded per-language corpora.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "content/topics.hpp"

namespace torsim::content {

/// Detection result with the winning language's posterior share.
struct LanguageGuess {
  Language language = Language::kEnglish;
  double confidence = 0.0;  ///< normalized posterior in [0, 1]
};

class LanguageDetector {
 public:
  /// Builds profiles (1..3-byte n-grams, add-one smoothing) from the
  /// embedded corpora.
  LanguageDetector();

  /// Classifies text; uses n-gram log-likelihoods under each language
  /// profile. Empty/too-short text falls back to English at confidence 0.
  LanguageGuess detect(std::string_view text) const;

  /// Shared trained instance (profiles are immutable after construction).
  static const LanguageDetector& instance();

 private:
  struct Profile {
    /// Lookup-only (never iterated): hash map is safe and fast.
    std::unordered_map<std::string, double> log_prob;
    double log_fallback = -12.0;  ///< for unseen n-grams
  };

  static void extract_ngrams(std::string_view text,
                             std::vector<std::string>& out);

  std::vector<Profile> profiles_;  // indexed by Language
};

}  // namespace torsim::content
