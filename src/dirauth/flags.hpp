// Router status flags, as assigned by the directory authorities.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace torsim::dirauth {

enum class Flag : std::uint16_t {
  kRunning = 1u << 0,
  kValid = 1u << 1,
  kFast = 1u << 2,
  kStable = 1u << 3,
  kGuard = 1u << 4,
  kHSDir = 1u << 5,
  kExit = 1u << 6,
};

/// Bitmask of Flags.
using FlagSet = std::uint16_t;

constexpr FlagSet flag_bit(Flag f) { return static_cast<FlagSet>(f); }

constexpr bool has_flag(FlagSet set, Flag f) {
  return (set & flag_bit(f)) != 0;
}

constexpr FlagSet with_flag(FlagSet set, Flag f) { return set | flag_bit(f); }

/// Space-separated directory-document rendering ("Fast Guard HSDir ...").
std::string flags_to_string(FlagSet set);

/// Inverse of flags_to_string; throws std::invalid_argument on an
/// unknown flag name.
FlagSet flags_from_string(std::string_view text);

}  // namespace torsim::dirauth
