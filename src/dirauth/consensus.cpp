#include "dirauth/consensus.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/parallel.hpp"

namespace torsim::dirauth {

namespace {

// Monotone identity stamps for ring caches. The counter is process-wide
// and ordering-dependent, which is fine: generations are compared for
// equality only and never appear in any output.
std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Consensus::Consensus(util::UnixTime valid_after,
                     std::vector<ConsensusEntry> entries)
    : valid_after_(valid_after),
      entries_(std::move(entries)),
      generation_(next_generation()) {
  std::sort(entries_.begin(), entries_.end(),
            [](const ConsensusEntry& a, const ConsensusEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (has_flag(entries_[i].flags, Flag::kHSDir)) hsdir_indices_.push_back(i);
  build_ring_index();
}

void Consensus::build_ring_index() {
  std::vector<crypto::Fingerprint> ring;
  std::vector<std::uint32_t> handles;
  ring.reserve(hsdir_indices_.size());
  handles.reserve(hsdir_indices_.size());
  for (const std::size_t idx : hsdir_indices_) {
    ring.push_back(entries_[idx].fingerprint);
    handles.push_back(static_cast<std::uint32_t>(idx));
  }
  ring_index_ = RingIndex(std::move(ring), std::move(handles));
}

Consensus::Consensus(const Consensus& other)
    : valid_after_(other.valid_after_),
      entries_(other.entries_),
      hsdir_indices_(other.hsdir_indices_),
      ring_index_(other.ring_index_),
      generation_(other.entries_.empty() ? 0 : next_generation()) {}

Consensus& Consensus::operator=(const Consensus& other) {
  if (this == &other) return *this;
  valid_after_ = other.valid_after_;
  entries_ = other.entries_;
  hsdir_indices_ = other.hsdir_indices_;
  ring_index_ = other.ring_index_;
  generation_ = entries_.empty() ? 0 : next_generation();
  return *this;
}

Consensus::Consensus(Consensus&& other) noexcept
    : valid_after_(other.valid_after_),
      entries_(std::move(other.entries_)),
      hsdir_indices_(std::move(other.hsdir_indices_)),
      ring_index_(std::move(other.ring_index_)),
      generation_(std::exchange(other.generation_, 0)) {
  other.valid_after_ = 0;
  other.entries_.clear();
  other.hsdir_indices_.clear();
  other.ring_index_ = RingIndex{};
}

Consensus& Consensus::operator=(Consensus&& other) noexcept {
  if (this == &other) return *this;
  valid_after_ = other.valid_after_;
  entries_ = std::move(other.entries_);
  hsdir_indices_ = std::move(other.hsdir_indices_);
  ring_index_ = std::move(other.ring_index_);
  generation_ = std::exchange(other.generation_, 0);
  other.valid_after_ = 0;
  other.entries_.clear();
  other.hsdir_indices_.clear();
  other.ring_index_ = RingIndex{};
  return *this;
}

const ConsensusEntry* Consensus::find(
    const crypto::Fingerprint& fingerprint) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), fingerprint,
      [](const ConsensusEntry& e, const crypto::Fingerprint& fp) {
        return e.fingerprint < fp;
      });
  if (it == entries_.end() || it->fingerprint != fingerprint) return nullptr;
  return &*it;
}

const ConsensusEntry* Consensus::find_relay(relay::RelayId id) const {
  for (const ConsensusEntry& e : entries_)
    if (e.relay == id) return &e;
  return nullptr;
}

std::vector<const ConsensusEntry*> Consensus::responsible_hsdirs_scan(
    const crypto::DescriptorId& descriptor_id) const {
  std::vector<const ConsensusEntry*> out;
  if (hsdir_indices_.empty()) return out;
  // First HSDir whose fingerprint is strictly greater than the id,
  // wrapping around the ring; then the next kHsDirsPerReplica - 1.
  const auto greater = [&](std::size_t idx) {
    return entries_[idx].fingerprint > descriptor_id;
  };
  std::size_t start = hsdir_indices_.size();
  // hsdir_indices_ is in ascending fingerprint order; binary search the
  // first index whose entry fingerprint exceeds descriptor_id.
  std::size_t lo = 0, hi = hsdir_indices_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (greater(hsdir_indices_[mid]))
      hi = mid;
    else
      lo = mid + 1;
  }
  start = lo;  // may equal size() -> wrap to 0
  const std::size_t n = hsdir_indices_.size();
  const std::size_t take =
      std::min<std::size_t>(crypto::kHsDirsPerReplica, n);
  for (std::size_t k = 0; k < take; ++k) {
    const std::size_t idx = hsdir_indices_[(start + k) % n];
    out.push_back(&entries_[idx]);
  }
  return out;
}

std::size_t Consensus::responsible_hsdirs_into(
    const crypto::DescriptorId& descriptor_id, const ConsensusEntry** out,
    std::size_t capacity) const {
  const std::size_t n = hsdir_indices_.size();
  if (n == 0 || capacity == 0) return 0;
  const std::size_t take = std::min(
      capacity, std::min<std::size_t>(crypto::kHsDirsPerReplica, n));
  if (!ring_index_enabled()) {
    // Cold path: same probe sequence as the scan oracle (full-entry
    // dereferences, no index arrays touched).
    std::size_t lo = 0, hi = n;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (entries_[hsdir_indices_[mid]].fingerprint > descriptor_id)
        hi = mid;
      else
        lo = mid + 1;
    }
    for (std::size_t k = 0; k < take; ++k)
      out[k] = &entries_[hsdir_indices_[(lo + k) % n]];
    return take;
  }
  const std::size_t start = ring_index_.first_after(descriptor_id);
  for (std::size_t k = 0; k < take; ++k) {
    std::size_t rank = start + k;  // wraps at most once: take <= n
    if (rank >= n) rank -= n;
    out[k] = &entries_[ring_index_.entry_index(rank)];
  }
  return take;
}

std::vector<const ConsensusEntry*> Consensus::responsible_hsdirs(
    const crypto::DescriptorId& descriptor_id) const {
  const ConsensusEntry* buf[crypto::kHsDirsPerReplica];
  const std::size_t got =
      responsible_hsdirs_into(descriptor_id, buf, crypto::kHsDirsPerReplica);
  return std::vector<const ConsensusEntry*>(buf, buf + got);
}

std::vector<std::vector<const ConsensusEntry*>>
Consensus::responsible_hsdirs_batch(
    const std::vector<crypto::DescriptorId>& ids, int threads) const {
  const std::size_t m = ids.size();
  if (m == 0 || !ring_index_enabled() || ring_index_.empty()) {
    return util::parallel_map(m, threads, [&](std::size_t i) {
      return responsible_hsdirs(ids[i]);
    });
  }
  // Indexed batch: resolve the whole query set in sorted order with one
  // merge walk over the ring per fixed-size chunk, then commit results
  // in caller order. Chunk boundaries depend only on m, so the ranks
  // (and the output) are identical for every thread count.
  std::vector<std::uint32_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (ids[a] != ids[b]) return ids[a] < ids[b];
              return a < b;  // stable for duplicate query ids
            });
  std::vector<std::uint32_t> ranks(m);
  constexpr std::size_t kQueryChunk = 1024;
  const std::size_t chunks = (m + kQueryChunk - 1) / kQueryChunk;
  util::parallel_for(chunks, threads, [&](std::size_t c) {
    const std::size_t begin = c * kQueryChunk;
    const std::size_t len = std::min(kQueryChunk, m - begin);
    ring_index_.first_after_sorted(ids, order.data() + begin, len,
                                   ranks.data());
  });
  const std::size_t n = ring_index_.size();
  const std::size_t take =
      std::min<std::size_t>(crypto::kHsDirsPerReplica, n);
  return util::parallel_map(m, threads, [&](std::size_t i) {
    std::vector<const ConsensusEntry*> out;
    out.reserve(take);
    for (std::size_t k = 0; k < take; ++k)
      out.push_back(&entries_[ring_index_.entry_index((ranks[i] + k) % n)]);
    return out;
  });
}

std::vector<const ConsensusEntry*> Consensus::with_flag(Flag flag) const {
  std::vector<const ConsensusEntry*> out;
  for (const ConsensusEntry& e : entries_)
    if (has_flag(e.flags, flag)) out.push_back(&e);
  return out;
}

}  // namespace torsim::dirauth
