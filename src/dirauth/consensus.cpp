#include "dirauth/consensus.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "util/parallel.hpp"

namespace torsim::dirauth {

namespace {

// Monotone identity stamps for ring caches. The counter is process-wide
// and ordering-dependent, which is fine: generations are compared for
// equality only and never appear in any output.
std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Consensus::Consensus(util::UnixTime valid_after,
                     std::vector<ConsensusEntry> entries)
    : valid_after_(valid_after),
      entries_(std::move(entries)),
      generation_(next_generation()) {
  std::sort(entries_.begin(), entries_.end(),
            [](const ConsensusEntry& a, const ConsensusEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (has_flag(entries_[i].flags, Flag::kHSDir)) hsdir_indices_.push_back(i);
}

Consensus::Consensus(const Consensus& other)
    : valid_after_(other.valid_after_),
      entries_(other.entries_),
      hsdir_indices_(other.hsdir_indices_),
      generation_(other.entries_.empty() ? 0 : next_generation()) {}

Consensus& Consensus::operator=(const Consensus& other) {
  if (this == &other) return *this;
  valid_after_ = other.valid_after_;
  entries_ = other.entries_;
  hsdir_indices_ = other.hsdir_indices_;
  generation_ = entries_.empty() ? 0 : next_generation();
  return *this;
}

Consensus::Consensus(Consensus&& other) noexcept
    : valid_after_(other.valid_after_),
      entries_(std::move(other.entries_)),
      hsdir_indices_(std::move(other.hsdir_indices_)),
      generation_(std::exchange(other.generation_, 0)) {
  other.valid_after_ = 0;
  other.entries_.clear();
  other.hsdir_indices_.clear();
}

Consensus& Consensus::operator=(Consensus&& other) noexcept {
  if (this == &other) return *this;
  valid_after_ = other.valid_after_;
  entries_ = std::move(other.entries_);
  hsdir_indices_ = std::move(other.hsdir_indices_);
  generation_ = std::exchange(other.generation_, 0);
  other.valid_after_ = 0;
  other.entries_.clear();
  other.hsdir_indices_.clear();
  return *this;
}

const ConsensusEntry* Consensus::find(
    const crypto::Fingerprint& fingerprint) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), fingerprint,
      [](const ConsensusEntry& e, const crypto::Fingerprint& fp) {
        return e.fingerprint < fp;
      });
  if (it == entries_.end() || it->fingerprint != fingerprint) return nullptr;
  return &*it;
}

const ConsensusEntry* Consensus::find_relay(relay::RelayId id) const {
  for (const ConsensusEntry& e : entries_)
    if (e.relay == id) return &e;
  return nullptr;
}

std::vector<const ConsensusEntry*> Consensus::responsible_hsdirs(
    const crypto::DescriptorId& descriptor_id) const {
  std::vector<const ConsensusEntry*> out;
  if (hsdir_indices_.empty()) return out;
  // First HSDir whose fingerprint is strictly greater than the id,
  // wrapping around the ring; then the next kHsDirsPerReplica - 1.
  const auto greater = [&](std::size_t idx) {
    return entries_[idx].fingerprint > descriptor_id;
  };
  std::size_t start = hsdir_indices_.size();
  // hsdir_indices_ is in ascending fingerprint order; binary search the
  // first index whose entry fingerprint exceeds descriptor_id.
  std::size_t lo = 0, hi = hsdir_indices_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (greater(hsdir_indices_[mid]))
      hi = mid;
    else
      lo = mid + 1;
  }
  start = lo;  // may equal size() -> wrap to 0
  const std::size_t n = hsdir_indices_.size();
  const std::size_t take =
      std::min<std::size_t>(crypto::kHsDirsPerReplica, n);
  for (std::size_t k = 0; k < take; ++k) {
    const std::size_t idx = hsdir_indices_[(start + k) % n];
    out.push_back(&entries_[idx]);
  }
  return out;
}

std::vector<std::vector<const ConsensusEntry*>>
Consensus::responsible_hsdirs_batch(
    const std::vector<crypto::DescriptorId>& ids, int threads) const {
  return util::parallel_map(ids.size(), threads, [&](std::size_t i) {
    return responsible_hsdirs(ids[i]);
  });
}

std::vector<const ConsensusEntry*> Consensus::with_flag(Flag flag) const {
  std::vector<const ConsensusEntry*> out;
  for (const ConsensusEntry& e : entries_)
    if (has_flag(e.flags, flag)) out.push_back(&e);
  return out;
}

}  // namespace torsim::dirauth
