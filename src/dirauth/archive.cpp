#include "dirauth/archive.hpp"

#include <algorithm>
#include <stdexcept>

namespace torsim::dirauth {

void ConsensusArchive::add(Consensus consensus) {
  if (!consensuses_.empty() &&
      consensus.valid_after() <= consensuses_.back().valid_after())
    throw std::invalid_argument(
        "ConsensusArchive::add: valid_after must increase");
  consensuses_.push_back(std::move(consensus));
}

const Consensus* ConsensusArchive::consensus_at(util::UnixTime t) const {
  const auto it = std::upper_bound(
      consensuses_.begin(), consensuses_.end(), t,
      [](util::UnixTime time, const Consensus& c) {
        return time < c.valid_after();
      });
  if (it == consensuses_.begin()) return nullptr;
  return &*std::prev(it);
}

std::vector<const Consensus*> ConsensusArchive::range(
    util::UnixTime begin, util::UnixTime end) const {
  std::vector<const Consensus*> out;
  for (const Consensus& c : consensuses_)
    if (c.valid_after() >= begin && c.valid_after() < end)
      out.push_back(&c);
  return out;
}

util::UnixTime ConsensusArchive::first_time() const {
  if (consensuses_.empty())
    throw std::logic_error("ConsensusArchive::first_time: empty archive");
  return consensuses_.front().valid_after();
}

util::UnixTime ConsensusArchive::last_time() const {
  if (consensuses_.empty())
    throw std::logic_error("ConsensusArchive::last_time: empty archive");
  return consensuses_.back().valid_after();
}

}  // namespace torsim::dirauth
