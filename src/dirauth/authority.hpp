// The directory authority: monitors all running relays (including the
// shadow relays that never make it into the consensus — the crux of the
// harvesting flaw), assigns flags from observed uptime/bandwidth, applies
// the 2-relays-per-IP rule, and publishes hourly consensuses.
#pragma once

#include <vector>

#include "dirauth/consensus.hpp"
#include "relay/registry.hpp"

namespace torsim::dirauth {

/// Flag-assignment policy. Defaults model the 2013 network rules the
/// paper relies on (HSDir after 25 h; at most 2 relays per IP in the
/// consensus, by descending measured bandwidth).
struct AuthorityPolicy {
  util::Seconds hsdir_min_uptime = 25 * util::kSecondsPerHour;
  util::Seconds stable_min_uptime = 24 * util::kSecondsPerHour;
  /// Guard requires this much continuous uptime...
  util::Seconds guard_min_uptime = 8 * util::kSecondsPerDay;
  /// ...and bandwidth at or above this fraction of the online median...
  double guard_bandwidth_median_fraction = 1.0;
  /// ...and a weighted fractional uptime at or above this (flappy
  /// relays stay non-Guard even with a long current stretch).
  double guard_min_fractional_uptime = 0.90;
  double fast_min_bandwidth_kbps = 20.0;
  int max_relays_per_ip = 2;
};

class Authority {
 public:
  explicit Authority(AuthorityPolicy policy = {}) : policy_(policy) {}

  const AuthorityPolicy& policy() const { return policy_; }

  /// Builds the consensus valid from `now`:
  ///  1. Candidates = all online relays.
  ///  2. Per IP, keep the `max_relays_per_ip` highest-bandwidth candidates
  ///     ("active"); the rest become shadow relays, *still monitored*:
  ///     their uptime keeps accruing, so when they later become active
  ///     they immediately carry the flags their real run time earned —
  ///     the property the shadowing attack exploits.
  ///  3. Flags are computed from each relay's continuous uptime and
  ///     bandwidth.
  Consensus build_consensus(const relay::Registry& registry,
                            util::UnixTime now) const;

  /// Flags one relay would receive right now (used by tests and by the
  /// harvester to decide when its shadows are "ripe").
  FlagSet compute_flags(const relay::Relay& relay, double median_bandwidth,
                        util::UnixTime now) const;

 private:
  AuthorityPolicy policy_;
};

}  // namespace torsim::dirauth
