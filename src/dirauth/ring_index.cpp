#include "dirauth/ring_index.hpp"

#include <atomic>
#include <bit>
#include <utility>

namespace torsim::dirauth {

namespace {

std::atomic<bool>& ring_index_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}

// Big-endian first 8 bytes of a digest — the eytzinger node key
// (compiles to one load + byte swap).
std::uint64_t prefix_of(const crypto::Sha1Digest& digest) {
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < 8; ++i) value = (value << 8) | digest[i];
  return value;
}

}  // namespace

bool ring_index_enabled() {
  return ring_index_flag().load(std::memory_order_relaxed);
}

void set_ring_index_enabled(bool enabled) {
  ring_index_flag().store(enabled, std::memory_order_relaxed);
}

RingIndex::RingIndex(std::vector<crypto::Fingerprint> ring_fingerprints,
                     std::vector<std::uint32_t> entry_indices)
    : sorted_(std::move(ring_fingerprints)),
      entry_index_(std::move(entry_indices)) {
  const std::size_t n = sorted_.size();
  eytz_.resize(n + 1);       // node 0 unused: children of k are 2k, 2k+1
  eytz_rank_.resize(n + 1);
  // In-order fill: an in-order walk of the implicit tree visits nodes
  // in ascending key order, so handing out sorted_[rank] as the walk
  // advances places every key at its eytzinger node.
  std::size_t rank = 0;
  const auto fill = [&](auto&& self, std::size_t k) -> void {
    if (k > n) return;
    self(self, 2 * k);
    eytz_[k] = prefix_of(sorted_[rank]);
    eytz_rank_[k] = static_cast<std::uint32_t>(rank);
    ++rank;
    self(self, 2 * k + 1);
  };
  fill(fill, 1);
}

// detlint: hot
std::size_t RingIndex::first_after(const crypto::Sha1Digest& id) const {
  const std::size_t n = sorted_.size();
  if (n == 0) return 0;
  const std::uint64_t p = prefix_of(id);
  // Branch-free descent for the prefix upper bound: go right while the
  // node key is <= p. The answer is the last node where the descent
  // went left; cancelling the trailing right-turns (low 1-bits) of the
  // virtual-leaf position recovers it. k == 0 means every key was
  // <= p: no successor among the prefixes, wrap. The descendants four
  // levels down sit contiguously at 16k..16k+15, so one prefetch hides
  // most of the dependent-load latency.
  std::size_t k = 1;
  while (k <= n) {
    if (k * 16 <= n) __builtin_prefetch(&eytz_[k * 16]);
    k = 2 * k + (eytz_[k] <= p ? 1 : 0);
  }
  k >>= static_cast<unsigned>(std::countr_one(k) + 1);
  std::size_t r = (k == 0) ? n : eytz_rank_[k];
  // r is the first rank whose 8-byte prefix exceeds p. The true
  // successor can only sit inside the contiguous run of equal-prefix
  // keys just below r; resolve those ties against the full 20-byte
  // fingerprints (vanishingly rare for random fingerprints, but exact
  // for duplicates and adversarial keys).
  while (r > 0 && prefix_of(sorted_[r - 1]) == p && id < sorted_[r - 1]) --r;
  return r;
}

// detlint: hot
void RingIndex::first_after_sorted(
    const std::vector<crypto::DescriptorId>& ids, const std::uint32_t* order,
    std::size_t count, std::uint32_t* ranks) const {
  if (count == 0) return;
  const std::size_t n = sorted_.size();
  // Seed with one descent, then advance monotonically: the queries
  // arrive ascending, so the successor rank can only move forward.
  std::size_t j = first_after(ids[order[0]]);
  ranks[order[0]] = static_cast<std::uint32_t>(j);
  for (std::size_t q = 1; q < count; ++q) {
    const crypto::DescriptorId& id = ids[order[q]];
    while (j < n && !(id < sorted_[j])) ++j;
    ranks[order[q]] = static_cast<std::uint32_t>(j);
  }
}

}  // namespace torsim::dirauth
