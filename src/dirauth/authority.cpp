#include "dirauth/authority.hpp"

#include <algorithm>
#include <map>

#include "stats/descriptive.hpp"

namespace torsim::dirauth {

FlagSet Authority::compute_flags(const relay::Relay& relay,
                                 double median_bandwidth,
                                 util::UnixTime now) const {
  FlagSet flags = 0;
  if (!relay.online()) return flags;
  flags = with_flag(flags, Flag::kRunning);
  flags = with_flag(flags, Flag::kValid);
  const util::Seconds uptime = relay.continuous_uptime(now);
  const double bw = relay.config().bandwidth_kbps;
  if (bw >= policy_.fast_min_bandwidth_kbps)
    flags = with_flag(flags, Flag::kFast);
  if (uptime >= policy_.stable_min_uptime)
    flags = with_flag(flags, Flag::kStable);
  if (uptime >= policy_.hsdir_min_uptime)
    flags = with_flag(flags, Flag::kHSDir);
  if (uptime >= policy_.guard_min_uptime &&
      bw >= policy_.guard_bandwidth_median_fraction * median_bandwidth &&
      relay.fractional_uptime(now) >= policy_.guard_min_fractional_uptime)
    flags = with_flag(flags, Flag::kGuard);
  return flags;
}

Consensus Authority::build_consensus(const relay::Registry& registry,
                                     util::UnixTime now) const {
  // Gather online relays grouped by IP. Ordered map: the group loop
  // below emits consensus entries in iteration order, so hash order
  // would leak straight into the consensus document.
  std::map<util::Ipv4, std::vector<const relay::Relay*>> by_ip;
  std::vector<double> bandwidths;
  for (const relay::Relay& r : registry.all()) {
    if (!r.online() || !r.authority_reachable()) continue;
    by_ip[r.config().address].push_back(&r);
    bandwidths.push_back(r.config().bandwidth_kbps);
  }
  const double median_bw =
      bandwidths.empty() ? 0.0 : stats::median(bandwidths);

  std::vector<ConsensusEntry> entries;
  for (auto& [ip, relays] : by_ip) {
    // Active = top max_relays_per_ip by measured bandwidth (ties broken
    // by longer uptime, then lower id, for determinism).
    std::sort(relays.begin(), relays.end(),
              [now](const relay::Relay* a, const relay::Relay* b) {
                if (a->config().bandwidth_kbps != b->config().bandwidth_kbps)
                  return a->config().bandwidth_kbps > b->config().bandwidth_kbps;
                const auto ua = a->continuous_uptime(now);
                const auto ub = b->continuous_uptime(now);
                if (ua != ub) return ua > ub;
                return a->id() < b->id();
              });
    const std::size_t keep = std::min<std::size_t>(
        relays.size(), static_cast<std::size_t>(policy_.max_relays_per_ip));
    for (std::size_t i = 0; i < keep; ++i) {
      const relay::Relay& r = *relays[i];
      ConsensusEntry e;
      e.relay = r.id();
      e.fingerprint = r.fingerprint();
      e.nickname = r.config().nickname;
      e.address = r.config().address;
      e.or_port = r.config().or_port;
      e.bandwidth_kbps = r.config().bandwidth_kbps;
      e.flags = compute_flags(r, median_bw, now);
      entries.push_back(std::move(e));
    }
  }
  return Consensus(now, std::move(entries));
}

}  // namespace torsim::dirauth
