#include "dirauth/flags.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace torsim::dirauth {

std::string flags_to_string(FlagSet set) {
  std::string out;
  const auto append = [&](Flag f, const char* name) {
    if (!has_flag(set, f)) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  append(Flag::kExit, "Exit");
  append(Flag::kFast, "Fast");
  append(Flag::kGuard, "Guard");
  append(Flag::kHSDir, "HSDir");
  append(Flag::kRunning, "Running");
  append(Flag::kStable, "Stable");
  append(Flag::kValid, "Valid");
  return out;
}

FlagSet flags_from_string(std::string_view text) {
  FlagSet set = 0;
  for (const std::string& name : util::split(text, ' ')) {
    if (name.empty()) continue;
    if (name == "Exit") set = with_flag(set, Flag::kExit);
    else if (name == "Fast") set = with_flag(set, Flag::kFast);
    else if (name == "Guard") set = with_flag(set, Flag::kGuard);
    else if (name == "HSDir") set = with_flag(set, Flag::kHSDir);
    else if (name == "Running") set = with_flag(set, Flag::kRunning);
    else if (name == "Stable") set = with_flag(set, Flag::kStable);
    else if (name == "Valid") set = with_flag(set, Flag::kValid);
    else throw std::invalid_argument("flags_from_string: unknown flag '" +
                                     name + "'");
  }
  return set;
}

}  // namespace torsim::dirauth
