// The network consensus: the hourly signed snapshot of active relays
// that clients, hidden services, and attackers all compute from.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "crypto/keypair.hpp"
#include "dirauth/flags.hpp"
#include "net/ipv4.hpp"
#include "relay/relay.hpp"
#include "util/time.hpp"

namespace torsim::dirauth {

/// One router-status entry.
struct ConsensusEntry {
  /// Simulator ground-truth handle. The *protocol* never uses this (it
  /// only sees fingerprints); it exists so experiments can join measured
  /// results against ground truth.
  relay::RelayId relay = relay::kInvalidRelayId;
  crypto::Fingerprint fingerprint{};
  std::string nickname;
  net::Ipv4 address;
  std::uint16_t or_port = 0;
  double bandwidth_kbps = 0.0;
  FlagSet flags = 0;
};

/// An hourly consensus document.
class Consensus {
 public:
  Consensus() = default;
  Consensus(util::UnixTime valid_after, std::vector<ConsensusEntry> entries);

  // Generation semantics (see generation() below): a copy owns a fresh
  // entries buffer, so it gets a fresh stamp; a move steals the buffer,
  // so it keeps the stamp and the source decays to the empty 0.
  Consensus(const Consensus& other);
  Consensus& operator=(const Consensus& other);
  Consensus(Consensus&& other) noexcept;
  Consensus& operator=(Consensus&& other) noexcept;

  /// Identity stamp for ring-lookup caches: entry pointers cached under
  /// one generation stay valid exactly as long as this consensus (or a
  /// move-destination of it) is alive — two Consensus objects share a
  /// generation only when they share the same entries() storage. The
  /// stamp comes from a process-wide counter, so its *value* depends on
  /// construction order; it is only ever compared for equality and
  /// never emitted. 0 = the empty default consensus.
  std::uint64_t generation() const { return generation_; }

  util::UnixTime valid_after() const { return valid_after_; }

  /// All entries, sorted ascending by fingerprint (the HSDir ring order).
  const std::vector<ConsensusEntry>& entries() const { return entries_; }

  std::size_t size() const { return entries_.size(); }

  /// Indexes into entries() for relays carrying the HSDir flag, in ring
  /// (fingerprint) order.
  const std::vector<std::size_t>& hsdir_indices() const {
    return hsdir_indices_;
  }

  std::size_t hsdir_count() const { return hsdir_indices_.size(); }

  /// Entry lookup by fingerprint (nullptr if absent).
  const ConsensusEntry* find(const crypto::Fingerprint& fingerprint) const;

  /// Entry lookup by simulator relay id (nullptr if absent).
  const ConsensusEntry* find_relay(relay::RelayId id) const;

  /// The kHsDirsPerReplica HSDir entries whose fingerprints follow
  /// `descriptor_id` clockwise on the ring (wrapping), in order — the
  /// "responsible hidden service directories" for one replica.
  std::vector<const ConsensusEntry*> responsible_hsdirs(
      const crypto::DescriptorId& descriptor_id) const;

  /// Batched ring lookup: responsible_hsdirs for every id, in input
  /// order, fanned out across up to `threads` workers (<= 0 = one per
  /// hardware thread). Lookups are pure reads of this consensus, so the
  /// result is identical to the serial loop for every thread count.
  std::vector<std::vector<const ConsensusEntry*>> responsible_hsdirs_batch(
      const std::vector<crypto::DescriptorId>& ids, int threads = 0) const;

  /// Entries with a given flag.
  std::vector<const ConsensusEntry*> with_flag(Flag flag) const;

 private:
  util::UnixTime valid_after_ = 0;
  std::vector<ConsensusEntry> entries_;       // sorted by fingerprint
  std::vector<std::size_t> hsdir_indices_;    // ring order
  std::uint64_t generation_ = 0;              // 0 = empty default
};

}  // namespace torsim::dirauth
