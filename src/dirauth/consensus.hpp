// The network consensus: the hourly signed snapshot of active relays
// that clients, hidden services, and attackers all compute from.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "crypto/keypair.hpp"
#include "dirauth/flags.hpp"
#include "dirauth/ring_index.hpp"
#include "util/ipv4.hpp"
#include "relay/relay.hpp"
#include "util/time.hpp"

namespace torsim::dirauth {

/// One router-status entry.
struct ConsensusEntry {
  /// Simulator ground-truth handle. The *protocol* never uses this (it
  /// only sees fingerprints); it exists so experiments can join measured
  /// results against ground truth.
  relay::RelayId relay = relay::kInvalidRelayId;
  crypto::Fingerprint fingerprint{};
  std::string nickname;
  util::Ipv4 address;
  std::uint16_t or_port = 0;
  double bandwidth_kbps = 0.0;
  FlagSet flags = 0;
};

/// An hourly consensus document.
class Consensus {
 public:
  Consensus() = default;
  Consensus(util::UnixTime valid_after, std::vector<ConsensusEntry> entries);

  // Generation semantics (see generation() below): a copy owns a fresh
  // entries buffer, so it gets a fresh stamp; a move steals the buffer,
  // so it keeps the stamp and the source decays to the empty 0.
  Consensus(const Consensus& other);
  Consensus& operator=(const Consensus& other);
  Consensus(Consensus&& other) noexcept;
  Consensus& operator=(Consensus&& other) noexcept;

  /// Identity stamp for ring-lookup caches: entry pointers cached under
  /// one generation stay valid exactly as long as this consensus (or a
  /// move-destination of it) is alive — two Consensus objects share a
  /// generation only when they share the same entries() storage. The
  /// stamp comes from a process-wide counter, so its *value* depends on
  /// construction order; it is only ever compared for equality and
  /// never emitted. 0 = the empty default consensus.
  std::uint64_t generation() const { return generation_; }

  util::UnixTime valid_after() const { return valid_after_; }

  /// All entries, sorted ascending by fingerprint (the HSDir ring order).
  const std::vector<ConsensusEntry>& entries() const { return entries_; }

  std::size_t size() const { return entries_.size(); }

  /// Indexes into entries() for relays carrying the HSDir flag, in ring
  /// (fingerprint) order.
  const std::vector<std::size_t>& hsdir_indices() const {
    return hsdir_indices_;
  }

  std::size_t hsdir_count() const { return hsdir_indices_.size(); }

  /// Entry lookup by fingerprint (nullptr if absent).
  const ConsensusEntry* find(const crypto::Fingerprint& fingerprint) const;

  /// Entry lookup by simulator relay id (nullptr if absent).
  const ConsensusEntry* find_relay(relay::RelayId id) const;

  /// The kHsDirsPerReplica HSDir entries whose fingerprints follow
  /// `descriptor_id` clockwise on the ring (wrapping), in order — the
  /// "responsible hidden service directories" for one replica. Routes
  /// through the eytzinger RingIndex when ring_index_enabled(), through
  /// responsible_hsdirs_scan() otherwise; the two are byte-identical by
  /// contract (tests/ring_index_diff_test.cpp).
  std::vector<const ConsensusEntry*> responsible_hsdirs(
      const crypto::DescriptorId& descriptor_id) const;

  /// Allocation-free responsible_hsdirs: writes up to `capacity` entry
  /// pointers into `out` and returns the count written (the same
  /// entries, in the same order, as responsible_hsdirs truncated to
  /// `capacity`). Hot-path form used by ring caches.
  std::size_t responsible_hsdirs_into(const crypto::DescriptorId& descriptor_id,
                                      const ConsensusEntry** out,
                                      std::size_t capacity) const;

  /// Pre-index reference implementation: binary search over
  /// hsdir_indices() dereferencing full entries per probe. Kept as the
  /// oracle for the differential suite and the cold-path benches; not
  /// for production call sites.
  std::vector<const ConsensusEntry*> responsible_hsdirs_scan(
      const crypto::DescriptorId& descriptor_id) const;

  /// Batched ring lookup: responsible_hsdirs for every id, in input
  /// order, fanned out across up to `threads` workers (<= 0 = one per
  /// hardware thread). With the index enabled each worker sorts its
  /// slice of query ids and resolves them in one merge walk over the
  /// ring, then results are committed in caller order; lookups are pure
  /// reads of this consensus, so the result is identical to the serial
  /// per-id loop for every thread count and for both index settings.
  std::vector<std::vector<const ConsensusEntry*>> responsible_hsdirs_batch(
      const std::vector<crypto::DescriptorId>& ids, int threads = 0) const;

  /// The eytzinger ring index (built at construction; empty when there
  /// are no HSDirs).
  const RingIndex& ring_index() const { return ring_index_; }

  /// Entries with a given flag.
  std::vector<const ConsensusEntry*> with_flag(Flag flag) const;

 private:
  void build_ring_index();

  util::UnixTime valid_after_ = 0;
  std::vector<ConsensusEntry> entries_;       // sorted by fingerprint
  std::vector<std::size_t> hsdir_indices_;    // ring order
  RingIndex ring_index_;                      // eytzinger over the ring
  std::uint64_t generation_ = 0;              // 0 = empty default
};

}  // namespace torsim::dirauth
