// Consensus archive: the full history of consensus documents, which the
// Sec. VII tracking detector mines (the authors used three years of
// public consensus archives from metrics.torproject.org).
#pragma once

#include <optional>
#include <vector>

#include "dirauth/consensus.hpp"

namespace torsim::dirauth {

class ConsensusArchive {
 public:
  /// Appends a consensus; valid_after must be strictly increasing.
  void add(Consensus consensus);

  std::size_t size() const { return consensuses_.size(); }
  bool empty() const { return consensuses_.empty(); }

  const Consensus& at(std::size_t index) const { return consensuses_[index]; }

  /// The consensus in force at time `t` (latest with valid_after <= t),
  /// or nullptr if `t` predates the archive.
  const Consensus* consensus_at(util::UnixTime t) const;

  /// All consensuses with valid_after in [begin, end).
  std::vector<const Consensus*> range(util::UnixTime begin,
                                      util::UnixTime end) const;

  util::UnixTime first_time() const;
  util::UnixTime last_time() const;

 private:
  std::vector<Consensus> consensuses_;
};

}  // namespace torsim::dirauth
