// Consensus churn statistics: how fast relays join and leave, and how
// the HSDir population evolves — the background rates that both the
// harvesting attack's coverage and the Sec. VII binomial test depend on
// (the paper splits its analysis per year precisely because the HSDir
// count more than doubled, 757 → 1,862).
#pragma once

#include <cstdint>
#include <vector>

#include "dirauth/archive.hpp"

namespace torsim::dirauth {

struct ChurnReport {
  std::size_t consensuses = 0;
  /// Mean relays entering / leaving per consensus interval.
  double mean_joins = 0.0;
  double mean_leaves = 0.0;
  /// Mean fraction of the previous consensus that survived.
  double mean_survival = 0.0;
  /// HSDir counts for the first and last consensus, plus the series.
  std::size_t hsdirs_first = 0;
  std::size_t hsdirs_last = 0;
  std::vector<std::size_t> hsdir_series;
};

/// Computes join/leave/survival rates over consecutive consensuses,
/// matching relays by fingerprint (a fingerprint switch therefore counts
/// as one leave plus one join — which is how an archive analyst without
/// ground truth perceives it).
ChurnReport measure_churn(const ConsensusArchive& archive);

}  // namespace torsim::dirauth
