#include "dirauth/ring_cache.hpp"

namespace torsim::dirauth {

namespace {

util::CacheCounters& ring_counters() {
  static util::CacheCounters counters;
  return counters;
}

ResponsibleSet to_set(const std::vector<const ConsensusEntry*>& entries) {
  ResponsibleSet set;
  for (const ConsensusEntry* e : entries) {
    if (set.count >= set.dirs.size()) break;
    set.dirs[set.count++] = e;
  }
  return set;
}

std::vector<const ConsensusEntry*> to_vector(const ResponsibleSet& set) {
  return {set.dirs.begin(), set.dirs.begin() + set.count};
}

// Allocation-free ring walk straight into a ResponsibleSet (the
// single-id hot path; the result matches to_set(responsible_hsdirs)).
void fill_set(const Consensus& consensus, const crypto::DescriptorId& id,
              ResponsibleSet& set) {
  set.count = static_cast<std::uint8_t>(
      consensus.responsible_hsdirs_into(id, set.dirs.data(), set.dirs.size()));
}

}  // namespace

ResponsibleSetCache::ResponsibleSetCache(std::size_t capacity)
    : table_(capacity) {}

void ResponsibleSetCache::sync_generation(const Consensus& consensus) {
  if (generation_ == consensus.generation()) return;
  table_.clear();
  generation_ = consensus.generation();
}

const ResponsibleSet& ResponsibleSetCache::responsible(
    const Consensus& consensus, const crypto::DescriptorId& id) {
  if (!util::memo_enabled()) {
    fill_set(consensus, id, scratch_);
    return scratch_;
  }
  sync_generation(consensus);
  if (const ResponsibleSet* hit = table_.find(id)) {
    ring_counters().hit();
    return *hit;
  }
  ring_counters().miss();
  fill_set(consensus, id, scratch_);
  if (table_.store(id, scratch_)) ring_counters().evict();
  return scratch_;
}

std::vector<std::vector<const ConsensusEntry*>> ResponsibleSetCache::batch(
    const Consensus& consensus, const std::vector<crypto::DescriptorId>& ids,
    int threads) {
  if (!util::memo_enabled())
    return consensus.responsible_hsdirs_batch(ids, threads);
  sync_generation(consensus);

  std::vector<std::vector<const ConsensusEntry*>> out(ids.size());
  std::vector<std::size_t> miss_indices;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (const ResponsibleSet* hit = table_.find(ids[i])) {
      ring_counters().hit();
      out[i] = to_vector(*hit);
    } else {
      ring_counters().miss();
      miss_indices.push_back(i);
    }
  }
  if (!miss_indices.empty()) {
    // Misses fan out through the existing parallel ring walk (pure
    // reads of the consensus); the commit back into the cache stays on
    // this thread, in input order.
    std::vector<crypto::DescriptorId> miss_ids;
    miss_ids.reserve(miss_indices.size());
    for (const std::size_t i : miss_indices) miss_ids.push_back(ids[i]);
    auto computed = consensus.responsible_hsdirs_batch(miss_ids, threads);
    for (std::size_t j = 0; j < miss_indices.size(); ++j) {
      if (table_.store(miss_ids[j], to_set(computed[j])))
        ring_counters().evict();
      out[miss_indices[j]] = std::move(computed[j]);
    }
  }
  return out;
}

util::CacheStats ResponsibleSetCache::stats() {
  return ring_counters().snapshot();
}

void ResponsibleSetCache::reset_stats() { ring_counters().reset(); }

}  // namespace torsim::dirauth
