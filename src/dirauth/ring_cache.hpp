// Consensus-generation-keyed cache for responsible-HSDir ring walks.
//
// The publish/fetch hot paths resolve the same descriptor ids against
// the same hourly consensus over and over (every client retry, every
// replica, every harvester round). A ring walk is a pure function of
// (consensus, descriptor-id), so its result can be memoized for as long
// as the consensus stands: the cache stamps the Consensus::generation()
// it was filled under and drops everything the moment a different
// consensus shows up. Cached entry pointers therefore always point into
// the live consensus' entries() buffer (see the generation semantics in
// consensus.hpp — copies re-stamp, moves carry the buffer and stamp).
//
// Not thread-safe by design: publish and fetch run in serial sections
// (hsdir::DirectoryNetworkConfig), and the batch path keeps all cache
// mutation on the calling thread while misses fan out read-only.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dirauth/consensus.hpp"
#include "util/memo.hpp"

namespace torsim::dirauth {

/// One memoized ring walk: up to kHsDirsPerReplica responsible
/// directory entries, in ring order.
struct ResponsibleSet {
  std::array<const ConsensusEntry*, crypto::kHsDirsPerReplica> dirs{};
  std::uint8_t count = 0;
};

class ResponsibleSetCache {
 public:
  explicit ResponsibleSetCache(std::size_t capacity = 8192);

  /// The responsible set for `id` under `consensus`, from the cache
  /// when util::memo_enabled() (computing and filling on miss). The
  /// returned reference is invalidated by the next call.
  const ResponsibleSet& responsible(const Consensus& consensus,
                                    const crypto::DescriptorId& id);

  /// Drop-in replacement for Consensus::responsible_hsdirs_batch with
  /// cache prefill: cached ids are answered serially, the misses fan
  /// out through the parallel batch lookup, and results commit back
  /// into the cache in input order — output is identical to the
  /// uncached batch for every thread count and cache setting.
  std::vector<std::vector<const ConsensusEntry*>> batch(
      const Consensus& consensus,
      const std::vector<crypto::DescriptorId>& ids, int threads);

  /// Process-wide hit/miss/evict totals across every instance (bench
  /// "cache" telemetry; never part of the metrics goldens).
  static util::CacheStats stats();
  static void reset_stats();

 private:
  struct IdHash {
    std::uint64_t operator()(const crypto::DescriptorId& id) const {
      return util::memo_mix_bytes(id.data(), id.size());
    }
  };

  /// Clears the table when `consensus` is not the one it was filled
  /// under.
  void sync_generation(const Consensus& consensus);

  util::MemoTable<crypto::DescriptorId, ResponsibleSet, IdHash> table_;
  std::uint64_t generation_ = 0;
  ResponsibleSet scratch_;
};

}  // namespace torsim::dirauth
