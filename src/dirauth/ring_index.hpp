// Cache-friendly eytzinger-layout index over the HSDir ring.
//
// Every publish, fetch, harvest round, and tracking-detector sweep
// resolves descriptor IDs to their 3 responsible HSDirs: "first ring
// fingerprint strictly greater than the id, wrapping, then the next
// two". The pre-index implementation binary-searched `hsdir_indices_`
// and dereferenced a full ConsensusEntry (nickname string, address,
// flags — several cache lines of cold payload) on every probe. This
// index packs just the 20-byte ring fingerprints into an
// eytzinger-layout array (node k's children at 2k/2k+1, the layout a
// breadth-first heap uses): the first few levels of every descent share
// a handful of hot cache lines, the descent itself is a branch-free
// `k = 2k + (key <= id)` loop, and a parallel rank table maps the
// landing node back to its ring position.
//
// The index is built once per consensus construction and is immutable
// afterwards. The old sorted scan is kept in Consensus as
// `responsible_hsdirs_scan` — the reference oracle the differential
// suite (tests/ring_index_diff_test.cpp) replays randomized
// populations against; `set_ring_index_enabled(false)` routes every
// production lookup back through the oracle so benches can measure the
// pre-index cold path and CI can byte-compare the two
// (docs/performance.md).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/digest.hpp"
#include "crypto/keypair.hpp"

namespace torsim::dirauth {

/// Process-wide routing knob (bench --ring-index=on|off): when off,
/// Consensus lookups take the kept sorted-scan oracle instead of the
/// index. Both paths are byte-identical by contract; the knob exists so
/// the differential gate and the cold-path benches can exercise each
/// side on demand. Default on.
bool ring_index_enabled();
void set_ring_index_enabled(bool enabled);

/// RAII toggle for tests and benches; restores the previous setting.
class RingIndexEnabledGuard {
 public:
  explicit RingIndexEnabledGuard(bool enabled)
      : previous_(ring_index_enabled()) {
    set_ring_index_enabled(enabled);
  }
  ~RingIndexEnabledGuard() { set_ring_index_enabled(previous_); }
  RingIndexEnabledGuard(const RingIndexEnabledGuard&) = delete;
  RingIndexEnabledGuard& operator=(const RingIndexEnabledGuard&) = delete;

 private:
  bool previous_;
};

class RingIndex {
 public:
  RingIndex() = default;

  /// Builds from the ring: `ring_fingerprints` must be ascending (the
  /// consensus fingerprint order, duplicates allowed);
  /// `entry_indices[rank]` is the caller-side handle (a
  /// Consensus::entries() index) of the HSDir at that ring rank.
  RingIndex(std::vector<crypto::Fingerprint> ring_fingerprints,
            std::vector<std::uint32_t> entry_indices);

  std::size_t size() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// Ring rank of the first HSDir whose fingerprint is strictly greater
  /// than `id`. Returns size() when every fingerprint is <= id — the
  /// wraparound case; callers index with `rank % size()`.
  std::size_t first_after(const crypto::Sha1Digest& id) const;

  /// Successor ranks for a pre-sorted sequence of ids in one merge walk
  /// over the ring: `order` lists indices into `ids` in ascending id
  /// order, and ranks[order[j]] receives first_after(ids[order[j]]).
  /// O(m + n) for the whole batch instead of m log n descents, and
  /// byte-identical to per-id first_after (wraparound included).
  void first_after_sorted(const std::vector<crypto::DescriptorId>& ids,
                          const std::uint32_t* order, std::size_t count,
                          std::uint32_t* ranks) const;

  /// Caller-side handle of the HSDir at `rank` (entries() index).
  std::uint32_t entry_index(std::size_t rank) const {
    return entry_index_[rank];
  }

  /// Ring fingerprint at `rank` (ascending order).
  const crypto::Fingerprint& fingerprint(std::size_t rank) const {
    return sorted_[rank];
  }

 private:
  std::vector<crypto::Fingerprint> sorted_;    // ring (ascending) order
  std::vector<std::uint32_t> entry_index_;     // rank -> caller handle
  // The eytzinger nodes hold only the big-endian first 8 bytes of each
  // fingerprint: the whole descent array for a full-scale ring stays
  // L1-resident (1300 keys ~ 10 KB vs 26 KB) and every comparison is a
  // single integer op. Prefix ties are resolved against the full keys
  // in sorted_ after the descent (see first_after).
  std::vector<std::uint64_t> eytz_;            // 1-based eytzinger layout
  std::vector<std::uint32_t> eytz_rank_;       // eytzinger node -> rank
};

}  // namespace torsim::dirauth
