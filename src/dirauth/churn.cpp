#include "dirauth/churn.hpp"

#include <set>

namespace torsim::dirauth {

ChurnReport measure_churn(const ConsensusArchive& archive) {
  ChurnReport report;
  report.consensuses = archive.size();
  if (archive.empty()) return report;

  const auto fingerprints = [](const Consensus& c) {
    std::set<crypto::Fingerprint> out;
    for (const ConsensusEntry& e : c.entries()) out.insert(e.fingerprint);
    return out;
  };

  report.hsdirs_first = archive.at(0).hsdir_count();
  report.hsdirs_last = archive.at(archive.size() - 1).hsdir_count();
  report.hsdir_series.reserve(archive.size());
  for (std::size_t i = 0; i < archive.size(); ++i)
    report.hsdir_series.push_back(archive.at(i).hsdir_count());

  if (archive.size() < 2) return report;
  double joins = 0.0, leaves = 0.0, survival = 0.0;
  auto previous = fingerprints(archive.at(0));
  for (std::size_t i = 1; i < archive.size(); ++i) {
    const auto current = fingerprints(archive.at(i));
    std::size_t stayed = 0;
    for (const auto& fp : current)
      if (previous.count(fp)) ++stayed;
    joins += static_cast<double>(current.size() - stayed);
    leaves += static_cast<double>(previous.size() - stayed);
    if (!previous.empty())
      survival += static_cast<double>(stayed) /
                  static_cast<double>(previous.size());
    previous = std::move(current);
  }
  const double intervals = static_cast<double>(archive.size() - 1);
  report.mean_joins = joins / intervals;
  report.mean_leaves = leaves / intervals;
  report.mean_survival = survival / intervals;
  return report;
}

}  // namespace torsim::dirauth
