// Text rendering/parsing of v2 hidden-service descriptors, after the
// rend-spec v2 document format (simplified to the modelled fields):
//
//   rendezvous-service-descriptor <desc-id-base32>
//   version 2
//   permanent-key <pubkey-hex>
//   secret-id-part <period>:<replica>
//   publication-time 2013-02-04 10:00:00
//   introduction-points <fp-hex> <fp-hex> ...
//   signature sim
#pragma once

#include <string>
#include <string_view>

#include "hsdir/descriptor.hpp"

namespace torsim::dirspec {

std::string render_descriptor(const hsdir::Descriptor& descriptor);

/// Parses a descriptor document; validates that the embedded descriptor
/// id matches the one recomputed from the permanent key, time period and
/// replica (a forged document fails here, like a bad signature would).
hsdir::Descriptor parse_descriptor(std::string_view text);

}  // namespace torsim::dirspec
