// Text rendering and parsing of consensus documents, following the
// structure of Tor's dir-spec v3 network-status format (simplified to
// the fields our simulator models). This is what lets experiments dump
// simulated consensus archives to disk and re-load them — mirroring how
// the paper's authors worked from the public metrics.torproject.org
// archives rather than a live process.
//
// Format (one document):
//   network-status-version 3
//   valid-after 2013-02-04 10:00:00
//   r <nickname> <fingerprint-hex> <ip> <orport>
//   s <flags...>
//   w Bandwidth=<kbps>
//   ... (r/s/w triplet per relay) ...
//   directory-footer
#pragma once

#include <string>
#include <string_view>

#include "dirauth/archive.hpp"
#include "dirauth/consensus.hpp"

namespace torsim::dirspec {

/// Renders one consensus to the text format above. Relay ids are not
/// serialized (they are simulator-internal); parsing assigns fresh ones.
std::string render_consensus(const dirauth::Consensus& consensus);

/// Parses a consensus document. Throws std::invalid_argument with a
/// line-numbered message on malformed input.
dirauth::Consensus parse_consensus(std::string_view text);

/// Renders an entire archive (documents separated by the footer line).
std::string render_archive(const dirauth::ConsensusArchive& archive);

/// Parses a multi-document archive dump.
dirauth::ConsensusArchive parse_archive(std::string_view text);

}  // namespace torsim::dirspec
