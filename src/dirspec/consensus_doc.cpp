#include "dirspec/consensus_doc.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/encoding.hpp"
#include "util/strings.hpp"

namespace torsim::dirspec {
namespace {

constexpr std::string_view kVersionLine = "network-status-version 3";
constexpr std::string_view kFooterLine = "directory-footer";

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::invalid_argument("consensus parse error at line " +
                              std::to_string(line_no + 1) + ": " + message);
}

crypto::Fingerprint fingerprint_from_hex(std::string_view hex,
                                         std::size_t line_no) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = util::hex_decode(hex);
  } catch (const std::invalid_argument&) {
    fail(line_no, "bad fingerprint hex");
  }
  if (bytes.size() != 20) fail(line_no, "fingerprint must be 20 bytes");
  crypto::Fingerprint fp;
  std::copy(bytes.begin(), bytes.end(), fp.begin());
  return fp;
}

}  // namespace

std::string render_consensus(const dirauth::Consensus& consensus) {
  std::string out;
  out += kVersionLine;
  out += '\n';
  out += "valid-after " + util::format_utc(consensus.valid_after()) + '\n';
  for (const dirauth::ConsensusEntry& e : consensus.entries()) {
    out += "r " + e.nickname + ' ' +
           util::hex_encode(std::span<const std::uint8_t>(e.fingerprint)) +
           ' ' + e.address.to_string() + ' ' + std::to_string(e.or_port) +
           '\n';
    out += "s " + dirauth::flags_to_string(e.flags) + '\n';
    char w[48];
    std::snprintf(w, sizeof w, "w Bandwidth=%.0f\n", e.bandwidth_kbps);
    out += w;
  }
  out += kFooterLine;
  out += '\n';
  return out;
}

dirauth::Consensus parse_consensus(std::string_view text) {
  const auto lines = util::split(text, '\n');
  std::size_t i = 0;
  const auto current = [&]() -> std::string_view {
    return i < lines.size() ? std::string_view(lines[i]) : std::string_view();
  };

  if (current() != kVersionLine) fail(i, "expected version line");
  ++i;
  if (!util::starts_with(current(), "valid-after "))
    fail(i, "expected valid-after");
  const util::UnixTime valid_after =
      util::parse_utc(current().substr(12));
  ++i;

  std::vector<dirauth::ConsensusEntry> entries;
  while (i < lines.size() && current() != kFooterLine) {
    if (current().empty()) {
      ++i;
      continue;
    }
    if (!util::starts_with(current(), "r "))
      fail(i, "expected router line");
    const auto r_fields = util::split(current().substr(2), ' ');
    if (r_fields.size() != 4) fail(i, "router line needs 4 fields");
    dirauth::ConsensusEntry entry;
    entry.nickname = r_fields[0];
    entry.fingerprint = fingerprint_from_hex(r_fields[1], i);
    try {
      entry.address = util::Ipv4::parse(r_fields[2]);
    } catch (const std::invalid_argument&) {
      fail(i, "bad address");
    }
    const int port = std::atoi(r_fields[3].c_str());
    if (port <= 0 || port > 65535) fail(i, "bad orport");
    entry.or_port = static_cast<std::uint16_t>(port);
    ++i;

    if (!util::starts_with(current(), "s")) fail(i, "expected flags line");
    try {
      entry.flags = dirauth::flags_from_string(
          current().size() > 1 ? current().substr(2) : std::string_view());
    } catch (const std::invalid_argument& error) {
      fail(i, error.what());
    }
    ++i;

    if (!util::starts_with(current(), "w Bandwidth="))
      fail(i, "expected bandwidth line");
    entry.bandwidth_kbps = std::atof(std::string(current().substr(12)).c_str());
    if (entry.bandwidth_kbps < 0) fail(i, "negative bandwidth");
    ++i;

    // Relay ids are simulator-internal and not serialized; parsed
    // documents carry dense ids in file order (good enough for joining
    // across documents by fingerprint/nickname).
    entry.relay = static_cast<relay::RelayId>(entries.size());
    entries.push_back(std::move(entry));
  }
  if (current() != kFooterLine) fail(i, "missing directory-footer");
  return dirauth::Consensus(valid_after, std::move(entries));
}

std::string render_archive(const dirauth::ConsensusArchive& archive) {
  std::string out;
  for (std::size_t i = 0; i < archive.size(); ++i)
    out += render_consensus(archive.at(i));
  return out;
}

dirauth::ConsensusArchive parse_archive(std::string_view text) {
  dirauth::ConsensusArchive archive;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t footer = text.find(kFooterLine, start);
    if (footer == std::string_view::npos) {
      if (util::trim(text.substr(start)).empty()) break;
      throw std::invalid_argument("archive parse error: trailing garbage");
    }
    const std::size_t end = footer + kFooterLine.size();
    archive.add(parse_consensus(text.substr(start, end - start)));
    start = end;
    while (start < text.size() && text[start] == '\n') ++start;
  }
  return archive;
}

}  // namespace torsim::dirspec
