#include "dirspec/descriptor_doc.hpp"

#include <stdexcept>

#include "util/encoding.hpp"
#include "util/strings.hpp"

namespace torsim::dirspec {
namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("descriptor parse error: " + message);
}

std::string expect_line(const std::vector<std::string>& lines,
                        std::size_t index, std::string_view prefix) {
  if (index >= lines.size()) fail("truncated document");
  if (!util::starts_with(lines[index], prefix))
    fail("expected '" + std::string(prefix) + "'");
  return lines[index].substr(prefix.size());
}

}  // namespace

std::string render_descriptor(const hsdir::Descriptor& descriptor) {
  std::string out;
  out += "rendezvous-service-descriptor " +
         util::base32_encode(
             std::span<const std::uint8_t>(descriptor.descriptor_id)) +
         '\n';
  out += "version 2\n";
  out += "permanent-key " +
         util::hex_encode(
             std::span<const std::uint8_t>(descriptor.service_public_key)) +
         '\n';
  out += "secret-id-part " + std::to_string(descriptor.time_period) + ':' +
         std::to_string(descriptor.replica) + '\n';
  out += "publication-time " + util::format_utc(descriptor.published) + '\n';
  out += "introduction-points";
  for (const auto& fp : descriptor.introduction_points)
    out += ' ' + util::hex_encode(std::span<const std::uint8_t>(fp));
  out += "\nsignature sim\n";
  return out;
}

hsdir::Descriptor parse_descriptor(std::string_view text) {
  const auto lines = util::split(text, '\n');
  hsdir::Descriptor d;

  const std::string id_b32 =
      expect_line(lines, 0, "rendezvous-service-descriptor ");
  const auto id_bytes = util::base32_decode(id_b32);
  if (id_bytes.size() != 20) fail("descriptor id must be 20 bytes");
  std::copy(id_bytes.begin(), id_bytes.end(), d.descriptor_id.begin());

  if (expect_line(lines, 1, "version ") != "2") fail("unsupported version");

  const std::string key_hex = expect_line(lines, 2, "permanent-key ");
  d.service_public_key = util::hex_decode(key_hex);
  if (d.service_public_key.empty()) fail("empty permanent key");

  const std::string secret = expect_line(lines, 3, "secret-id-part ");
  const auto parts = util::split(secret, ':');
  if (parts.size() != 2) fail("bad secret-id-part");
  d.time_period = static_cast<std::uint32_t>(std::stoul(parts[0]));
  const int replica = std::stoi(parts[1]);
  if (replica < 0 || replica >= crypto::kNumReplicas) fail("bad replica");
  d.replica = static_cast<std::uint8_t>(replica);

  d.published = util::parse_utc(expect_line(lines, 4, "publication-time "));

  const std::string intro = expect_line(lines, 5, "introduction-points");
  for (const std::string& fp_hex : util::split(intro, ' ')) {
    if (fp_hex.empty()) continue;
    const auto bytes = util::hex_decode(fp_hex);
    if (bytes.size() != 20) fail("bad introduction-point fingerprint");
    crypto::Fingerprint fp;
    std::copy(bytes.begin(), bytes.end(), fp.begin());
    d.introduction_points.push_back(fp);
  }

  expect_line(lines, 6, "signature sim");

  // Integrity check standing in for the RSA signature: the descriptor id
  // must be derivable from the embedded key + period + replica.
  const auto key = crypto::KeyPair::from_public_bytes(d.service_public_key);
  d.permanent_id = crypto::permanent_id_from_fingerprint(key.fingerprint());
  const auto expected =
      crypto::descriptor_id(d.permanent_id, d.time_period, d.replica);
  if (expected != d.descriptor_id)
    fail("descriptor id does not match permanent key (forged document?)");
  return d;
}

}  // namespace torsim::dirspec
