// Surrogate identity keypairs.
//
// The live Tor network uses RSA-1024 identity keys; everything the
// attacks in this paper touch (fingerprints, onion addresses, descriptor
// IDs, HSDir ring positions) depends only on the SHA-1 digest of the
// *serialized public key*, never on the key's algebraic structure.
// We therefore model a keypair as 140 bytes of deterministic random
// material standing in for the DER encoding of an RSA public key, and
// hash that with real SHA-1. Brute-forcing a ring position ("key
// grinding", which real attackers did against Silk Road) works exactly
// as it does against the real network: regenerate keys until the
// fingerprint lands where you want.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha1.hpp"
#include "util/rng.hpp"

namespace torsim::crypto {

/// A 20-byte relay/service identity fingerprint: SHA1(public key bytes).
using Fingerprint = Sha1Digest;

/// Surrogate RSA-1024 keypair. Only the public part is modelled; the
/// private part in real Tor signs descriptors, which our simulator
/// treats as always-valid (signature failures are out of scope for the
/// paper's measurements).
class KeyPair {
 public:
  /// Generates a fresh keypair from the given RNG stream.
  static KeyPair generate(util::Rng& rng);

  /// Rebuilds a keypair from stored public-key bytes (for archives).
  static KeyPair from_public_bytes(std::vector<std::uint8_t> bytes);

  /// Serialized public key (surrogate for the DER encoding).
  const std::vector<std::uint8_t>& public_bytes() const { return public_bytes_; }

  /// SHA1 of the public key bytes — the relay fingerprint / hidden-service
  /// permanent identifier.
  const Fingerprint& fingerprint() const { return fingerprint_; }

  /// Fingerprint as lowercase hex (directory-document rendering).
  std::string fingerprint_hex() const;

 private:
  explicit KeyPair(std::vector<std::uint8_t> bytes);

  std::vector<std::uint8_t> public_bytes_;
  Fingerprint fingerprint_;
};

/// Number of bytes in the surrogate public key serialization.
inline constexpr std::size_t kPublicKeyBytes = 140;

}  // namespace torsim::crypto
