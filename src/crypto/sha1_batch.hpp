// Multi-lane batched SHA-1 for the descriptor-ID derivation hot path.
//
// The rend-spec v2 kernels hash huge numbers of *tiny independent
// messages* (secret-id-parts are 5 bytes + cookie, descriptor-id inputs
// are 30 bytes): every digest costs exactly one compression, and scalar
// SHA-1 compression is latency-bound — each of the 80 rounds depends on
// the previous one, so a single message can never fill the ALUs. Across
// *independent* messages there is no dependency at all. This module
// exploits that: up to kSha1Lanes messages are hashed in lock-step with
// the working state held in lane-transposed arrays (`a[lane]`,
// `w[t][lane]`), so the compiler auto-vectorizes the round function
// across lanes and one compression pass retires several digests.
//
// The scalar `crypto::Sha1` is deliberately NOT reused here: it is the
// reference oracle for the differential suite (tests/sha1_batch_test
// .cpp), so this file carries its own independent compression kernel and
// every lane result is cross-checked byte-for-byte against the scalar
// implementation at randomized message schedules and every block-
// boundary length. See docs/performance.md for the testing contract.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha1.hpp"

namespace torsim::crypto {

/// Number of messages hashed per lock-step compression pass. Eight
/// 32-bit lanes fill one AVX2 register (two SSE2 registers) — wider
/// adds register pressure without retiring more per cycle on the
/// hardware this targets.
inline constexpr std::size_t kSha1Lanes = 8;

/// A forkable SHA-1 prefix state: the digest of `prefix || suffix_i`
/// for many suffixes shares all work over `prefix`. absorb() streams
/// exactly like Sha1::update; sha1_finish_lanes() then completes one
/// digest per suffix without mutating the midstate — forking is pure,
/// so one midstate can be finished any number of times (the fork-purity
/// contract, asserted by Sha1BatchTest.MidstateForkPurity).
class Sha1Midstate {
 public:
  Sha1Midstate();

  /// Absorbs more shared-prefix bytes.
  void absorb(std::span<const std::uint8_t> data);

  /// Total prefix bytes absorbed so far.
  std::uint64_t absorbed_bytes() const { return total_bits_ / 8; }

 private:
  friend void sha1_finish_lanes(
      const Sha1Midstate& midstate,
      std::span<const std::span<const std::uint8_t>> suffixes,
      std::span<Sha1Digest> out);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// out[i] = SHA1(prefix || suffixes[i]) where `prefix` is the bytes
/// absorbed into `midstate`. Suffixes may have any (mixed) lengths;
/// they are processed in groups of kSha1Lanes, each group's blocks
/// compressed in lock-step. `out` must be at least suffixes.size()
/// long. The midstate itself is never modified.
void sha1_finish_lanes(const Sha1Midstate& midstate,
                       std::span<const std::span<const std::uint8_t>> suffixes,
                       std::span<Sha1Digest> out);

/// Lane-parallel one-shot hashing: out[i] = SHA1(messages[i]).
/// Equivalent to sha1_finish_lanes over an empty midstate.
void sha1_batch(std::span<const std::span<const std::uint8_t>> messages,
                std::span<Sha1Digest> out);

/// Convenience wrapper returning the digests by value.
std::vector<Sha1Digest> sha1_batch(
    std::span<const std::span<const std::uint8_t>> messages);

}  // namespace torsim::crypto
