#include "crypto/sha1.hpp"

#include <cstring>
#include <stdexcept>

#include "util/encoding.hpp"

namespace torsim::crypto {
namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  buffered_ = 0;
  total_bits_ = 0;
  finalized_ = false;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = static_cast<std::uint32_t>(block[t * 4]) << 24 |
           static_cast<std::uint32_t>(block[t * 4 + 1]) << 16 |
           static_cast<std::uint32_t>(block[t * 4 + 2]) << 8 |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t)
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const std::uint8_t> data) {
  if (finalized_) throw std::logic_error("Sha1::update after finalize");
  // An empty span may carry data() == nullptr; passing that to memcpy is
  // undefined even with length 0.
  if (data.empty()) return;
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha1::update(std::string_view text) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Sha1Digest Sha1::finalize() {
  if (finalized_) throw std::logic_error("Sha1::finalize called twice");
  finalized_ = true;
  const std::uint64_t bits = total_bits_;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad = 0x80;
  buffer_[buffered_++] = pad;
  if (buffered_ > 56) {
    while (buffered_ < 64) buffer_[buffered_++] = 0;
    process_block(buffer_.data());
    buffered_ = 0;
  }
  while (buffered_ < 56) buffer_[buffered_++] = 0;
  for (int i = 7; i >= 0; --i)
    buffer_[buffered_++] = static_cast<std::uint8_t>(bits >> (8 * i));
  process_block(buffer_.data());

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[i * 4] = static_cast<std::uint8_t>(h_[i] >> 24);
    digest[i * 4 + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    digest[i * 4 + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    digest[i * 4 + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return digest;
}

Sha1Digest sha1(std::span<const std::uint8_t> data) {
  Sha1 hasher;
  hasher.update(data);
  return hasher.finalize();
}

Sha1Digest sha1(std::string_view text) {
  Sha1 hasher;
  hasher.update(text);
  return hasher.finalize();
}

std::string sha1_hex(const Sha1Digest& digest) {
  return util::hex_encode(std::span<const std::uint8_t>(digest));
}

}  // namespace torsim::crypto
