#include "crypto/sha1_batch.hpp"

#include <algorithm>
#include <cstring>

namespace torsim::crypto {

namespace {

constexpr std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

constexpr std::array<std::uint32_t, 5> kSha1Iv = {
    0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};

// One lock-step compression: block `blocks[l]` advances state column
// `l` of the transposed `h[word][lane]` array, for l in [0, lanes).
// The per-round dependency chain runs down each column independently,
// so the inner lane loops vectorize; the four round regimes are split
// into separate loops to keep the f/k selection out of the lane loop.
// detlint: hot
void compress_lanes(std::uint32_t h[5][kSha1Lanes],
                    const std::uint8_t* const blocks[kSha1Lanes],
                    std::size_t lanes) {
  std::uint32_t w[80][kSha1Lanes];
  for (int t = 0; t < 16; ++t) {
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::uint8_t* b = blocks[l] + t * 4;
      w[t][l] = static_cast<std::uint32_t>(b[0]) << 24 |
                static_cast<std::uint32_t>(b[1]) << 16 |
                static_cast<std::uint32_t>(b[2]) << 8 |
                static_cast<std::uint32_t>(b[3]);
    }
  }
  for (int t = 16; t < 80; ++t) {
    for (std::size_t l = 0; l < lanes; ++l)
      w[t][l] = rotl32(
          w[t - 3][l] ^ w[t - 8][l] ^ w[t - 14][l] ^ w[t - 16][l], 1);
  }

  std::uint32_t a[kSha1Lanes], b[kSha1Lanes], c[kSha1Lanes], d[kSha1Lanes],
      e[kSha1Lanes];
  for (std::size_t l = 0; l < lanes; ++l) {
    a[l] = h[0][l];
    b[l] = h[1][l];
    c[l] = h[2][l];
    d[l] = h[3][l];
    e[l] = h[4][l];
  }

  const auto round = [&](int t, std::size_t l, std::uint32_t f,
                         std::uint32_t k) {
    const std::uint32_t temp = rotl32(a[l], 5) + f + e[l] + k + w[t][l];
    e[l] = d[l];
    d[l] = c[l];
    c[l] = rotl32(b[l], 30);
    b[l] = a[l];
    a[l] = temp;
  };
  for (int t = 0; t < 20; ++t)
    for (std::size_t l = 0; l < lanes; ++l)
      round(t, l, (b[l] & c[l]) | (~b[l] & d[l]), 0x5A827999u);
  for (int t = 20; t < 40; ++t)
    for (std::size_t l = 0; l < lanes; ++l)
      round(t, l, b[l] ^ c[l] ^ d[l], 0x6ED9EBA1u);
  for (int t = 40; t < 60; ++t)
    for (std::size_t l = 0; l < lanes; ++l)
      round(t, l, (b[l] & c[l]) | (b[l] & d[l]) | (c[l] & d[l]), 0x8F1BBCDCu);
  for (int t = 60; t < 80; ++t)
    for (std::size_t l = 0; l < lanes; ++l)
      round(t, l, b[l] ^ c[l] ^ d[l], 0xCA62C1D6u);

  for (std::size_t l = 0; l < lanes; ++l) {
    h[0][l] += a[l];
    h[1][l] += b[l];
    h[2][l] += c[l];
    h[3][l] += d[l];
    h[4][l] += e[l];
  }
}

// Materializes block `block_index` of one lane's post-midstate stream:
// buffered prefix bytes, then the suffix, then 0x80 / zero padding,
// with the 64-bit big-endian bit length closing the final block.
// detlint: hot
void fill_block(std::uint8_t* out, std::size_t block_index,
                std::size_t block_count,
                std::span<const std::uint8_t> buffered,
                std::span<const std::uint8_t> suffix,
                std::uint64_t total_bits) {
  std::memset(out, 0, 64);
  const std::size_t base = block_index * 64;
  const std::size_t end = base + 64;
  if (base < buffered.size()) {
    const std::size_t take = std::min(buffered.size(), end) - base;
    std::memcpy(out, buffered.data() + base, take);
  }
  const std::size_t suffix_begin = buffered.size();
  const std::size_t suffix_end = suffix_begin + suffix.size();
  if (base < suffix_end && end > suffix_begin && !suffix.empty()) {
    const std::size_t from = std::max(base, suffix_begin);
    const std::size_t to = std::min(end, suffix_end);
    std::memcpy(out + (from - base), suffix.data() + (from - suffix_begin),
                to - from);
  }
  if (suffix_end >= base && suffix_end < end) out[suffix_end - base] = 0x80;
  if (block_index + 1 == block_count) {
    for (int i = 0; i < 8; ++i)
      out[56 + i] = static_cast<std::uint8_t>(total_bits >> (8 * (7 - i)));
  }
}

}  // namespace

Sha1Midstate::Sha1Midstate() : h_(kSha1Iv), buffer_{} {}

void Sha1Midstate::absorb(std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  total_bits_ += static_cast<std::uint64_t>(data.size()) * 8;
  std::size_t offset = 0;
  // Single-lane reuse of the lock-step kernel keeps exactly one
  // compression implementation in this translation unit.
  std::uint32_t h1[5][kSha1Lanes];
  const auto compress_one = [&](const std::uint8_t* block) {
    for (int i = 0; i < 5; ++i) h1[i][0] = h_[static_cast<std::size_t>(i)];
    const std::uint8_t* blocks[kSha1Lanes] = {block};
    compress_lanes(h1, blocks, 1);
    for (int i = 0; i < 5; ++i) h_[static_cast<std::size_t>(i)] = h1[i][0];
  };
  if (buffered_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == buffer_.size()) {
      compress_one(buffer_.data());
      buffered_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    compress_one(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void sha1_finish_lanes(const Sha1Midstate& midstate,
                       std::span<const std::span<const std::uint8_t>> suffixes,
                       std::span<Sha1Digest> out) {
  const std::span<const std::uint8_t> buffered(midstate.buffer_.data(),
                                               midstate.buffered_);
  for (std::size_t group = 0; group < suffixes.size();
       group += kSha1Lanes) {
    const std::size_t lanes = std::min(kSha1Lanes, suffixes.size() - group);

    std::uint32_t h[5][kSha1Lanes];
    std::size_t block_count[kSha1Lanes];
    std::uint64_t lane_bits[kSha1Lanes];
    std::size_t max_blocks = 0;
    for (std::size_t l = 0; l < lanes; ++l) {
      for (int i = 0; i < 5; ++i)
        h[i][l] = midstate.h_[static_cast<std::size_t>(i)];
      const std::size_t tail =
          midstate.buffered_ + suffixes[group + l].size();
      block_count[l] = (tail + 9 + 63) / 64;
      lane_bits[l] =
          midstate.total_bits_ +
          static_cast<std::uint64_t>(suffixes[group + l].size()) * 8;
      max_blocks = std::max(max_blocks, block_count[l]);
    }

    // Lock-step over block indices: lanes whose streams are exhausted
    // drop out; the survivors are compacted so the kernel always works
    // on dense lanes (their state words are gathered and scattered
    // around the compression).
    std::uint8_t scratch[kSha1Lanes][64];
    for (std::size_t blk = 0; blk < max_blocks; ++blk) {
      const std::uint8_t* blocks[kSha1Lanes];
      std::uint32_t hg[5][kSha1Lanes];
      std::size_t live[kSha1Lanes];
      std::size_t active = 0;
      for (std::size_t l = 0; l < lanes; ++l) {
        if (blk >= block_count[l]) continue;
        fill_block(scratch[active], blk, block_count[l], buffered,
                   suffixes[group + l], lane_bits[l]);
        blocks[active] = scratch[active];
        for (int i = 0; i < 5; ++i) hg[i][active] = h[i][l];
        live[active] = l;
        ++active;
      }
      compress_lanes(hg, blocks, active);
      for (std::size_t s = 0; s < active; ++s)
        for (int i = 0; i < 5; ++i) h[i][live[s]] = hg[i][s];
    }

    for (std::size_t l = 0; l < lanes; ++l) {
      Sha1Digest& digest = out[group + l];
      for (int i = 0; i < 5; ++i) {
        digest[static_cast<std::size_t>(i) * 4] =
            static_cast<std::uint8_t>(h[i][l] >> 24);
        digest[static_cast<std::size_t>(i) * 4 + 1] =
            static_cast<std::uint8_t>(h[i][l] >> 16);
        digest[static_cast<std::size_t>(i) * 4 + 2] =
            static_cast<std::uint8_t>(h[i][l] >> 8);
        digest[static_cast<std::size_t>(i) * 4 + 3] =
            static_cast<std::uint8_t>(h[i][l]);
      }
    }
  }
}

void sha1_batch(std::span<const std::span<const std::uint8_t>> messages,
                std::span<Sha1Digest> out) {
  const Sha1Midstate empty;
  sha1_finish_lanes(empty, messages, out);
}

std::vector<Sha1Digest> sha1_batch(
    std::span<const std::span<const std::uint8_t>> messages) {
  std::vector<Sha1Digest> out(messages.size());
  sha1_batch(messages, out);
  return out;
}

}  // namespace torsim::crypto
