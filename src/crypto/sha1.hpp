// SHA-1 (FIPS 180-4), implemented from the specification.
//
// SHA-1 is cryptographically broken for collision resistance, but it is
// the hash the 2013 Tor protocol used for relay fingerprints, onion
// addresses, and v2 descriptor IDs — the ring arithmetic this paper's
// attacks exploit depends on reproducing it exactly.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace torsim::crypto {

/// A 20-byte SHA-1 digest.
using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 computation.
class Sha1 {
 public:
  Sha1();

  /// Absorbs more input.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards (call reset() to start over).
  Sha1Digest finalize();

  /// Restores the initial state.
  void reset();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
  bool finalized_ = false;
};

/// One-shot helpers.
Sha1Digest sha1(std::span<const std::uint8_t> data);
Sha1Digest sha1(std::string_view text);

/// Lowercase-hex rendering of a digest.
std::string sha1_hex(const Sha1Digest& digest);

}  // namespace torsim::crypto
