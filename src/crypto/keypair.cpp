#include "crypto/keypair.hpp"

#include <stdexcept>

#include "util/encoding.hpp"

namespace torsim::crypto {

KeyPair::KeyPair(std::vector<std::uint8_t> bytes)
    : public_bytes_(std::move(bytes)),
      fingerprint_(sha1(std::span<const std::uint8_t>(public_bytes_))) {}

KeyPair KeyPair::generate(util::Rng& rng) {
  std::vector<std::uint8_t> bytes(kPublicKeyBytes);
  rng.fill_bytes(bytes.data(), bytes.size());
  return KeyPair(std::move(bytes));
}

KeyPair KeyPair::from_public_bytes(std::vector<std::uint8_t> bytes) {
  if (bytes.empty())
    throw std::invalid_argument("KeyPair::from_public_bytes: empty key");
  return KeyPair(std::move(bytes));
}

std::string KeyPair::fingerprint_hex() const {
  return util::hex_encode(std::span<const std::uint8_t>(fingerprint_));
}

}  // namespace torsim::crypto
