// Tor rend-spec v2 identifier arithmetic.
//
// Implements, exactly as the 2013 Tor source did:
//   onion address   = base32(permanent-id),  permanent-id = SHA1(pubkey)[0:10]
//   time-period     = (unix-time + perm-id[0] * 86400 / 256) / 86400
//   secret-id-part  = SHA1( INT4(time-period) || BYTE(replica) )
//   descriptor-id   = SHA1( permanent-id || secret-id-part )
// plus the 160-bit ring order used to pick responsible HSDirs and the
// distance/ratio metrics the tracking-detection analysis (Sec. VII)
// computes over fingerprints.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha1.hpp"
#include "util/memo.hpp"
#include "util/time.hpp"

namespace torsim::crypto {

/// The 10-byte permanent identifier of a hidden service.
using PermanentId = std::array<std::uint8_t, 10>;

/// A v2 descriptor identifier (a point on the 160-bit ring).
using DescriptorId = Sha1Digest;

/// Number of descriptor replicas a v2 hidden service publishes.
inline constexpr int kNumReplicas = 2;

/// Number of consecutive HSDirs responsible per replica.
inline constexpr int kHsDirsPerReplica = 3;

/// Extracts the permanent id (first 10 bytes of the key fingerprint).
PermanentId permanent_id_from_fingerprint(const Sha1Digest& fingerprint);

/// Renders the 16-character .onion address (without the ".onion" suffix).
std::string onion_address(const PermanentId& id);

/// Full address with ".onion" appended.
std::string onion_address_full(const PermanentId& id);

/// Parses a 16-char base32 onion address (with or without ".onion").
/// Matching is case-insensitive throughout — base32 body and suffix
/// alike — so encode(decode(addr)) canonicalizes to lowercase.
/// Throws std::invalid_argument on malformed input.
PermanentId parse_onion_address(std::string_view address);

/// rend-spec v2 time period for this service at time `t`.
std::uint32_t time_period(util::UnixTime t, const PermanentId& id);

/// secret-id-part = SHA1(INT4(period) || descriptor-cookie || BYTE(replica)).
/// The cookie is empty for public services; authenticated ("stealth")
/// services mix in a secret shared with authorized clients, which makes
/// their descriptor IDs underivable from the onion address alone — such
/// requests stay unresolvable to a measuring HSDir (one contributor to
/// the paper's 80% unresolved request IDs).
Sha1Digest secret_id_part(std::uint32_t period, std::uint8_t replica,
                          std::span<const std::uint8_t> cookie = {});

/// descriptor-id = SHA1(permanent-id || secret-id-part).
///
/// Public-service derivations (empty cookie) are served from a
/// process-wide, thread_local-sharded memo cache when util::memo_enabled()
/// — a pure value table, so results are byte-identical cache-on vs
/// cache-off (docs/performance.md). Cookie-bearing derivations always
/// compute directly (their key domain is unbounded and secret).
DescriptorId descriptor_id(const PermanentId& id, std::uint32_t period,
                           std::uint8_t replica,
                           std::span<const std::uint8_t> cookie = {});

/// Both replicas' descriptor IDs for one (service, period), in replica
/// order. The uncached path runs the multi-lane batched SHA-1
/// (crypto/sha1_batch.hpp): the secret-id-parts of every replica are
/// hashed in lock-step, then the combine digests are forked off a
/// shared permanent-id midstate — the same bytes as kNumReplicas
/// independent scalar derivations, so the output is byte-identical to
/// descriptor_ids_for_period_scalar (the differential suite asserts
/// this at randomized schedules).
std::array<DescriptorId, kNumReplicas> descriptor_ids_for_period(
    const PermanentId& id, std::uint32_t period,
    std::span<const std::uint8_t> cookie = {});

/// Reference oracle: the pre-batch implementation (scalar Sha1
/// midstate-fork per replica, no lane kernel, no memo). Kept callable
/// for the differential suite and the cold-path benches.
std::array<DescriptorId, kNumReplicas> descriptor_ids_for_period_scalar(
    const PermanentId& id, std::uint32_t period,
    std::span<const std::uint8_t> cookie = {});

/// Whole-block derivation: descriptor IDs for every period in
/// `periods`, period-major / replica-minor (result[p * kNumReplicas +
/// r] is replica r of periods[p]) — exactly the flattening of
/// descriptor_ids_for_period over the periods in order. The uncached
/// path feeds all periods × replicas through the lane kernel in one
/// pass, which is where the batch width (and the BM_DeriveDescriptorIds
/// speedup) comes from; the cached path loops the memoized single-
/// period derivation. Used by the resolver's dictionary builder, which
/// derives many consecutive days per onion.
std::vector<DescriptorId> descriptor_ids_for_periods(
    const PermanentId& id, std::span<const std::uint32_t> periods,
    std::span<const std::uint8_t> cookie = {});

/// Lifetime hit/miss/evict totals of the descriptor-id memo cache
/// (summed over all thread shards). Perf telemetry only — totals vary
/// with thread count, so they feed the bench JSON "cache" section and
/// never the deterministic metrics goldens.
util::CacheStats derivation_cache_stats();

/// Same, for the (period, replica) -> secret-id-part table.
util::CacheStats secret_cache_stats();

/// Zeroes both stat blocks (the shards themselves are invalidated via
/// util::bump_memo_epoch()).
void reset_derivation_cache_stats();

/// Seconds until this service's descriptor IDs next rotate.
util::Seconds seconds_until_rotation(util::UnixTime t, const PermanentId& id);

/// 160-bit unsigned integer view of a digest, with the modular ring
/// arithmetic the HSDir ring and Sec. VII distance metrics need.
class U160 {
 public:
  U160() : limbs_{} {}
  explicit U160(const Sha1Digest& digest);

  /// Big-endian byte rendering (inverse of the digest constructor).
  Sha1Digest to_digest() const;

  std::strong_ordering operator<=>(const U160& other) const;
  bool operator==(const U160& other) const { return limbs_ == other.limbs_; }

  /// (this - other) mod 2^160: clockwise ring distance from other to this.
  U160 ring_distance_from(const U160& other) const;

  /// Conversion to double (loses precision; fine for ratio statistics).
  double to_double() const;

  /// this + other mod 2^160.
  U160 add(const U160& other) const;

  /// Construction from a small integer.
  static U160 from_u64(std::uint64_t value);

  /// Construction from a non-negative double < 2^160 (used to convert
  /// ring-fraction distances back into ring offsets; exact only to
  /// double precision, which is all the distance statistics need).
  static U160 from_double(double value);

 private:
  // limbs_[0] is least significant.
  std::array<std::uint64_t, 3> limbs_;  // 64+64+32 bits used
};

/// Clockwise distance on the ring from `from` to `to` as a double.
double ring_distance(const Sha1Digest& from, const Sha1Digest& to);

}  // namespace torsim::crypto
