#include "crypto/digest.hpp"

#include <cmath>
#include <stdexcept>

#include "util/encoding.hpp"
#include "util/strings.hpp"

namespace torsim::crypto {

PermanentId permanent_id_from_fingerprint(const Sha1Digest& fingerprint) {
  PermanentId id;
  std::copy(fingerprint.begin(), fingerprint.begin() + id.size(), id.begin());
  return id;
}

std::string onion_address(const PermanentId& id) {
  return util::base32_encode(std::span<const std::uint8_t>(id));
}

std::string onion_address_full(const PermanentId& id) {
  return onion_address(id) + ".onion";
}

PermanentId parse_onion_address(std::string_view address) {
  if (util::ends_with(address, ".onion"))
    address.remove_suffix(6);
  if (address.size() != 16)
    throw std::invalid_argument("parse_onion_address: need 16 base32 chars");
  const auto bytes = util::base32_decode(address);
  if (bytes.size() != 10)
    throw std::invalid_argument("parse_onion_address: bad decode length");
  PermanentId id;
  std::copy(bytes.begin(), bytes.end(), id.begin());
  return id;
}

std::uint32_t time_period(util::UnixTime t, const PermanentId& id) {
  if (t < 0) throw std::invalid_argument("time_period: negative time");
  // rend-spec v2: (time + id-byte-0 * 86400 / 256) / 86400.
  const std::uint64_t offset =
      static_cast<std::uint64_t>(id[0]) * 86400ULL / 256ULL;
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(t) + offset) / 86400ULL);
}

Sha1Digest secret_id_part(std::uint32_t period, std::uint8_t replica,
                          std::span<const std::uint8_t> cookie) {
  Sha1 hasher;
  const std::array<std::uint8_t, 4> period_bytes = {
      static_cast<std::uint8_t>(period >> 24),
      static_cast<std::uint8_t>(period >> 16),
      static_cast<std::uint8_t>(period >> 8),
      static_cast<std::uint8_t>(period)};
  hasher.update(std::span<const std::uint8_t>(period_bytes));
  hasher.update(cookie);
  const std::array<std::uint8_t, 1> replica_byte = {replica};
  hasher.update(std::span<const std::uint8_t>(replica_byte));
  return hasher.finalize();
}

DescriptorId descriptor_id(const PermanentId& id, std::uint32_t period,
                           std::uint8_t replica,
                           std::span<const std::uint8_t> cookie) {
  const Sha1Digest secret = secret_id_part(period, replica, cookie);
  Sha1 hasher;
  hasher.update(std::span<const std::uint8_t>(id));
  hasher.update(std::span<const std::uint8_t>(secret));
  return hasher.finalize();
}

util::Seconds seconds_until_rotation(util::UnixTime t, const PermanentId& id) {
  const std::uint64_t offset =
      static_cast<std::uint64_t>(id[0]) * 86400ULL / 256ULL;
  const std::uint64_t shifted = static_cast<std::uint64_t>(t) + offset;
  return static_cast<util::Seconds>(86400ULL - shifted % 86400ULL);
}

U160::U160(const Sha1Digest& digest) : limbs_{} {
  // digest is big-endian; limbs_[0] is least significant.
  for (int i = 0; i < 20; ++i) {
    const int bit_offset = (19 - i) * 8;
    limbs_[bit_offset / 64] |= static_cast<std::uint64_t>(digest[i])
                               << (bit_offset % 64);
  }
}

Sha1Digest U160::to_digest() const {
  Sha1Digest digest{};
  for (int i = 0; i < 20; ++i) {
    const int bit_offset = (19 - i) * 8;
    digest[i] = static_cast<std::uint8_t>(limbs_[bit_offset / 64] >>
                                          (bit_offset % 64));
  }
  return digest;
}

std::strong_ordering U160::operator<=>(const U160& other) const {
  for (int i = 2; i >= 0; --i) {
    if (limbs_[i] != other.limbs_[i])
      return limbs_[i] < other.limbs_[i] ? std::strong_ordering::less
                                         : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

U160 U160::ring_distance_from(const U160& other) const {
  // this - other mod 2^160, borrow-chain subtraction.
  U160 result;
  std::uint64_t borrow = 0;
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t lhs = limbs_[i];
    const std::uint64_t rhs = other.limbs_[i];
    const std::uint64_t sub1 = lhs - rhs;
    const std::uint64_t borrow1 = lhs < rhs ? 1u : 0u;
    const std::uint64_t sub2 = sub1 - borrow;
    const std::uint64_t borrow2 = sub1 < borrow ? 1u : 0u;
    result.limbs_[i] = sub2;
    borrow = borrow1 + borrow2;
  }
  // Reduce mod 2^160: keep only 32 bits of the top limb.
  result.limbs_[2] &= 0xffffffffULL;
  return result;
}

double U160::to_double() const {
  return static_cast<double>(limbs_[0]) +
         std::ldexp(static_cast<double>(limbs_[1]), 64) +
         std::ldexp(static_cast<double>(limbs_[2]), 128);
}

U160 U160::add(const U160& other) const {
  U160 result;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 3; ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(limbs_[i]) + other.limbs_[i] + carry;
    result.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  result.limbs_[2] &= 0xffffffffULL;
  return result;
}

U160 U160::from_u64(std::uint64_t value) {
  U160 result;
  result.limbs_[0] = value;
  return result;
}

U160 U160::from_double(double value) {
  if (value < 0.0 || value >= std::ldexp(1.0, 160))
    throw std::invalid_argument("U160::from_double: out of range");
  U160 result;
  double remaining = value;
  const double two64 = std::ldexp(1.0, 64);
  const double hi = std::floor(remaining / std::ldexp(1.0, 128));
  remaining -= hi * std::ldexp(1.0, 128);
  const double mid = std::floor(remaining / two64);
  remaining -= mid * two64;
  result.limbs_[2] = static_cast<std::uint64_t>(hi) & 0xffffffffULL;
  result.limbs_[1] = static_cast<std::uint64_t>(mid);
  result.limbs_[0] = static_cast<std::uint64_t>(remaining);
  return result;
}

double ring_distance(const Sha1Digest& from, const Sha1Digest& to) {
  return U160(to).ring_distance_from(U160(from)).to_double();
}

}  // namespace torsim::crypto
