#include "crypto/digest.hpp"

#include <cmath>
#include <stdexcept>

#include "crypto/sha1_batch.hpp"
#include "util/encoding.hpp"
#include "util/strings.hpp"

namespace torsim::crypto {

PermanentId permanent_id_from_fingerprint(const Sha1Digest& fingerprint) {
  PermanentId id;
  std::copy(fingerprint.begin(), fingerprint.begin() + id.size(), id.begin());
  return id;
}

std::string onion_address(const PermanentId& id) {
  return util::base32_encode(std::span<const std::uint8_t>(id));
}

std::string onion_address_full(const PermanentId& id) {
  return onion_address(id) + ".onion";
}

PermanentId parse_onion_address(std::string_view address) {
  // Addresses are matched case-insensitively end to end: the base32
  // decoder accepts both cases, so the ".onion" suffix must too —
  // "ABC...XYZ.ONION" and "abc...xyz.onion" are the same service.
  if (address.size() >= 6 &&
      util::to_lower(address.substr(address.size() - 6)) == ".onion")
    address.remove_suffix(6);
  if (address.size() != 16)
    throw std::invalid_argument("parse_onion_address: need 16 base32 chars");
  const auto bytes = util::base32_decode(address);
  if (bytes.size() != 10)
    throw std::invalid_argument("parse_onion_address: bad decode length");
  PermanentId id;
  std::copy(bytes.begin(), bytes.end(), id.begin());
  return id;
}

std::uint32_t time_period(util::UnixTime t, const PermanentId& id) {
  if (t < 0) throw std::invalid_argument("time_period: negative time");
  // rend-spec v2: (time + id-byte-0 * 86400 / 256) / 86400.
  const std::uint64_t offset =
      static_cast<std::uint64_t>(id[0]) * 86400ULL / 256ULL;
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(t) + offset) / 86400ULL);
}

namespace {

// --- Derivation memo caches ------------------------------------------
//
// Pure value tables over the rend-spec arithmetic above: a hit returns
// exactly what the miss path computes, so caching can only skip hashing,
// never change a result. Shards are thread_local (no locks, no sharing)
// and self-invalidate against util::memo_epoch(); hit/miss totals are
// process-wide relaxed atomics (bench telemetry only, see memo.hpp).
// Only empty-cookie derivations are cacheable — authenticated services
// mix in an unbounded secret, and their requests are meant to stay
// expensive/unresolvable anyway.

struct DerivationKey {
  PermanentId id{};
  std::uint32_t period = 0;
  std::uint8_t replica = 0;
  bool operator==(const DerivationKey&) const = default;
};

struct DerivationKeyHash {
  std::uint64_t operator()(const DerivationKey& key) const {
    std::uint64_t h = util::memo_mix_bytes(key.id.data(), key.id.size());
    return util::memo_mix_u64(
        h, (static_cast<std::uint64_t>(key.period) << 8) | key.replica);
  }
};

struct SecretKey {
  std::uint32_t period = 0;
  std::uint8_t replica = 0;
  bool operator==(const SecretKey&) const = default;
};

struct SecretKeyHash {
  std::uint64_t operator()(const SecretKey& key) const {
    return util::memo_mix_u64(
        1469598103934665603ULL,
        (static_cast<std::uint64_t>(key.period) << 8) | key.replica);
  }
};

util::CacheCounters& derivation_counters() {
  static util::CacheCounters counters;
  return counters;
}

util::CacheCounters& secret_counters() {
  static util::CacheCounters counters;
  return counters;
}

struct DerivationShard {
  util::MemoTable<DerivationKey, DescriptorId, DerivationKeyHash> ids{4096};
  util::MemoTable<SecretKey, Sha1Digest, SecretKeyHash> secrets{64};
  std::uint64_t epoch = 0;
};

DerivationShard& shard() {
  thread_local DerivationShard local;
  const std::uint64_t epoch = util::memo_epoch();
  if (local.epoch != epoch) {
    local.ids.clear();
    local.secrets.clear();
    local.epoch = epoch;
  }
  return local;
}

// Midstate over INT4(period) || cookie — everything of secret-id-part
// except the trailing replica byte. Copy the returned hasher to fork it
// per replica.
Sha1 secret_midstate(std::uint32_t period,
                     std::span<const std::uint8_t> cookie) {
  Sha1 hasher;
  const std::array<std::uint8_t, 4> period_bytes = {
      static_cast<std::uint8_t>(period >> 24),
      static_cast<std::uint8_t>(period >> 16),
      static_cast<std::uint8_t>(period >> 8),
      static_cast<std::uint8_t>(period)};
  hasher.update(std::span<const std::uint8_t>(period_bytes));
  hasher.update(cookie);
  return hasher;
}

Sha1Digest finish_secret(Sha1 midstate, std::uint8_t replica) {
  const std::array<std::uint8_t, 1> replica_byte = {replica};
  midstate.update(std::span<const std::uint8_t>(replica_byte));
  return midstate.finalize();
}

DescriptorId combine_descriptor_id(const PermanentId& id,
                                   const Sha1Digest& secret) {
  Sha1 hasher;
  hasher.update(std::span<const std::uint8_t>(id));
  hasher.update(std::span<const std::uint8_t>(secret));
  return hasher.finalize();
}

// Lane-parallel uncached derivation core: the secret-id-part of every
// (period, replica) pair is hashed through the batched kernel in one
// pass, then the combine digests are forked off a shared permanent-id
// midstate. Writes periods.size() * kNumReplicas ids, period-major /
// replica-minor — the exact bytes (and order) of looping
// descriptor_ids_for_period_scalar over the periods.
void derive_ids_lanes(const PermanentId& id,
                      std::span<const std::uint32_t> periods,
                      std::span<const std::uint8_t> cookie,
                      DescriptorId* out) {
  const std::size_t replicas = static_cast<std::size_t>(kNumReplicas);
  const std::size_t count = periods.size() * replicas;
  const std::size_t msg_len = 4 + cookie.size() + 1;
  std::vector<std::uint8_t> flat(count * msg_len);
  std::vector<std::span<const std::uint8_t>> messages(count);
  for (std::size_t p = 0; p < periods.size(); ++p) {
    const std::uint32_t period = periods[p];
    for (std::size_t r = 0; r < replicas; ++r) {
      std::uint8_t* dst = flat.data() + (p * replicas + r) * msg_len;
      dst[0] = static_cast<std::uint8_t>(period >> 24);
      dst[1] = static_cast<std::uint8_t>(period >> 16);
      dst[2] = static_cast<std::uint8_t>(period >> 8);
      dst[3] = static_cast<std::uint8_t>(period);
      std::copy(cookie.begin(), cookie.end(), dst + 4);
      dst[4 + cookie.size()] = static_cast<std::uint8_t>(r);
      messages[p * replicas + r] =
          std::span<const std::uint8_t>(dst, msg_len);
    }
  }
  std::vector<Sha1Digest> secrets(count);
  sha1_batch(messages, secrets);

  Sha1Midstate prefix;
  prefix.absorb(std::span<const std::uint8_t>(id));
  std::vector<std::span<const std::uint8_t>> suffixes(count);
  for (std::size_t m = 0; m < count; ++m)
    suffixes[m] = std::span<const std::uint8_t>(secrets[m]);
  sha1_finish_lanes(prefix, suffixes, std::span<Sha1Digest>(out, count));
}

}  // namespace

Sha1Digest secret_id_part(std::uint32_t period, std::uint8_t replica,
                          std::span<const std::uint8_t> cookie) {
  if (cookie.empty() && util::memo_enabled()) {
    DerivationShard& local = shard();
    const SecretKey key{period, replica};
    if (const Sha1Digest* hit = local.secrets.find(key)) {
      secret_counters().hit();
      return *hit;
    }
    secret_counters().miss();
    const Sha1Digest secret = finish_secret(secret_midstate(period, {}), replica);
    if (local.secrets.store(key, secret)) secret_counters().evict();
    return secret;
  }
  return finish_secret(secret_midstate(period, cookie), replica);
}

DescriptorId descriptor_id(const PermanentId& id, std::uint32_t period,
                           std::uint8_t replica,
                           std::span<const std::uint8_t> cookie) {
  if (cookie.empty() && util::memo_enabled()) {
    DerivationShard& local = shard();
    const DerivationKey key{id, period, replica};
    if (const DescriptorId* hit = local.ids.find(key)) {
      derivation_counters().hit();
      return *hit;
    }
    derivation_counters().miss();
    const DescriptorId result =
        combine_descriptor_id(id, secret_id_part(period, replica));
    if (local.ids.store(key, result)) derivation_counters().evict();
    return result;
  }
  return combine_descriptor_id(id, secret_id_part(period, replica, cookie));
}

std::array<DescriptorId, kNumReplicas> descriptor_ids_for_period(
    const PermanentId& id, std::uint32_t period,
    std::span<const std::uint8_t> cookie) {
  std::array<DescriptorId, kNumReplicas> out{};
  if (cookie.empty() && util::memo_enabled()) {
    // The cached path: the secret table already amortizes the shared
    // midstate across replicas (and across every service in the same
    // period), so route through the per-replica cache.
    for (int replica = 0; replica < kNumReplicas; ++replica)
      out[static_cast<std::size_t>(replica)] =
          descriptor_id(id, period, static_cast<std::uint8_t>(replica));
    return out;
  }
  // Uncached path: both replicas ride the lane kernel in one batch.
  const std::uint32_t periods[1] = {period};
  derive_ids_lanes(id, std::span<const std::uint32_t>(periods, 1), cookie,
                   out.data());
  return out;
}

std::array<DescriptorId, kNumReplicas> descriptor_ids_for_period_scalar(
    const PermanentId& id, std::uint32_t period,
    std::span<const std::uint8_t> cookie) {
  // Pre-batch reference path, kept verbatim as the differential oracle:
  // absorb INT4(period) || cookie once, fork the scalar SHA-1 midstate
  // per replica, combine each secret with the permanent id.
  std::array<DescriptorId, kNumReplicas> out{};
  const Sha1 midstate = secret_midstate(period, cookie);
  for (int replica = 0; replica < kNumReplicas; ++replica) {
    const Sha1Digest secret =
        finish_secret(midstate, static_cast<std::uint8_t>(replica));
    out[static_cast<std::size_t>(replica)] = combine_descriptor_id(id, secret);
  }
  return out;
}

std::vector<DescriptorId> descriptor_ids_for_periods(
    const PermanentId& id, std::span<const std::uint32_t> periods,
    std::span<const std::uint8_t> cookie) {
  const std::size_t replicas = static_cast<std::size_t>(kNumReplicas);
  std::vector<DescriptorId> out(periods.size() * replicas);
  if (periods.empty()) return out;
  if (cookie.empty() && util::memo_enabled()) {
    // Cached path: the memo tables already amortize secrets across
    // periods and services; reuse the single-period cached derivation.
    for (std::size_t p = 0; p < periods.size(); ++p) {
      const auto pair = descriptor_ids_for_period(id, periods[p]);
      for (std::size_t r = 0; r < replicas; ++r)
        out[p * replicas + r] = pair[r];
    }
    return out;
  }
  derive_ids_lanes(id, periods, cookie, out.data());
  return out;
}

util::CacheStats derivation_cache_stats() {
  return derivation_counters().snapshot();
}

util::CacheStats secret_cache_stats() { return secret_counters().snapshot(); }

void reset_derivation_cache_stats() {
  derivation_counters().reset();
  secret_counters().reset();
}

util::Seconds seconds_until_rotation(util::UnixTime t, const PermanentId& id) {
  const std::uint64_t offset =
      static_cast<std::uint64_t>(id[0]) * 86400ULL / 256ULL;
  const std::uint64_t shifted = static_cast<std::uint64_t>(t) + offset;
  return static_cast<util::Seconds>(86400ULL - shifted % 86400ULL);
}

U160::U160(const Sha1Digest& digest) : limbs_{} {
  // digest is big-endian; limbs_[0] is least significant.
  for (int i = 0; i < 20; ++i) {
    const int bit_offset = (19 - i) * 8;
    limbs_[bit_offset / 64] |= static_cast<std::uint64_t>(digest[i])
                               << (bit_offset % 64);
  }
}

Sha1Digest U160::to_digest() const {
  Sha1Digest digest{};
  for (int i = 0; i < 20; ++i) {
    const int bit_offset = (19 - i) * 8;
    digest[i] = static_cast<std::uint8_t>(limbs_[bit_offset / 64] >>
                                          (bit_offset % 64));
  }
  return digest;
}

std::strong_ordering U160::operator<=>(const U160& other) const {
  for (int i = 2; i >= 0; --i) {
    if (limbs_[i] != other.limbs_[i])
      return limbs_[i] < other.limbs_[i] ? std::strong_ordering::less
                                         : std::strong_ordering::greater;
  }
  return std::strong_ordering::equal;
}

U160 U160::ring_distance_from(const U160& other) const {
  // this - other mod 2^160, borrow-chain subtraction.
  U160 result;
  std::uint64_t borrow = 0;
  for (int i = 0; i < 3; ++i) {
    const std::uint64_t lhs = limbs_[i];
    const std::uint64_t rhs = other.limbs_[i];
    const std::uint64_t sub1 = lhs - rhs;
    const std::uint64_t borrow1 = lhs < rhs ? 1u : 0u;
    const std::uint64_t sub2 = sub1 - borrow;
    const std::uint64_t borrow2 = sub1 < borrow ? 1u : 0u;
    result.limbs_[i] = sub2;
    borrow = borrow1 + borrow2;
  }
  // Reduce mod 2^160: keep only 32 bits of the top limb.
  result.limbs_[2] &= 0xffffffffULL;
  return result;
}

double U160::to_double() const {
  return static_cast<double>(limbs_[0]) +
         std::ldexp(static_cast<double>(limbs_[1]), 64) +
         std::ldexp(static_cast<double>(limbs_[2]), 128);
}

U160 U160::add(const U160& other) const {
  U160 result;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 3; ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(limbs_[i]) + other.limbs_[i] + carry;
    result.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  result.limbs_[2] &= 0xffffffffULL;
  return result;
}

U160 U160::from_u64(std::uint64_t value) {
  U160 result;
  result.limbs_[0] = value;
  return result;
}

U160 U160::from_double(double value) {
  if (value < 0.0 || value >= std::ldexp(1.0, 160))
    throw std::invalid_argument("U160::from_double: out of range");
  U160 result;
  double remaining = value;
  const double two64 = std::ldexp(1.0, 64);
  const double hi = std::floor(remaining / std::ldexp(1.0, 128));
  remaining -= hi * std::ldexp(1.0, 128);
  const double mid = std::floor(remaining / two64);
  remaining -= mid * two64;
  result.limbs_[2] = static_cast<std::uint64_t>(hi) & 0xffffffffULL;
  result.limbs_[1] = static_cast<std::uint64_t>(mid);
  result.limbs_[0] = static_cast<std::uint64_t>(remaining);
  return result;
}

double ring_distance(const Sha1Digest& from, const Sha1Digest& to) {
  return U160(to).ring_distance_from(U160(from)).to_double();
}

}  // namespace torsim::crypto
