#include "popularity/botnet_inference.hpp"

#include <algorithm>
#include <map>

#include "net/service.hpp"

namespace torsim::popularity {

BotnetInferenceReport infer_botnet_infrastructure(
    const ResolutionReport& ranking, const population::Population& pop,
    const BotnetInferenceConfig& config) {
  BotnetInferenceReport report;

  // Step 1: probe the most popular addresses over HTTP, exactly as the
  // paper did ("connecting to them at this port returned 503 Server
  // errors. As a next step, we tried to retrieve server-status pages").
  const std::size_t depth = std::min(config.probe_top, ranking.ranking.size());
  for (std::size_t i = 0; i < depth; ++i) {
    const RankedService& row = ranking.ranking[i];
    const auto svc = pop.find(row.onion);
    if (!svc) continue;
    const net::PortService* web = svc->profile().service_at(net::kPortHttp);
    if (web == nullptr || !web->http) continue;
    const net::HttpResponse& http = *web->http;

    ServiceFingerprint fp;
    fp.onion = row.onion;
    fp.requests_per_2h = row.requests;
    fp.http_503 = http.status == 503;
    fp.server_status_exposed = http.server_status_page;
    fp.traffic_bytes_per_sec = http.traffic_bytes_per_sec;
    fp.requests_per_sec = http.requests_per_sec;
    fp.apache_uptime_seconds = http.apache_uptime_seconds;

    // The C&C signature the paper keyed on.
    if (fp.http_503 && fp.server_status_exposed &&
        fp.traffic_bytes_per_sec >= config.min_traffic &&
        fp.requests_per_sec >= config.min_requests_per_sec)
      report.cnc_candidates.push_back(std::move(fp));
  }

  // Step 2: identical Apache uptimes => one physical machine ("they
  // could be divided into two groups with exactly same uptime within
  // each group").
  std::map<std::int64_t, PhysicalServer> by_uptime;
  for (const ServiceFingerprint& fp : report.cnc_candidates) {
    PhysicalServer& server = by_uptime[fp.apache_uptime_seconds];
    server.apache_uptime_seconds = fp.apache_uptime_seconds;
    server.onions.push_back(fp.onion);
    server.mean_traffic_bytes_per_sec += fp.traffic_bytes_per_sec;
    server.mean_requests_per_sec += fp.requests_per_sec;
  }
  for (auto& [uptime, server] : by_uptime) {
    const double n = static_cast<double>(server.onions.size());
    server.mean_traffic_bytes_per_sec /= n;
    server.mean_requests_per_sec /= n;
    report.physical_servers.push_back(std::move(server));
  }
  std::sort(report.physical_servers.begin(), report.physical_servers.end(),
            [](const PhysicalServer& a, const PhysicalServer& b) {
              return a.onions.size() > b.onions.size();
            });
  return report;
}

CategoryShares category_shares(const ResolutionReport& ranking,
                               const population::Population& pop) {
  CategoryShares shares;
  double botnet = 0, adult = 0, market = 0, other = 0;
  for (const RankedService& row : ranking.ranking) {
    shares.total_requests += row.requests;
    const auto svc = pop.find(row.onion);
    const double r = static_cast<double>(row.requests);
    if (!svc) {
      other += r;
      continue;
    }
    switch (svc->klass()) {
      case population::ServiceClass::kGoldnetCnC:
      case population::ServiceClass::kSkynetCnC:
      case population::ServiceClass::kSkynetBot:
      case population::ServiceClass::kBitcoinMiner:
        botnet += r;
        break;
      default:
        if (svc->topic() == content::Topic::kAdult)
          adult += r;
        else if (svc->label() == "SilkRoad" ||
                 svc->label() == "BlackMarketReloaded" ||
                 svc->label() == "SilkroadPhishing" ||
                 svc->topic() == content::Topic::kDrugs ||
                 svc->topic() == content::Topic::kCounterfeit)
          market += r;
        else
          other += r;
        break;
    }
  }
  const double total = botnet + adult + market + other;
  if (total > 0) {
    shares.botnet = botnet / total;
    shares.adult = adult / total;
    shares.market = market / total;
    shares.other = other / total;
  }
  return shares;
}

}  // namespace torsim::popularity
