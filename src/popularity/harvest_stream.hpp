// Bridges the attack to the measurement: converts the descriptor-fetch
// logs collected by attacker-controlled HSDirs into a RequestStream, so
// the popularity pipeline runs on exactly the data the paper's authors
// had — their own relays' logs — rather than on an oracle view of
// client behaviour.
#pragma once

#include <span>

#include "hsdir/directory_network.hpp"
#include "popularity/request_generator.hpp"

namespace torsim::popularity {

/// Collects the fetch logs of `attacker_relays` from the directory
/// network into a time-sorted request stream. Duplicate sightings of the
/// same request at multiple relays are expected (a client retries
/// several responsible HSDirs) and are kept, as they were in the paper's
/// raw logs.
RequestStream stream_from_fetch_logs(
    const hsdir::DirectoryNetwork& dirnet,
    std::span<const relay::RelayId> attacker_relays);

}  // namespace torsim::popularity
