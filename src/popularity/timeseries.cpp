#include "popularity/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "stats/descriptive.hpp"
#include "util/ordered.hpp"

namespace torsim::popularity {

TimeSeriesReport build_time_series(const RequestStream& stream,
                                   const DescriptorResolver& resolver,
                                   const TimeSeriesConfig& config) {
  TimeSeriesReport report;
  report.windows = config.windows;
  if (stream.requests.empty() || config.windows <= 0) return report;

  const util::UnixTime start = stream.requests.front().time;
  const util::UnixTime end = stream.requests.back().time + 1;
  report.window_length =
      std::max<util::Seconds>(1, (end - start + config.windows - 1) /
                                     config.windows);

  std::unordered_map<std::string, std::vector<std::int64_t>> buckets;
  for (const DescriptorRequest& req : stream.requests) {
    const auto onion = resolver.resolve_id(req.descriptor_id);
    if (!onion) continue;  // phantom / unresolvable
    auto& windows = buckets[*onion];
    if (windows.empty())
      windows.assign(static_cast<std::size_t>(config.windows), 0);
    const auto index = std::min<std::int64_t>(
        config.windows - 1, (req.time - start) / report.window_length);
    ++windows[static_cast<std::size_t>(index)];
  }

  for (auto& [onion, windows] : util::sorted_items(buckets)) {
    std::int64_t total = 0;
    for (std::int64_t c : windows) total += c;
    if (total < config.min_requests) continue;
    RateSeries series;
    series.onion = onion;
    series.per_window = windows;
    std::vector<double> values(windows.begin(), windows.end());
    series.mean_rate = stats::mean(values);
    series.cv = series.mean_rate > 0.0
                    ? stats::stddev(values) / series.mean_rate
                    : 0.0;
    report.series.push_back(std::move(series));
  }
  // Tie-break equal rates by onion so the emitted order never depends
  // on bucket iteration order.
  std::sort(report.series.begin(), report.series.end(),
            [](const RateSeries& a, const RateSeries& b) {
              if (a.mean_rate != b.mean_rate) return a.mean_rate > b.mean_rate;
              return a.onion < b.onion;
            });
  return report;
}

}  // namespace torsim::popularity
