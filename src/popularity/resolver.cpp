#include "popularity/resolver.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/parallel.hpp"

namespace torsim::popularity {

DescriptorResolver::DescriptorResolver(ResolverConfig config)
    : config_(config) {
  if (config_.derive_from == 0)
    config_.derive_from = util::make_utc(2013, 1, 28);
  if (config_.derive_to == 0)
    config_.derive_to = util::make_utc(2013, 2, 9);
}

void DescriptorResolver::build_dictionary(
    const population::Population& pop) {
  std::vector<std::string> onions;
  onions.reserve(pop.size());
  for (const population::Population::ServiceRef svc : pop.services())
    onions.emplace_back(svc.onion());
  build_dictionary_from_onions(onions);
}

void DescriptorResolver::build_dictionary_from_onions(
    const std::vector<std::string>& onions) {
  dictionary_.clear();
  // The SHA-1 derivations per onion are independent: fan them out, then
  // insert in onion order so duplicate-id collisions resolve exactly as
  // the serial loop would (last writer in input order wins).
  const auto derive_one = [&](std::size_t index) {
    const auto pid = crypto::parse_onion_address(onions[index]);
    // One derivation per day in the window; the time-period function
    // shifts per-service, so step by days and dedupe via the map. All
    // of the service's periods go through the lane-batched derivation
    // in a single call (period-major, replica-minor — the same order
    // the per-period loop produced).
    std::vector<std::uint32_t> periods;
    for (util::UnixTime t = config_.derive_from; t < config_.derive_to;
         t += util::kSecondsPerDay)
      periods.push_back(crypto::time_period(t, pid));
    return crypto::descriptor_ids_for_periods(pid, periods);
  };
  const std::vector<std::vector<crypto::DescriptorId>> derived =
      util::parallel_map(onions.size(), config_.threads, derive_one);
  // Interning happens here, in the serial fold — never in the parallel
  // derivation above (the interner's contract, docs/data-layout.md).
  for (std::size_t i = 0; i < derived.size(); ++i) {
    const util::StringInterner::Id onion_id =
        util::global_interner().intern(onions[i]);
    for (const crypto::DescriptorId& id : derived[i])
      dictionary_[id] = onion_id;
  }
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m.counter("resolver.onions_derived")
        .inc(static_cast<std::int64_t>(onions.size()));
    m.gauge("resolver.dictionary_size")
        .set(static_cast<std::int64_t>(dictionary_.size()));
  }
}

ResolutionReport DescriptorResolver::resolve(
    const RequestStream& stream) const {
  return resolve_internal(stream, nullptr);
}

ResolutionReport DescriptorResolver::resolve(
    const RequestStream& stream, const population::Population& pop) const {
  return resolve_internal(stream, &pop);
}

// The request-log join is the resolver's measured inner loop: one
// ordered-map bump per request, then one dictionary probe per unique
// id. Everything allocator-visible (the ranking rows, label lookups)
// stays in resolve_internal.
// detlint: hot
void DescriptorResolver::tally_requests(
    const RequestStream& stream,
    std::map<crypto::DescriptorId, std::int64_t>& id_counts,
    std::map<util::StringInterner::Id, std::int64_t>& onion_counts,
    ResolutionReport& report) const {
  for (const DescriptorRequest& req : stream.requests)
    ++id_counts[req.descriptor_id];
  report.unique_descriptor_ids =
      static_cast<std::int64_t>(id_counts.size());
  for (const auto& [id, count] : id_counts) {
    const auto it = dictionary_.find(id);
    if (it == dictionary_.end()) continue;
    ++report.resolved_descriptor_ids;
    report.resolved_requests += count;
    onion_counts[it->second] += count;
  }
}

ResolutionReport DescriptorResolver::resolve_internal(
    const RequestStream& stream, const population::Population* pop) const {
  ResolutionReport report;
  report.total_requests = static_cast<std::int64_t>(stream.requests.size());

  std::map<crypto::DescriptorId, std::int64_t> id_counts;
  std::map<util::StringInterner::Id, std::int64_t> onion_counts;
  tally_requests(stream, id_counts, onion_counts, report);
  report.resolved_onions = static_cast<std::int64_t>(onion_counts.size());

  // Iteration is in intern-id order, not lexicographic — harmless: the
  // sort below totally orders rows by (requests, onion).
  report.ranking.reserve(onion_counts.size());
  for (const auto& [onion_id, count] : onion_counts) {
    const std::string_view onion = util::global_interner().view(onion_id);
    RankedService row;
    row.onion = std::string(onion);
    row.requests = count;
    if (pop != nullptr) {
      if (const auto svc = pop->find(onion)) {
        row.label = std::string(svc->label());
        row.paper_alias = std::string(svc->paper_alias());
        row.paper_rank = svc->paper_rank();
      }
    }
    report.ranking.push_back(std::move(row));
  }
  std::sort(report.ranking.begin(), report.ranking.end(),
            [](const RankedService& a, const RankedService& b) {
              if (a.requests != b.requests) return a.requests > b.requests;
              return a.onion < b.onion;
            });
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m.counter("resolver.requests_seen").inc(report.total_requests);
    m.counter("resolver.requests_resolved").inc(report.resolved_requests);
    m.counter("resolver.ids_resolved").inc(report.resolved_descriptor_ids);
    m.counter("resolver.ids_unresolved")
        .inc(report.unique_descriptor_ids - report.resolved_descriptor_ids);
    obs::Histogram& per_onion = m.histogram(
        "resolver.requests_per_onion",
        {0, 1, 2, 5, 10, 25, 50, 100, 250, 1000});
    for (const RankedService& row : report.ranking)
      per_onion.observe(row.requests);
  }
  return report;
}

}  // namespace torsim::popularity
