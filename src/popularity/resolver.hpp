// Sec. V: resolving logged descriptor IDs back to onion addresses.
//
// The descriptor ID is a one-way function of (onion, day, replica), so
// the paper resolved its request log by deriving, for every harvested
// onion address, the descriptor IDs of *every day between 28 Jan and
// 8 Feb 2013* (to absorb client clock skew) and joining against the log.
// We implement exactly that method.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "popularity/request_generator.hpp"
#include "util/interner.hpp"

namespace torsim::popularity {

struct ResolverConfig {
  /// Derivation window (paper: 28 Jan – 8 Feb 2013). Zero means default.
  util::UnixTime derive_from = 0;
  util::UnixTime derive_to = 0;
  /// Worker threads for the per-onion multi-day descriptor-ID
  /// derivation; <= 0 = one per hardware thread, 1 = legacy serial
  /// path. The dictionary is bit-identical for every value (see
  /// docs/concurrency.md).
  int threads = 0;
  /// Optional metrics sink ("resolver.*" counters). Must outlive the
  /// resolver. See docs/observability.md.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One row of the popularity ranking (Table II).
struct RankedService {
  std::string onion;
  std::string label;        ///< ground-truth class label, if pinned
  std::string paper_alias;  ///< Table II address this stands in for
  std::int64_t requests = 0;
  int paper_rank = 0;       ///< 0 when the service is not pinned
};

struct ResolutionReport {
  std::int64_t total_requests = 0;
  std::int64_t unique_descriptor_ids = 0;
  std::int64_t resolved_descriptor_ids = 0;
  std::int64_t resolved_onions = 0;
  std::int64_t resolved_requests = 0;
  /// Popularity ranking over resolved onions, descending by requests.
  std::vector<RankedService> ranking;

  double unresolved_request_share() const {
    return total_requests > 0
               ? 1.0 - static_cast<double>(resolved_requests) /
                           static_cast<double>(total_requests)
               : 0.0;
  }
};

class DescriptorResolver {
 public:
  explicit DescriptorResolver(ResolverConfig config = {});

  /// Builds the descriptor-id -> onion dictionary from the harvested
  /// address database (all onions in the population — the harvest
  /// collected addresses regardless of later availability).
  void build_dictionary(const population::Population& pop);

  /// Builds the dictionary from bare onion addresses — exactly the
  /// paper's method: nothing but the harvested address list is needed
  /// to derive every descriptor ID in the window.
  void build_dictionary_from_onions(const std::vector<std::string>& onions);

  /// Resolves a request stream and produces the ranking. `pop` (when
  /// provided) only supplies ground-truth labels for the report.
  ResolutionReport resolve(const RequestStream& stream,
                           const population::Population& pop) const;
  ResolutionReport resolve(const RequestStream& stream) const;

  std::size_t dictionary_size() const { return dictionary_.size(); }

  /// Resolves one descriptor id to its onion address, if known.
  std::optional<std::string> resolve_id(
      const crypto::DescriptorId& id) const {
    const auto it = dictionary_.find(id);
    if (it == dictionary_.end()) return std::nullopt;
    return std::string(util::global_interner().view(it->second));
  }

 private:
  ResolutionReport resolve_internal(const RequestStream& stream,
                                    const population::Population* pop) const;

  /// The hot request-log join: per-id counts, then dictionary probes
  /// folding resolved ids into per-onion counts (Sec. V method). The
  /// per-onion key is the 4-byte intern id: the join allocates map
  /// nodes only, never onion strings.
  void tally_requests(
      const RequestStream& stream,
      std::map<crypto::DescriptorId, std::int64_t>& id_counts,
      std::map<util::StringInterner::Id, std::int64_t>& onion_counts,
      ResolutionReport& report) const;

  ResolverConfig config_;
  /// Values are ids into util::global_interner() — the dictionary keeps
  /// one 4-byte handle per derived descriptor id instead of ~12 owned
  /// copies of every onion string (one per derivation day).
  std::map<crypto::DescriptorId, util::StringInterner::Id> dictionary_;
};

}  // namespace torsim::popularity
