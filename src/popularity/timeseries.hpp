// Request-rate time series: the paper observed that the Goldnet fronts'
// traffic "remained constant at about 330 KBytes/sec and had about 10
// client requests per second" — i.e. botnet C&C polling is steady,
// unlike human browsing. This module buckets a resolved request stream
// into sub-windows and measures per-service rate stability.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "popularity/resolver.hpp"

namespace torsim::popularity {

/// Per-service request counts across equal sub-windows.
struct RateSeries {
  std::string onion;
  std::vector<std::int64_t> per_window;
  double mean_rate = 0.0;  ///< requests per window
  /// Coefficient of variation (stddev/mean); low for machine-steady
  /// traffic, higher for bursty human traffic.
  double cv = 0.0;
};

struct TimeSeriesReport {
  int windows = 0;
  util::Seconds window_length = 0;
  /// Series for every resolved service with at least `min_requests`
  /// total requests, descending by volume.
  std::vector<RateSeries> series;
};

struct TimeSeriesConfig {
  int windows = 6;
  std::int64_t min_requests = 30;
};

/// Buckets the (resolved) requests of `stream` into sub-windows.
TimeSeriesReport build_time_series(const RequestStream& stream,
                                   const DescriptorResolver& resolver,
                                   const TimeSeriesConfig& config = {});

}  // namespace torsim::popularity
