#include "popularity/harvest_stream.hpp"

#include <algorithm>

namespace torsim::popularity {

RequestStream stream_from_fetch_logs(
    const hsdir::DirectoryNetwork& dirnet,
    std::span<const relay::RelayId> attacker_relays) {
  RequestStream stream;
  for (const relay::RelayId id : attacker_relays) {
    const hsdir::DescriptorStore* store = dirnet.find_store(id);
    if (store == nullptr) continue;
    for (const hsdir::FetchRecord& record : store->fetch_log()) {
      DescriptorRequest request;
      request.descriptor_id = record.descriptor_id;
      request.time = record.time;
      stream.requests.push_back(request);
      // From the HSDir's vantage point every request is "real" traffic;
      // resolution later decides which were for published services.
      ++stream.real_requests;
    }
  }
  std::sort(stream.requests.begin(), stream.requests.end(),
            [](const DescriptorRequest& a, const DescriptorRequest& b) {
              return a.time < b.time;
            });
  return stream;
}

}  // namespace torsim::popularity
