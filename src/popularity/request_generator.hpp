// Sec. V: the client descriptor-request stream an attacker-controlled
// HSDir ring observes over a measurement window.
//
// Real services generate Poisson request streams at their popularity
// rate (Table II head pinned, Zipf tail). On top of that, the paper
// found that ~80% of all requests asked for descriptor IDs that were
// *never published* (dead services, stale search-engine databases);
// these "phantom" requests are generated against onion addresses outside
// the population.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/digest.hpp"
#include "obs/metrics.hpp"
#include "population/population.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace torsim::popularity {

struct DescriptorRequest {
  crypto::DescriptorId descriptor_id{};
  util::UnixTime time = 0;
};

struct RequestGeneratorConfig {
  std::uint64_t seed = 1305;
  /// Window start; 0 means the paper's 2013-02-04 10:00 UTC.
  util::UnixTime window_start = 0;
  util::Seconds window_length = 2 * util::kSecondsPerHour;
  /// Target share of requests aimed at never-published descriptors.
  double phantom_request_share = 0.80;
  /// Unique phantom descriptor IDs, as a multiple of the number of
  /// requested real services. The paper saw 23,010 unresolved unique IDs
  /// against 6,113 resolved; each requested service resolves ~2.2 IDs
  /// (two replicas plus clock-skewed derivations) and the Zipf tail of
  /// the phantom pool draws no requests at all, so the pool multiple
  /// must sit well above the 23,010/6,113 = 3.8 headline ratio.
  double phantom_id_ratio = 8.0;
  /// Optional metrics sink ("requests.*" counters). Must outlive the
  /// generator. See docs/observability.md.
  obs::MetricsRegistry* metrics = nullptr;
};

struct RequestStream {
  std::vector<DescriptorRequest> requests;
  std::int64_t real_requests = 0;
  std::int64_t phantom_requests = 0;
  std::int64_t real_ids = 0;
  std::int64_t phantom_ids = 0;
};

class RequestGenerator {
 public:
  explicit RequestGenerator(RequestGeneratorConfig config = {});

  /// Generates the full request stream for the window, time-sorted.
  RequestStream generate(const population::Population& pop) const;

 private:
  RequestGeneratorConfig config_;
};

}  // namespace torsim::popularity
