// Sec. V's detective work on the most popular services: the authors
// noticed the top addresses returned 503s, exposed Apache server-status
// pages with ~330 KB/s of almost-pure POST traffic, and that their
// *identical server uptimes* betrayed a shared physical host — leading
// to the "Goldnet" conclusion. This module reproduces that inference
// over the simulated crawl: fingerprint popular services by their HTTP
// behaviour, group them into physical servers by uptime, and classify
// the clusters as botnet C&C infrastructure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "popularity/resolver.hpp"

namespace torsim::popularity {

/// Observable HTTP behaviour of one popular service.
struct ServiceFingerprint {
  std::string onion;
  std::int64_t requests_per_2h = 0;
  bool http_503 = false;
  bool server_status_exposed = false;
  double traffic_bytes_per_sec = 0.0;
  double requests_per_sec = 0.0;
  std::int64_t apache_uptime_seconds = 0;
};

/// A cluster of onion addresses inferred to share one physical server.
struct PhysicalServer {
  std::int64_t apache_uptime_seconds = 0;
  std::vector<std::string> onions;
  double mean_traffic_bytes_per_sec = 0.0;
  double mean_requests_per_sec = 0.0;
};

struct BotnetInferenceReport {
  /// Services among the ranking head that match the C&C fingerprint
  /// (503 + server-status + heavy constant traffic).
  std::vector<ServiceFingerprint> cnc_candidates;
  /// Candidates grouped into physical servers by identical uptime.
  std::vector<PhysicalServer> physical_servers;
};

struct BotnetInferenceConfig {
  /// How deep into the popularity ranking to probe.
  std::size_t probe_top = 50;
  /// Traffic floor to call the behaviour "botnet-like" (bytes/sec).
  double min_traffic = 100.0 * 1024.0;
  double min_requests_per_sec = 3.0;
};

/// Probes the top of the popularity ranking against the population's
/// observable service profiles and reproduces the Goldnet inference.
BotnetInferenceReport infer_botnet_infrastructure(
    const ResolutionReport& ranking, const population::Population& pop,
    const BotnetInferenceConfig& config = {});

/// The paper's headline conclusion, quantified: what fraction of all
/// resolved client requests go to botnet C&C infrastructure, adult
/// content, markets, and everything else.
struct CategoryShares {
  double botnet = 0.0;  ///< Goldnet + Skynet + bitcoin-pool + unknown C&C
  double adult = 0.0;
  double market = 0.0;  ///< SilkRoad / BlackMarketReloaded / phishing
  double other = 0.0;
  std::int64_t total_requests = 0;
};

CategoryShares category_shares(const ResolutionReport& ranking,
                               const population::Population& pop);

}  // namespace torsim::popularity
