#include "popularity/request_generator.hpp"

#include <algorithm>

namespace torsim::popularity {

RequestGenerator::RequestGenerator(RequestGeneratorConfig config)
    : config_(config) {
  if (config_.window_start == 0)
    config_.window_start = util::make_utc(2013, 2, 4, 10, 0, 0);
}

RequestStream RequestGenerator::generate(
    const population::Population& pop) const {
  util::Rng rng(config_.seed);
  RequestStream stream;
  const util::UnixTime t0 = config_.window_start;
  const double window_2h_units =
      static_cast<double>(config_.window_length) /
      static_cast<double>(2 * util::kSecondsPerHour);

  // --- Real requests: Poisson per requested service -----------------
  for (const population::Population::ServiceRef svc : pop.services()) {
    if (svc.requests_per_2h() <= 0.0) continue;
    const std::int64_t n =
        rng.poisson(svc.requests_per_2h() * window_2h_units);
    if (n == 0) continue;
    ++stream.real_ids;  // counts requested services; ids tallied below
    const auto permanent_id =
        crypto::permanent_id_from_fingerprint(svc.key().fingerprint());
    for (std::int64_t i = 0; i < n; ++i) {
      DescriptorRequest req;
      req.time = t0 + rng.uniform_int(0, config_.window_length - 1);
      // Clients ask a random replica; a few run with a skewed clock and
      // derive yesterday's/tomorrow's period (the paper resolved against
      // several days of derived IDs for exactly this reason).
      util::UnixTime derive_time = req.time;
      const double clock_roll = rng.uniform01();
      if (clock_roll < 0.01)
        derive_time -= util::kSecondsPerDay;
      else if (clock_roll < 0.02)
        derive_time += util::kSecondsPerDay;
      const auto replica = static_cast<std::uint8_t>(
          rng.uniform_int(0, crypto::kNumReplicas - 1));
      req.descriptor_id = crypto::descriptor_id(
          permanent_id, crypto::time_period(derive_time, permanent_id),
          replica);
      stream.requests.push_back(req);
      ++stream.real_requests;
    }
  }

  // --- Phantom requests: never-published descriptor IDs --------------
  // Volume chosen so phantom/total ~= phantom_request_share.
  const double share = std::clamp(config_.phantom_request_share, 0.0, 0.999);
  const auto phantom_total = static_cast<std::int64_t>(
      static_cast<double>(stream.real_requests) * share / (1.0 - share));
  // Volume and ID count degrade together: a window with no phantom
  // traffic fabricates no phantom IDs either (a lone zero-request
  // phantom id would skew the Table II denominators at small --scale).
  const auto phantom_ids =
      phantom_total <= 0
          ? std::int64_t{0}
          : std::max<std::int64_t>(
                1, static_cast<std::int64_t>(
                       static_cast<double>(stream.real_ids) *
                       config_.phantom_id_ratio));
  stream.phantom_ids = phantom_ids;

  // Phantom IDs: descriptor IDs of onion addresses that never existed
  // (random keys outside the population). Request volume per phantom id
  // is Zipf-ish: a few dead-but-famous services soak most of it.
  std::vector<crypto::DescriptorId> ids;
  ids.reserve(static_cast<std::size_t>(phantom_ids));
  for (std::int64_t i = 0; i < phantom_ids; ++i) {
    const auto key = crypto::KeyPair::generate(rng);
    const auto pid = crypto::permanent_id_from_fingerprint(key.fingerprint());
    ids.push_back(crypto::descriptor_id(
        pid, crypto::time_period(t0, pid),
        static_cast<std::uint8_t>(rng.uniform_int(0, 1))));
  }
  std::vector<double> weights(ids.size());
  double weight_total = 0.0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
    weight_total += weights[i];
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto n = rng.poisson(static_cast<double>(phantom_total) *
                               weights[i] / weight_total);
    for (std::int64_t j = 0; j < n; ++j) {
      DescriptorRequest req;
      req.descriptor_id = ids[i];
      req.time = t0 + rng.uniform_int(0, config_.window_length - 1);
      stream.requests.push_back(req);
      ++stream.phantom_requests;
    }
  }

  std::sort(stream.requests.begin(), stream.requests.end(),
            [](const DescriptorRequest& a, const DescriptorRequest& b) {
              return a.time < b.time;
            });
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m.counter("requests.real").inc(stream.real_requests);
    m.counter("requests.phantom").inc(stream.phantom_requests);
    m.counter("requests.real_ids").inc(stream.real_ids);
    m.counter("requests.phantom_ids").inc(stream.phantom_ids);
  }
  return stream;
}

}  // namespace torsim::popularity
