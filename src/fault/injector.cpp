#include "fault/injector.hpp"

namespace torsim::fault {
namespace {

// Decision sites: distinct labels so the streams behind different fault
// kinds are decorrelated even for identical event keys.
constexpr std::uint64_t kSiteConnect = 0xC0;
constexpr std::uint64_t kSiteFlaky = 0xF1;
constexpr std::uint64_t kSiteOutage = 0xF2;
constexpr std::uint64_t kSitePublishLoss = 0xD1;
constexpr std::uint64_t kSitePublishDelay = 0xD2;
constexpr std::uint64_t kSiteCircuit = 0xE1;

}  // namespace

const char* to_string(ConnectFault fault) {
  switch (fault) {
    case ConnectFault::kNone: return "none";
    case ConnectFault::kDrop: return "drop";
    case ConnectFault::kTimeout: return "timeout";
    case ConnectFault::kCorrupt: return "corrupt";
  }
  return "?";
}

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kConnectDrop: return "connect-drop";
    case FailureKind::kConnectTimeout: return "connect-timeout";
    case FailureKind::kConnectCorrupt: return "connect-corrupt";
    case FailureKind::kHsdirUnresponsive: return "hsdir-unresponsive";
    case FailureKind::kPublishLost: return "publish-lost";
    case FailureKind::kPublishDelayed: return "publish-delayed";
    case FailureKind::kCircuitStall: return "circuit-stall";
    case FailureKind::kRetriesExhausted: return "retries-exhausted";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), base_(plan.seed), enabled_(plan.enabled()) {}

double FaultInjector::draw(std::uint64_t site, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) const {
  return base_.child(site).child(a).child(b).child(c).uniform01();
}

ConnectFault FaultInjector::connect_fault(std::uint64_t key,
                                          std::uint64_t detail,
                                          int attempt) const {
  if (!enabled_) return ConnectFault::kNone;
  // One draw, threshold bands: scaling the rates up can only move an
  // event from kNone into a fault band, never between runs' events.
  const double u =
      draw(kSiteConnect, key, detail, static_cast<std::uint64_t>(attempt));
  if (u < plan_.connect_drop_rate) return ConnectFault::kDrop;
  if (u < plan_.connect_drop_rate + plan_.connect_timeout_rate)
    return ConnectFault::kTimeout;
  if (u < plan_.connect_drop_rate + plan_.connect_timeout_rate +
              plan_.connect_corrupt_rate)
    return ConnectFault::kCorrupt;
  return ConnectFault::kNone;
}

bool FaultInjector::hsdir_unresponsive(std::uint64_t relay_key,
                                       util::UnixTime now) const {
  if (!enabled_) return false;
  if (plan_.hsdir_flaky_fraction <= 0 || plan_.hsdir_outage_rate <= 0)
    return false;
  if (draw(kSiteFlaky, relay_key, 0, 0) >= plan_.hsdir_flaky_fraction)
    return false;
  const auto window = static_cast<std::uint64_t>(
      now / (plan_.hsdir_outage_window > 0 ? plan_.hsdir_outage_window : 1));
  return draw(kSiteOutage, relay_key, window, 0) < plan_.hsdir_outage_rate;
}

bool FaultInjector::publish_lost(std::uint64_t descriptor_key,
                                 std::uint64_t relay_key, int attempt) const {
  if (!enabled_ || plan_.publish_loss_rate <= 0) return false;
  return base_.child(kSitePublishLoss)
             .child(descriptor_key)
             .child(relay_key)
             .child(static_cast<std::uint64_t>(attempt))
             .uniform01() < plan_.publish_loss_rate;
}

bool FaultInjector::publish_delayed(std::uint64_t descriptor_key,
                                    std::uint64_t relay_key) const {
  if (!enabled_ || plan_.publish_delay_rate <= 0) return false;
  return draw(kSitePublishDelay, descriptor_key, relay_key, 0) <
         plan_.publish_delay_rate;
}

bool FaultInjector::circuit_stalled(std::uint64_t key, std::uint64_t detail,
                                    int attempt) const {
  if (!enabled_ || plan_.circuit_stall_rate <= 0) return false;
  return draw(kSiteCircuit, key, detail, static_cast<std::uint64_t>(attempt)) <
         plan_.circuit_stall_rate;
}

std::uint64_t FaultInjector::key_of(std::string_view text) {
  return key_of(reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size());
}

std::uint64_t FaultInjector::key_of(const std::uint8_t* data,
                                    std::size_t size) {
  // FNV-1a, 64-bit: stable across platforms and runs.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace torsim::fault
