#include "fault/injector.hpp"

namespace torsim::fault {
namespace {

// Decision sites: distinct labels so the streams behind different fault
// kinds are decorrelated even for identical event keys.
constexpr std::uint64_t kSiteConnect = 0xC0;
constexpr std::uint64_t kSiteFlaky = 0xF1;
constexpr std::uint64_t kSiteOutage = 0xF2;
constexpr std::uint64_t kSitePublishLoss = 0xD1;
constexpr std::uint64_t kSitePublishDelay = 0xD2;
constexpr std::uint64_t kSiteCircuit = 0xE1;

}  // namespace

const char* to_string(ConnectFault fault) {
  switch (fault) {
    case ConnectFault::kNone: return "none";
    case ConnectFault::kDrop: return "drop";
    case ConnectFault::kTimeout: return "timeout";
    case ConnectFault::kCorrupt: return "corrupt";
  }
  return "?";
}

const char* to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kConnectDrop: return "connect-drop";
    case FailureKind::kConnectTimeout: return "connect-timeout";
    case FailureKind::kConnectCorrupt: return "connect-corrupt";
    case FailureKind::kHsdirUnresponsive: return "hsdir-unresponsive";
    case FailureKind::kPublishLost: return "publish-lost";
    case FailureKind::kPublishDelayed: return "publish-delayed";
    case FailureKind::kCircuitStall: return "circuit-stall";
    case FailureKind::kRetriesExhausted: return "retries-exhausted";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), base_(plan.seed), enabled_(plan.enabled()) {}

void FaultInjector::set_metrics(obs::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    counters_ = FaultCounters{};
    return;
  }
  counters_.connect_drop = &metrics->counter("fault.connect_drop");
  counters_.connect_timeout = &metrics->counter("fault.connect_timeout");
  counters_.connect_corrupt = &metrics->counter("fault.connect_corrupt");
  counters_.retries = &metrics->counter("fault.retries");
  counters_.hsdir_unresponsive =
      &metrics->counter("fault.hsdir_unresponsive");
  counters_.publish_lost = &metrics->counter("fault.publish_lost");
  counters_.publish_delayed = &metrics->counter("fault.publish_delayed");
  counters_.circuit_stalls = &metrics->counter("fault.circuit_stalls");
}

double FaultInjector::draw(std::uint64_t site, std::uint64_t a,
                           std::uint64_t b, std::uint64_t c) const {
  return base_.child(site).child(a).child(b).child(c).uniform01();
}

ConnectFault FaultInjector::connect_fault(std::uint64_t key,
                                          std::uint64_t detail,
                                          int attempt) const {
  if (!enabled_) return ConnectFault::kNone;
  // One draw, threshold bands: scaling the rates up can only move an
  // event from kNone into a fault band, never between runs' events.
  // A query at attempt > 1 means some component is retrying after a
  // fault — counted here so every instrumented call site contributes.
  if (attempt > 1 && counters_.retries != nullptr) counters_.retries->inc();
  const double u =
      draw(kSiteConnect, key, detail, static_cast<std::uint64_t>(attempt));
  if (u < plan_.connect_drop_rate) {
    if (counters_.connect_drop != nullptr) counters_.connect_drop->inc();
    return ConnectFault::kDrop;
  }
  if (u < plan_.connect_drop_rate + plan_.connect_timeout_rate) {
    if (counters_.connect_timeout != nullptr)
      counters_.connect_timeout->inc();
    return ConnectFault::kTimeout;
  }
  if (u < plan_.connect_drop_rate + plan_.connect_timeout_rate +
              plan_.connect_corrupt_rate) {
    if (counters_.connect_corrupt != nullptr)
      counters_.connect_corrupt->inc();
    return ConnectFault::kCorrupt;
  }
  return ConnectFault::kNone;
}

bool FaultInjector::hsdir_unresponsive(std::uint64_t relay_key,
                                       util::UnixTime now) const {
  if (!enabled_) return false;
  if (plan_.hsdir_flaky_fraction <= 0 || plan_.hsdir_outage_rate <= 0)
    return false;
  if (draw(kSiteFlaky, relay_key, 0, 0) >= plan_.hsdir_flaky_fraction)
    return false;
  const auto window = static_cast<std::uint64_t>(
      now / (plan_.hsdir_outage_window > 0 ? plan_.hsdir_outage_window : 1));
  const bool down =
      draw(kSiteOutage, relay_key, window, 0) < plan_.hsdir_outage_rate;
  if (down && counters_.hsdir_unresponsive != nullptr)
    counters_.hsdir_unresponsive->inc();
  return down;
}

bool FaultInjector::publish_lost(std::uint64_t descriptor_key,
                                 std::uint64_t relay_key, int attempt) const {
  if (!enabled_ || plan_.publish_loss_rate <= 0) return false;
  if (attempt > 1 && counters_.retries != nullptr) counters_.retries->inc();
  const bool lost = base_.child(kSitePublishLoss)
                        .child(descriptor_key)
                        .child(relay_key)
                        .child(static_cast<std::uint64_t>(attempt))
                        .uniform01() < plan_.publish_loss_rate;
  if (lost && counters_.publish_lost != nullptr)
    counters_.publish_lost->inc();
  return lost;
}

bool FaultInjector::publish_delayed(std::uint64_t descriptor_key,
                                    std::uint64_t relay_key) const {
  if (!enabled_ || plan_.publish_delay_rate <= 0) return false;
  const bool delayed = draw(kSitePublishDelay, descriptor_key, relay_key, 0) <
                       plan_.publish_delay_rate;
  if (delayed && counters_.publish_delayed != nullptr)
    counters_.publish_delayed->inc();
  return delayed;
}

bool FaultInjector::circuit_stalled(std::uint64_t key, std::uint64_t detail,
                                    int attempt) const {
  if (!enabled_ || plan_.circuit_stall_rate <= 0) return false;
  const bool stalled =
      draw(kSiteCircuit, key, detail, static_cast<std::uint64_t>(attempt)) <
      plan_.circuit_stall_rate;
  if (stalled && counters_.circuit_stalls != nullptr)
    counters_.circuit_stalls->inc();
  return stalled;
}

std::uint64_t FaultInjector::key_of(std::string_view text) {
  return key_of(reinterpret_cast<const std::uint8_t*>(text.data()),
                text.size());
}

std::uint64_t FaultInjector::key_of(const std::uint8_t* data,
                                    std::size_t size) {
  // FNV-1a, 64-bit: stable across platforms and runs.
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace torsim::fault
