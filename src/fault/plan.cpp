#include "fault/plan.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "util/strings.hpp"

namespace torsim::fault {

util::Seconds RetryPolicy::backoff_before(int attempt) const {
  if (attempt < 2) return 0;
  double backoff = static_cast<double>(base_backoff);
  for (int i = 2; i < attempt; ++i) backoff *= backoff_multiplier;
  return static_cast<util::Seconds>(std::llround(backoff));
}

util::Seconds RetryPolicy::total_backoff(int attempts) const {
  util::Seconds total = 0;
  for (int a = 2; a <= attempts; ++a) total += backoff_before(a);
  return total;
}

bool FaultPlan::enabled() const {
  return connect_drop_rate > 0 || connect_timeout_rate > 0 ||
         connect_corrupt_rate > 0 ||
         (hsdir_flaky_fraction > 0 && hsdir_outage_rate > 0) ||
         publish_loss_rate > 0 || publish_delay_rate > 0 ||
         circuit_stall_rate > 0;
}

FaultPlan FaultPlan::profile(std::string_view name) {
  FaultPlan plan;
  if (name == "none" || name.empty()) return plan;
  if (name == "mild") {
    plan.connect_drop_rate = 0.01;
    plan.connect_timeout_rate = 0.03;
    plan.hsdir_flaky_fraction = 0.05;
    plan.hsdir_outage_rate = 0.25;
    plan.publish_loss_rate = 0.02;
    plan.circuit_stall_rate = 0.02;
    return plan;
  }
  if (name == "moderate") {
    plan.connect_drop_rate = 0.03;
    plan.connect_timeout_rate = 0.10;
    plan.connect_corrupt_rate = 0.01;
    plan.hsdir_flaky_fraction = 0.15;
    plan.hsdir_outage_rate = 0.5;
    plan.publish_loss_rate = 0.05;
    plan.publish_delay_rate = 0.05;
    plan.circuit_stall_rate = 0.05;
    return plan;
  }
  if (name == "severe") {
    plan.connect_drop_rate = 0.10;
    plan.connect_timeout_rate = 0.25;
    plan.connect_corrupt_rate = 0.03;
    plan.hsdir_flaky_fraction = 0.35;
    plan.hsdir_outage_rate = 0.75;
    plan.publish_loss_rate = 0.15;
    plan.publish_delay_rate = 0.10;
    plan.circuit_stall_rate = 0.15;
    plan.retry.max_attempts = 4;
    return plan;
  }
  throw std::invalid_argument("unknown fault profile '" + std::string(name) +
                              "' (none|mild|moderate|severe or key=value list)");
}

namespace {

double parse_rate(const std::string& key, const std::string& value) {
  std::size_t consumed = 0;
  double rate = 0;
  try {
    rate = std::stod(value, &consumed);
  } catch (const std::exception&) {
    consumed = std::string::npos;
  }
  if (consumed != value.size() || rate < 0.0 || rate > 1.0)
    throw std::invalid_argument("fault rate '" + key + "=" + value +
                                "' must be a number in [0,1]");
  return rate;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  if (spec.find('=') == std::string_view::npos) return profile(spec);
  FaultPlan plan;
  for (const std::string& item : util::split(spec, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("fault spec item '" + item +
                                  "' is not key=value");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "drop") plan.connect_drop_rate = parse_rate(key, value);
    else if (key == "timeout") plan.connect_timeout_rate = parse_rate(key, value);
    else if (key == "corrupt") plan.connect_corrupt_rate = parse_rate(key, value);
    else if (key == "hsdir-flaky") plan.hsdir_flaky_fraction = parse_rate(key, value);
    else if (key == "hsdir-outage") plan.hsdir_outage_rate = parse_rate(key, value);
    else if (key == "publish-loss") plan.publish_loss_rate = parse_rate(key, value);
    else if (key == "publish-delay") plan.publish_delay_rate = parse_rate(key, value);
    else if (key == "stall") plan.circuit_stall_rate = parse_rate(key, value);
    else if (key == "retries") plan.retry.max_attempts = std::stoi(value);
    else if (key == "seed") plan.seed = std::stoull(value);
    else
      throw std::invalid_argument("unknown fault spec key '" + key + "'");
  }
  if (plan.retry.max_attempts < 1)
    throw std::invalid_argument("fault spec: retries must be >= 1");
  return plan;
}

std::string FaultPlan::describe() const {
  if (!enabled()) return "faults: none";
  char line[256];
  std::snprintf(line, sizeof line,
                "faults: drop=%.2f timeout=%.2f corrupt=%.2f "
                "hsdir=%.2fx%.2f publish-loss=%.2f publish-delay=%.2f "
                "stall=%.2f retries=%d seed=%llu",
                connect_drop_rate, connect_timeout_rate, connect_corrupt_rate,
                hsdir_flaky_fraction, hsdir_outage_rate, publish_loss_rate,
                publish_delay_rate, circuit_stall_rate, retry.max_attempts,
                static_cast<unsigned long long>(seed));
  return line;
}

}  // namespace torsim::fault
