// Fault plans: the declarative description of how the simulated network
// misbehaves during a run. The paper's measurements survived a hostile
// substrate — relay churn, scan timeouts, descriptor expiry, unreachable
// services (87% port coverage in Fig. 1, 80% unresolvable requests in
// Table II) — and a FaultPlan lets every pipeline be re-run against a
// quantified dose of exactly those failure modes. A plan is pure data;
// `fault::FaultInjector` turns it into deterministic per-event decisions.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/time.hpp"

namespace torsim::fault {

/// Bounded retry with exponential backoff, shared by every component
/// that retries a faulted operation (descriptor fetches, publishes,
/// probe re-sends, rendezvous establishment). Backoff is *accounted*
/// sim-time — the simulator does not sleep, it records the cost.
struct RetryPolicy {
  /// Total tries including the first (1 = no retry).
  int max_attempts = 3;
  /// Backoff before the second try.
  util::Seconds base_backoff = 2;
  /// Multiplier per further try (exponential backoff).
  double backoff_multiplier = 2.0;

  /// Backoff charged before try `attempt` (attempt >= 2; 0 otherwise).
  util::Seconds backoff_before(int attempt) const;
  /// Total backoff charged across `attempts` tries.
  util::Seconds total_backoff(int attempts) const;
};

/// All fault rates a run can be subjected to. Every rate defaults to 0:
/// a default-constructed plan is the exact no-fault behaviour, bit for
/// bit. Rates are probabilities in [0, 1] applied per event by
/// FaultInjector; all decisions are threshold-coupled (one uniform draw
/// per event key, faulted iff draw < rate), so raising a rate can only
/// grow the set of faulted events — headline metrics degrade
/// monotonically in every rate, never chaotically.
struct FaultPlan {
  /// Seed for the decision streams; independent of the scenario seed so
  /// the same landscape can be swept under many fault plans.
  std::uint64_t seed = 0xfa017;

  // --- connection-level faults (scan probes, crawl visits) ----------
  /// Connection dropped with a RST: reads as "closed" (definitive — the
  /// scanner does not retry a refused port).
  double connect_drop_rate = 0.0;
  /// Connection times out: no answer (retryable).
  double connect_timeout_rate = 0.0;
  /// Connection succeeds but the payload arrives garbled.
  double connect_corrupt_rate = 0.0;

  // --- HSDir faults -------------------------------------------------
  /// Fraction of directories that are flaky (have outage windows).
  double hsdir_flaky_fraction = 0.0;
  /// Probability a flaky directory is unresponsive in a given window.
  double hsdir_outage_rate = 0.0;
  /// Width of one outage window of sim-time.
  util::Seconds hsdir_outage_window = util::kSecondsPerHour;

  // --- descriptor publish faults ------------------------------------
  /// One replica upload to one directory is silently lost.
  double publish_loss_rate = 0.0;
  /// Upload arrives but the directory indexes it late.
  double publish_delay_rate = 0.0;
  /// How late a delayed upload becomes fetchable.
  util::Seconds publish_delay = 2 * util::kSecondsPerHour;

  // --- circuit faults -----------------------------------------------
  /// A circuit stalls at the cell level mid-establishment (rendezvous /
  /// introduction circuits; retryable).
  double circuit_stall_rate = 0.0;

  RetryPolicy retry{};

  /// True when any rate is non-zero (a disabled plan injects nothing
  /// and costs nothing on the hot paths).
  bool enabled() const;

  /// Named profiles: "none", "mild", "moderate", "severe".
  static FaultPlan profile(std::string_view name);

  /// Parses a profile name or a comma-separated key=value spec, e.g.
  ///   "drop=0.1,timeout=0.05,hsdir-flaky=0.2,hsdir-outage=0.5,
  ///    publish-loss=0.1,publish-delay=0.2,stall=0.1,corrupt=0.01,
  ///    retries=4,seed=7"
  /// Throws std::invalid_argument on unknown keys or bad values.
  static FaultPlan parse(std::string_view spec);

  /// One-line human summary (CLI banners, logs).
  std::string describe() const;
};

}  // namespace torsim::fault
