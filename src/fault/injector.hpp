// Deterministic fault injection.
//
// A FaultInjector turns a FaultPlan into per-event fault decisions that
// are *pure functions of (plan seed, site, event keys)* — they consult
// no mutable state and draw nothing from the scenario RNG. Two
// consequences, both load-bearing:
//
//   1. **Serial equivalence.** A decision does not depend on when, in
//      what order, or on which thread it is queried, so fault-injected
//      parallel runs stay bit-identical to serial ones (the same
//      contract as util/parallel.hpp — see docs/concurrency.md).
//   2. **Monotone coupling.** Every decision burns exactly one uniform
//      draw per event key and compares it against rate thresholds.
//      The draw is independent of the rates, so raising a rate strictly
//      grows the set of faulted events: sweeping a rate from 0% to 50%
//      degrades coverage monotonically instead of reshuffling the run.
//
// See docs/fault-injection.md for the taxonomy and the contract.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace torsim::fault {

/// What happened to one attempted connection.
enum class ConnectFault {
  kNone,     ///< connection behaves as the service profile dictates
  kDrop,     ///< RST — reads as closed, not worth retrying
  kTimeout,  ///< no answer — retryable
  kCorrupt,  ///< answered, payload garbled
};

const char* to_string(ConnectFault fault);

/// Typed failure taxonomy surfaced by the instrumented components —
/// every injected fault either retries to success or ends up as one of
/// these (never a silent drop).
enum class FailureKind {
  kConnectDrop,        ///< probe/visit refused (injected RST)
  kConnectTimeout,     ///< probe/visit timed out after final retry
  kConnectCorrupt,     ///< payload arrived garbled
  kHsdirUnresponsive,  ///< directory skipped during an outage window
  kPublishLost,        ///< descriptor upload lost after final retry
  kPublishDelayed,     ///< descriptor indexed late by the directory
  kCircuitStall,       ///< circuit stalled mid-establishment
  kRetriesExhausted,   ///< bounded retry gave up (terminal outcome)
};

const char* to_string(FailureKind kind);

/// One typed failure, as logged by the component that observed it.
struct FailureRecord {
  FailureKind kind = FailureKind::kConnectTimeout;
  /// Site-specific subject (service index, relay id, string-key hash).
  std::uint64_t key = 0;
  /// Site-specific detail (port, descriptor-id prefix, window index).
  std::uint64_t detail = 0;
  /// 1-based attempt that observed the failure.
  int attempt = 1;

  bool operator==(const FailureRecord&) const = default;
};

using FailureLog = std::vector<FailureRecord>;

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  const RetryPolicy& retry() const { return plan_.retry; }
  bool enabled() const { return enabled_; }

  /// Points the injector at a metrics registry: every fault decision
  /// bumps a "fault.*" counter (injected faults, retries observed,
  /// timeouts). Counters are atomic and the set of queried events is
  /// fixed by the scenario, so totals stay deterministic even when
  /// decisions are queried from parallel regions. Null disables.
  /// The registry must outlive the injector.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// Fault decision for connection attempt `attempt` to subject
  /// (`key`, `detail`) — e.g. (service index, port) for a scan probe or
  /// (onion hash, port) for a crawl visit.
  ConnectFault connect_fault(std::uint64_t key, std::uint64_t detail,
                             int attempt) const;

  /// True when directory `relay_key` is unresponsive at sim-time `now`
  /// (flaky directory inside one of its outage windows). Constant
  /// within a window of `plan.hsdir_outage_window` seconds.
  bool hsdir_unresponsive(std::uint64_t relay_key, util::UnixTime now) const;

  /// True when the upload of descriptor `descriptor_key` to directory
  /// `relay_key` is lost on try `attempt`.
  bool publish_lost(std::uint64_t descriptor_key, std::uint64_t relay_key,
                    int attempt) const;

  /// True when that upload (once it succeeds) is indexed late.
  bool publish_delayed(std::uint64_t descriptor_key,
                       std::uint64_t relay_key) const;

  /// True when circuit establishment attempt `attempt` for subject
  /// (`key`, `detail`) stalls at the cell level.
  bool circuit_stalled(std::uint64_t key, std::uint64_t detail,
                       int attempt) const;

  /// Stable 64-bit key for string subjects (onion addresses).
  static std::uint64_t key_of(std::string_view text);
  /// Stable 64-bit key for binary subjects (descriptor ids).
  static std::uint64_t key_of(const std::uint8_t* data, std::size_t size);

 private:
  /// The one uniform draw behind every decision: a pure function of
  /// (plan seed, site, a, b, c).
  double draw(std::uint64_t site, std::uint64_t a, std::uint64_t b,
              std::uint64_t c) const;

  FaultPlan plan_;
  util::Rng base_;
  bool enabled_ = false;

  // Cached counter handles (registration locks; increments do not).
  struct FaultCounters {
    obs::Counter* connect_drop = nullptr;
    obs::Counter* connect_timeout = nullptr;
    obs::Counter* connect_corrupt = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* hsdir_unresponsive = nullptr;
    obs::Counter* publish_lost = nullptr;
    obs::Counter* publish_delayed = nullptr;
    obs::Counter* circuit_stalls = nullptr;
  };
  FaultCounters counters_{};
};

}  // namespace torsim::fault
