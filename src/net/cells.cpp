#include "net/cells.hpp"

namespace torsim::net {

Circuit::Circuit(std::vector<std::uint32_t> hops) : hops_(std::move(hops)) {
  if (hops_.empty())
    throw std::invalid_argument("Circuit: need at least one hop");
}

void Circuit::transmit(int cells) {
  if (cells < 0) throw std::invalid_argument("Circuit::transmit: cells < 0");
  trace_.push_back(cells);
}

void Circuit::transmit_pattern(const CellTrace& pattern) {
  for (int cells : pattern) transmit(cells);
}

const CellTrace& Circuit::observed_at(std::size_t index) const {
  if (index >= hops_.size())
    throw std::out_of_range("Circuit::observed_at: bad hop index");
  return trace_;
}

const CellTrace* Circuit::observed_by(std::uint32_t node) const {
  for (std::uint32_t hop : hops_)
    if (hop == node) return &trace_;
  return nullptr;
}

CellTrace background_cells(util::Rng& rng, int ticks) {
  CellTrace trace(static_cast<std::size_t>(ticks));
  for (int& cell : trace) {
    const double roll = rng.uniform01();
    if (roll < 0.55)
      cell = 0;
    else if (roll < 0.90)
      cell = static_cast<int>(rng.uniform_int(1, 3));
    else
      cell = static_cast<int>(rng.uniform_int(4, 20));
  }
  return trace;
}

}  // namespace torsim::net
