// Cell-level view of a circuit: Tor moves fixed-size cells, and what a
// relay can *observe* about a circuit it participates in is the timing
// pattern of those cells — modelled here as cells-per-100ms-tick. Both
// the traffic-signature attack (inject a distinctive pattern) and its
// detection (match the pattern at the entry guard) operate on these
// traces.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace torsim::net {

/// Cells observed per 100 ms tick on one circuit.
using CellTrace = std::vector<int>;

/// A circuit through a sequence of nodes (front = entry guard). Cells
/// transmitted in a tick are relayed through — and therefore observed
/// by — every hop; the per-hop traces stay tick-aligned.
class Circuit {
 public:
  /// `hops` are opaque node handles (the simulator's relay ids).
  explicit Circuit(std::vector<std::uint32_t> hops);

  const std::vector<std::uint32_t>& hops() const { return hops_; }

  /// One tick carrying `cells` cells end-to-end (>= 0).
  void transmit(int cells);

  /// One silent tick.
  void tick() { transmit(0); }

  /// Transmits a multi-tick pattern.
  void transmit_pattern(const CellTrace& pattern);

  /// The trace as observed by hop `index` (0 = guard). In this model
  /// every hop sees the same cell counts — Tor cells are fixed-size and
  /// unbatched, which is exactly why timing signatures traverse the
  /// whole circuit intact.
  const CellTrace& observed_at(std::size_t index) const;

  /// Trace observed by a specific node, or nullptr if it is not a hop.
  const CellTrace* observed_by(std::uint32_t node) const;

  std::size_t length_ticks() const { return trace_.size(); }

 private:
  std::vector<std::uint32_t> hops_;
  CellTrace trace_;
};

/// Background descriptor-fetch-like traffic for `ticks` ticks: mostly
/// 0–3 cells per tick with occasional bursts.
CellTrace background_cells(util::Rng& rng, int ticks);

}  // namespace torsim::net
