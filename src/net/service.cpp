#include "net/service.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace torsim::net {

const char* to_string(ConnectResult result) {
  switch (result) {
    case ConnectResult::kOpen: return "open";
    case ConnectResult::kClosed: return "closed";
    case ConnectResult::kTimeout: return "timeout";
    case ConnectResult::kAbnormalClose: return "abnormal-close";
  }
  return "?";
}

const char* to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kHttp: return "http";
    case Protocol::kHttps: return "https";
    case Protocol::kSsh: return "ssh";
    case Protocol::kIrc: return "irc";
    case Protocol::kTorChat: return "torchat";
    case Protocol::kSkynetControl: return "skynet-control";
    case Protocol::kBitcoinPool: return "bitcoin-pool";
    case Protocol::kRawTcp: return "raw-tcp";
  }
  return "?";
}

bool TlsCertificate::common_name_is_public_dns() const {
  // Heuristic the paper effectively applied: a CN with a dot that does not
  // end in .onion is a public DNS name.
  if (common_name.find('.') == std::string::npos) return false;
  return !util::ends_with(common_name, ".onion");
}

void ServiceProfile::listen(std::uint16_t port, PortService service) {
  ports_[port] = std::move(service);
  abnormal_.erase(std::remove(abnormal_.begin(), abnormal_.end(), port),
                  abnormal_.end());
}

void ServiceProfile::set_abnormal_close(std::uint16_t port) {
  ports_.erase(port);
  if (std::find(abnormal_.begin(), abnormal_.end(), port) == abnormal_.end())
    abnormal_.push_back(port);
}

ConnectResult ServiceProfile::connect(std::uint16_t port) const {
  if (std::find(abnormal_.begin(), abnormal_.end(), port) != abnormal_.end())
    return ConnectResult::kAbnormalClose;
  return ports_.count(port) ? ConnectResult::kOpen : ConnectResult::kClosed;
}

const PortService* ServiceProfile::service_at(std::uint16_t port) const {
  auto it = ports_.find(port);
  return it == ports_.end() ? nullptr : &it->second;
}

std::vector<std::uint16_t> ServiceProfile::scannable_ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(ports_.size() + abnormal_.size());
  for (const auto& [port, service] : ports_) out.push_back(port);
  out.insert(out.end(), abnormal_.begin(), abnormal_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint16_t> ServiceProfile::open_ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(ports_.size());
  for (const auto& [port, service] : ports_) out.push_back(port);
  return out;
}

}  // namespace torsim::net
