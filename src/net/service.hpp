// Observable behaviour of a (hidden) network service: what a port
// scanner, TLS prober, or HTTP crawler sees when it connects. This is
// the vocabulary that `scan/` and `content/` measure and that
// `population/` synthesizes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace torsim::net {

/// Well-known ports from the paper's Fig. 1.
inline constexpr std::uint16_t kPortHttp = 80;
inline constexpr std::uint16_t kPortHttps = 443;
inline constexpr std::uint16_t kPortSsh = 22;
inline constexpr std::uint16_t kPortIrc = 6667;
inline constexpr std::uint16_t kPortTorChat = 11009;
inline constexpr std::uint16_t kPortSkynet = 55080;
inline constexpr std::uint16_t kPort4050 = 4050;
inline constexpr std::uint16_t kPortHttpAlt = 8080;

/// Result of a TCP connection attempt to one port.
enum class ConnectResult {
  kOpen,           ///< three-way handshake completed, service answered
  kClosed,         ///< RST: nothing listening
  kTimeout,        ///< no answer (filtered / service overloaded / offline)
  kAbnormalClose,  ///< connection accepted then immediately torn down with
                   ///< a non-standard error — the Skynet port-55080
                   ///< signature the paper counts as "open"
};

const char* to_string(ConnectResult result);

/// Application protocol spoken on an open port.
enum class Protocol {
  kHttp,
  kHttps,
  kSsh,
  kIrc,
  kTorChat,
  kSkynetControl,
  kBitcoinPool,
  kRawTcp,
};

const char* to_string(Protocol protocol);

/// An X.509 certificate as seen by the HTTPS prober (only the fields the
/// paper's Sec. III certificate analysis uses).
struct TlsCertificate {
  std::string common_name;   ///< CN; may be an .onion or a public DNS name
  bool self_signed = true;
  bool matches_requested_host = false;  ///< CN == the .onion we connected to
  /// True when the CN is a public DNS name — the deanonymising case the
  /// paper found 34 of.
  bool common_name_is_public_dns() const;
};

/// An HTTP response as served by the hidden service (an HTML document;
/// binary resources are never generated, matching the paper's exclusion).
struct HttpResponse {
  int status = 200;
  std::string body;              ///< the raw HTML document
  bool error_page = false;       ///< error message wrapped in HTML
  bool server_status_page = false;  ///< Apache mod_status exposed
  /// Apache server-status metrics (only meaningful for the botnet C&C
  /// hosts the paper fingerprinted through them).
  double traffic_bytes_per_sec = 0.0;
  double requests_per_sec = 0.0;
  std::int64_t apache_uptime_seconds = 0;
};

/// Full description of one listening port.
struct PortService {
  Protocol protocol = Protocol::kRawTcp;
  /// SSH/IRC banner or other first-line greeting (empty for HTTP).
  std::string banner;
  /// Response served on HTTP GET / (for kHttp/kHttps).
  std::optional<HttpResponse> http;
  /// Certificate presented (for kHttps).
  std::optional<TlsCertificate> certificate;
};

/// The service surface of one host: which ports answer and how.
class ServiceProfile {
 public:
  /// Registers a listening port. Overwrites any previous registration.
  void listen(std::uint16_t port, PortService service);

  /// Marks a port with the Skynet abnormal-close behaviour: connections
  /// are accepted and instantly reset with a non-standard error message.
  void set_abnormal_close(std::uint16_t port);

  /// Result of connecting to `port` (host assumed reachable).
  ConnectResult connect(std::uint16_t port) const;

  /// The service behind an open port, or nullptr if not open.
  const PortService* service_at(std::uint16_t port) const;

  /// All ports that would report kOpen or kAbnormalClose to a scanner.
  std::vector<std::uint16_t> scannable_ports() const;

  /// All genuinely open ports.
  std::vector<std::uint16_t> open_ports() const;

  bool empty() const { return ports_.empty() && abnormal_.empty(); }

 private:
  std::map<std::uint16_t, PortService> ports_;
  std::vector<std::uint16_t> abnormal_;
};

}  // namespace torsim::net
