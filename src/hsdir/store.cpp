#include "hsdir/store.hpp"

namespace torsim::hsdir {

void DescriptorStore::store(Descriptor descriptor) {
  descriptors_[descriptor.descriptor_id] = std::move(descriptor);
}

std::optional<Descriptor> DescriptorStore::fetch(
    const crypto::DescriptorId& id, util::UnixTime now) {
  const auto it = descriptors_.find(id);
  const bool found =
      it != descriptors_.end() &&
      now - it->second.published <= kDescriptorLifetime &&
      now >= it->second.visible_after;
  if (logging_) fetch_log_.push_back({id, now, found});
  if (!found) return std::nullopt;
  return it->second;
}

bool DescriptorStore::contains(const crypto::DescriptorId& id,
                               util::UnixTime now) const {
  const auto it = descriptors_.find(id);
  return it != descriptors_.end() &&
         now - it->second.published <= kDescriptorLifetime &&
         now >= it->second.visible_after;
}

void DescriptorStore::expire(util::UnixTime now) {
  for (auto it = descriptors_.begin(); it != descriptors_.end();) {
    if (now - it->second.published > kDescriptorLifetime)
      it = descriptors_.erase(it);
    else
      ++it;
  }
}

std::vector<Descriptor> DescriptorStore::all_descriptors() const {
  std::vector<Descriptor> out;
  out.reserve(descriptors_.size());
  for (const auto& [id, d] : descriptors_) out.push_back(d);
  return out;
}

}  // namespace torsim::hsdir
