#include "hsdir/store.hpp"

#include <cstring>
#include <utility>

namespace torsim::hsdir {

void DescriptorStore::store(Descriptor descriptor) {
  StoredDescriptor s;
  s.permanent_id = descriptor.permanent_id;
  s.replica = descriptor.replica;
  s.time_period = descriptor.time_period;
  s.published = descriptor.published;
  s.visible_after = descriptor.visible_after;
  s.key_size = static_cast<std::uint32_t>(descriptor.service_public_key.size());
  s.key_offset = arena_.append(descriptor.service_public_key.data(),
                               descriptor.service_public_key.size());
  s.intro_count =
      static_cast<std::uint32_t>(descriptor.introduction_points.size());
  s.intro_offset = arena_.append(
      descriptor.introduction_points.data(),
      descriptor.introduction_points.size() * sizeof(crypto::Fingerprint));

  // A refresh orphans the old payload span (the append above is the new
  // one); the old bytes stay dead in the arena until compaction.
  const auto it = descriptors_.find(descriptor.descriptor_id);
  if (it != descriptors_.end()) {
    live_payload_bytes_ -= payload_bytes(it->second);
    it->second = s;
  } else {
    descriptors_.emplace(descriptor.descriptor_id, s);
  }
  live_payload_bytes_ += payload_bytes(s);
}

Descriptor DescriptorStore::materialize(const crypto::DescriptorId& id,
                                        const StoredDescriptor& s) const {
  Descriptor d;
  d.descriptor_id = id;
  d.permanent_id = s.permanent_id;
  d.replica = s.replica;
  d.time_period = s.time_period;
  d.published = s.published;
  d.visible_after = s.visible_after;
  d.service_public_key.resize(s.key_size);
  std::memcpy(d.service_public_key.data(), arena_.at(s.key_offset),
              s.key_size);
  d.introduction_points.resize(s.intro_count);
  std::memcpy(d.introduction_points.data(), arena_.at(s.intro_offset),
              s.intro_count * sizeof(crypto::Fingerprint));
  return d;
}

std::optional<Descriptor> DescriptorStore::fetch(
    const crypto::DescriptorId& id, util::UnixTime now) {
  const auto it = descriptors_.find(id);
  const bool found =
      it != descriptors_.end() &&
      now - it->second.published <= kDescriptorLifetime &&
      now >= it->second.visible_after;
  if (logging_) fetch_log_.push_back({id, now, found});
  if (!found) return std::nullopt;
  return materialize(id, it->second);
}

bool DescriptorStore::contains(const crypto::DescriptorId& id,
                               util::UnixTime now) const {
  const auto it = descriptors_.find(id);
  return it != descriptors_.end() &&
         now - it->second.published <= kDescriptorLifetime &&
         now >= it->second.visible_after;
}

void DescriptorStore::expire(util::UnixTime now) {
  for (auto it = descriptors_.begin(); it != descriptors_.end();) {
    if (now - it->second.published > kDescriptorLifetime) {
      live_payload_bytes_ -= payload_bytes(it->second);
      it = descriptors_.erase(it);
    } else {
      ++it;
    }
  }
}

void DescriptorStore::observe_epoch(std::uint64_t generation) {
  if (generation == epoch_) return;
  epoch_ = generation;
  // Compact only when the dead share dominates: arena > 2x live means
  // more than half the bytes are orphaned re-publish/expiry leftovers.
  if (arena_.bytes_used() > 2 * live_payload_bytes_) compact();
}

void DescriptorStore::compact() {
  util::ByteArena fresh;
  fresh.reserve(live_payload_bytes_);
  for (auto& [id, s] : descriptors_) {
    s.key_offset = fresh.append(arena_.at(s.key_offset), s.key_size);
    s.intro_offset = fresh.append(
        arena_.at(s.intro_offset),
        s.intro_count * sizeof(crypto::Fingerprint));
  }
  arena_.swap(fresh);
  ++compactions_;
}

std::vector<Descriptor> DescriptorStore::all_descriptors() const {
  std::vector<Descriptor> out;
  out.reserve(descriptors_.size());
  for (const auto& [id, s] : descriptors_) out.push_back(materialize(id, s));
  return out;
}

}  // namespace torsim::hsdir
