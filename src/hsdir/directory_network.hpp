// The distributed descriptor directory: one DescriptorStore per relay
// that currently carries (or ever carried) the HSDir flag, addressed by
// simulator relay id. Publish/fetch route via the consensus ring.
#pragma once

#include <map>

#include "dirauth/consensus.hpp"
#include "dirauth/ring_cache.hpp"
#include "fault/injector.hpp"
#include "hsdir/store.hpp"
#include "obs/metrics.hpp"

namespace torsim::hsdir {

struct DirectoryNetworkConfig {
  /// Worker threads for batched responsible-HSDir ring lookups during
  /// publish; <= 0 = one per hardware thread, 1 = legacy serial path.
  /// Store contents are bit-identical for every value (lookups fan
  /// out; store writes stay serial, in input order).
  int threads = 0;
  /// Optional metrics sink ("hsdir.*" counters). Publish and fetch run
  /// in serial sections, so plain counters stay deterministic. Must
  /// outlive the network. See docs/observability.md.
  obs::MetricsRegistry* metrics = nullptr;
};

/// What one fetch_from() walk over the responsible set observed —
/// callers (hs::Client) use it to decide whether a miss is retryable
/// (directories were down) or definitive (nobody holds the id).
struct FetchTrace {
  int dirs_tried = 0;
  int dirs_unresponsive = 0;
};

class DirectoryNetwork {
 public:
  DirectoryNetwork() = default;
  explicit DirectoryNetwork(DirectoryNetworkConfig config)
      : config_(config) {}

  /// The store operated by relay `id` (created on first use).
  DescriptorStore& store_for(relay::RelayId id) { return stores_[id]; }

  const DescriptorStore* find_store(relay::RelayId id) const {
    const auto it = stores_.find(id);
    return it == stores_.end() ? nullptr : &it->second;
  }

  /// Installs (or clears) the fault injector consulted by publish and
  /// fetch paths. The injector must outlive this network; sim::World
  /// owns both. No injector = the exact legacy behaviour.
  void set_fault_injector(const fault::FaultInjector* injector) {
    injector_ = injector;
  }
  const fault::FaultInjector* fault_injector() const { return injector_; }

  /// Publishes both replicas of `descriptor`'s service to their
  /// responsible HSDirs under `consensus`. `descriptors` must hold
  /// exactly the replicas to publish. Returns the relay ids that
  /// received a copy (with duplicates removed). Under an active fault
  /// plan, each per-directory upload is retried (bounded, exponential
  /// backoff) when lost; uploads still lost after the final attempt
  /// are surfaced in failure_log() as kPublishLost, and delayed
  /// uploads are stored but only fetchable after the delay.
  std::vector<relay::RelayId> publish(
      const dirauth::Consensus& consensus,
      const std::vector<Descriptor>& descriptors);

  /// Fetches `id` from one responsible HSDir under `consensus`;
  /// `hsdir_relay` receives the id of the directory that answered (or
  /// the last one tried). Tries the responsible set in the given
  /// preference order (already shuffled by the caller if desired).
  /// Directories inside an injected outage window are skipped and
  /// counted in `trace` (when given) so callers can retry.
  std::optional<Descriptor> fetch_from(
      const dirauth::Consensus& consensus, const crypto::DescriptorId& id,
      util::UnixTime now, relay::RelayId& hsdir_relay,
      FetchTrace* trace = nullptr);

  /// Runs expiry on every store.
  void expire_all(util::UnixTime now);

  /// Typed failures observed by publish/fetch since the last clear.
  const fault::FailureLog& failure_log() const { return failure_log_; }
  void clear_failure_log() { failure_log_.clear(); }

  /// Access to every store (harvester reads its own relays' stores).
  /// Ordered by relay id: callers iterate this, and iteration order
  /// must not depend on hash layout.
  const std::map<relay::RelayId, DescriptorStore>& stores() const {
    return stores_;
  }
  std::map<relay::RelayId, DescriptorStore>& stores() {
    return stores_;
  }

 private:
  DirectoryNetworkConfig config_;
  std::map<relay::RelayId, DescriptorStore> stores_;
  const fault::FaultInjector* injector_ = nullptr;
  fault::FailureLog failure_log_;
  // Memoized ring walks, keyed by consensus generation. Publish and
  // fetch run in serial sections (see DirectoryNetworkConfig), so the
  // cache needs no lock; values are pure, so results are identical
  // with the cache on or off (docs/performance.md).
  dirauth::ResponsibleSetCache ring_cache_;
};

}  // namespace torsim::hsdir
