#include "hsdir/directory_network.hpp"

#include <algorithm>

namespace torsim::hsdir {

std::vector<relay::RelayId> DirectoryNetwork::publish(
    const dirauth::Consensus& consensus,
    const std::vector<Descriptor>& descriptors) {
  // Ring lookups are pure and fan out across threads; the store writes
  // stay serial and commit in descriptor order, so the directory state
  // is identical to the serial publish.
  std::vector<crypto::DescriptorId> ids;
  ids.reserve(descriptors.size());
  for (const Descriptor& d : descriptors) ids.push_back(d.descriptor_id);
  const auto responsible = ring_cache_.batch(consensus, ids, config_.threads);

  std::vector<relay::RelayId> receivers;
  std::int64_t stored = 0;
  for (std::size_t i = 0; i < descriptors.size(); ++i) {
    const std::uint64_t descriptor_key = fault::FaultInjector::key_of(
        descriptors[i].descriptor_id.data(), descriptors[i].descriptor_id.size());
    for (const dirauth::ConsensusEntry* e : responsible[i]) {
      if (injector_ != nullptr && injector_->enabled()) {
        // Bounded per-directory retry: an upload lost in transit is
        // re-sent up to max_attempts times; a directory that drops all
        // of them simply never receives this replica (typed, not
        // silent).
        const int max_attempts = injector_->retry().max_attempts;
        int attempt = 1;
        bool delivered = false;
        for (; attempt <= max_attempts; ++attempt) {
          if (!injector_->publish_lost(descriptor_key, e->relay, attempt)) {
            delivered = true;
            break;
          }
        }
        if (!delivered) {
          failure_log_.push_back({fault::FailureKind::kPublishLost,
                                  descriptor_key, e->relay, max_attempts});
          continue;
        }
        Descriptor copy = descriptors[i];
        if (injector_->publish_delayed(descriptor_key, e->relay)) {
          copy.visible_after = copy.published + injector_->plan().publish_delay;
          failure_log_.push_back({fault::FailureKind::kPublishDelayed,
                                  descriptor_key, e->relay, attempt});
        }
        DescriptorStore& target = store_for(e->relay);
        target.observe_epoch(consensus.generation());
        target.store(std::move(copy));
        receivers.push_back(e->relay);
        ++stored;
        continue;
      }
      // Each touched store learns the publish round's consensus
      // generation — its cue to compact dead arena spans (store.hpp).
      DescriptorStore& target = store_for(e->relay);
      target.observe_epoch(consensus.generation());
      target.store(descriptors[i]);
      receivers.push_back(e->relay);
      ++stored;
    }
  }
  std::sort(receivers.begin(), receivers.end());
  receivers.erase(std::unique(receivers.begin(), receivers.end()),
                  receivers.end());
  if (config_.metrics != nullptr) {
    config_.metrics->counter("hsdir.publishes")
        .inc(static_cast<std::int64_t>(descriptors.size()));
    config_.metrics->counter("hsdir.replica_stores").inc(stored);
  }
  return receivers;
}

std::optional<Descriptor> DirectoryNetwork::fetch_from(
    const dirauth::Consensus& consensus, const crypto::DescriptorId& id,
    util::UnixTime now, relay::RelayId& hsdir_relay, FetchTrace* trace) {
  hsdir_relay = relay::kInvalidRelayId;
  // fetch_attempts counts requests (one per call); fetch_probes counts
  // the per-directory contacts one request fans out into — including
  // directories that never answer, since the client still spent a
  // circuit on them.
  if (config_.metrics != nullptr)
    config_.metrics->counter("hsdir.fetch_attempts").inc();
  const dirauth::ResponsibleSet& responsible =
      ring_cache_.responsible(consensus, id);
  for (std::uint8_t k = 0; k < responsible.count; ++k) {
    const dirauth::ConsensusEntry* e = responsible.dirs[k];
    if (config_.metrics != nullptr)
      config_.metrics->counter("hsdir.fetch_probes").inc();
    if (injector_ != nullptr && injector_->hsdir_unresponsive(e->relay, now)) {
      // The directory is inside an outage window: the request circuit
      // gets no answer, the client moves on to the next responsible
      // dir. Logged typed; not recorded in the store's own fetch log
      // (an unresponsive dir logs nothing, which is exactly why the
      // paper's measuring HSDirs undercount during outages).
      if (trace != nullptr) ++trace->dirs_unresponsive;
      failure_log_.push_back(
          {fault::FailureKind::kHsdirUnresponsive,
           fault::FaultInjector::key_of(id.data(), id.size()), e->relay, 1});
      continue;
    }
    if (trace != nullptr) ++trace->dirs_tried;
    hsdir_relay = e->relay;
    auto result = store_for(e->relay).fetch(id, now);
    if (result) {
      if (config_.metrics != nullptr)
        config_.metrics->counter("hsdir.fetch_hits").inc();
      return result;
    }
  }
  if (config_.metrics != nullptr)
    config_.metrics->counter("hsdir.fetch_misses").inc();
  return std::nullopt;
}

void DirectoryNetwork::expire_all(util::UnixTime now) {
  for (auto& [id, store] : stores_) store.expire(now);
}

}  // namespace torsim::hsdir
