#include "hsdir/directory_network.hpp"

#include <algorithm>

namespace torsim::hsdir {

std::vector<relay::RelayId> DirectoryNetwork::publish(
    const dirauth::Consensus& consensus,
    const std::vector<Descriptor>& descriptors) {
  // Ring lookups are pure and fan out across threads; the store writes
  // stay serial and commit in descriptor order, so the directory state
  // is identical to the serial publish.
  std::vector<crypto::DescriptorId> ids;
  ids.reserve(descriptors.size());
  for (const Descriptor& d : descriptors) ids.push_back(d.descriptor_id);
  const auto responsible =
      consensus.responsible_hsdirs_batch(ids, config_.threads);

  std::vector<relay::RelayId> receivers;
  for (std::size_t i = 0; i < descriptors.size(); ++i) {
    for (const dirauth::ConsensusEntry* e : responsible[i]) {
      store_for(e->relay).store(descriptors[i]);
      receivers.push_back(e->relay);
    }
  }
  std::sort(receivers.begin(), receivers.end());
  receivers.erase(std::unique(receivers.begin(), receivers.end()),
                  receivers.end());
  return receivers;
}

std::optional<Descriptor> DirectoryNetwork::fetch_from(
    const dirauth::Consensus& consensus, const crypto::DescriptorId& id,
    util::UnixTime now, relay::RelayId& hsdir_relay) {
  hsdir_relay = relay::kInvalidRelayId;
  for (const dirauth::ConsensusEntry* e : consensus.responsible_hsdirs(id)) {
    hsdir_relay = e->relay;
    auto result = store_for(e->relay).fetch(id, now);
    if (result) return result;
  }
  return std::nullopt;
}

void DirectoryNetwork::expire_all(util::UnixTime now) {
  for (auto& [id, store] : stores_) store.expire(now);
}

}  // namespace torsim::hsdir
