#include "hsdir/directory_network.hpp"

#include <algorithm>

namespace torsim::hsdir {

std::vector<relay::RelayId> DirectoryNetwork::publish(
    const dirauth::Consensus& consensus,
    const std::vector<Descriptor>& descriptors) {
  std::vector<relay::RelayId> receivers;
  for (const Descriptor& d : descriptors) {
    for (const dirauth::ConsensusEntry* e :
         consensus.responsible_hsdirs(d.descriptor_id)) {
      store_for(e->relay).store(d);
      receivers.push_back(e->relay);
    }
  }
  std::sort(receivers.begin(), receivers.end());
  receivers.erase(std::unique(receivers.begin(), receivers.end()),
                  receivers.end());
  return receivers;
}

std::optional<Descriptor> DirectoryNetwork::fetch_from(
    const dirauth::Consensus& consensus, const crypto::DescriptorId& id,
    util::UnixTime now, relay::RelayId& hsdir_relay) {
  hsdir_relay = relay::kInvalidRelayId;
  for (const dirauth::ConsensusEntry* e : consensus.responsible_hsdirs(id)) {
    hsdir_relay = e->relay;
    auto result = store_for(e->relay).fetch(id, now);
    if (result) return result;
  }
  return std::nullopt;
}

void DirectoryNetwork::expire_all(util::UnixTime now) {
  for (auto& [id, store] : stores_) store.expire(now);
}

}  // namespace torsim::hsdir
