// v2 hidden-service descriptors: what a service publishes to its six
// responsible HSDirs every 24 hours, and what clients fetch by
// descriptor ID.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "crypto/keypair.hpp"
#include "util/time.hpp"

namespace torsim::hsdir {

/// A published v2 descriptor. Introduction points are carried as opaque
/// relay fingerprints; our rendezvous model only needs their existence.
struct Descriptor {
  crypto::DescriptorId descriptor_id{};
  crypto::PermanentId permanent_id{};
  std::vector<std::uint8_t> service_public_key;
  std::vector<crypto::Fingerprint> introduction_points;
  std::uint8_t replica = 0;
  std::uint32_t time_period = 0;
  util::UnixTime published = 0;
  /// Simulator-internal (not part of the wire format): a directory that
  /// indexed the upload late serves it only from this time on. 0 means
  /// immediately visible — see fault::FaultPlan::publish_delay_rate.
  util::UnixTime visible_after = 0;

  /// Onion address recoverable from the embedded public key — this is how
  /// the harvesting attack turns collected descriptors into addresses.
  std::string onion_address() const;
};

/// Builds the descriptor a service with `key` publishes for `replica`
/// at time `now`. A non-empty `cookie` produces an authenticated
/// ("stealth") descriptor whose ID cannot be derived from the onion
/// address alone.
Descriptor make_descriptor(const crypto::KeyPair& key,
                           std::vector<crypto::Fingerprint> intro_points,
                           std::uint8_t replica, util::UnixTime now,
                           std::span<const std::uint8_t> cookie = {});

}  // namespace torsim::hsdir
