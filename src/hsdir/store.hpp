// The descriptor store one HSDir relay operates, including the fetch log
// an attacker-controlled HSDir keeps (the data source for the paper's
// popularity measurement, Sec. V).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "hsdir/descriptor.hpp"

namespace torsim::hsdir {

/// One descriptor-fetch request as logged by an HSDir operator.
struct FetchRecord {
  crypto::DescriptorId descriptor_id{};
  util::UnixTime time = 0;
  bool found = false;
};

/// How long an HSDir retains a descriptor after publication; HSDirs for
/// the previous period erase descriptors once they rotate out.
inline constexpr util::Seconds kDescriptorLifetime = 24 * util::kSecondsPerHour;

class DescriptorStore {
 public:
  /// Stores (or refreshes) a descriptor.
  void store(Descriptor descriptor);

  /// Looks a descriptor up by id, honouring expiry at time `now`.
  /// If logging is enabled the request is recorded either way.
  std::optional<Descriptor> fetch(const crypto::DescriptorId& id,
                                  util::UnixTime now);

  /// True when fetch(id, now) would find the descriptor — same expiry
  /// and visible_after rules — but without logging or copying. The
  /// const read-only probe the serving layer fans out across threads
  /// (a fetch would race on the log; see docs/serving.md).
  bool contains(const crypto::DescriptorId& id, util::UnixTime now) const;

  /// Drops descriptors published more than kDescriptorLifetime before
  /// `now` (the paper: directories "erase its descriptor from memory"
  /// after the responsibility period).
  void expire(util::UnixTime now);

  /// Enables request logging (what a measuring/malicious HSDir does).
  void enable_logging(bool enabled) { logging_ = enabled; }
  bool logging_enabled() const { return logging_; }

  const std::vector<FetchRecord>& fetch_log() const { return fetch_log_; }
  void clear_fetch_log() { fetch_log_.clear(); }

  /// Every descriptor currently held (the harvesting attack reads this
  /// out of its own relays).
  std::vector<Descriptor> all_descriptors() const;

  std::size_t size() const { return descriptors_.size(); }

 private:
  std::map<crypto::DescriptorId, Descriptor> descriptors_;
  std::vector<FetchRecord> fetch_log_;
  bool logging_ = false;
};

}  // namespace torsim::hsdir
