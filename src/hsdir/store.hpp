// The descriptor store one HSDir relay operates, including the fetch log
// an attacker-controlled HSDir keeps (the data source for the paper's
// popularity measurement, Sec. V).
//
// Storage layout (ROADMAP item 3, docs/data-layout.md): the map holds
// fixed-size StoredDescriptor metadata; the variable-length payloads
// (service public key, introduction-point list) live in a per-store
// util::ByteArena addressed by offset. Re-publishing a descriptor
// appends fresh payload bytes and orphans the old span; the arena is
// compacted when a new consensus generation is observed and the dead
// share has grown past the live bytes (see observe_epoch()).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "hsdir/descriptor.hpp"
#include "util/arena.hpp"

namespace torsim::hsdir {

/// One descriptor-fetch request as logged by an HSDir operator.
struct FetchRecord {
  crypto::DescriptorId descriptor_id{};
  util::UnixTime time = 0;
  bool found = false;
};

/// How long an HSDir retains a descriptor after publication; HSDirs for
/// the previous period erase descriptors once they rotate out.
inline constexpr util::Seconds kDescriptorLifetime = 24 * util::kSecondsPerHour;

class DescriptorStore {
 public:
  /// Stores (or refreshes) a descriptor.
  void store(Descriptor descriptor);

  /// Looks a descriptor up by id, honouring expiry at time `now`.
  /// If logging is enabled the request is recorded either way.
  /// The returned Descriptor owns its payloads (copied out of the
  /// arena) — callers never hold arena pointers across a compaction.
  std::optional<Descriptor> fetch(const crypto::DescriptorId& id,
                                  util::UnixTime now);

  /// True when fetch(id, now) would find the descriptor — same expiry
  /// and visible_after rules — but without logging or copying. The
  /// const read-only probe the serving layer fans out across threads
  /// (a fetch would race on the log; see docs/serving.md).
  bool contains(const crypto::DescriptorId& id, util::UnixTime now) const;

  /// Drops descriptors published more than kDescriptorLifetime before
  /// `now` (the paper: directories "erase its descriptor from memory"
  /// after the responsibility period). Payload bytes become dead arena
  /// space, reclaimed at the next compacting epoch observation.
  void expire(util::UnixTime now);

  /// Tells the store which consensus generation the current publish
  /// round runs under. On a generation change the store compacts its
  /// payload arena iff dead bytes exceed live bytes — a deterministic
  /// byte-count rule, independent of wall clock and call pattern
  /// within a generation. Generation semantics (copy restamps, move
  /// transfers and zeroes the source — dirauth/consensus.hpp) make the
  /// stamp usable only for equality, which is all this needs: any
  /// *change* is a safe compaction point, and generation 0 (moved-from
  /// consensus) never reaches here because a gen-0 consensus is empty
  /// and routes no publishes (pinned by tests/data_layout_test.cpp).
  void observe_epoch(std::uint64_t generation);

  /// Enables request logging (what a measuring/malicious HSDir does).
  void enable_logging(bool enabled) { logging_ = enabled; }
  bool logging_enabled() const { return logging_; }

  const std::vector<FetchRecord>& fetch_log() const { return fetch_log_; }
  void clear_fetch_log() { fetch_log_.clear(); }

  /// Every descriptor currently held (the harvesting attack reads this
  /// out of its own relays). Owned copies, id order.
  std::vector<Descriptor> all_descriptors() const;

  std::size_t size() const { return descriptors_.size(); }

  /// Arena telemetry for the BENCH JSON "population" section.
  std::size_t arena_bytes() const { return arena_.bytes_used(); }
  std::size_t live_payload_bytes() const { return live_payload_bytes_; }
  std::uint64_t observed_epoch() const { return epoch_; }
  std::int64_t compactions() const { return compactions_; }

 private:
  /// Fixed-size metadata; variable-length payloads are arena spans.
  struct StoredDescriptor {
    crypto::PermanentId permanent_id{};
    std::uint8_t replica = 0;
    std::uint32_t time_period = 0;
    util::UnixTime published = 0;
    util::UnixTime visible_after = 0;
    util::ByteArena::Offset key_offset = 0;
    std::uint32_t key_size = 0;
    util::ByteArena::Offset intro_offset = 0;
    std::uint32_t intro_count = 0;
  };

  std::size_t payload_bytes(const StoredDescriptor& s) const {
    return s.key_size + s.intro_count * sizeof(crypto::Fingerprint);
  }
  Descriptor materialize(const crypto::DescriptorId& id,
                         const StoredDescriptor& s) const;
  void compact();

  std::map<crypto::DescriptorId, StoredDescriptor> descriptors_;
  util::ByteArena arena_;
  std::size_t live_payload_bytes_ = 0;
  std::uint64_t epoch_ = 0;
  std::int64_t compactions_ = 0;
  std::vector<FetchRecord> fetch_log_;
  bool logging_ = false;
};

}  // namespace torsim::hsdir
