#include "hsdir/descriptor.hpp"

namespace torsim::hsdir {

std::string Descriptor::onion_address() const {
  const auto key = crypto::KeyPair::from_public_bytes(service_public_key);
  return crypto::onion_address(
      crypto::permanent_id_from_fingerprint(key.fingerprint()));
}

Descriptor make_descriptor(const crypto::KeyPair& key,
                           std::vector<crypto::Fingerprint> intro_points,
                           std::uint8_t replica, util::UnixTime now,
                           std::span<const std::uint8_t> cookie) {
  Descriptor d;
  d.permanent_id = crypto::permanent_id_from_fingerprint(key.fingerprint());
  d.time_period = crypto::time_period(now, d.permanent_id);
  d.descriptor_id =
      crypto::descriptor_id(d.permanent_id, d.time_period, replica, cookie);
  d.service_public_key = key.public_bytes();
  d.introduction_points = std::move(intro_points);
  d.replica = replica;
  d.published = now;
  return d;
}

}  // namespace torsim::hsdir
