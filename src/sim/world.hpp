// The simulation world: a deterministic, hour-stepped model of the Tor
// network (relays + authorities + hidden services + descriptor
// directories) that the measurement and attack experiments run against.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dirauth/archive.hpp"
#include "dirauth/authority.hpp"
#include "fault/injector.hpp"
#include "hs/client.hpp"
#include "hs/service_host.hpp"
#include "hsdir/directory_network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "relay/registry.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace torsim::sim {

/// Plain-data snapshot of one hidden service — what the serving layer
/// (src/serve) reads instead of reaching into hs/crypto types directly
/// (its layer contract is serve -> sim/obs/fault/util only). All fields
/// are pure functions of const world state at `now`, so snapshots may
/// be taken from parallel regions.
struct ServiceView {
  std::size_t index = 0;
  std::string onion;  ///< 16-char base32 address, no ".onion" suffix
  bool online = false;
  std::uint32_t last_published_period = 0;
  /// Current descriptor ids (replica 0 and 1) as lowercase hex.
  std::array<std::string, 2> descriptor_hex{};

  bool operator==(const ServiceView&) const = default;
};

/// Plain-data network totals at the current hour.
struct NetworkStats {
  std::int64_t hours_since_start = 0;
  std::int64_t relays_online = 0;
  std::int64_t hsdir_count = 0;
  std::int64_t services_online = 0;
  std::int64_t descriptors_stored = 0;
  util::UnixTime consensus_valid_after = 0;

  bool operator==(const NetworkStats&) const = default;
};

/// Outcome of a read-only resolve probe for one service: for each
/// replica, whether any responsive responsible directory currently
/// holds the descriptor (plus how many responsible directories an
/// injected outage made unresponsive along the way).
struct ResolveView {
  std::size_t index = 0;
  std::array<bool, 2> resolved{};
  std::int64_t dirs_unresponsive = 0;

  bool operator==(const ResolveView&) const = default;
};

struct WorldConfig {
  std::uint64_t seed = 20130204;
  /// Simulation start; defaults to the paper's harvest date.
  util::UnixTime start = 0;  ///< 0 means "2013-02-01 00:00 UTC"
  /// Honest relay population (the Feb 2013 network had ~3,600 relays,
  /// ~1,300 of them HSDirs).
  int honest_relays = 1300;
  /// Fraction of honest relays bootstrapped with enough past uptime to
  /// already hold the HSDir flag at start.
  double bootstrap_hsdir_fraction = 0.75;
  /// Fraction bootstrapped with enough uptime + bandwidth for Guard.
  double bootstrap_guard_fraction = 0.35;
  /// Hourly probability that an online honest relay goes down.
  double hourly_down_probability = 0.01;
  /// Hourly probability that an offline honest relay comes back.
  double hourly_up_probability = 0.25;
  /// Record every consensus into the archive (needed by trackdet runs;
  /// costs memory on multi-year simulations, so it is switchable).
  bool record_archive = true;
  dirauth::AuthorityPolicy authority_policy{};
  /// Worker threads for the descriptor-publish ring-lookup fan-out;
  /// <= 0 = one per hardware thread, 1 = legacy serial path. Results
  /// are bit-identical for every value (see docs/concurrency.md).
  int threads = 0;
  /// Injected directory/circuit faults (default: none). When enabled the
  /// world owns a FaultInjector and wires it into the directory network;
  /// see docs/fault-injection.md.
  fault::FaultPlan faults{};
  /// Optional metrics sink ("sim.*" counters/gauges; forwarded to the
  /// directory network and fault injector). Must outlive the world.
  /// See docs/observability.md.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional sim-time trace sink: step_hour() records one span per
  /// hour against the world clock. Must outlive the world.
  obs::TraceRecorder* trace = nullptr;
};

class World {
 public:
  explicit World(WorldConfig config);

  /// Creates the honest relay population and publishes the first
  /// consensus. Called by the constructor.
  void bootstrap();

  // --- time ---------------------------------------------------------
  util::UnixTime now() const { return clock_.now(); }
  const util::Clock& clock() const { return clock_; }

  /// Advances one hour: applies honest-relay churn, rebuilds the
  /// consensus, lets services republish, expires stale descriptors.
  void step_hour();

  /// Advances `hours` hours.
  void run_hours(int hours);

  // --- components ---------------------------------------------------
  relay::Registry& registry() { return registry_; }
  const relay::Registry& registry() const { return registry_; }
  const dirauth::Authority& authority() const { return authority_; }
  hsdir::DirectoryNetwork& directories() { return dirnet_; }
  const hsdir::DirectoryNetwork& directories() const { return dirnet_; }
  const dirauth::Consensus& consensus() const { return consensus_; }
  const dirauth::ConsensusArchive& archive() const { return archive_; }
  util::Rng& rng() { return rng_; }
  const WorldConfig& config() const { return config_; }
  /// The world's fault injector, or nullptr when the plan is all-zero.
  const fault::FaultInjector* fault_injector() const {
    return injector_.get();
  }

  // --- hidden services ----------------------------------------------
  /// Adds a hidden service with a fresh key; returns its index.
  std::size_t add_service();
  /// Adds a hidden service with a caller-supplied key (population module
  /// pins specific addresses); returns its index.
  std::size_t add_service(crypto::KeyPair key);

  hs::ServiceHost& service(std::size_t index) { return *services_[index]; }
  const hs::ServiceHost& service(std::size_t index) const {
    return *services_[index];
  }
  std::size_t service_count() const { return services_.size(); }

  // --- read-only query surface (src/serve) --------------------------
  // Const, allocation-only views over current world state. They touch
  // no logs, caches with locks, or the world RNG, so the serving
  // batcher may evaluate them concurrently from parallel_map workers;
  // see docs/serving.md for the determinism contract.

  /// Snapshot of service `index` at the current hour. Throws
  /// std::out_of_range on a bad index.
  ServiceView service_view(std::size_t index) const;

  /// Network totals at the current hour.
  NetworkStats network_stats() const;

  /// Read-only resolve probe for service `index`: walks the
  /// responsible HSDir sets of both replica descriptor ids in ring
  /// order, skipping (and counting) directories inside an injected
  /// outage window, exactly as DirectoryNetwork::fetch_from would —
  /// but via const DescriptorStore::contains, with no fetch logging.
  /// Throws std::out_of_range on a bad index.
  ResolveView resolve_view(std::size_t index) const;

  // --- honest relays ------------------------------------------------
  /// Marks a relay as exempt from honest churn (attacker relays are
  /// driven explicitly by the attack controller).
  void set_churn_exempt(relay::RelayId id, bool exempt);
  bool churn_exempt(relay::RelayId id) const;

  /// Rebuilds the consensus immediately (used after an attacker flips
  /// relays between consensus builds). A no-op while the authorities
  /// are marked offline (see set_authority_online).
  void rebuild_consensus();

  // --- scenario-engine hooks ----------------------------------------
  /// Overrides the hourly honest-relay churn probabilities (scenario
  /// churn storms). Values are clamped to [0, 1].
  void set_churn_rates(double down_probability, double up_probability);
  double hourly_down_probability() const {
    return config_.hourly_down_probability;
  }
  double hourly_up_probability() const {
    return config_.hourly_up_probability;
  }

  /// Marks the directory authorities up or down. While down, step_hour()
  /// keeps churning relays and expiring descriptors but never rebuilds
  /// the consensus — services republish against the last one published
  /// before the outage, exactly like a live network riding a stale
  /// consensus.
  void set_authority_online(bool online);
  bool authority_online() const { return authority_online_; }

  /// Swaps the active fault plan (scenario fault windows). An enabled
  /// plan installs (or replaces) the injector wired into the directory
  /// network; a disabled plan removes it, restoring the exact no-fault
  /// behaviour.
  void set_fault_plan(const fault::FaultPlan& plan);

  /// Hook invoked after every consensus rebuild (attack controllers use
  /// it to react to ring changes).
  void set_post_consensus_hook(std::function<void(World&)> hook) {
    post_consensus_hook_ = std::move(hook);
  }

 private:
  void apply_churn();
  void publish_services();

  WorldConfig config_;
  util::Clock clock_;
  util::Rng rng_;
  relay::Registry registry_;
  dirauth::Authority authority_;
  dirauth::Consensus consensus_;
  dirauth::ConsensusArchive archive_;
  /// Owned behind a pointer so the address handed to the directory
  /// network stays stable if the World is moved.
  std::unique_ptr<fault::FaultInjector> injector_;
  hsdir::DirectoryNetwork dirnet_;
  std::vector<std::unique_ptr<hs::ServiceHost>> services_;
  std::vector<bool> churn_exempt_;
  bool authority_online_ = true;
  std::function<void(World&)> post_consensus_hook_;
};

/// The paper's reference start time: 2013-02-01 00:00:00 UTC.
util::UnixTime default_start_time();

}  // namespace torsim::sim
