#include "sim/world.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "util/encoding.hpp"

namespace torsim::sim {

util::UnixTime default_start_time() {
  return util::make_utc(2013, 2, 1, 0, 0, 0);
}

World::World(WorldConfig config)
    : config_(config),
      clock_(config.start != 0 ? config.start : default_start_time()),
      rng_(config.seed),
      authority_(config.authority_policy),
      dirnet_(hsdir::DirectoryNetworkConfig{.threads = config.threads,
                                            .metrics = config.metrics}) {
  if (config_.faults.enabled()) {
    injector_ = std::make_unique<fault::FaultInjector>(config_.faults);
    injector_->set_metrics(config_.metrics);
    dirnet_.set_fault_injector(injector_.get());
  }
  bootstrap();
}

void World::bootstrap() {
  const util::UnixTime start = clock_.now();
  for (int i = 0; i < config_.honest_relays; ++i) {
    relay::RelayConfig rc;
    rc.nickname = "relay" + std::to_string(i);
    rc.address = util::Ipv4::random_public(rng_);
    rc.or_port = 9001;
    rc.bandwidth_kbps = 50.0 + rng_.exponential(1.0 / 400.0);
    const relay::RelayId id = registry_.create(rc, rng_, start - 1);

    // Stagger bootstrap uptimes so the initial consensus already has a
    // realistic flag mix.
    util::Seconds uptime;
    const double roll = rng_.uniform01();
    if (roll < config_.bootstrap_guard_fraction) {
      uptime = rng_.uniform_int(9, 200) * util::kSecondsPerDay;
    } else if (roll <
               config_.bootstrap_guard_fraction +
                   config_.bootstrap_hsdir_fraction *
                       (1.0 - config_.bootstrap_guard_fraction)) {
      uptime = rng_.uniform_int(26, 24 * 8) * util::kSecondsPerHour;
    } else {
      uptime = rng_.uniform_int(0, 24) * util::kSecondsPerHour;
    }
    registry_.get(id).set_online(true, start - uptime);
  }
  churn_exempt_.assign(registry_.size(), false);
  rebuild_consensus();
}

void World::apply_churn() {
  const util::UnixTime now = clock_.now();
  for (relay::Relay& r : registry_.all()) {
    if (r.id() < churn_exempt_.size() && churn_exempt_[r.id()]) continue;
    if (r.online()) {
      if (rng_.bernoulli(config_.hourly_down_probability))
        r.set_online(false, now);
    } else {
      if (rng_.bernoulli(config_.hourly_up_probability))
        r.set_online(true, now);
    }
  }
}

void World::publish_services() {
  for (auto& service : services_)
    service->maybe_publish(consensus_, dirnet_, rng_, clock_.now());
}

void World::set_churn_rates(double down_probability, double up_probability) {
  config_.hourly_down_probability =
      std::clamp(down_probability, 0.0, 1.0);
  config_.hourly_up_probability = std::clamp(up_probability, 0.0, 1.0);
}

void World::set_authority_online(bool online) {
  authority_online_ = online;
  if (config_.metrics != nullptr)
    config_.metrics->gauge("sim.authority_online").set(online ? 1 : 0);
}

void World::set_fault_plan(const fault::FaultPlan& plan) {
  config_.faults = plan;
  if (plan.enabled()) {
    injector_ = std::make_unique<fault::FaultInjector>(plan);
    injector_->set_metrics(config_.metrics);
    dirnet_.set_fault_injector(injector_.get());
  } else {
    dirnet_.set_fault_injector(nullptr);
    injector_.reset();
  }
}

void World::rebuild_consensus() {
  if (!authority_online_) return;
  consensus_ = authority_.build_consensus(registry_, clock_.now());
  if (config_.record_archive) {
    // Archive requires strictly increasing times; mid-hour rebuilds
    // replace nothing and are simply not archived twice.
    if (archive_.empty() || consensus_.valid_after() > archive_.last_time())
      archive_.add(consensus_);
  }
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m.counter("sim.consensus_rebuilds").inc();
    m.gauge("sim.consensus_relays")
        .set(static_cast<std::int64_t>(consensus_.entries().size()));
  }
  if (post_consensus_hook_) post_consensus_hook_(*this);
}

void World::step_hour() {
  // Constructed before the clock moves, so the span covers the full
  // simulated hour [t, t+3600] rather than a zero-length tick.
  TRACE_SPAN(config_.trace, clock_, "step_hour");
  clock_.advance(util::kSecondsPerHour);
  apply_churn();
  rebuild_consensus();
  publish_services();
  dirnet_.expire_all(clock_.now());
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    m.counter("sim.hours_stepped").inc();
    std::int64_t online = 0;
    for (const relay::Relay& r : registry_.all())
      if (r.online()) ++online;
    m.gauge("sim.relays_online").set(online);
    m.gauge("sim.hsdir_count")
        .set(static_cast<std::int64_t>(consensus_.hsdir_count()));
  }
}

void World::run_hours(int hours) {
  for (int i = 0; i < hours; ++i) step_hour();
}

std::size_t World::add_service() {
  return add_service(crypto::KeyPair::generate(rng_));
}

std::size_t World::add_service(crypto::KeyPair key) {
  services_.push_back(
      std::make_unique<hs::ServiceHost>(std::move(key), clock_.now()));
  // Publish immediately so a service added mid-simulation is reachable
  // without waiting for the next hour step.
  services_.back()->maybe_publish(consensus_, dirnet_, rng_, clock_.now());
  return services_.size() - 1;
}

ServiceView World::service_view(std::size_t index) const {
  if (index >= services_.size())
    throw std::out_of_range("World::service_view: bad service index");
  const hs::ServiceHost& host = *services_[index];
  ServiceView view;
  view.index = index;
  view.onion = host.onion_address();
  view.online = host.online();
  view.last_published_period = host.last_published_period();
  const auto ids = host.current_descriptor_ids(clock_.now());
  for (std::size_t r = 0; r < view.descriptor_hex.size() && r < ids.size();
       ++r) {
    view.descriptor_hex[r] =
        util::hex_encode(std::span<const std::uint8_t>(ids[r]));
  }
  return view;
}

NetworkStats World::network_stats() const {
  NetworkStats stats;
  const util::UnixTime start =
      config_.start != 0 ? config_.start : default_start_time();
  stats.hours_since_start = (clock_.now() - start) / util::kSecondsPerHour;
  for (const relay::Relay& r : registry_.all())
    if (r.online()) ++stats.relays_online;
  stats.hsdir_count = static_cast<std::int64_t>(consensus_.hsdir_count());
  for (const auto& service : services_)
    if (service->online()) ++stats.services_online;
  for (const auto& [relay_id, store] : dirnet_.stores())
    stats.descriptors_stored += static_cast<std::int64_t>(store.size());
  stats.consensus_valid_after = consensus_.valid_after();
  return stats;
}

ResolveView World::resolve_view(std::size_t index) const {
  if (index >= services_.size())
    throw std::out_of_range("World::resolve_view: bad service index");
  const util::UnixTime now = clock_.now();
  const auto ids = services_[index]->current_descriptor_ids(now);
  ResolveView view;
  view.index = index;
  for (std::size_t r = 0; r < view.resolved.size() && r < ids.size(); ++r) {
    for (const dirauth::ConsensusEntry* e :
         consensus_.responsible_hsdirs(ids[r])) {
      if (injector_ != nullptr && injector_->hsdir_unresponsive(e->relay, now)) {
        ++view.dirs_unresponsive;
        continue;
      }
      const hsdir::DescriptorStore* store = dirnet_.find_store(e->relay);
      if (store != nullptr && store->contains(ids[r], now)) {
        view.resolved[r] = true;
        break;
      }
    }
  }
  return view;
}

void World::set_churn_exempt(relay::RelayId id, bool exempt) {
  if (id >= registry_.size())
    throw std::out_of_range("World::set_churn_exempt: bad relay id");
  if (churn_exempt_.size() < registry_.size())
    churn_exempt_.resize(registry_.size(), false);
  churn_exempt_[id] = exempt;
}

bool World::churn_exempt(relay::RelayId id) const {
  return id < churn_exempt_.size() && churn_exempt_[id];
}

}  // namespace torsim::sim
