#include "geo/geoip.hpp"

#include <algorithm>
#include <stdexcept>

namespace torsim::geo {

const std::vector<Country>& country_table() {
  // Approximate shares of global internet users circa 2013; the weights
  // need not be exact — they shape a plausible Fig. 3 client map.
  static const std::vector<Country> kCountries = {
      {"CN", "China", 22.0},         {"US", "United States", 10.5},
      {"IN", "India", 6.5},          {"JP", "Japan", 4.2},
      {"BR", "Brazil", 4.0},         {"RU", "Russia", 3.5},
      {"DE", "Germany", 2.8},        {"ID", "Indonesia", 2.5},
      {"GB", "United Kingdom", 2.4}, {"FR", "France", 2.2},
      {"NG", "Nigeria", 2.0},        {"MX", "Mexico", 1.9},
      {"IR", "Iran", 1.8},           {"KR", "South Korea", 1.7},
      {"TR", "Turkey", 1.6},         {"IT", "Italy", 1.5},
      {"PH", "Philippines", 1.4},    {"VN", "Vietnam", 1.4},
      {"ES", "Spain", 1.3},          {"PL", "Poland", 1.1},
      {"CA", "Canada", 1.1},         {"AR", "Argentina", 1.0},
      {"CO", "Colombia", 0.9},       {"UA", "Ukraine", 0.8},
      {"TH", "Thailand", 0.8},       {"EG", "Egypt", 0.8},
      {"NL", "Netherlands", 0.7},    {"MY", "Malaysia", 0.7},
      {"SA", "Saudi Arabia", 0.6},   {"ZA", "South Africa", 0.6},
      {"PK", "Pakistan", 0.6},       {"AU", "Australia", 0.6},
      {"TW", "Taiwan", 0.6},         {"VE", "Venezuela", 0.5},
      {"RO", "Romania", 0.5},        {"SE", "Sweden", 0.4},
      {"CZ", "Czechia", 0.3},        {"PT", "Portugal", 0.3},
      {"CL", "Chile", 0.3},          {"HU", "Hungary", 0.3}};
  return kCountries;
}

GeoDatabase GeoDatabase::standard(std::uint64_t seed) {
  GeoDatabase db;
  const auto& countries = country_table();
  db.prefix_country_.assign(256, 0);
  db.country_prefixes_.assign(countries.size(), {});

  double total = 0.0;
  for (const Country& c : countries) total += c.weight;

  // Deal the 256 /8 prefixes: each country gets a contiguous-count quota
  // proportional to weight (>= 1 each), assigned in a shuffled order.
  std::vector<std::uint8_t> prefixes(256);
  for (int i = 0; i < 256; ++i)
    prefixes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  util::Rng rng(seed);
  rng.shuffle(prefixes);

  std::size_t cursor = 0;
  for (std::size_t ci = 0; ci < countries.size(); ++ci) {
    const auto quota = std::max<std::size_t>(
        1, static_cast<std::size_t>(256.0 * countries[ci].weight / total));
    for (std::size_t k = 0; k < quota && cursor < prefixes.size(); ++k) {
      const std::uint8_t p = prefixes[cursor++];
      db.prefix_country_[p] = static_cast<int>(ci);
      db.country_prefixes_[ci].push_back(p);
    }
  }
  // Leftover prefixes round-robin over the biggest countries.
  std::size_t ci = 0;
  while (cursor < prefixes.size()) {
    const std::uint8_t p = prefixes[cursor++];
    db.prefix_country_[p] = static_cast<int>(ci);
    db.country_prefixes_[ci].push_back(p);
    ci = (ci + 1) % std::min<std::size_t>(8, countries.size());
  }
  return db;
}

const Country& GeoDatabase::lookup(const util::Ipv4& address) const {
  const std::uint8_t prefix =
      static_cast<std::uint8_t>(address.value() >> 24);
  return country_table()[static_cast<std::size_t>(
      prefix_country_[prefix])];
}

util::Ipv4 GeoDatabase::sample_address(std::string_view country_code,
                                      util::Rng& rng) const {
  const auto& countries = country_table();
  for (std::size_t ci = 0; ci < countries.size(); ++ci) {
    if (countries[ci].code != country_code) continue;
    if (country_prefixes_[ci].empty()) break;
    const std::uint8_t prefix =
        country_prefixes_[ci][rng.index(country_prefixes_[ci].size())];
    const std::uint32_t host =
        static_cast<std::uint32_t>(rng.uniform_int(1, 0xfffffe));
    return util::Ipv4(static_cast<std::uint32_t>(prefix) << 24 | host);
  }
  throw std::invalid_argument("GeoDatabase::sample_address: unknown country");
}

util::Ipv4 GeoDatabase::sample_global(util::Rng& rng) const {
  const auto& countries = country_table();
  double total = 0.0;
  for (const Country& c : countries) total += c.weight;
  double roll = rng.uniform(0.0, total);
  for (const Country& c : countries) {
    roll -= c.weight;
    if (roll <= 0.0) return sample_address(c.code, rng);
  }
  return sample_address(countries.front().code, rng);
}

}  // namespace torsim::geo
