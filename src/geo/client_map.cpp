#include "geo/client_map.hpp"

namespace torsim::geo {

std::vector<ClientMap::Row> ClientMap::rows() const {
  std::vector<Row> out;
  for (const auto& [code, count] : per_country.by_count_desc()) {
    Row row;
    row.code = code;
    for (const Country& c : country_table())
      if (c.code == code) row.name = c.name;
    row.clients = count;
    row.share = total_clients > 0 ? static_cast<double>(count) /
                                        static_cast<double>(total_clients)
                                  : 0.0;
    out.push_back(std::move(row));
  }
  return out;
}

ClientMap build_client_map(const std::vector<util::Ipv4>& clients,
                           const GeoDatabase& db) {
  ClientMap map;
  for (const util::Ipv4& ip : clients) {
    map.per_country.add(db.lookup(ip).code);
    ++map.total_clients;
  }
  return map;
}

}  // namespace torsim::geo
