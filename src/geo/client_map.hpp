// Fig. 3: aggregate deanonymised client addresses into a per-country
// "map" (we render a ranked country histogram rather than a bitmap).
#pragma once

#include <string>
#include <vector>

#include "geo/geoip.hpp"
#include "stats/histogram.hpp"

namespace torsim::geo {

struct ClientMap {
  stats::Histogram<std::string> per_country;  ///< country code -> clients
  std::int64_t total_clients = 0;

  /// Rows sorted by descending client count: (code, name, count, share).
  struct Row {
    std::string code;
    std::string name;
    std::int64_t clients = 0;
    double share = 0.0;
  };
  std::vector<Row> rows() const;
};

/// Aggregates client IPs through the GeoIP database.
ClientMap build_client_map(const std::vector<util::Ipv4>& clients,
                           const GeoDatabase& db);

}  // namespace torsim::geo
