// Synthetic GeoIP: the paper plotted deanonymised botnet-client IPs on a
// world map (Fig. 3). We cannot ship a real GeoIP database, so we build
// a deterministic synthetic one — /8 prefixes assigned to countries in
// proportion to 2013-era internet population — and aggregate to country
// level (the analytic step of Fig. 3 is IP -> location -> aggregate).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/ipv4.hpp"
#include "util/rng.hpp"

namespace torsim::geo {

struct Country {
  std::string code;    ///< ISO-3166 alpha-2
  std::string name;
  double weight = 0.0; ///< share of global internet users (approx. 2013)
};

/// The country table the synthetic database distributes over.
const std::vector<Country>& country_table();

class GeoDatabase {
 public:
  /// Builds the deterministic standard database: every /8 is assigned to
  /// a country, countries receiving /8 counts proportional to weight.
  static GeoDatabase standard(std::uint64_t seed = 2013);

  /// Country for an address ("ZZ"/"unassigned" never occurs: every /8 is
  /// mapped).
  const Country& lookup(const util::Ipv4& address) const;

  /// Samples an address inside the given country's space; throws
  /// std::invalid_argument for unknown codes.
  util::Ipv4 sample_address(std::string_view country_code,
                           util::Rng& rng) const;

  /// Samples a country according to the weights, then an address in it.
  util::Ipv4 sample_global(util::Rng& rng) const;

 private:
  GeoDatabase() = default;
  std::vector<int> prefix_country_;                 // [256] -> country idx
  std::vector<std::vector<std::uint8_t>> country_prefixes_;
};

}  // namespace torsim::geo
