// The operator side of a hidden service: keeps the identity keypair,
// picks introduction points, and (re)publishes v2 descriptors to the six
// responsible HSDirs as time periods roll over.
#pragma once

#include <string>
#include <vector>

#include "dirauth/consensus.hpp"
#include "util/ipv4.hpp"
#include "hs/guard_manager.hpp"
#include "hsdir/directory_network.hpp"
#include "util/rng.hpp"

namespace torsim::hs {

/// One descriptor upload: which directory received it and which entry
/// guard fronted the upload circuit — the two vantage points of the
/// original S&P'13 *service* deanonymisation.
struct PublishRecord {
  relay::RelayId hsdir = relay::kInvalidRelayId;
  relay::RelayId guard = relay::kInvalidRelayId;
};

class ServiceHost {
 public:
  /// Creates a service with a fresh identity.
  ServiceHost(crypto::KeyPair key, util::UnixTime created);

  static ServiceHost create(util::Rng& rng, util::UnixTime now);

  /// The operator machine's IP address — ground truth, observable only
  /// by the first hop of the service's own circuits.
  const util::Ipv4& address() const { return address_; }
  void set_address(util::Ipv4 address) { address_ = address; }

  const crypto::KeyPair& key() const { return key_; }
  const crypto::PermanentId& permanent_id() const { return permanent_id_; }
  std::string onion_address() const;

  bool online() const { return online_; }
  void set_online(bool online) { online_ = online; }

  /// Publishes the descriptors for the current time period if they have
  /// not been published yet, if the responsible HSDir set changed since
  /// the last upload (Tor re-uploads when the ring shifts under it —
  /// this is what lets a shadow relay that just became active collect
  /// descriptors mid-period), or if `force` is set. Introduction points
  /// are sampled from Fast relays in the consensus. Returns the relay
  /// ids that received copies (empty if nothing was published).
  std::vector<relay::RelayId> maybe_publish(
      const dirauth::Consensus& consensus, hsdir::DirectoryNetwork& dirnet,
      util::Rng& rng, util::UnixTime now, bool force = false);

  /// Current descriptor IDs (replica 0 and 1) at time `now`.
  std::vector<crypto::DescriptorId> current_descriptor_ids(
      util::UnixTime now) const;

  /// Turns this into an authenticated ("stealth") service: descriptors
  /// are published under cookie-mixed IDs, so only clients holding the
  /// cookie can derive where to fetch them. Call before first publish
  /// (or force a republish afterwards).
  void set_descriptor_cookie(std::vector<std::uint8_t> cookie) {
    descriptor_cookie_ = std::move(cookie);
  }
  const std::vector<std::uint8_t>& descriptor_cookie() const {
    return descriptor_cookie_;
  }

  /// Time period of the most recent publication (0 if never).
  std::uint32_t last_published_period() const { return last_period_; }

  /// The service's own entry guards — hidden services build circuits
  /// through guards exactly like clients do (which is what the original
  /// S&P'13 deanonymisation attacked). maintain_guards() refreshes the
  /// set against the consensus.
  GuardManager& guards() { return guard_manager_; }
  const GuardManager& guards() const { return guard_manager_; }
  void maintain_guards(const dirauth::Consensus& consensus, util::Rng& rng,
                       util::UnixTime now) {
    guard_manager_.maintain(consensus, rng, now);
  }

  /// Introduction points from the most recent publication (empty before
  /// the first publish).
  const std::vector<crypto::Fingerprint>& introduction_points() const {
    return intro_points_;
  }

  /// Per-HSDir upload circuits of the most recent publication.
  const std::vector<PublishRecord>& last_publish_records() const {
    return publish_records_;
  }

  /// Responsible directories the most recent publication failed to
  /// reach even after the directory network's bounded upload retries
  /// (0 without fault injection). The typed records live in
  /// DirectoryNetwork::failure_log() as kPublishLost.
  int last_publish_lost() const { return last_publish_lost_; }

 private:
  crypto::KeyPair key_;
  crypto::PermanentId permanent_id_;
  util::UnixTime created_;
  bool online_ = true;
  std::uint32_t last_period_ = 0;
  bool published_once_ = false;
  int last_publish_lost_ = 0;
  std::vector<crypto::Fingerprint> last_responsible_;
  std::vector<crypto::Fingerprint> intro_points_;
  std::vector<std::uint8_t> descriptor_cookie_;
  std::vector<PublishRecord> publish_records_;
  util::Ipv4 address_;
  GuardManager guard_manager_;
};

}  // namespace torsim::hs
