#include "hs/client.hpp"

namespace torsim::hs {

const char* to_string(FetchFailure failure) {
  switch (failure) {
    case FetchFailure::kNone: return "none";
    case FetchFailure::kNotFound: return "not-found";
    case FetchFailure::kDirsUnresponsive: return "dirs-unresponsive";
  }
  return "?";
}

Client::Client(util::Ipv4 address, std::uint64_t rng_seed)
    : address_(address), rng_(rng_seed) {}

void Client::maintain(const dirauth::Consensus& consensus,
                      util::UnixTime now) {
  guard_manager_.maintain(consensus, rng_, now);
}

FetchOutcome Client::fetch_descriptor(std::string_view onion,
                                      const dirauth::Consensus& consensus,
                                      hsdir::DirectoryNetwork& dirnet,
                                      util::UnixTime now,
                                      std::span<const std::uint8_t> cookie) {
  const auto permanent_id = crypto::parse_onion_address(onion);
  const std::uint32_t period = crypto::time_period(now, permanent_id);

  // Cache hit: a descriptor fetched earlier in the same time period is
  // reused without touching the directories.
  const std::string key(onion);
  const auto cached = descriptor_cache_.find(key);
  if (cached != descriptor_cache_.end() && cached->second.first == period) {
    FetchOutcome outcome;
    outcome.found = true;
    outcome.from_cache = true;
    outcome.descriptor_id = cached->second.second;
    outcome.client_address = address_;
    outcome.time = now;
    return outcome;
  }

  const auto replica =
      static_cast<std::uint8_t>(rng_.uniform_int(0, crypto::kNumReplicas - 1));
  auto outcome = fetch_descriptor_id(
      crypto::descriptor_id(permanent_id, period, replica, cookie), consensus,
      dirnet, now);
  if (outcome.found)
    descriptor_cache_[key] = {period, outcome.descriptor_id};
  return outcome;
}

FetchOutcome Client::fetch_descriptor_id(const crypto::DescriptorId& id,
                                         const dirauth::Consensus& consensus,
                                         hsdir::DirectoryNetwork& dirnet,
                                         util::UnixTime now) {
  FetchOutcome outcome;
  outcome.descriptor_id = id;
  outcome.client_address = address_;
  outcome.time = now;

  const fault::FaultInjector* injector = dirnet.fault_injector();
  const int max_attempts =
      injector != nullptr && injector->enabled()
          ? injector->retry().max_attempts
          : 1;

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    outcome.attempts = attempt;
    if (attempt > 1)
      outcome.backoff_spent += injector->retry().backoff_before(attempt);

    // Each try is a fresh guard-fronted circuit.
    const auto guard = guard_manager_.pick(consensus, rng_);
    if (guard) outcome.guard = guard->relay;

    // Middle hop: any Fast relay that is neither the guard nor (later)
    // the directory itself; the simplification of not excluding the
    // HSDir is harmless at network scale.
    const auto fast = consensus.with_flag(dirauth::Flag::kFast);
    if (!fast.empty()) {
      for (int tries = 0; tries < 8; ++tries) {
        const auto* candidate = fast[rng_.index(fast.size())];
        if (candidate->relay != outcome.guard) {
          outcome.middle = candidate->relay;
          break;
        }
      }
    }

    relay::RelayId hsdir = relay::kInvalidRelayId;
    hsdir::FetchTrace trace;
    const auto descriptor =
        dirnet.fetch_from(consensus, id, now + outcome.backoff_spent, hsdir,
                          &trace);
    outcome.hsdir = hsdir;
    if (descriptor) {
      outcome.found = true;
      outcome.failure = FetchFailure::kNone;
      return outcome;
    }
    if (trace.dirs_tried > 0) {
      // At least one responsible directory answered and does not hold
      // the id — a definitive miss, retrying cannot change it.
      outcome.failure = FetchFailure::kNotFound;
      return outcome;
    }
    // Every responsible directory was unresponsive: retryable.
    outcome.failure = FetchFailure::kDirsUnresponsive;
  }
  return outcome;
}

}  // namespace torsim::hs
