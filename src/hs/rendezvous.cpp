#include "hs/rendezvous.hpp"

namespace torsim::hs {

const char* to_string(RendezvousFailure failure) {
  switch (failure) {
    case RendezvousFailure::kNone: return "none";
    case RendezvousFailure::kNoDescriptor: return "no-descriptor";
    case RendezvousFailure::kNoIntroPoints: return "no-intro-points";
    case RendezvousFailure::kNoClientGuard: return "no-client-guard";
    case RendezvousFailure::kNoServiceGuard: return "no-service-guard";
    case RendezvousFailure::kIntroPointGone: return "intro-point-gone";
    case RendezvousFailure::kNoRendezvousPoint: return "no-rendezvous-point";
  }
  return "?";
}

RendezvousOutcome rendezvous_connect(Client& client, ServiceHost& service,
                                     const dirauth::Consensus& consensus,
                                     hsdir::DirectoryNetwork& dirnet,
                                     util::Rng& rng, util::UnixTime now,
                                     std::span<const std::uint8_t> cookie) {
  RendezvousOutcome outcome;

  // Step 0: the client needs the descriptor (guard-fronted fetch).
  outcome.fetch = client.fetch_descriptor(service.onion_address(), consensus,
                                          dirnet, now, cookie);
  if (!outcome.fetch.found) {
    outcome.failure = RendezvousFailure::kNoDescriptor;
    return outcome;
  }

  // Re-read the descriptor to get the introduction points (the fetch
  // outcome intentionally carries only observable metadata).
  relay::RelayId serving_hsdir = relay::kInvalidRelayId;
  const auto descriptor = dirnet.fetch_from(
      consensus, outcome.fetch.descriptor_id, now, serving_hsdir);
  if (!descriptor || descriptor->introduction_points.empty()) {
    outcome.failure = RendezvousFailure::kNoIntroPoints;
    return outcome;
  }

  // Step 1: client circuit to the rendezvous point.
  const auto client_guard = client.guards().pick(consensus, rng);
  if (!client_guard) {
    outcome.failure = RendezvousFailure::kNoClientGuard;
    return outcome;
  }
  outcome.client_guard = client_guard->relay;

  const auto fast = consensus.with_flag(dirauth::Flag::kFast);
  if (fast.empty()) {
    outcome.failure = RendezvousFailure::kNoRendezvousPoint;
    return outcome;
  }
  outcome.rendezvous_point = fast[rng.index(fast.size())]->relay;
  outcome.cookie = rng.next();
  outcome.setup_cells += 3;  // EXTEND x2 + ESTABLISH_RENDEZVOUS

  // Step 2: client circuit to an introduction point from the descriptor.
  // Tor tries the advertised intro points in random order until one is
  // still part of the network.
  std::vector<crypto::Fingerprint> intro_order =
      descriptor->introduction_points;
  rng.shuffle(intro_order);
  const dirauth::ConsensusEntry* intro_entry = nullptr;
  for (const auto& intro_fp : intro_order) {
    const dirauth::ConsensusEntry* candidate = consensus.find(intro_fp);
    if (candidate != nullptr &&
        has_flag(candidate->flags, dirauth::Flag::kRunning)) {
      intro_entry = candidate;
      break;
    }
    outcome.setup_cells += 2;  // wasted EXTEND attempts to a dead intro
  }
  if (intro_entry == nullptr) {
    outcome.failure = RendezvousFailure::kIntroPointGone;
    return outcome;
  }
  outcome.intro_point = intro_entry->relay;
  outcome.setup_cells += 3;  // EXTEND x2 + INTRODUCE1

  // Step 3/4: the service receives INTRODUCE2 over its intro circuit and
  // builds a guard-fronted circuit to the rendezvous point.
  const auto service_guard = service.guards().pick(consensus, rng);
  if (!service_guard) {
    outcome.failure = RendezvousFailure::kNoServiceGuard;
    return outcome;
  }
  outcome.service_guard = service_guard->relay;
  outcome.setup_cells += 4;  // INTRODUCE2 + EXTEND x2 + RENDEZVOUS1

  outcome.setup_cells += 1;  // RENDEZVOUS2 back to the client
  outcome.success = true;
  return outcome;
}

}  // namespace torsim::hs
