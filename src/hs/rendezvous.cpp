#include "hs/rendezvous.hpp"

namespace torsim::hs {

const char* to_string(RendezvousFailure failure) {
  switch (failure) {
    case RendezvousFailure::kNone: return "none";
    case RendezvousFailure::kNoDescriptor: return "no-descriptor";
    case RendezvousFailure::kNoIntroPoints: return "no-intro-points";
    case RendezvousFailure::kNoClientGuard: return "no-client-guard";
    case RendezvousFailure::kNoServiceGuard: return "no-service-guard";
    case RendezvousFailure::kIntroPointGone: return "intro-point-gone";
    case RendezvousFailure::kNoRendezvousPoint: return "no-rendezvous-point";
    case RendezvousFailure::kRendezvousTimeout: return "rendezvous-timeout";
    case RendezvousFailure::kIntroTimeout: return "intro-timeout";
    case RendezvousFailure::kServiceCircuitTimeout:
      return "service-circuit-timeout";
  }
  return "?";
}

RendezvousOutcome rendezvous_connect(Client& client, ServiceHost& service,
                                     const dirauth::Consensus& consensus,
                                     hsdir::DirectoryNetwork& dirnet,
                                     util::Rng& rng, util::UnixTime now,
                                     std::span<const std::uint8_t> cookie) {
  RendezvousOutcome outcome;

  // Step 0: the client needs the descriptor (guard-fronted fetch).
  outcome.fetch = client.fetch_descriptor(service.onion_address(), consensus,
                                          dirnet, now, cookie);
  if (!outcome.fetch.found) {
    outcome.failure = RendezvousFailure::kNoDescriptor;
    return outcome;
  }

  // Re-read the descriptor to get the introduction points (the fetch
  // outcome intentionally carries only observable metadata).
  relay::RelayId serving_hsdir = relay::kInvalidRelayId;
  const auto descriptor = dirnet.fetch_from(
      consensus, outcome.fetch.descriptor_id, now, serving_hsdir);
  if (!descriptor || descriptor->introduction_points.empty()) {
    outcome.failure = RendezvousFailure::kNoIntroPoints;
    return outcome;
  }

  // Step 1: client circuit to the rendezvous point.
  const auto client_guard = client.guards().pick(consensus, rng);
  if (!client_guard) {
    outcome.failure = RendezvousFailure::kNoClientGuard;
    return outcome;
  }
  outcome.client_guard = client_guard->relay;

  const auto fast = consensus.with_flag(dirauth::Flag::kFast);
  if (fast.empty()) {
    outcome.failure = RendezvousFailure::kNoRendezvousPoint;
    return outcome;
  }

  // Injected cell-level stalls ride on the directory network's fault
  // injector; without one every establishment succeeds first try and
  // the draw sequence below is exactly the legacy one.
  const fault::FaultInjector* injector = dirnet.fault_injector();
  const bool inject = injector != nullptr && injector->enabled();
  const int max_attempts = inject ? injector->retry().max_attempts : 1;

  // Distinct stall sites within one connection attempt.
  constexpr std::uint64_t kRpCircuit = 1;
  constexpr std::uint64_t kServiceCircuit = 2;

  bool rp_established = false;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    outcome.rp_attempts = attempt;
    if (attempt > 1)
      outcome.backoff_spent += injector->retry().backoff_before(attempt);
    // A fresh RP + cookie per try, like Tor abandoning a stuck circuit.
    outcome.rendezvous_point = fast[rng.index(fast.size())]->relay;
    outcome.cookie = rng.next();
    if (inject &&
        injector->circuit_stalled(outcome.cookie, kRpCircuit, attempt)) {
      outcome.setup_cells += 2;  // EXTENDs sunk into the stalled circuit
      continue;
    }
    outcome.setup_cells += 3;  // EXTEND x2 + ESTABLISH_RENDEZVOUS
    rp_established = true;
    break;
  }
  if (!rp_established) {
    outcome.failure = RendezvousFailure::kRendezvousTimeout;
    return outcome;
  }

  // Step 2: client circuit to an introduction point from the descriptor.
  // Tor tries the advertised intro points in random order until one is
  // still part of the network *and* answers.
  std::vector<crypto::Fingerprint> intro_order =
      descriptor->introduction_points;
  rng.shuffle(intro_order);
  const dirauth::ConsensusEntry* intro_entry = nullptr;
  bool live_intro_stalled = false;
  for (const auto& intro_fp : intro_order) {
    const dirauth::ConsensusEntry* candidate = consensus.find(intro_fp);
    if (candidate == nullptr ||
        !has_flag(candidate->flags, dirauth::Flag::kRunning)) {
      outcome.setup_cells += 2;  // wasted EXTEND attempts to a dead intro
      continue;
    }
    if (inject) {
      const std::uint64_t intro_key =
          fault::FaultInjector::key_of(intro_fp.data(), intro_fp.size());
      bool stalled = true;
      for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        if (!injector->circuit_stalled(outcome.cookie ^ intro_key, attempt,
                                       attempt)) {
          stalled = false;
          break;
        }
        outcome.setup_cells += 2;
        outcome.backoff_spent += injector->retry().backoff_before(attempt + 1);
      }
      if (stalled) {
        // The intro point is in the consensus but its circuit never
        // completed — retry exhaustion moves on to the next one.
        live_intro_stalled = true;
        continue;
      }
    }
    intro_entry = candidate;
    break;
  }
  if (intro_entry == nullptr) {
    outcome.failure = live_intro_stalled ? RendezvousFailure::kIntroTimeout
                                         : RendezvousFailure::kIntroPointGone;
    return outcome;
  }
  outcome.intro_point = intro_entry->relay;
  outcome.setup_cells += 3;  // EXTEND x2 + INTRODUCE1

  // Step 3/4: the service receives INTRODUCE2 over its intro circuit and
  // builds a guard-fronted circuit to the rendezvous point.
  const auto service_guard = service.guards().pick(consensus, rng);
  if (!service_guard) {
    outcome.failure = RendezvousFailure::kNoServiceGuard;
    return outcome;
  }
  outcome.service_guard = service_guard->relay;
  if (inject) {
    bool service_circuit_up = false;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (!injector->circuit_stalled(outcome.cookie, kServiceCircuit,
                                     attempt)) {
        service_circuit_up = true;
        break;
      }
      outcome.setup_cells += 2;
      outcome.backoff_spent += injector->retry().backoff_before(attempt + 1);
    }
    if (!service_circuit_up) {
      outcome.failure = RendezvousFailure::kServiceCircuitTimeout;
      return outcome;
    }
  }
  outcome.setup_cells += 4;  // INTRODUCE2 + EXTEND x2 + RENDEZVOUS1

  outcome.setup_cells += 1;  // RENDEZVOUS2 back to the client
  outcome.success = true;
  return outcome;
}

}  // namespace torsim::hs
