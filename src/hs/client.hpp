// A Tor client that fetches hidden-service descriptors. The fetch path
// records which guard fronted the circuit and which HSDir answered —
// exactly the two vantage points the Sec. VI deanonymisation attack
// needs to control.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hs/guard_manager.hpp"
#include "hsdir/directory_network.hpp"
#include "util/ipv4.hpp"

namespace torsim::hs {

/// Why a descriptor fetch ultimately failed (typed — a fetch never just
/// silently returns "not found" when the directories were down).
enum class FetchFailure {
  kNone,                ///< fetch succeeded
  kNotFound,            ///< every responsible dir answered: nobody holds it
  kDirsUnresponsive,    ///< outage windows ate every attempt (retried out)
};

const char* to_string(FetchFailure failure);

/// Outcome of one descriptor fetch.
struct FetchOutcome {
  bool found = false;
  /// Served from the client's local descriptor cache — no directory was
  /// contacted (so nothing for a measuring HSDir to log).
  bool from_cache = false;
  /// Typed failure cause when !found.
  FetchFailure failure = FetchFailure::kNone;
  /// Tries spent (1 = first try succeeded / nothing was retryable).
  int attempts = 1;
  /// Exponential-backoff sim-time charged by the retries.
  util::Seconds backoff_spent = 0;
  /// Descriptor id that was requested.
  crypto::DescriptorId descriptor_id{};
  /// The HSDir that served (or finally failed) the request.
  relay::RelayId hsdir = relay::kInvalidRelayId;
  /// The entry guard of the circuit used for the request.
  relay::RelayId guard = relay::kInvalidRelayId;
  /// The middle relay of the circuit.
  relay::RelayId middle = relay::kInvalidRelayId;
  /// Client source address — ground truth; visible to the guard only.
  util::Ipv4 client_address;
  util::UnixTime time = 0;
};

class Client {
 public:
  Client(util::Ipv4 address, std::uint64_t rng_seed);

  const util::Ipv4& address() const { return address_; }
  GuardManager& guards() { return guard_manager_; }
  const GuardManager& guards() const { return guard_manager_; }

  /// Refreshes guards against the consensus.
  void maintain(const dirauth::Consensus& consensus, util::UnixTime now);

  /// Fetches the descriptor for `onion` (16-char base32, no suffix).
  /// Derives the current descriptor id for a random replica and asks the
  /// responsible HSDirs through a guard-fronted circuit. For an
  /// authenticated service, pass the shared `cookie`; without it the
  /// derived id is wrong and the fetch fails.
  FetchOutcome fetch_descriptor(std::string_view onion,
                                const dirauth::Consensus& consensus,
                                hsdir::DirectoryNetwork& dirnet,
                                util::UnixTime now,
                                std::span<const std::uint8_t> cookie = {});

  /// Fetches a raw descriptor id (clients with stale/never-published ids
  /// do this constantly — 80% of requests in the paper's HSDir logs).
  /// When `dirnet` carries an active fault injector, a fetch that found
  /// every responsible directory unresponsive is retried on a fresh
  /// circuit with bounded exponential backoff (the injector's
  /// RetryPolicy); exhaustion surfaces as kDirsUnresponsive.
  FetchOutcome fetch_descriptor_id(const crypto::DescriptorId& id,
                                   const dirauth::Consensus& consensus,
                                   hsdir::DirectoryNetwork& dirnet,
                                   util::UnixTime now);

 private:
  util::Ipv4 address_;
  util::Rng rng_;
  GuardManager guard_manager_;
  /// onion -> (time period, fetched descriptor id): Tor caches a fetched
  /// descriptor until its period rolls over.
  std::map<std::string, std::pair<std::uint32_t, crypto::DescriptorId>>
      descriptor_cache_;
};

}  // namespace torsim::hs
