// The v2 rendezvous protocol: how a client actually *connects* to a
// hidden service once it has the descriptor.
//
//   1. The client builds a circuit to a rendezvous point (RP) of its
//      choosing and installs a one-time cookie (ESTABLISH_RENDEZVOUS).
//   2. It builds a second circuit to one of the service's introduction
//      points and hands over the cookie + RP (INTRODUCE1).
//   3. The introduction point relays INTRODUCE2 to the service over the
//      service's long-lived intro circuit.
//   4. The service builds a circuit to the RP (through its own guard!)
//      and presents the cookie (RENDEZVOUS1); the RP splices the two
//      circuits and the client sees RENDEZVOUS2.
//
// Every circuit's first hop is an entry guard — the structural fact both
// the S&P'13 service deanonymisation and this paper's Sec. VI client
// deanonymisation exploit.
#pragma once

#include <cstdint>

#include "hs/client.hpp"
#include "hs/service_host.hpp"

namespace torsim::hs {

/// Why a rendezvous attempt failed.
enum class RendezvousFailure {
  kNone,
  kNoDescriptor,        ///< descriptor fetch failed at every HSDir
  kNoIntroPoints,       ///< descriptor carried no introduction points
  kNoClientGuard,       ///< client has no usable guard
  kNoServiceGuard,      ///< service has no usable guard
  kIntroPointGone,      ///< chosen intro point left the consensus
  kNoRendezvousPoint,   ///< no Fast relay available as RP
  kRendezvousTimeout,   ///< RP establishment stalled on every retry
  kIntroTimeout,        ///< intro circuits stalled to every live intro point
  kServiceCircuitTimeout,  ///< the service's RP circuit stalled out
};

const char* to_string(RendezvousFailure failure);

/// Result of one full connection attempt.
struct RendezvousOutcome {
  bool success = false;
  RendezvousFailure failure = RendezvousFailure::kNone;
  /// The descriptor fetch that preceded the attempt.
  FetchOutcome fetch;
  relay::RelayId client_guard = relay::kInvalidRelayId;
  relay::RelayId intro_point = relay::kInvalidRelayId;
  relay::RelayId rendezvous_point = relay::kInvalidRelayId;
  relay::RelayId service_guard = relay::kInvalidRelayId;
  std::uint64_t cookie = 0;
  /// Protocol cells spent on establishment (setup overhead the paper's
  /// traffic-signature rides on top of).
  int setup_cells = 0;
  /// Tries spent establishing the client's RP circuit (1 = no stall).
  int rp_attempts = 1;
  /// Exponential-backoff sim-time charged by stall retries.
  util::Seconds backoff_spent = 0;
};

/// Runs the whole protocol between `client` and `service` against the
/// current consensus + directory network. The service must have
/// published; both sides must have maintained guards. For an
/// authenticated service, pass the shared descriptor `cookie`.
RendezvousOutcome rendezvous_connect(Client& client, ServiceHost& service,
                                     const dirauth::Consensus& consensus,
                                     hsdir::DirectoryNetwork& dirnet,
                                     util::Rng& rng, util::UnixTime now,
                                     std::span<const std::uint8_t> cookie = {});

}  // namespace torsim::hs
