// Entry-guard selection, per the 2013 design the paper's Sec. VI attack
// leans on: each client keeps a set of three guards, uses a random one of
// them as the first hop of every circuit, replaces guards that expire
// (uniform 30–60 day lifetime) or become unreachable (resampling whenever
// fewer than two remain reachable).
#pragma once

#include <optional>
#include <vector>

#include "dirauth/consensus.hpp"
#include "util/rng.hpp"

namespace torsim::hs {

/// One guard slot.
struct GuardSlot {
  relay::RelayId relay = relay::kInvalidRelayId;
  crypto::Fingerprint fingerprint{};
  util::UnixTime chosen_at = 0;
  util::UnixTime expires_at = 0;
};

struct GuardPolicy {
  int set_size = 3;
  util::Seconds min_lifetime = 30 * util::kSecondsPerDay;
  util::Seconds max_lifetime = 60 * util::kSecondsPerDay;
};

class GuardManager {
 public:
  explicit GuardManager(GuardPolicy policy = {}) : policy_(policy) {}

  /// Refreshes the guard set against the current consensus: drops expired
  /// guards, and (re)samples from Guard-flagged relays whenever fewer
  /// than two current guards are still listed in the consensus.
  void maintain(const dirauth::Consensus& consensus, util::Rng& rng,
                util::UnixTime now);

  /// Picks the entry guard for a new circuit: a uniformly random member
  /// of the guard set that is present in the consensus. Returns nullopt
  /// if no guard is usable (caller should maintain() first).
  std::optional<GuardSlot> pick(const dirauth::Consensus& consensus,
                                util::Rng& rng) const;

  const std::vector<GuardSlot>& guards() const { return guards_; }

 private:
  GuardPolicy policy_;
  std::vector<GuardSlot> guards_;
};

}  // namespace torsim::hs
