#include "hs/guard_manager.hpp"

#include <algorithm>

namespace torsim::hs {
namespace {

bool listed(const dirauth::Consensus& consensus, const GuardSlot& slot) {
  const auto* entry = consensus.find(slot.fingerprint);
  return entry != nullptr && has_flag(entry->flags, dirauth::Flag::kRunning);
}

}  // namespace

void GuardManager::maintain(const dirauth::Consensus& consensus,
                            util::Rng& rng, util::UnixTime now) {
  // Drop expired guards.
  guards_.erase(std::remove_if(guards_.begin(), guards_.end(),
                               [now](const GuardSlot& g) {
                                 return now >= g.expires_at;
                               }),
                guards_.end());

  const auto reachable = static_cast<int>(
      std::count_if(guards_.begin(), guards_.end(),
                    [&](const GuardSlot& g) { return listed(consensus, g); }));

  // Top up when below target size, or resample when fewer than two of the
  // kept guards are reachable.
  if (static_cast<int>(guards_.size()) >= policy_.set_size && reachable >= 2)
    return;

  // Resampling: guards that fell out of the consensus must actually be
  // dropped, or a full set of dead guards would block the top-up below
  // and wedge pick() forever.
  if (reachable < 2)
    guards_.erase(std::remove_if(guards_.begin(), guards_.end(),
                                 [&](const GuardSlot& g) {
                                   return !listed(consensus, g);
                                 }),
                  guards_.end());

  auto candidates = consensus.with_flag(dirauth::Flag::kGuard);
  if (candidates.empty()) return;
  // Bandwidth-weighted sampling (Tor weights path selection by consensus
  // bandwidth).
  double total_bw = 0.0;
  for (const auto* candidate : candidates)
    total_bw += candidate->bandwidth_kbps;
  const auto weighted_pick = [&]() -> const dirauth::ConsensusEntry* {
    if (total_bw <= 0.0) return candidates[rng.index(candidates.size())];
    double roll = rng.uniform(0.0, total_bw);
    for (const auto* candidate : candidates) {
      roll -= candidate->bandwidth_kbps;
      if (roll <= 0.0) return candidate;
    }
    return candidates.back();
  };
  while (static_cast<int>(guards_.size()) < policy_.set_size) {
    const auto* entry = weighted_pick();
    const bool already =
        std::any_of(guards_.begin(), guards_.end(), [&](const GuardSlot& g) {
          return g.relay == entry->relay;
        });
    if (already) {
      // Avoid spinning forever on tiny candidate sets.
      if (static_cast<int>(candidates.size()) <=
          static_cast<int>(guards_.size()))
        break;
      continue;
    }
    GuardSlot slot;
    slot.relay = entry->relay;
    slot.fingerprint = entry->fingerprint;
    slot.chosen_at = now;
    slot.expires_at =
        now + rng.uniform_int(policy_.min_lifetime, policy_.max_lifetime);
    guards_.push_back(slot);
  }
}

std::optional<GuardSlot> GuardManager::pick(
    const dirauth::Consensus& consensus, util::Rng& rng) const {
  std::vector<const GuardSlot*> usable;
  for (const GuardSlot& g : guards_)
    if (listed(consensus, g)) usable.push_back(&g);
  if (usable.empty()) return std::nullopt;
  return *usable[rng.index(usable.size())];
}

}  // namespace torsim::hs
