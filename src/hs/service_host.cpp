#include "hs/service_host.hpp"

#include <algorithm>

namespace torsim::hs {

ServiceHost::ServiceHost(crypto::KeyPair key, util::UnixTime created)
    : key_(std::move(key)),
      permanent_id_(crypto::permanent_id_from_fingerprint(key_.fingerprint())),
      created_(created) {}

ServiceHost ServiceHost::create(util::Rng& rng, util::UnixTime now) {
  ServiceHost host(crypto::KeyPair::generate(rng), now);
  host.set_address(util::Ipv4::random_public(rng));
  return host;
}

std::string ServiceHost::onion_address() const {
  return crypto::onion_address(permanent_id_);
}

std::vector<relay::RelayId> ServiceHost::maybe_publish(
    const dirauth::Consensus& consensus, hsdir::DirectoryNetwork& dirnet,
    util::Rng& rng, util::UnixTime now, bool force) {
  if (!online_) return {};
  const std::uint32_t period = crypto::time_period(now, permanent_id_);

  // Fingerprints of the currently responsible HSDirs for both replicas.
  std::vector<crypto::Fingerprint> responsible;
  std::vector<relay::RelayId> responsible_relays;
  const auto replica_ids = crypto::descriptor_ids_for_period(
      permanent_id_, period, descriptor_cookie_);
  for (std::uint8_t replica = 0; replica < crypto::kNumReplicas; ++replica) {
    const auto& id = replica_ids[replica];
    for (const dirauth::ConsensusEntry* e : consensus.responsible_hsdirs(id)) {
      responsible.push_back(e->fingerprint);
      responsible_relays.push_back(e->relay);
    }
  }
  const bool ring_shifted = responsible != last_responsible_;
  if (published_once_ && period == last_period_ && !ring_shifted && !force)
    return {};

  // Sample up to 3 introduction points among Fast relays.
  intro_points_.clear();
  const auto fast = consensus.with_flag(dirauth::Flag::kFast);
  if (!fast.empty()) {
    for (int i = 0; i < 3; ++i)
      intro_points_.push_back(fast[rng.index(fast.size())]->fingerprint);
  }

  std::vector<hsdir::Descriptor> descriptors;
  for (std::uint8_t replica = 0; replica < crypto::kNumReplicas; ++replica)
    descriptors.push_back(hsdir::make_descriptor(key_, intro_points_, replica,
                                                 now, descriptor_cookie_));

  last_period_ = period;
  published_once_ = true;
  last_responsible_ = std::move(responsible);
  const auto receivers = dirnet.publish(consensus, descriptors);

  // Typed outcome: directories the upload never reached despite the
  // network's bounded retries (receivers is deduplicated, so compare
  // against the deduplicated responsible set).
  std::sort(responsible_relays.begin(), responsible_relays.end());
  responsible_relays.erase(
      std::unique(responsible_relays.begin(), responsible_relays.end()),
      responsible_relays.end());
  last_publish_lost_ =
      static_cast<int>(responsible_relays.size() - receivers.size());

  // Each upload rides its own guard-fronted circuit (when the service
  // maintains guards; a guard-less service uploads unprotected, which is
  // what made the original attack so effective against default setups).
  publish_records_.clear();
  for (const relay::RelayId hsdir : receivers) {
    PublishRecord record;
    record.hsdir = hsdir;
    if (const auto guard = guard_manager_.pick(consensus, rng))
      record.guard = guard->relay;
    publish_records_.push_back(record);
  }
  return receivers;
}

std::vector<crypto::DescriptorId> ServiceHost::current_descriptor_ids(
    util::UnixTime now) const {
  const std::uint32_t period = crypto::time_period(now, permanent_id_);
  const auto replica_ids = crypto::descriptor_ids_for_period(
      permanent_id_, period, descriptor_cookie_);
  return {replica_ids.begin(), replica_ids.end()};
}

}  // namespace torsim::hs
