#include "obs/trace.hpp"

#include <algorithm>
#include <limits>

#include "obs/json.hpp"

namespace torsim::obs {

void TraceRecorder::complete(
    std::string name, std::string category, util::UnixTime start,
    util::Seconds duration,
    std::vector<std::pair<std::string, std::int64_t>> args) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({std::move(name), std::move(category), start, duration,
                     /*instant=*/false, std::move(args)});
}

void TraceRecorder::instant(
    std::string name, std::string category, util::UnixTime at,
    std::vector<std::pair<std::string, std::int64_t>> args) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back({std::move(name), std::move(category), at, 0,
                     /*instant=*/true, std::move(args)});
}

std::size_t TraceRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceRecorder::chrome_json() const {
  std::vector<const TraceEvent*> ordered;
  util::UnixTime epoch = std::numeric_limits<util::UnixTime>::max();
  const std::lock_guard<std::mutex> lock(mu_);
  ordered.reserve(events_.size());
  for (const TraceEvent& event : events_) {
    ordered.push_back(&event);
    epoch = std::min(epoch, event.start);
  }
  if (ordered.empty()) epoch = 0;
  // Stable sort by start time: ties keep record order, so the bytes
  // are fixed by the recording sequence, not by any container layout.
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->start < b->start;
                   });

  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ms");
  json.key("traceEvents").begin_array();
  for (const TraceEvent* event : ordered) {
    json.begin_object();
    json.key("name").value(event->name);
    json.key("cat").value(event->category);
    json.key("ph").value(event->instant ? "i" : "X");
    // Sim seconds -> trace-viewer microseconds, rebased to the first
    // event. 1 sim second renders as 1 "microsecond" of trace time:
    // viewers care about relative structure, and this keeps multi-week
    // simulations inside comfortable viewer ranges.
    json.key("ts").value(event->start - epoch);
    if (!event->instant) json.key("dur").value(event->duration);
    if (event->instant) json.key("s").value("g");
    json.key("pid").value(static_cast<std::int64_t>(1));
    json.key("tid").value(static_cast<std::int64_t>(1));
    json.key("args").begin_object();
    json.key("sim_time_utc").value(util::format_utc(event->start));
    for (const auto& [key, value] : event->args) json.key(key).value(value);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace torsim::obs
