// Wall-clock phase timing and peak-RSS sampling for *non-golden* perf
// reports (the BENCH_*.json trajectory, --threads sweeps).
//
// This module is the torsim tree's single sanctioned wall-clock
// reader: obs/stopwatch.cpp is the only file where detlint permits
// std::chrono::steady_clock (the allowlist is path-scoped — a chrono
// call anywhere else still fails the lint gate, see
// docs/static-analysis.md). Nothing here may flow into a golden,
// a CSV, a metrics registry, or a trace: wall time is ambient state,
// so it is quarantined into the separate perf section of reports.
// Sim-time observability lives in obs/metrics.hpp and obs/trace.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace torsim::obs {

/// Monotonic wall-clock seconds since an arbitrary epoch.
double wall_clock_seconds();

/// The process's peak resident set size in bytes (getrusage), or 0
/// when the platform does not report it.
std::int64_t peak_rss_bytes();

/// The process's *current* resident set size in bytes
/// (/proc/self/statm), or 0 when the platform does not report it.
/// bench_population reads this before/after building each layout to
/// measure the delta peak_rss_bytes cannot see (peak never goes down).
std::int64_t current_rss_bytes();

/// Accumulating named phase timers for a bench/CLI run:
///   PhaseTimer timer;
///   { PhaseTimer::Scope s = timer.scope("population"); build(); }
/// Phases accumulate across repeated scopes; emission is name-ordered.
class PhaseTimer {
 public:
  class Scope {
   public:
    Scope(PhaseTimer& timer, std::string name)
        : timer_(timer), name_(std::move(name)),
          start_(wall_clock_seconds()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { timer_.add(name_, wall_clock_seconds() - start_); }

   private:
    PhaseTimer& timer_;
    std::string name_;
    double start_;
  };

  Scope scope(std::string name) { return Scope(*this, std::move(name)); }
  void add(const std::string& name, double seconds) {
    phases_[name] += seconds;
  }

  const std::map<std::string, double>& phases() const { return phases_; }
  double total_seconds() const;

 private:
  std::map<std::string, double> phases_;
};

}  // namespace torsim::obs
