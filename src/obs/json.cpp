#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace torsim::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(std::int64_t value) {
  return std::to_string(value);
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no Inf/NaN
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  std::string out = buf;
  // Integral doubles keep a float marker so the field's type is stable
  // whatever the value ("1.0", not "1").
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

void JsonWriter::newline() {
  out_ += '\n';
  out_.append(2 * has_element_.size(), ' ');
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (has_element_.empty()) return;
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  newline();
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) newline();
  out_ += '}';
  if (has_element_.empty()) out_ += '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = has_element_.back();
  has_element_.pop_back();
  if (had) newline();
  out_ += ']';
  if (has_element_.empty()) out_ += '\n';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  newline();
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  before_value();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += json_number(number);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  out_ += json_number(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

}  // namespace torsim::obs
