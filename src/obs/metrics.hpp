// Deterministic metrics: named counters, gauges, and fixed-bucket
// histograms whose exported bytes are a pure function of the scenario.
//
// Determinism contract (see docs/observability.md):
//
//   * Counters and histogram buckets are integer accumulators. Integer
//     addition commutes, so concurrent increments from inside a
//     parallel_for region produce the same totals as the serial loop —
//     the *set* of increments is fixed by the scenario, and order
//     cannot change a sum. This is why metrics are the one observable
//     hot paths may touch from worker threads.
//   * Gauges are last-writer-wins and therefore must only be set from
//     serial sections (the commit loop after an ordered reduction).
//   * Emission walks a std::map, so output order is name order — never
//     registration or hash order. Two registries that saw the same
//     increments emit byte-identical text/JSON.
//   * Per-shard registries can be combined with merge(); merging in
//     shard-index order is deterministic for every metric kind.
//
// Metric names follow "<subsystem>.<noun>[_<qualifier>]", e.g.
// "scan.probe_timeouts", "fault.connect_drop", "sim.hours_stepped".
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace torsim::obs {

class JsonWriter;

/// Monotonic integer counter. Increment is atomic (relaxed): safe from
/// parallel regions, deterministic because integer sums commute.
class Counter {
 public:
  void inc(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-writer-wins integer gauge. Set only from serial sections; a
/// racing set would make the surviving value scheduling-dependent.
class Gauge {
 public:
  void set(std::int64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket integer histogram. Bucket i counts observations with
/// value <= edges[i] (first matching edge); values above the last edge
/// land in the implicit overflow bucket. Edges are pinned at
/// registration so shards and reruns always agree on the layout.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> edges);

  /// Atomic per-bucket increment; safe from parallel regions.
  void observe(std::int64_t value);

  const std::vector<std::int64_t>& edges() const { return edges_; }
  /// Bucket counts, one per edge plus the trailing overflow bucket.
  std::vector<std::int64_t> bucket_counts() const;
  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Index of the bucket `value` falls into (edges.size() = overflow).
  std::size_t bucket_index(std::int64_t value) const;

 private:
  friend class MetricsRegistry;

  std::vector<std::int64_t> edges_;  // strictly increasing
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// The registry: owns metrics by name, hands out stable references.
/// Registration takes a lock (register once, outside hot loops, and
/// cache the reference); increments on the returned objects are
/// lock-free. Emission is ordered by metric name.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter named `name`, creating it on first use. The
  /// reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// Returns the histogram named `name`; created with `edges` on first
  /// use. Re-registering with different edges throws std::logic_error —
  /// bucket layout is part of the metric's identity.
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> edges);

  /// Adds every metric of `other` into this registry: counters and
  /// histogram buckets add, gauges overwrite (last merge wins — merge
  /// shards in index order). Histograms must agree on edges.
  void merge(const MetricsRegistry& other);

  /// One line per metric, sorted by name:
  ///   counter <name> <value>
  ///   gauge <name> <value>
  ///   histogram <name> count <n> sum <s> buckets le<edge>:<c>... inf:<c>
  std::string to_text() const;

  /// Canonical JSON document {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with name-sorted keys.
  std::string to_json() const;
  /// Emits the same three sections into an already-open object.
  void write_json_sections(JsonWriter& json) const;

  bool empty() const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace torsim::obs
