// Sim-time span tracing: begin/end records against the simulation
// clock (util::Clock / sim::World ticks), exported as Chrome
// trace_event JSON (chrome://tracing, Perfetto, speedscope).
//
// Timestamps are *simulation* seconds, never wall-clock — a trace is a
// golden-testable artifact, byte-identical for every --threads value
// and every host. The recorder therefore accepts events only from
// serial sections (the commit loop after an ordered reduction, or the
// single-threaded sim engine); the internal mutex protects integrity
// if that contract is broken, but event order — and thus the exported
// bytes — is only guaranteed deterministic for serial recording.
// Wall-clock phase timing lives in obs/stopwatch.hpp, feeding the
// separate non-golden perf report.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace torsim::obs {

/// One completed span (Chrome "X" event) or instant (Chrome "i").
struct TraceEvent {
  std::string name;
  std::string category;
  util::UnixTime start = 0;       ///< sim seconds
  util::Seconds duration = 0;     ///< sim seconds; 0 + instant=true = "i"
  bool instant = false;
  /// Small structured payload rendered into the event's "args".
  std::vector<std::pair<std::string, std::int64_t>> args;
};

class TraceRecorder {
 public:
  /// Records a completed span [start, start + duration].
  void complete(std::string name, std::string category,
                util::UnixTime start, util::Seconds duration,
                std::vector<std::pair<std::string, std::int64_t>> args = {});

  /// Records an instantaneous event at `at`.
  void instant(std::string name, std::string category, util::UnixTime at,
               std::vector<std::pair<std::string, std::int64_t>> args = {});

  std::size_t size() const;

  /// Chrome trace_event JSON ("traceEvents" array). Events are emitted
  /// sorted by (start, record order) — a stable order independent of
  /// map/hash layout. The "ts" field is sim seconds scaled to
  /// microseconds (the unit trace viewers expect), relative to the
  /// earliest recorded event so viewers open at t=0.
  std::string chrome_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: records `name` against `clock` from construction to
/// destruction. Sim time must not move backwards in between (the
/// Clock enforces this). A null recorder disables the span.
class SpanGuard {
 public:
  SpanGuard(TraceRecorder* recorder, const util::Clock& clock,
            std::string name, std::string category = "sim")
      : recorder_(recorder),
        clock_(clock),
        name_(std::move(name)),
        category_(std::move(category)),
        start_(clock.now()) {}

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attaches a payload entry surfaced in the exported event's args.
  void arg(std::string key, std::int64_t value) {
    args_.emplace_back(std::move(key), value);
  }

  ~SpanGuard() {
    if (recorder_ == nullptr) return;
    recorder_->complete(std::move(name_), std::move(category_), start_,
                        clock_.now() - start_, std::move(args_));
  }

 private:
  TraceRecorder* recorder_;
  const util::Clock& clock_;
  std::string name_;
  std::string category_;
  util::UnixTime start_;
  std::vector<std::pair<std::string, std::int64_t>> args_;
};

}  // namespace torsim::obs

// Convenience macro for the common "span over this scope, timed by
// this sim clock" case. `recorder` may be null (span disabled).
#define TORSIM_OBS_CONCAT_INNER(a, b) a##b
#define TORSIM_OBS_CONCAT(a, b) TORSIM_OBS_CONCAT_INNER(a, b)
#define TRACE_SPAN(recorder, clock, name)               \
  ::torsim::obs::SpanGuard TORSIM_OBS_CONCAT(           \
      torsim_obs_span_, __LINE__)((recorder), (clock), (name))
