// Machine-readable bench telemetry: the writer behind the BENCH_*.json
// perf trajectory and the measured-vs-paper console tables.
//
// One BenchReport collects, for a single bench binary or CLI run:
//   * measured-vs-paper rows (the paper-ratio section; ratio is null
//     when the paper value is 0 — printed as "n/a", never "x0.00"),
//   * google-benchmark timings forwarded by the bench harness,
//   * wall-clock phase timings and peak RSS (obs/stopwatch — the
//     non-golden perf section),
//   * a MetricsRegistry snapshot (the counter section).
// The JSON layout is versioned ("torsim-bench-v1") and validated in CI
// by tools/check_bench_json.py. Everything except the wall_clock /
// peak_rss_bytes / benchmarks sections is deterministic for a fixed
// scenario seed; consumers of the perf trajectory read those sections,
// golden tests read the rest.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "util/memo.hpp"

namespace torsim::obs {

/// One replayed scenario pack's deterministic summary — the "scenarios"
/// section of BENCH_scenarios.json (schema-checked by
/// tools/check_bench_json.py). Everything here is a pure function of
/// the pack, so the section is golden-stable across machines.
struct ScenarioSummary {
  std::string name;
  int horizon_hours = 0;
  int events_applied = 0;
  std::int64_t timeline_rows = 0;
  std::int64_t services_migrated = 0;
  std::int64_t services_taken_down = 0;
  std::int64_t services_added = 0;
  std::int64_t relays_injected = 0;
  std::int64_t flash_fetches_ok = 0;
  std::int64_t flash_fetches_failed = 0;
};

/// One serving-bench run's throughput/latency telemetry — the optional
/// "serve" section of BENCH_serve.json (schema-checked by
/// tools/check_bench_json.py). Perf telemetry like wall_clock: the
/// latency histogram and requests/s move machine to machine, so the
/// section never feeds the deterministic gates.
struct ServeSummary {
  int clients = 0;
  int threads = 0;
  std::int64_t requests = 0;
  std::int64_t retries = 0;
  std::int64_t reconnects = 0;
  double seconds = 0.0;
  double requests_per_second = 0.0;
  /// The load.latency_us histogram, flattened: strictly increasing
  /// microsecond edges plus one bucket per edge and a trailing
  /// overflow bucket.
  std::vector<std::int64_t> latency_edges_us;
  std::vector<std::int64_t> latency_buckets;
  std::int64_t latency_count = 0;
  std::int64_t latency_sum_us = 0;
  /// Percentile estimates read off the bucket edges (upper edge of the
  /// bucket holding the quantile; the last edge for overflow).
  std::int64_t latency_p50_us = 0;
  std::int64_t latency_p90_us = 0;
  std::int64_t latency_p99_us = 0;
};

/// One data-layout measurement — the optional "population" section of
/// BENCH_population.json (schema-checked by tools/check_bench_json.py,
/// docs/data-layout.md). The byte-accounting fields are deterministic
/// for a fixed scale; the *_rss_delta fields are measured perf
/// telemetry like wall_clock. peak_rss_budget_bytes is the one field
/// the schema checker enforces as a gate: the document's
/// peak_rss_bytes must stay under it.
struct PopulationSummary {
  std::int64_t services = 0;
  std::int64_t column_bytes = 0;
  std::int64_t index_bytes = 0;
  std::int64_t interner_bytes = 0;
  std::int64_t interner_strings = 0;
  std::int64_t legacy_record_bytes = 0;
  /// Measured current-RSS growth while building each layout's shell
  /// (columns vs an array-of-structs mirror); their difference is the
  /// observed reduction.
  std::int64_t soa_rss_delta_bytes = 0;
  std::int64_t legacy_rss_delta_bytes = 0;
  /// hsdir descriptor-arena totals after a publish round (0 when the
  /// bench did not exercise the directory layer).
  std::int64_t arena_bytes = 0;
  std::int64_t arena_live_bytes = 0;
  std::int64_t arena_compactions = 0;
  /// Peak-RSS ceiling for this run; check_bench_json.py fails the
  /// document when peak_rss_bytes exceeds it.
  std::int64_t peak_rss_budget_bytes = 0;
};

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_scale(double scale) { scale_ = scale; }
  double scale() const { return scale_; }

  /// Starts a titled section and prints the "==== title ====" banner.
  void print_header(const std::string& title);

  /// Records one measured-vs-paper row and prints the aligned console
  /// line. A paper value of 0 has no meaningful ratio: it prints "n/a"
  /// and exports ratio: null.
  void print_row(const std::string& label, double measured, double paper);

  /// One recorded google-benchmark result (per-iteration seconds).
  struct BenchmarkRun {
    std::string name;
    double real_time_seconds = 0.0;
    double cpu_time_seconds = 0.0;
    std::int64_t iterations = 0;
  };

  /// Records one google-benchmark result (times in seconds).
  void add_benchmark(const std::string& benchmark_name,
                     double real_time_seconds, double cpu_time_seconds,
                     std::int64_t iterations);

  /// Recorded benchmark runs, in recording order (bench mains read
  /// these back to derive oracle-vs-indexed speedups).
  const std::vector<BenchmarkRun>& benchmarks() const { return benchmarks_; }

  /// The counter section: subsystem configs point at this registry.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The non-golden wall-clock section.
  PhaseTimer& phases() { return phases_; }

  /// The "cache" telemetry section: whether the memo caches were
  /// enabled for this run, plus per-cache hit/miss/evict totals (the
  /// bench harness snapshots them in finish()). Perf telemetry like
  /// wall_clock — totals vary with sharding/thread count, so they stay
  /// out of the deterministic counters section.
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }
  void set_cache_stats(const std::string& cache_name,
                       const util::CacheStats& stats) {
    cache_stats_[cache_name] = stats;
  }

  /// The optional "index" telemetry section (emitted only once
  /// set_index_enabled has been called, so non-ring bench documents are
  /// unchanged): whether the eytzinger ring index was routing lookups
  /// for this run, plus per-kernel oracle-vs-indexed cold-path timings.
  /// Perf telemetry like wall_clock — timings move machine to machine,
  /// so the section never feeds the deterministic gates
  /// (tools/diff_bench_rows.py ignores it; tools/check_bench_json.py
  /// validates its shape).
  void set_index_enabled(bool enabled) {
    index_enabled_ = enabled;
    index_section_present_ = true;
  }
  void set_index_stat(const std::string& kernel_name, double oracle_seconds,
                      double indexed_seconds) {
    index_stats_[kernel_name] = {oracle_seconds, indexed_seconds};
    index_section_present_ = true;
  }

  /// The optional "serve" telemetry section (emitted only once this
  /// has been called, so non-serving bench documents are unchanged):
  /// the daemon-path throughput and latency histogram measured by
  /// bench_serve (docs/serving.md).
  void set_serve_summary(const ServeSummary& summary) {
    serve_ = summary;
    serve_section_present_ = true;
  }

  /// The optional "population" telemetry section (emitted only once
  /// this has been called, so other bench documents are unchanged):
  /// SoA-vs-legacy layout byte accounting and the peak-RSS budget
  /// (docs/data-layout.md).
  void set_population_summary(const PopulationSummary& summary) {
    population_ = summary;
    population_section_present_ = true;
  }

  /// Records one scenario-pack replay; emitted as the optional
  /// "scenarios" array (present only when at least one was recorded, so
  /// non-scenario bench documents are unchanged).
  void add_scenario(const ScenarioSummary& summary) {
    scenarios_.push_back(summary);
  }

  /// The full "torsim-bench-v1" document (peak RSS sampled now).
  std::string to_json() const;

  /// Writes to_json() to `<directory>/BENCH_<name>.json` ("." default).
  /// Returns the path written, or empty on I/O failure.
  std::string write_json(const std::string& directory) const;

 private:
  struct Row {
    std::string section;
    std::string label;
    double measured = 0.0;
    double paper = 0.0;
  };
  struct IndexStat {
    double oracle_seconds = 0.0;
    double indexed_seconds = 0.0;
  };

  std::string name_;
  double scale_ = 1.0;
  std::string current_section_;
  std::vector<Row> rows_;
  std::vector<BenchmarkRun> benchmarks_;
  std::vector<ScenarioSummary> scenarios_;
  MetricsRegistry metrics_;
  PhaseTimer phases_;
  bool cache_enabled_ = true;
  std::map<std::string, util::CacheStats> cache_stats_;  // ordered emission
  bool index_section_present_ = false;
  bool index_enabled_ = true;
  std::map<std::string, IndexStat> index_stats_;  // ordered emission
  bool serve_section_present_ = false;
  ServeSummary serve_;
  bool population_section_present_ = false;
  PopulationSummary population_;
};

}  // namespace torsim::obs
