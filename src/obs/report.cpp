#include "obs/report.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace torsim::obs {

void BenchReport::print_header(const std::string& title) {
  current_section_ = title;
  std::printf("\n==== %s ====\n", title.c_str());
}

void BenchReport::print_row(const std::string& label, double measured,
                            double paper) {
  rows_.push_back({current_section_, label, measured, paper});
  if (paper != 0.0) {
    std::printf("  %-28s measured %10.0f   paper %10.0f   x%.2f\n",
                label.c_str(), measured, paper, measured / paper);
  } else {
    // No paper baseline: a ratio would be meaningless, not 0.00.
    std::printf("  %-28s measured %10.0f   paper %10.0f   n/a\n",
                label.c_str(), measured, paper);
  }
}

void BenchReport::add_benchmark(const std::string& benchmark_name,
                                double real_time_seconds,
                                double cpu_time_seconds,
                                std::int64_t iterations) {
  benchmarks_.push_back(
      {benchmark_name, real_time_seconds, cpu_time_seconds, iterations});
}

std::string BenchReport::to_json() const {
  JsonWriter json;
  json.begin_object();
  json.key("schema").value("torsim-bench-v1");
  json.key("name").value(name_);
  json.key("scale").value(scale_);

  json.key("rows").begin_array();
  for (const Row& row : rows_) {
    json.begin_object();
    json.key("section").value(row.section);
    json.key("label").value(row.label);
    json.key("measured").value(row.measured);
    json.key("paper").value(row.paper);
    json.key("ratio");
    if (row.paper != 0.0)
      json.value(row.measured / row.paper);
    else
      json.null();
    json.end_object();
  }
  json.end_array();

  json.key("benchmarks").begin_array();
  for (const BenchmarkRun& run : benchmarks_) {
    json.begin_object();
    json.key("name").value(run.name);
    json.key("real_time_seconds").value(run.real_time_seconds);
    json.key("cpu_time_seconds").value(run.cpu_time_seconds);
    json.key("iterations").value(run.iterations);
    json.end_object();
  }
  json.end_array();

  json.key("wall_clock").begin_object();
  json.key("phases").begin_object();
  for (const auto& [phase, seconds] : phases_.phases())
    json.key(phase).value(seconds);
  json.end_object();
  json.key("total_seconds").value(phases_.total_seconds());
  json.end_object();

  if (!scenarios_.empty()) {
    json.key("scenarios").begin_array();
    for (const ScenarioSummary& s : scenarios_) {
      json.begin_object();
      json.key("name").value(s.name);
      json.key("horizon_hours").value(static_cast<std::int64_t>(s.horizon_hours));
      json.key("events_applied").value(static_cast<std::int64_t>(s.events_applied));
      json.key("timeline_rows").value(s.timeline_rows);
      json.key("services_migrated").value(s.services_migrated);
      json.key("services_taken_down").value(s.services_taken_down);
      json.key("services_added").value(s.services_added);
      json.key("relays_injected").value(s.relays_injected);
      json.key("flash_fetches_ok").value(s.flash_fetches_ok);
      json.key("flash_fetches_failed").value(s.flash_fetches_failed);
      json.end_object();
    }
    json.end_array();
  }

  json.key("peak_rss_bytes").value(peak_rss_bytes());

  json.key("cache").begin_object();
  json.key("enabled").value(cache_enabled_);
  json.key("caches").begin_object();
  for (const auto& [cache_name, stats] : cache_stats_) {
    json.key(cache_name).begin_object();
    json.key("evictions").value(static_cast<std::int64_t>(stats.evictions));
    json.key("hits").value(static_cast<std::int64_t>(stats.hits));
    json.key("misses").value(static_cast<std::int64_t>(stats.misses));
    json.end_object();
  }
  json.end_object();
  json.end_object();

  if (index_section_present_) {
    json.key("index").begin_object();
    json.key("enabled").value(index_enabled_);
    json.key("kernels").begin_object();
    for (const auto& [kernel_name, stat] : index_stats_) {
      json.key(kernel_name).begin_object();
      json.key("indexed_seconds").value(stat.indexed_seconds);
      json.key("oracle_seconds").value(stat.oracle_seconds);
      json.key("speedup");
      if (stat.indexed_seconds > 0.0)
        json.value(stat.oracle_seconds / stat.indexed_seconds);
      else
        json.null();
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }

  if (serve_section_present_) {
    json.key("serve").begin_object();
    json.key("clients").value(static_cast<std::int64_t>(serve_.clients));
    json.key("threads").value(static_cast<std::int64_t>(serve_.threads));
    json.key("requests").value(serve_.requests);
    json.key("retries").value(serve_.retries);
    json.key("reconnects").value(serve_.reconnects);
    json.key("seconds").value(serve_.seconds);
    json.key("requests_per_second");
    if (serve_.seconds > 0.0)
      json.value(serve_.requests_per_second);
    else
      json.null();  // an unmeasured run has no meaningful rate
    json.key("latency_us").begin_object();
    json.key("edges").begin_array();
    for (const std::int64_t edge : serve_.latency_edges_us) json.value(edge);
    json.end_array();
    json.key("buckets").begin_array();
    for (const std::int64_t bucket : serve_.latency_buckets)
      json.value(bucket);
    json.end_array();
    json.key("count").value(serve_.latency_count);
    json.key("sum").value(serve_.latency_sum_us);
    json.key("p50").value(serve_.latency_p50_us);
    json.key("p90").value(serve_.latency_p90_us);
    json.key("p99").value(serve_.latency_p99_us);
    json.end_object();
    json.end_object();
  }

  if (population_section_present_) {
    json.key("population").begin_object();
    json.key("services").value(population_.services);
    json.key("column_bytes").value(population_.column_bytes);
    json.key("index_bytes").value(population_.index_bytes);
    json.key("interner_bytes").value(population_.interner_bytes);
    json.key("interner_strings").value(population_.interner_strings);
    json.key("legacy_record_bytes").value(population_.legacy_record_bytes);
    json.key("soa_rss_delta_bytes").value(population_.soa_rss_delta_bytes);
    json.key("legacy_rss_delta_bytes")
        .value(population_.legacy_rss_delta_bytes);
    json.key("rss_reduction_bytes")
        .value(population_.legacy_rss_delta_bytes -
               population_.soa_rss_delta_bytes);
    json.key("arena_bytes").value(population_.arena_bytes);
    json.key("arena_live_bytes").value(population_.arena_live_bytes);
    json.key("arena_compactions").value(population_.arena_compactions);
    json.key("peak_rss_budget_bytes")
        .value(population_.peak_rss_budget_bytes);
    json.end_object();
  }

  metrics_.write_json_sections(json);
  json.end_object();
  return json.str();
}

std::string BenchReport::write_json(const std::string& directory) const {
  const std::string dir = directory.empty() ? "." : directory;
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return "";
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok ? path : "";
}

}  // namespace torsim::obs
