// Deterministic JSON emission for the observability subsystem.
//
// Every consumer of obs output (metrics goldens, Chrome traces, the
// BENCH_*.json trajectory) compares bytes, so the writer guarantees a
// canonical encoding: callers emit keys in a fixed (sorted) order,
// integers print without exponent, and doubles always go through one
// fixed "%.10g" format. No locales, no field reordering, no
// pretty-print variance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace torsim::obs {

/// Escapes `text` per RFC 8259 (quotes, backslashes, control bytes).
std::string json_escape(const std::string& text);

/// Canonical number renderings: integers verbatim, doubles via "%.10g"
/// (with a trailing ".0" appended to integral doubles so the value
/// round-trips as a float, never silently narrowing to an int field).
std::string json_number(std::int64_t value);
std::string json_number(double value);

/// A minimal streaming JSON writer. The caller is responsible for key
/// order (emit sorted keys for canonical output) and for structural
/// validity; the writer handles separators, escaping, and indentation
/// (2 spaces — stable, diff-friendly output).
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"name":` inside an object; follow with a value call.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(double number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// The document built so far, newline-terminated once complete.
  std::string str() const { return out_; }

 private:
  void before_value();
  void newline();

  std::string out_;
  /// One frame per open container: true once a first element was
  /// emitted (so the next element is comma-separated).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace torsim::obs
