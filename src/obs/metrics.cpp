#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace torsim::obs {

Histogram::Histogram(std::vector<std::int64_t> edges)
    : edges_(std::move(edges)) {
  if (edges_.empty())
    throw std::logic_error("Histogram: at least one bucket edge required");
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end())
    throw std::logic_error("Histogram: edges must be strictly increasing");
  buckets_.reserve(edges_.size() + 1);
  for (std::size_t i = 0; i <= edges_.size(); ++i)
    buckets_.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
}

std::size_t Histogram::bucket_index(std::int64_t value) const {
  // First edge >= value: upper-inclusive buckets (value <= edge).
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  return static_cast<std::size_t>(it - edges_.begin());
}

void Histogram::observe(std::int64_t value) {
  buckets_[bucket_index(value)]->fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> counts;
  counts.reserve(buckets_.size());
  for (const auto& bucket : buckets_)
    counts.push_back(bucket->load(std::memory_order_relaxed));
  return counts;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::int64_t> edges) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(edges));
  } else if (slot->edges() != edges) {
    throw std::logic_error("Histogram '" + name +
                           "' re-registered with different bucket edges");
  }
  return *slot;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  // Snapshot the other registry's structure under its lock, then apply
  // without holding both locks at once.
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  struct HistSnapshot {
    std::string name;
    std::vector<std::int64_t> edges;
    std::vector<std::int64_t> buckets;
    std::int64_t sum = 0;
  };
  std::vector<HistSnapshot> hists;
  {
    const std::lock_guard<std::mutex> lock(other.mu_);
    for (const auto& [name, c] : other.counters_)
      counters.emplace_back(name, c->value());
    for (const auto& [name, g] : other.gauges_)
      gauges.emplace_back(name, g->value());
    for (const auto& [name, h] : other.histograms_)
      hists.push_back({name, h->edges(), h->bucket_counts(), h->sum()});
  }
  for (const auto& [name, value] : counters) counter(name).inc(value);
  for (const auto& [name, value] : gauges) gauge(name).set(value);
  for (const auto& snap : hists) {
    Histogram& mine = histogram(snap.name, snap.edges);
    std::int64_t count = 0;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      mine.buckets_[i]->fetch_add(snap.buckets[i],
                                  std::memory_order_relaxed);
      count += snap.buckets[i];
    }
    mine.count_.fetch_add(count, std::memory_order_relaxed);
    mine.sum_.fetch_add(snap.sum, std::memory_order_relaxed);
  }
}

std::string MetricsRegistry::to_text() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_)
    out += "counter " + name + " " + std::to_string(c->value()) + "\n";
  for (const auto& [name, g] : gauges_)
    out += "gauge " + name + " " + std::to_string(g->value()) + "\n";
  for (const auto& [name, h] : histograms_) {
    out += "histogram " + name + " count " + std::to_string(h->count()) +
           " sum " + std::to_string(h->sum()) + " buckets";
    const auto counts = h->bucket_counts();
    for (std::size_t i = 0; i < h->edges().size(); ++i)
      out += " le" + std::to_string(h->edges()[i]) + ":" +
             std::to_string(counts[i]);
    out += " inf:" + std::to_string(counts.back()) + "\n";
  }
  return out;
}

void MetricsRegistry::write_json_sections(JsonWriter& json) const {
  const std::lock_guard<std::mutex> lock(mu_);
  json.key("counters").begin_object();
  for (const auto& [name, c] : counters_) json.key(name).value(c->value());
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) json.key(name).value(g->value());
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    json.key(name).begin_object();
    json.key("count").value(h->count());
    json.key("sum").value(h->sum());
    json.key("edges").begin_array();
    for (const std::int64_t edge : h->edges()) json.value(edge);
    json.end_array();
    json.key("buckets").begin_array();
    for (const std::int64_t count : h->bucket_counts()) json.value(count);
    json.end_array();
    json.end_object();
  }
  json.end_object();
}

std::string MetricsRegistry::to_json() const {
  JsonWriter json;
  json.begin_object();
  write_json_sections(json);
  json.end_object();
  return json.str();
}

bool MetricsRegistry::empty() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

}  // namespace torsim::obs
