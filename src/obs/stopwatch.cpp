// The torsim tree's only wall-clock reader — see stopwatch.hpp for why
// this file, and only this file, may touch std::chrono clocks.
#include "obs/stopwatch.hpp"

#include <chrono>
#include <cstdio>

#include <sys/resource.h>
#include <unistd.h>

namespace torsim::obs {

double wall_clock_seconds() {
  // detlint: steady_clock is allowlisted for obs/stopwatch only.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

std::int64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
}

std::int64_t current_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long long total_pages = 0, resident_pages = 0;
  const int fields = std::fscanf(f, "%lld %lld", &total_pages,
                                 &resident_pages);
  std::fclose(f);
  if (fields != 2) return 0;
  return static_cast<std::int64_t>(resident_pages) * sysconf(_SC_PAGESIZE);
}

double PhaseTimer::total_seconds() const {
  double total = 0.0;
  for (const auto& [name, seconds] : phases_) total += seconds;
  return total;
}

}  // namespace torsim::obs
