// The torsim tree's only wall-clock reader — see stopwatch.hpp for why
// this file, and only this file, may touch std::chrono clocks.
#include "obs/stopwatch.hpp"

#include <chrono>

#include <sys/resource.h>

namespace torsim::obs {

double wall_clock_seconds() {
  // detlint: steady_clock is allowlisted for obs/stopwatch only.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

std::int64_t peak_rss_bytes() {
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<std::int64_t>(usage.ru_maxrss) * 1024;
}

double PhaseTimer::total_seconds() const {
  double total = 0.0;
  for (const auto& [name, seconds] : phases_) total += seconds;
  return total;
}

}  // namespace torsim::obs
