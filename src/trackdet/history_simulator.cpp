#include "trackdet/history_simulator.hpp"

#include <algorithm>
#include <cmath>

namespace torsim::trackdet {
namespace {

crypto::Fingerprint random_fingerprint(util::Rng& rng) {
  crypto::Fingerprint fp;
  rng.fill_bytes(fp.data(), fp.size());
  return fp;
}

// Fabricates a fingerprint at ring distance in (0, ring_fraction * 2^160]
// after `anchor`. The live attack grinds RSA keys to achieve this (see
// attack::grind_key_after); at 10^8-try tightness that is a compute job,
// not a simulation step, so the history generator places the fingerprint
// directly — only the ring position matters to the detector.
crypto::Fingerprint positioned_fingerprint(const crypto::Sha1Digest& anchor,
                                           double ring_fraction, int rank,
                                           util::Rng& rng) {
  const double ring = std::ldexp(1.0, 160);
  // Slot `rank` lands in ((rank) .. (rank+1)] * ring_fraction so several
  // campaign relays order deterministically behind the anchor.
  const double lo = ring_fraction * ring * static_cast<double>(rank);
  const double hi = ring_fraction * ring * static_cast<double>(rank + 1);
  const double delta = rng.uniform(lo, hi) + 1.0;
  const crypto::U160 offset = crypto::U160::from_double(delta);
  return crypto::U160(anchor).add(offset).to_digest();
}

struct HonestServer {
  std::uint32_t id;
  crypto::Fingerprint fingerprint;
};

}  // namespace

HistorySimulator::HistorySimulator(HistoryConfig config) : config_(config) {
  if (config_.start == 0) config_.start = util::make_utc(2011, 2, 1);
  if (config_.end == 0) config_.end = util::make_utc(2013, 11, 1);
}

HsDirHistory HistorySimulator::simulate(
    const crypto::PermanentId& target,
    const std::vector<CampaignSpec>& campaigns) const {
  util::Rng rng(config_.seed);
  HsDirHistory history;

  const auto new_server = [&](const std::string& name,
                              const std::string& campaign,
                              util::Ipv4 address) -> std::uint32_t {
    ServerInfo info;
    info.id = static_cast<std::uint32_t>(history.servers.size());
    info.name = name;
    info.address = address;
    info.truth_campaign = campaign;
    history.servers.push_back(info);
    return info.id;
  };

  // Honest fleet.
  std::vector<HonestServer> honest;
  const auto spawn_honest = [&] {
    // Honest operators pick diverse nicknames; a shared stem would fake
    // the name-cluster signal the detector groups campaigns by.
    std::string name;
    const int len = static_cast<int>(rng.uniform_int(6, 10));
    for (int i = 0; i < len; ++i)
      name.push_back(static_cast<char>('a' + rng.uniform_int(0, 25)));
    const std::uint32_t id =
        new_server(name, "", util::Ipv4::random_public(rng));
    honest.push_back({id, random_fingerprint(rng)});
  };
  for (int i = 0; i < config_.hsdirs_at_start; ++i) spawn_honest();

  // Campaign server tables (allocated lazily on first active day, so the
  // "appeared and was immediately responsible" signal is present).
  std::vector<std::vector<std::uint32_t>> campaign_servers(campaigns.size());
  std::vector<std::vector<crypto::Fingerprint>> campaign_fixed_fps(
      campaigns.size());
  std::vector<std::vector<crypto::Fingerprint>> campaign_idle_fps(
      campaigns.size());

  const std::int64_t total_days =
      (config_.end - config_.start) / util::kSecondsPerDay;

  for (std::int64_t day = 0; day < total_days; ++day) {
    const util::UnixTime t = config_.start + day * util::kSecondsPerDay;

    // Honest churn: deaths, growth to the interpolated target, key
    // switches.
    honest.erase(std::remove_if(honest.begin(), honest.end(),
                                [&](const HonestServer&) {
                                  return rng.bernoulli(
                                      config_.daily_death_rate);
                                }),
                 honest.end());
    const double progress =
        total_days > 1 ? static_cast<double>(day) /
                             static_cast<double>(total_days - 1)
                       : 0.0;
    const int target_count = static_cast<int>(
        std::lround(config_.hsdirs_at_start +
                    progress * (config_.hsdirs_at_end -
                                config_.hsdirs_at_start)));
    while (static_cast<int>(honest.size()) < target_count) spawn_honest();
    for (HonestServer& server : honest)
      if (rng.bernoulli(config_.honest_switch_rate))
        server.fingerprint = random_fingerprint(rng);

    std::vector<SnapshotEntry> entries;
    entries.reserve(honest.size() + 8);
    for (const HonestServer& server : honest)
      entries.push_back({server.fingerprint, server.id});

    // Campaigns.
    const std::uint32_t period = crypto::time_period(t, target);
    for (std::size_t ci = 0; ci < campaigns.size(); ++ci) {
      const CampaignSpec& spec = campaigns[ci];
      if (t < spec.from || t >= spec.to) continue;
      const bool skipped = rng.bernoulli(spec.skip_probability);
      auto& servers = campaign_servers[ci];
      if (skipped && (servers.empty() || !spec.always_listed)) continue;
      if (skipped) {
        // Idle day for an always-listed campaign: the servers stay in
        // the ring at non-positioned fingerprints.
        auto& idle = campaign_idle_fps[ci];
        while (idle.size() < servers.size())
          idle.push_back(random_fingerprint(rng));
        for (std::size_t si = 0; si < servers.size(); ++si)
          entries.push_back({idle[si], servers[si]});
        continue;
      }
      if (servers.empty()) {
        // 2 servers per IP for multi-server campaigns (the 31 Aug set
        // came from 3 IPs).
        util::Ipv4 shared_ip = util::Ipv4::random_public(rng);
        for (int si = 0; si < spec.servers; ++si) {
          if (si % 2 == 0 && si > 0)
            shared_ip = util::Ipv4::random_public(rng);
          servers.push_back(new_server(
              spec.name + std::to_string(si), spec.name, shared_ip));
        }
      }
      // Fabricate one positioned fingerprint per seized slot. A
      // non-switching campaign grinds once (anchored to its first active
      // period) and keeps that identity — it scores a hit only while the
      // descriptor ID stays put, which is how the paper distinguishes a
      // one-period fluke from sustained tracking.
      auto& fixed = campaign_fixed_fps[ci];
      const auto desc_ids = crypto::descriptor_ids_for_period(target, period);
      for (int slot = 0; slot < spec.slots_per_period; ++slot) {
        const auto replica = static_cast<std::uint8_t>(slot % 2);
        const int rank = slot / 2;
        const auto& desc_id = desc_ids[replica];
        const std::uint32_t server =
            servers[static_cast<std::size_t>(
                (day + slot) % static_cast<std::int64_t>(servers.size()))];
        crypto::Fingerprint fp;
        if (spec.switch_fingerprints) {
          fp = positioned_fingerprint(desc_id, spec.ring_fraction, rank, rng);
        } else {
          if (static_cast<int>(fixed.size()) <= slot)
            fixed.push_back(positioned_fingerprint(
                desc_id, spec.ring_fraction, rank, rng));
          fp = fixed[static_cast<std::size_t>(slot)];
        }
        entries.push_back({fp, server});
      }
    }

    history.snapshots.emplace_back(t, std::move(entries));
  }
  return history;
}

}  // namespace torsim::trackdet
