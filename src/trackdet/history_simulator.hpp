// Synthesizes a multi-year HSDir-ring history: honest relay churn with
// the network growing from the paper's 757 HSDirs (Feb 2011) to 1,862
// (Oct 2013), plus injected tracking campaigns against a target hidden
// service — the stand-in for the three years of public consensus
// archives the paper mined for its Silk Road analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trackdet/history.hpp"
#include "util/rng.hpp"

namespace torsim::trackdet {

/// One injected tracking campaign (the ground truth the detector is
/// later validated against).
struct CampaignSpec {
  std::string name;             ///< shared server-name prefix
  util::UnixTime from = 0;
  util::UnixTime to = 0;
  /// Physical servers participating.
  int servers = 1;
  /// How many of the 6 responsible slots to seize per period (1 = the
  /// May-2013 campaign; 6 = the 31-Aug full takeover).
  int slots_per_period = 1;
  /// Grinding tightness as a ring fraction; 1e-8 of the ring yields the
  /// ">10k" distance ratios the paper observed.
  double ring_fraction = 1e-8;
  /// Probability of skipping a period (the May campaign missed 4).
  double skip_probability = 0.0;
  /// Whether the campaign re-grinds (fingerprint-switches) daily; false
  /// models a long-lived lucky relay.
  bool switch_fingerprints = true;
  /// When true, campaign servers sit in the HSDir ring for the whole
  /// window (with an idle fingerprint on days they skip). When false
  /// they model the paper's year-one "strange server" that lacks the
  /// HSDir flag most of the time and surfaces exactly when the target
  /// would choose it.
  bool always_listed = true;
};

struct HistoryConfig {
  std::uint64_t seed = 7;
  /// Archive span; zero means the paper's 1 Feb 2011 – 31 Oct 2013.
  util::UnixTime start = 0;
  util::UnixTime end = 0;
  int hsdirs_at_start = 757;
  int hsdirs_at_end = 1862;
  /// Daily probability an honest HSDir server retires.
  double daily_death_rate = 0.004;
  /// Daily probability an honest server switches its key.
  double honest_switch_rate = 2e-4;
};

class HistorySimulator {
 public:
  explicit HistorySimulator(HistoryConfig config = {});

  /// Simulates the archive with the given campaigns targeting `target`.
  /// Campaign servers appear in `HsDirHistory::servers` with their
  /// ground-truth `truth_campaign` tag set.
  HsDirHistory simulate(const crypto::PermanentId& target,
                        const std::vector<CampaignSpec>& campaigns) const;

 private:
  HistoryConfig config_;
};

}  // namespace torsim::trackdet
