#include "trackdet/detector.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "stats/binomial.hpp"

namespace torsim::trackdet {
namespace {

/// Strips trailing digits — campaign fleets are typically "nameN".
std::string name_stem(const std::string& name) {
  std::size_t end = name.size();
  while (end > 0 && name[end - 1] >= '0' && name[end - 1] <= '9') --end;
  return name.substr(0, end);
}

}  // namespace

TrackingDetector::TrackingDetector(DetectorConfig config)
    : config_(config) {}

TrackingReport TrackingDetector::analyze(
    const HsDirHistory& history, const crypto::PermanentId& target) const {
  TrackingReport report;
  report.snapshots = static_cast<std::int64_t>(history.snapshots.size());
  if (history.snapshots.empty()) return report;

  // `stats` and `consecutive_run` are iterated below (rule application,
  // run resets), so they are ordered; the remaining per-server tables
  // are lookup-only and stay hashed.
  std::map<std::uint32_t, ServerStats> stats;
  std::unordered_map<std::uint32_t, crypto::Fingerprint> last_fp;
  std::unordered_map<std::uint32_t, bool> switched_this_period;
  std::unordered_map<std::uint32_t, bool> seen_before;
  std::map<std::uint32_t, std::int64_t> consecutive_run;
  // Per-period responsibility membership, for clustering and the
  // full-takeover rule.
  struct PeriodResponsibility {
    util::UnixTime time;
    std::vector<std::uint32_t> servers;  // all 6 slots (duplicates kept)
  };
  std::vector<PeriodResponsibility> period_resp;

  double hsdir_sum = 0.0;
  bool first_snapshot = true;
  for (const Snapshot& snap : history.snapshots) {
    hsdir_sum += static_cast<double>(snap.size());
    const std::uint32_t period = crypto::time_period(snap.time(), target);

    // Track per-server appearance / fingerprint changes.
    for (const SnapshotEntry& e : snap.entries()) {
      ServerStats& s = stats[e.server];
      s.server = e.server;
      ++s.periods_observed;
      auto it = last_fp.find(e.server);
      const bool switched =
          it != last_fp.end() && !(it->second == e.fingerprint);
      if (switched) ++s.fingerprint_switches;
      switched_this_period[e.server] = switched;
      last_fp[e.server] = e.fingerprint;
    }

    // Responsible HSDirs for both replicas this period.
    PeriodResponsibility pr;
    pr.time = snap.time();
    std::vector<std::uint32_t> responsible_now;
    const auto desc_ids = crypto::descriptor_ids_for_period(target, period);
    for (std::uint8_t replica = 0; replica < crypto::kNumReplicas;
         ++replica) {
      const auto& desc_id = desc_ids[replica];
      for (const SnapshotEntry* e : snap.responsible(desc_id)) {
        pr.servers.push_back(e->server);
        responsible_now.push_back(e->server);
        ServerStats& s = stats[e->server];
        ++s.periods_responsible;
        if (switched_this_period[e->server])
          ++s.switches_before_responsible;
        // "Responsible right when it first appeared" — meaningless on the
        // archive's opening snapshot, where *everything* is new.
        if (!first_snapshot && !seen_before[e->server])
          s.responsible_on_first_appearance = true;
        const double distance =
            crypto::ring_distance(desc_id, e->fingerprint);
        if (distance > 0.0) {
          const double ratio = snap.average_gap() / distance;
          s.max_ratio = std::max(s.max_ratio, ratio);
        }
      }
    }
    period_resp.push_back(std::move(pr));

    // Consecutive-period runs.
    std::sort(responsible_now.begin(), responsible_now.end());
    responsible_now.erase(
        std::unique(responsible_now.begin(), responsible_now.end()),
        responsible_now.end());
    for (auto& [server, run] : consecutive_run)
      if (!std::binary_search(responsible_now.begin(), responsible_now.end(),
                              server))
        run = 0;
    for (std::uint32_t server : responsible_now) {
      std::int64_t& run = consecutive_run[server];
      ++run;
      ServerStats& s = stats[server];
      s.max_consecutive_periods = std::max(s.max_consecutive_periods, run);
    }

    for (const SnapshotEntry& e : snap.entries()) seen_before[e.server] = true;
    first_snapshot = false;
  }

  report.mean_hsdirs = hsdir_sum / static_cast<double>(report.snapshots);
  const double p = 6.0 / report.mean_hsdirs;
  report.suspicion_threshold =
      stats::binomial_three_sigma_threshold(report.snapshots, p);

  // Apply the rules.
  for (auto& [server, s] : stats) {
    if (s.periods_responsible == 0) continue;
    SuspicionFlags flags;
    flags.over_three_sigma = static_cast<double>(s.periods_responsible) >
                             report.suspicion_threshold;
    flags.switched_before_responsible =
        s.switches_before_responsible >=
        config_.min_switches_before_responsible;
    flags.immediate_responsibility = s.responsible_on_first_appearance;
    flags.positioned = s.max_ratio > config_.ratio_threshold;
    flags.consecutive = s.max_consecutive_periods >= 2;
    if (flags.count() < config_.min_flags) continue;
    SuspiciousServer out;
    out.stats = s;
    out.flags = flags;
    out.name = history.server(server).name;
    out.truth_campaign = history.server(server).truth_campaign;
    report.suspicious.push_back(std::move(out));
  }
  std::sort(report.suspicious.begin(), report.suspicious.end(),
            [](const SuspiciousServer& a, const SuspiciousServer& b) {
              if (a.flags.count() != b.flags.count())
                return a.flags.count() > b.flags.count();
              if (a.stats.periods_responsible != b.stats.periods_responsible)
                return a.stats.periods_responsible >
                       b.stats.periods_responsible;
              return a.stats.server < b.stats.server;  // total order
            });

  // Cluster suspicious servers by shared name stems.
  std::map<std::string, CampaignCluster> clusters;
  std::unordered_map<std::uint32_t, const SuspiciousServer*> suspicious_by_id;
  for (const SuspiciousServer& s : report.suspicious)
    suspicious_by_id[s.stats.server] = &s;
  for (const SuspiciousServer& s : report.suspicious) {
    const std::string stem = name_stem(s.name);
    CampaignCluster& cluster = clusters[stem];
    cluster.shared_prefix = stem;
    cluster.servers.push_back(s.stats.server);
    cluster.max_ratio = std::max(cluster.max_ratio, s.stats.max_ratio);
  }
  // Fill cluster time spans / coverage from the responsibility log.
  for (const auto& pr : period_resp) {
    std::map<std::string, int> cluster_slots;
    for (std::uint32_t server : pr.servers) {
      const auto it = suspicious_by_id.find(server);
      if (it == suspicious_by_id.end()) continue;
      ++cluster_slots[name_stem(it->second->name)];
    }
    bool all_six_suspicious =
        pr.servers.size() >= 6;
    int suspicious_slots = 0;
    for (std::uint32_t server : pr.servers)
      if (suspicious_by_id.count(server)) ++suspicious_slots;
    if (all_six_suspicious &&
        suspicious_slots == static_cast<int>(pr.servers.size()))
      ++report.full_takeover_periods;
    for (auto& [stem, slots] : cluster_slots) {
      CampaignCluster& cluster = clusters[stem];
      if (cluster.first_seen == 0) cluster.first_seen = pr.time;
      cluster.last_seen = pr.time;
      ++cluster.periods_covered;
      if (slots >= 6) cluster.full_takeover = true;
    }
  }
  // Clusters are the paper's evidence unit for *coordinated* campaigns:
  // only name stems shared by at least two suspicious servers qualify
  // (lone suspects remain in `suspicious`).
  for (auto& [stem, cluster] : clusters)
    if (cluster.servers.size() >= 2) report.clusters.push_back(cluster);
  std::sort(report.clusters.begin(), report.clusters.end(),
            [](const CampaignCluster& a, const CampaignCluster& b) {
              if (a.periods_covered != b.periods_covered)
                return a.periods_covered > b.periods_covered;
              return a.shared_prefix < b.shared_prefix;  // total order
            });
  return report;
}

}  // namespace torsim::trackdet
