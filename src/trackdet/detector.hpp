// Sec. VII: statistical detection of hidden-service tracking from
// consensus history. Five rules, straight from the paper:
//
//  1. Binomial test — a relay responsible for the target in more time
//     periods than mu + 3*sigma (p = 6 / N_hsdir) is suspicious.
//  2. A fingerprint switch shortly before becoming responsible.
//  3. Becoming responsible immediately after first appearing (the
//     25-hour minimum to earn the HSDir flag).
//  4. Distance ratio — avg_dist / distance(descriptor-id, fingerprint);
//     honest relays average ~1, positioned relays score 100 to 10,000+.
//  5. Responsibility in consecutive time periods.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trackdet/history.hpp"

namespace torsim::trackdet {

struct DetectorConfig {
  /// Ratio threshold for the "positioned fingerprint" rule; the paper
  /// highlights >100 (their own relays) and >10k (the May campaign).
  double ratio_threshold = 100.0;
  /// How many rule hits make a server suspicious overall.
  int min_flags = 1;
  /// Switch-before-responsible occurrences needed ("several times").
  int min_switches_before_responsible = 2;
};

/// Aggregated per-server observations against one target.
struct ServerStats {
  std::uint32_t server = 0;
  std::int64_t periods_observed = 0;      ///< snapshots server was in ring
  std::int64_t periods_responsible = 0;
  std::int64_t fingerprint_switches = 0;  ///< lifetime switches seen
  std::int64_t switches_before_responsible = 0;
  bool responsible_on_first_appearance = false;
  double max_ratio = 0.0;
  std::int64_t max_consecutive_periods = 0;
};

struct SuspicionFlags {
  bool over_three_sigma = false;
  bool switched_before_responsible = false;
  bool immediate_responsibility = false;
  bool positioned = false;          ///< ratio rule
  bool consecutive = false;         ///< >= 2 consecutive periods

  int count() const {
    return static_cast<int>(over_three_sigma) +
           static_cast<int>(switched_before_responsible) +
           static_cast<int>(immediate_responsibility) +
           static_cast<int>(positioned) + static_cast<int>(consecutive);
  }
};

struct SuspiciousServer {
  ServerStats stats;
  SuspicionFlags flags;
  std::string name;
  std::string truth_campaign;  ///< ground truth for validation only
};

/// A cluster of suspicious servers that overlap in time and share a
/// name prefix — the paper's evidence unit ("a set of servers that share
/// the same name ... take over 1 out of 6 HSDirs").
struct CampaignCluster {
  std::vector<std::uint32_t> servers;
  std::string shared_prefix;
  util::UnixTime first_seen = 0;
  util::UnixTime last_seen = 0;
  std::int64_t periods_covered = 0;
  double max_ratio = 0.0;
  bool full_takeover = false;  ///< held all 6 slots in one period
};

struct TrackingReport {
  std::int64_t snapshots = 0;
  double mean_hsdirs = 0.0;
  double suspicion_threshold = 0.0;  ///< mu + 3 sigma
  std::vector<SuspiciousServer> suspicious;
  std::vector<CampaignCluster> clusters;
  /// Periods in which every one of the 6 responsible HSDirs was
  /// suspicious (the pre-takedown full takeover).
  std::int64_t full_takeover_periods = 0;
};

class TrackingDetector {
 public:
  explicit TrackingDetector(DetectorConfig config = {});

  TrackingReport analyze(const HsDirHistory& history,
                         const crypto::PermanentId& target) const;

 private:
  DetectorConfig config_;
};

}  // namespace torsim::trackdet
