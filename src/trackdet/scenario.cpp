#include "trackdet/scenario.hpp"

namespace torsim::trackdet {

crypto::PermanentId silkroad_target() {
  // Derived deterministically from the label; only the ring positions of
  // the derived descriptor IDs matter.
  const auto digest = crypto::sha1("silkroadvb5piz3r-standin");
  return crypto::permanent_id_from_fingerprint(digest);
}

std::vector<CampaignSpec> silkroad_campaigns() {
  std::vector<CampaignSpec> campaigns;

  // Year one's oddity: a server that lacks the HSDir flag most of the
  // time but obtains it on the few occasions Silk Road would choose it
  // ("One server shows a strange behaviour ... in 3 occasions"). The
  // paper did not count it as confirmed tracking — neither does the
  // detector's clustering (a single server forms no name cluster) — but
  // the immediate-responsibility rule surfaces it.
  CampaignSpec odd;
  odd.name = "oddserver";
  odd.from = util::make_utc(2011, 4, 1);
  odd.to = util::make_utc(2011, 11, 1);
  odd.servers = 1;
  odd.slots_per_period = 1;
  odd.ring_fraction = 1e-6;
  odd.skip_probability = 0.985;  // ~3 appearances over 7 months
  odd.always_listed = false;
  campaigns.push_back(odd);

  // The authors' own relays: Nov–Dec 2012, repeated fingerprint
  // switches, ratio > 100.
  CampaignSpec own;
  own.name = "uniluxprobe";
  own.from = util::make_utc(2012, 11, 5);
  own.to = util::make_utc(2012, 12, 20);
  own.servers = 2;
  own.slots_per_period = 1;
  own.ring_fraction = 5e-6;  // ratio ~ 1/(1300 * 5e-6) ~ 150
  own.skip_probability = 0.15;
  campaigns.push_back(own);

  // 21 May – 3 Jun 2013: name-sharing set, 1 of 6 slots, skipped 4 of
  // 14 periods, the only set crossing ratio 10k.
  CampaignSpec may;
  may.name = "trawlnode";
  may.from = util::make_utc(2013, 5, 21);
  may.to = util::make_utc(2013, 6, 4);
  may.servers = 4;
  may.slots_per_period = 1;
  may.ring_fraction = 5e-9;  // ratio ~ 150k >> 10k
  may.skip_probability = 4.0 / 14.0;
  campaigns.push_back(may);

  // 31 Aug 2013: 6 relays from 3 IPs, all 6 responsible slots, one
  // period.
  CampaignSpec aug;
  aug.name = "augseizure";
  aug.from = util::make_utc(2013, 8, 31);
  aug.to = util::make_utc(2013, 9, 1);
  aug.servers = 6;
  aug.slots_per_period = 6;
  aug.ring_fraction = 1e-7;
  campaigns.push_back(aug);

  return campaigns;
}

SilkroadStudy run_silkroad_study(std::uint64_t seed) {
  SilkroadStudy study;
  HistoryConfig config;
  config.seed = seed;
  HistorySimulator simulator(config);
  study.history = simulator.simulate(silkroad_target(), silkroad_campaigns());

  TrackingDetector detector;
  study.report = detector.analyze(study.history, silkroad_target());

  // Year-by-year passes (the HSDir population more than doubled over the
  // window, so the paper split the binomial analysis per year).
  for (int year = 2011; year <= 2013; ++year) {
    HsDirHistory slice;
    slice.servers = study.history.servers;
    const util::UnixTime from = util::make_utc(year, 1, 1);
    const util::UnixTime to = util::make_utc(year + 1, 1, 1);
    for (const Snapshot& snap : study.history.snapshots)
      if (snap.time() >= from && snap.time() < to)
        slice.snapshots.push_back(snap);
    study.yearly.push_back(detector.analyze(slice, silkroad_target()));
  }
  return study;
}

}  // namespace torsim::trackdet
