#include "trackdet/history.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace torsim::trackdet {

Snapshot::Snapshot(util::UnixTime time, std::vector<SnapshotEntry> entries)
    : time_(time), entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const SnapshotEntry& a, const SnapshotEntry& b) {
              return a.fingerprint < b.fingerprint;
            });
}

std::vector<const SnapshotEntry*> Snapshot::responsible(
    const crypto::DescriptorId& id) const {
  std::vector<const SnapshotEntry*> out;
  if (entries_.empty()) return out;
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), id,
      [](const crypto::DescriptorId& lhs, const SnapshotEntry& e) {
        return lhs < e.fingerprint;
      });
  const std::size_t start =
      static_cast<std::size_t>(it - entries_.begin()) % entries_.size();
  const std::size_t take =
      std::min<std::size_t>(crypto::kHsDirsPerReplica, entries_.size());
  for (std::size_t k = 0; k < take; ++k)
    out.push_back(&entries_[(start + k) % entries_.size()]);
  return out;
}

double Snapshot::average_gap() const {
  if (entries_.empty()) return 0.0;
  // Gaps over the whole ring sum to 2^160 regardless of positions.
  return std::ldexp(1.0, 160) / static_cast<double>(entries_.size());
}

HsDirHistory history_from_archive(const dirauth::ConsensusArchive& archive,
                                  int sample_hours) {
  HsDirHistory history;
  std::map<std::pair<std::uint32_t, std::string>, std::uint32_t> server_ids;

  util::UnixTime next_sample =
      archive.empty() ? 0 : archive.first_time();
  for (std::size_t i = 0; i < archive.size(); ++i) {
    const dirauth::Consensus& c = archive.at(i);
    if (c.valid_after() < next_sample) continue;
    next_sample = c.valid_after() +
                  static_cast<util::Seconds>(sample_hours) *
                      util::kSecondsPerHour;

    std::vector<SnapshotEntry> entries;
    for (std::size_t idx : c.hsdir_indices()) {
      const dirauth::ConsensusEntry& e = c.entries()[idx];
      const auto key = std::make_pair(e.address.value(), e.nickname);
      auto it = server_ids.find(key);
      if (it == server_ids.end()) {
        ServerInfo info;
        info.id = static_cast<std::uint32_t>(history.servers.size());
        info.name = e.nickname;
        info.address = e.address;
        server_ids.emplace(key, info.id);
        it = server_ids.find(key);
        history.servers.push_back(std::move(info));
      }
      entries.push_back({e.fingerprint, it->second});
    }
    history.snapshots.emplace_back(c.valid_after(), std::move(entries));
  }
  return history;
}

}  // namespace torsim::trackdet
