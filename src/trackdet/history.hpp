// Compact HSDir-ring history: one snapshot per day (per descriptor time
// period), as mined from three years of consensus archives. This is the
// input representation for the Sec. VII tracking detector; it is
// deliberately lighter than the full dirauth::Consensus so multi-year
// histories stay cheap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "dirauth/archive.hpp"
#include "util/ipv4.hpp"
#include "util/time.hpp"

namespace torsim::trackdet {

/// A physical server (what an analyst can group by: IP + nickname).
/// Fingerprints are per-snapshot, since servers switch keys.
struct ServerInfo {
  std::uint32_t id = 0;
  std::string name;
  util::Ipv4 address;
  /// Ground-truth campaign tag ("" = honest). Never consulted by the
  /// detector — only by tests/benches validating detector output.
  std::string truth_campaign;
};

/// One relay with HSDir flag in one snapshot.
struct SnapshotEntry {
  crypto::Fingerprint fingerprint{};
  std::uint32_t server = 0;
};

/// The HSDir ring on one day.
class Snapshot {
 public:
  Snapshot(util::UnixTime time, std::vector<SnapshotEntry> entries);

  util::UnixTime time() const { return time_; }
  const std::vector<SnapshotEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// The 3 entries following `id` clockwise (the responsible HSDirs of
  /// one replica).
  std::vector<const SnapshotEntry*> responsible(
      const crypto::DescriptorId& id) const;

  /// Average gap between consecutive fingerprints on this ring (the
  /// "avg_dist" of the paper's ratio rule).
  double average_gap() const;

 private:
  util::UnixTime time_;
  std::vector<SnapshotEntry> entries_;  // sorted by fingerprint
};

/// Multi-year history of daily snapshots plus the server table.
struct HsDirHistory {
  std::vector<ServerInfo> servers;
  std::vector<Snapshot> snapshots;  // ascending time

  const ServerInfo& server(std::uint32_t id) const { return servers[id]; }
};

/// Builds a compact history from a full consensus archive (for
/// end-to-end runs through sim::World). Consensus entries map to
/// servers by (address, nickname); snapshots are sampled every
/// `sample_hours`.
HsDirHistory history_from_archive(const dirauth::ConsensusArchive& archive,
                                  int sample_hours = 24);

}  // namespace torsim::trackdet
