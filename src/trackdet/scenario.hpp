// The paper's Silk Road case study as a ready-made scenario: a
// 1 Feb 2011 – 31 Oct 2013 synthetic consensus history containing the
// year-one "strange server" oddity and the three tracking episodes
// Sec. VII reports:
//   * the authors' own measurement relays (2012, fingerprint switches
//     with distance ratios above 100),
//   * the 21 May – 3 Jun 2013 campaign (name-sharing server set seizing
//     1 of 6 slots, skipping 4 periods, ratios above 10,000),
//   * the 31 Aug 2013 takeover (6 relays on 3 IPs holding all 6
//     responsible slots for one period, a month before the FBI
//     takedown).
#pragma once

#include <string>
#include <vector>

#include "trackdet/detector.hpp"
#include "trackdet/history_simulator.hpp"

namespace torsim::trackdet {

/// The target stand-in for silkroadvb5piz3r.onion (a fixed synthetic
/// permanent id; the real key is unknown).
crypto::PermanentId silkroad_target();

/// The three campaigns, with the paper's dates.
std::vector<CampaignSpec> silkroad_campaigns();

/// Convenience: simulate the full history and analyze it.
struct SilkroadStudy {
  HsDirHistory history;
  TrackingReport report;
  /// report restricted per calendar year (2011 / 2012 / 2013), matching
  /// the paper's year-by-year analysis.
  std::vector<TrackingReport> yearly;
};

SilkroadStudy run_silkroad_study(std::uint64_t seed = 7);

}  // namespace torsim::trackdet
