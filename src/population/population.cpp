#include "population/population.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "content/corpus.hpp"
#include "content/html.hpp"
#include "util/strings.hpp"

namespace torsim::population {
namespace {

// The scan found 87% of ports (churn across multi-day range sweeps), so
// the *true* population is the paper's measured counts inflated by the
// reciprocal of the coverage: scanning our population with ~87% per-port
// detection then lands back on the paper's Fig. 1 numbers.
constexpr double kCoverage = 0.87;

std::int64_t scaled(double scale, std::int64_t paper_count,
                    bool inflate = true) {
  const double base = static_cast<double>(paper_count) * scale;
  return std::llround(inflate ? base / kCoverage : base);
}

content::Topic sample_topic(util::Rng& rng) {
  const auto& pct = content::paper_topic_percentages();
  double roll = rng.uniform(0.0, 100.0);
  for (int i = 0; i < content::kNumTopics; ++i) {
    roll -= pct[i];
    if (roll <= 0.0) return content::topic_from_index(i);
  }
  return content::Topic::kOther;
}

content::Language sample_language(util::Rng& rng) {
  // The paper's 84% English share is over *all* classifiable pages,
  // including the all-English TorHost default pages; user-authored pages
  // must therefore sample English slightly below 84% for the aggregate
  // to land on the paper's number.
  constexpr double kEnglishShare = 0.775;
  const auto& shares = content::paper_language_shares();
  double roll = rng.uniform01();
  if (roll < kEnglishShare) return content::Language::kEnglish;
  roll = (roll - kEnglishShare) / (1.0 - kEnglishShare);
  double minority_total = 0.0;
  for (int i = 1; i < content::kNumLanguages; ++i) minority_total += shares[i];
  roll *= minority_total;
  for (int i = 1; i < content::kNumLanguages; ++i) {
    roll -= shares[i];
    if (roll <= 0.0) return content::language_from_index(i);
  }
  return content::Language::kEnglish;
}

net::HttpResponse make_page_response(std::string body, bool error_page) {
  net::HttpResponse r;
  r.status = error_page ? 500 : 200;
  // Serve a real HTML document; the crawler strips it back to text.
  // Error pages from html_error_page() are already full documents.
  r.body = body.find("<html>") == std::string::npos
               ? content::wrap_html("untitled", body)
               : std::move(body);
  r.error_page = error_page;
  return r;
}

net::TlsCertificate torhost_certificate() {
  net::TlsCertificate cert;
  cert.common_name = std::string(content::kTorHostCertCn);
  cert.self_signed = true;
  cert.matches_requested_host = false;
  return cert;
}

}  // namespace

const char* to_string(ServiceClass klass) {
  switch (klass) {
    case ServiceClass::kSkynetBot: return "skynet-bot";
    case ServiceClass::kSkynetCnC: return "skynet-cnc";
    case ServiceClass::kGoldnetCnC: return "goldnet-cnc";
    case ServiceClass::kBitcoinMiner: return "bitcoin-miner";
    case ServiceClass::kWebSite: return "web-site";
    case ServiceClass::kTorHostSite: return "torhost-site";
    case ServiceClass::kHttpsSite: return "https-site";
    case ServiceClass::kSshHost: return "ssh-host";
    case ServiceClass::kTorChat: return "torchat";
    case ServiceClass::kIrcServer: return "irc-server";
    case ServiceClass::kPort4050: return "port-4050";
    case ServiceClass::kOtherPort: return "other-port";
    case ServiceClass::kNamed: return "named";
    case ServiceClass::kDark: return "dark";
    case ServiceClass::kUnpublished: return "unpublished";
  }
  return "?";
}

const ServiceRecord* Population::find(const std::string& onion) const {
  const auto it = by_onion_.find(onion);
  return it == by_onion_.end() ? nullptr : &services_[it->second];
}

std::vector<const ServiceRecord*> Population::of_class(
    ServiceClass klass) const {
  std::vector<const ServiceRecord*> out;
  for (const ServiceRecord& s : services_)
    if (s.klass == klass) out.push_back(&s);
  return out;
}

std::size_t Population::published_count() const {
  std::size_t n = 0;
  for (const ServiceRecord& s : services_)
    if (s.published_at_scan) ++n;
  return n;
}

Population Population::generate(const PopulationConfig& config) {
  Population pop(config);
  util::Rng rng(config.seed);
  content::PageGenerator pages;
  const double s = config.scale;

  const auto add_service = [&](ServiceClass klass,
                               crypto::KeyPair key) -> ServiceRecord& {
    ServiceRecord record(std::move(key));
    record.index = pop.services_.size();
    record.onion = crypto::onion_address(
        crypto::permanent_id_from_fingerprint(record.key.fingerprint()));
    record.klass = klass;
    record.daily_availability = rng.uniform(0.80, 0.94);
    record.alive_at_crawl = rng.bernoulli(0.95);
    pop.services_.push_back(std::move(record));
    return pop.services_.back();
  };
  const auto add = [&](ServiceClass klass) -> ServiceRecord& {
    return add_service(klass, crypto::KeyPair::generate(rng));
  };

  const auto page_words = [&] {
    return static_cast<int>(
        rng.uniform_int(config.page_words_min, config.page_words_max));
  };

  // Shared content distribution for a generic HTTP page; mirrors the
  // crawl funnel: ~40% stubs (<20 words), ~3% HTML error pages, the
  // rest real pages with paper-calibrated topic/language mixes. (The
  // stub/error rates are set so the *measured* Sec. IV funnel lands on
  // the paper's 2,348 / 73 exclusions after scan+crawl losses.)
  const auto fill_http_page = [&](ServiceRecord& svc, std::uint16_t port,
                                  bool allow_stub = true) {
    const double roll = rng.uniform01();
    net::PortService service;
    service.protocol =
        port == net::kPortHttps ? net::Protocol::kHttps : net::Protocol::kHttp;
    if (allow_stub && roll < 0.40) {
      service.http = make_page_response(pages.generate_stub(rng), false);
    } else if (allow_stub && roll < 0.43) {
      service.http = make_page_response(
          std::string(content::html_error_page()), true);
    } else {
      svc.topic = sample_topic(rng);
      svc.language = sample_language(rng);
      service.http = make_page_response(
          pages.generate(svc.topic, svc.language, page_words(), rng), false);
    }
    svc.profile.listen(port, std::move(service));
  };

  // ---------------------------------------------------------------
  // 1. Pinned Table II services (always generated, at any scale).
  // ---------------------------------------------------------------
  int goldnet_group_toggle = 0;
  for (const PopularService& row : table2_rows()) {
    ServiceClass klass = ServiceClass::kNamed;
    const std::string label(row.label);
    if (label == "Goldnet" || label == "Unknown")
      klass = ServiceClass::kGoldnetCnC;
    else if (label == "Skynet")
      klass = ServiceClass::kSkynetCnC;
    else if (label == "BcMine")
      klass = ServiceClass::kBitcoinMiner;
    else if (label == "Adult")
      klass = ServiceClass::kWebSite;

    ServiceRecord& svc = add(klass);
    svc.label = label;
    svc.paper_alias = std::string(row.paper_onion);
    svc.paper_rank = row.paper_rank;
    svc.requests_per_2h = static_cast<double>(row.requests_per_2h);
    svc.published_at_scan = true;
    svc.daily_availability = 0.98;
    svc.alive_at_crawl = true;

    switch (klass) {
      case ServiceClass::kGoldnetCnC: {
        // Port 80 only; 503 errors; server-status exposed; two physical
        // servers distinguishable by identical Apache uptimes.
        svc.physical_server = goldnet_group_toggle++ % 2;
        net::PortService web;
        web.protocol = net::Protocol::kHttp;
        net::HttpResponse resp;
        resp.status = 503;
        resp.body = "503 service unavailable";
        resp.error_page = true;
        resp.server_status_page = true;
        resp.traffic_bytes_per_sec = 330.0 * 1024.0 + rng.uniform(-5e3, 5e3);
        resp.requests_per_sec = 10.0 + rng.uniform(-0.8, 0.8);
        resp.apache_uptime_seconds =
            svc.physical_server == 0 ? 8123456 : 12345678;
        web.http = resp;
        svc.profile.listen(net::kPortHttp, std::move(web));
        break;
      }
      case ServiceClass::kSkynetCnC: {
        net::PortService irc;
        irc.protocol = net::Protocol::kIrc;
        irc.banner = ":skynet NOTICE AUTH :*** Looking up your hostname...";
        svc.profile.listen(net::kPortIrc, std::move(irc));
        svc.profile.set_abnormal_close(net::kPortSkynet);
        break;
      }
      case ServiceClass::kBitcoinMiner: {
        net::PortService pool;
        pool.protocol = net::Protocol::kBitcoinPool;
        pool.banner = "{\"id\":1,\"method\":\"mining.subscribe\"}";
        svc.profile.listen(3333, std::move(pool));
        break;
      }
      case ServiceClass::kWebSite: {  // pinned Adult sites
        svc.topic = content::Topic::kAdult;
        svc.language = content::Language::kEnglish;
        net::PortService web;
        web.protocol = net::Protocol::kHttp;
        web.http = make_page_response(
            pages.generate_english(content::Topic::kAdult, page_words(), rng),
            false);
        svc.profile.listen(net::kPortHttp, std::move(web));
        break;
      }
      default: {  // kNamed: pinned non-botnet services
        content::Topic topic = content::Topic::kOther;
        if (label == "SilkRoad" || label == "BlackMarketReloaded")
          topic = content::Topic::kDrugs;
        else if (label == "SilkRoadWiki" || label == "OnionBookmarks" ||
                 label == "TorDir")
          topic = content::Topic::kFaqsTutorials;
        else if (label == "DuckDuckGo")
          topic = content::Topic::kTechnology;
        else if (label == "FreedomHosting" || label == "TorHost")
          topic = content::Topic::kAnonymity;
        svc.topic = topic;
        svc.language = content::Language::kEnglish;
        net::PortService web;
        web.protocol = net::Protocol::kHttp;
        web.http = make_page_response(
            pages.generate_english(topic, page_words(), rng), false);
        svc.profile.listen(net::kPortHttp, std::move(web));
        break;
      }
    }
  }

  // "silkroa"-prefixed phishing/copycat addresses: the paper found 15.
  // Grinding a full 7-character prefix is ~2^35 hashes; we grind a
  // 3-character "sil" prefix (~2^15) to exercise the same key-grinding
  // machinery (documented substitution).
  {
    const int phishing = static_cast<int>(
        std::max<std::int64_t>(1, std::llround(15 * s)));
    for (int i = 0; i < phishing; ++i) {
      crypto::KeyPair key = crypto::KeyPair::generate(rng);
      while (true) {
        const auto onion = crypto::onion_address(
            crypto::permanent_id_from_fingerprint(key.fingerprint()));
        if (util::starts_with(onion, "sil")) break;
        key = crypto::KeyPair::generate(rng);
      }
      ServiceRecord& svc = add_service(ServiceClass::kWebSite, std::move(key));
      svc.label = "SilkroadPhishing";
      svc.topic = content::Topic::kCounterfeit;
      svc.language = content::Language::kEnglish;
      net::PortService web;
      web.protocol = net::Protocol::kHttp;
      web.http = make_page_response(
          pages.generate_english(content::Topic::kCounterfeit, page_words(),
                                 rng),
          false);
      svc.profile.listen(net::kPortHttp, std::move(web));
    }
  }

  // ---------------------------------------------------------------
  // 2. Skynet bots: no open ports, only the 55080 abnormal close.
  // ---------------------------------------------------------------
  for (std::int64_t i = 0, n = scaled(s, 13854); i < n; ++i) {
    ServiceRecord& svc = add(ServiceClass::kSkynetBot);
    svc.label = "Skynet";
    svc.profile.set_abnormal_close(net::kPortSkynet);
  }

  // ---------------------------------------------------------------
  // 3. Plain HTTP sites (port 80 only).
  // ---------------------------------------------------------------
  for (std::int64_t i = 0, n = scaled(s, 2661); i < n; ++i) {
    ServiceRecord& svc = add(ServiceClass::kWebSite);
    fill_http_page(svc, net::kPortHttp);
  }

  // ---------------------------------------------------------------
  // 4. TorHost-hosted sites: 80 + 443 with the shared esjqyk CN cert;
  //    most serve identical content on both ports; many still show the
  //    hosting service's default page.
  // ---------------------------------------------------------------
  for (std::int64_t i = 0, n = scaled(s, 1168); i < n; ++i) {
    ServiceRecord& svc = add(ServiceClass::kTorHostSite);
    svc.label = "TorHostHosted";
    const bool default_page = rng.bernoulli(0.62);
    std::string body;
    if (default_page) {
      body = std::string(content::torhost_default_page());
      svc.topic = content::Topic::kOther;
      svc.language = content::Language::kEnglish;
    } else {
      svc.topic = sample_topic(rng);
      svc.language = sample_language(rng);
      body = pages.generate(svc.topic, svc.language, page_words(), rng);
    }
    net::PortService web;
    web.protocol = net::Protocol::kHttp;
    web.http = make_page_response(body, false);
    svc.profile.listen(net::kPortHttp, web);

    net::PortService tls;
    tls.protocol = net::Protocol::kHttps;
    const bool duplicate = rng.bernoulli(1108.0 / 1168.0);
    tls.http = make_page_response(
        duplicate ? body
                  : body + " secure area members only additional content",
        false);
    tls.certificate = torhost_certificate();
    svc.profile.listen(net::kPortHttps, std::move(tls));
  }

  // ---------------------------------------------------------------
  // 5. Independent HTTPS sites: 34/1225 of the paper's certificates
  //    carried public DNS names (deanonymising); the rest self-signed
  //    with matching or mismatching onion CNs.
  // ---------------------------------------------------------------
  {
    const std::int64_t n_public_dns = scaled(s, 34);
    const std::int64_t n_mismatch = scaled(s, 57);
    const std::int64_t n_match = scaled(s, 107);
    for (std::int64_t i = 0, n = n_public_dns + n_mismatch + n_match; i < n;
         ++i) {
      ServiceRecord& svc = add(ServiceClass::kHttpsSite);
      svc.topic = sample_topic(rng);
      svc.language = sample_language(rng);
      const std::string body =
          pages.generate(svc.topic, svc.language, page_words(), rng);

      net::PortService web;
      web.protocol = net::Protocol::kHttp;
      web.http = make_page_response(body, false);
      svc.profile.listen(net::kPortHttp, web);

      net::PortService tls;
      tls.protocol = net::Protocol::kHttps;
      // Most independent HTTPS sites, like the TorHost ones, serve the
      // same document on both ports (the paper excluded 1,108 of 1,366
      // port-443 destinations as copies).
      tls.http = make_page_response(
          rng.bernoulli(0.70)
              ? body
              : body + " secure login area for registered members",
          false);
      net::TlsCertificate cert;
      if (i < n_public_dns) {
        cert.common_name =
            "host" + std::to_string(i) + ".example-clearnet.com";
        cert.self_signed = true;
        cert.matches_requested_host = false;
        svc.label = "CertLeaksDns";
      } else if (i < n_public_dns + n_mismatch) {
        cert.common_name = "wrongservice" + std::to_string(i) + ".onion";
        cert.self_signed = true;
        cert.matches_requested_host = false;
      } else {
        cert.common_name = svc.onion + ".onion";
        cert.self_signed = true;
        cert.matches_requested_host = true;
      }
      tls.certificate = cert;
      svc.profile.listen(net::kPortHttps, std::move(tls));
    }
  }

  // ---------------------------------------------------------------
  // 6. SSH-only hosts.
  // ---------------------------------------------------------------
  for (std::int64_t i = 0, n = scaled(s, 1238); i < n; ++i) {
    ServiceRecord& svc = add(ServiceClass::kSshHost);
    net::PortService ssh;
    ssh.protocol = net::Protocol::kSsh;
    ssh.banner = std::string(content::ssh_banner());
    svc.profile.listen(net::kPortSsh, std::move(ssh));
  }

  // ---------------------------------------------------------------
  // 7. TorChat / port-4050 / IRC clusters.
  // ---------------------------------------------------------------
  for (std::int64_t i = 0, n = scaled(s, 385); i < n; ++i) {
    ServiceRecord& svc = add(ServiceClass::kTorChat);
    net::PortService chat;
    chat.protocol = net::Protocol::kTorChat;
    svc.profile.listen(net::kPortTorChat, std::move(chat));
  }
  for (std::int64_t i = 0, n = scaled(s, 138); i < n; ++i) {
    ServiceRecord& svc = add(ServiceClass::kPort4050);
    net::PortService raw;
    raw.protocol = net::Protocol::kRawTcp;
    svc.profile.listen(net::kPort4050, std::move(raw));
  }
  for (std::int64_t i = 0, n = scaled(s, 113); i < n; ++i) {
    ServiceRecord& svc = add(ServiceClass::kIrcServer);
    net::PortService irc;
    irc.protocol = net::Protocol::kIrc;
    irc.banner = ":server NOTICE AUTH :*** Found your hostname";
    svc.profile.listen(net::kPortIrc, std::move(irc));
  }

  // ---------------------------------------------------------------
  // 8. Rare-port services: ~495 unique port numbers in total; slightly
  //    over half of these destinations actually speak HTTP (Table I's
  //    "Other 451" + the four port-8080 sites).
  // ---------------------------------------------------------------
  {
    const std::int64_t n_other = scaled(s, 886);
    const std::int64_t n_8080 = std::max<std::int64_t>(1, std::llround(4 * s));
    // The paper saw 886 rare-port services spread over ~487 distinct port
    // numbers (495 minus the named ones), i.e. ~1.8 services per port;
    // draw from a bounded pool rather than the whole 16-bit space.
    const std::size_t pool_size = static_cast<std::size_t>(
        std::max<std::int64_t>(8, std::llround(560 * s)));
    std::vector<std::uint16_t> port_pool;
    while (port_pool.size() < pool_size) {
      const auto candidate =
          static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
      if (candidate == net::kPortSkynet || candidate == net::kPortTorChat ||
          candidate == net::kPort4050 || candidate == net::kPortHttpAlt)
        continue;
      port_pool.push_back(candidate);
    }
    for (std::int64_t i = 0; i < n_other; ++i) {
      ServiceRecord& svc = add(ServiceClass::kOtherPort);
      std::uint16_t port;
      if (i < n_8080) {
        port = net::kPortHttpAlt;
      } else {
        port = port_pool[rng.index(port_pool.size())];
      }
      if (i < n_8080 || rng.bernoulli(0.55)) {
        fill_http_page(svc, port);
      } else {
        net::PortService raw;
        raw.protocol = net::Protocol::kRawTcp;
        svc.profile.listen(port, std::move(raw));
      }
    }
  }

  // ---------------------------------------------------------------
  // 9. Dark services (published descriptor, no open ports) + the
  //    addresses whose descriptors had already vanished by the scan.
  // ---------------------------------------------------------------
  const std::int64_t target_total = std::llround(39824 * s);
  const std::int64_t target_published = std::llround(24511 * s);
  const std::int64_t have =
      static_cast<std::int64_t>(pop.services_.size());
  const std::int64_t dark =
      std::max<std::int64_t>(0, target_published - have);
  for (std::int64_t i = 0; i < dark; ++i) add(ServiceClass::kDark);
  const std::int64_t unpublished = std::max<std::int64_t>(
      0, target_total - static_cast<std::int64_t>(pop.services_.size()));
  for (std::int64_t i = 0; i < unpublished; ++i) {
    ServiceRecord& svc = add(ServiceClass::kUnpublished);
    svc.published_at_scan = false;
    svc.alive_at_crawl = false;
  }

  // ---------------------------------------------------------------
  // 10. Popularity tail: ~10% of published services are ever requested
  //     (3,140 resolved onions for 24,511 published). The pinned head
  //     already has rates; give a Zipf-decaying trickle to enough
  //     unpinned published services to hit the paper's resolved count.
  // ---------------------------------------------------------------
  {
    std::vector<std::size_t> candidates;
    for (const ServiceRecord& svc : pop.services_)
      if (svc.published_at_scan && svc.requests_per_2h == 0.0)
        candidates.push_back(svc.index);
    rng.shuffle(candidates);
    const std::size_t want = static_cast<std::size_t>(
        std::max<std::int64_t>(0, std::llround((3140 - 36) * s)));
    const std::size_t tail = std::min(want, candidates.size());
    for (std::size_t rank = 0; rank < tail; ++rank) {
      // Two-regime decay fitted to Table II's deep rows: a moderately
      // flat shoulder (so ~150 unnamed services sit between the pinned
      // head and DuckDuckGo's 55 req/2h near paper-rank 157), then a
      // steeper power-law tail down to a couple of requests per window.
      const double r = static_cast<double>(rank + 1);
      const double rate = r <= 100.0 ? 400.0 / std::pow(r, 0.30)
                                     : 100.5 * std::pow(100.0 / r, 1.3);
      pop.services_[candidates[rank]].requests_per_2h = std::max(2.5, rate);
    }
  }

  pop.by_onion_.reserve(pop.services_.size());
  for (const ServiceRecord& svc : pop.services_)
    pop.by_onion_[svc.onion] = svc.index;
  return pop;
}

}  // namespace torsim::population
