#include "population/population.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "content/corpus.hpp"
#include "content/html.hpp"
#include "util/strings.hpp"

namespace torsim::population {
namespace {

// The scan found 87% of ports (churn across multi-day range sweeps), so
// the *true* population is the paper's measured counts inflated by the
// reciprocal of the coverage: scanning our population with ~87% per-port
// detection then lands back on the paper's Fig. 1 numbers.
constexpr double kCoverage = 0.87;

std::int64_t scaled(double scale, std::int64_t paper_count,
                    bool inflate = true) {
  const double base = static_cast<double>(paper_count) * scale;
  return std::llround(inflate ? base / kCoverage : base);
}

content::Topic sample_topic(util::Rng& rng) {
  const auto& pct = content::paper_topic_percentages();
  double roll = rng.uniform(0.0, 100.0);
  for (int i = 0; i < content::kNumTopics; ++i) {
    roll -= pct[i];
    if (roll <= 0.0) return content::topic_from_index(i);
  }
  return content::Topic::kOther;
}

content::Language sample_language(util::Rng& rng) {
  // The paper's 84% English share is over *all* classifiable pages,
  // including the all-English TorHost default pages; user-authored pages
  // must therefore sample English slightly below 84% for the aggregate
  // to land on the paper's number.
  constexpr double kEnglishShare = 0.775;
  const auto& shares = content::paper_language_shares();
  double roll = rng.uniform01();
  if (roll < kEnglishShare) return content::Language::kEnglish;
  roll = (roll - kEnglishShare) / (1.0 - kEnglishShare);
  double minority_total = 0.0;
  for (int i = 1; i < content::kNumLanguages; ++i) minority_total += shares[i];
  roll *= minority_total;
  for (int i = 1; i < content::kNumLanguages; ++i) {
    roll -= shares[i];
    if (roll <= 0.0) return content::language_from_index(i);
  }
  return content::Language::kEnglish;
}

net::HttpResponse make_page_response(std::string body, bool error_page) {
  net::HttpResponse r;
  r.status = error_page ? 500 : 200;
  // Serve a real HTML document; the crawler strips it back to text.
  // Error pages from html_error_page() are already full documents.
  r.body = body.find("<html>") == std::string::npos
               ? content::wrap_html("untitled", body)
               : std::move(body);
  r.error_page = error_page;
  return r;
}

net::TlsCertificate torhost_certificate() {
  net::TlsCertificate cert;
  cert.common_name = std::string(content::kTorHostCertCn);
  cert.self_signed = true;
  cert.matches_requested_host = false;
  return cert;
}

/// Mirror of the retired array-of-structs ServiceRecord, kept only so
/// MemoryFootprint::legacy_record_bytes tracks the real ABI cost the
/// SoA columns replaced (bench_population reports the delta).
struct LegacyRecordShape {
  std::size_t index;
  crypto::KeyPair key;
  std::string onion;
  ServiceClass klass;
  std::string label;
  std::string paper_alias;
  net::ServiceProfile profile;
  content::Topic topic;
  content::Language language;
  bool published_at_scan;
  double daily_availability;
  bool alive_at_crawl;
  double requests_per_2h;
  int paper_rank;
  int physical_server;
};

/// Heap bytes one owning std::string of `size` chars cost in the legacy
/// layout: nothing inside the SSO buffer, one minimum malloc chunk
/// above it (every string in this population fits a 32-byte chunk).
std::size_t legacy_string_heap_bytes(std::size_t size) {
  constexpr std::size_t kSsoCapacity = 15;
  return size <= kSsoCapacity ? 0 : 32;
}

}  // namespace

const char* to_string(ServiceClass klass) {
  switch (klass) {
    case ServiceClass::kSkynetBot: return "skynet-bot";
    case ServiceClass::kSkynetCnC: return "skynet-cnc";
    case ServiceClass::kGoldnetCnC: return "goldnet-cnc";
    case ServiceClass::kBitcoinMiner: return "bitcoin-miner";
    case ServiceClass::kWebSite: return "web-site";
    case ServiceClass::kTorHostSite: return "torhost-site";
    case ServiceClass::kHttpsSite: return "https-site";
    case ServiceClass::kSshHost: return "ssh-host";
    case ServiceClass::kTorChat: return "torchat";
    case ServiceClass::kIrcServer: return "irc-server";
    case ServiceClass::kPort4050: return "port-4050";
    case ServiceClass::kOtherPort: return "other-port";
    case ServiceClass::kNamed: return "named";
    case ServiceClass::kDark: return "dark";
    case ServiceClass::kUnpublished: return "unpublished";
  }
  return "?";
}

std::optional<Population::ServiceRef> Population::find(
    std::string_view onion) const {
  const auto it = by_onion_.find(onion);
  if (it == by_onion_.end()) return std::nullopt;
  return ServiceRef(this, it->second);
}

std::vector<ServiceId> Population::of_class(ServiceClass klass) const {
  std::vector<ServiceId> out;
  for (ServiceId id = 0; id < klasses_.size(); ++id)
    if (klasses_[id] == klass) out.push_back(id);
  return out;
}

std::size_t Population::published_count() const {
  std::size_t n = 0;
  for (const std::uint8_t published : published_at_scan_)
    if (published != 0) ++n;
  return n;
}

Population::MemoryFootprint Population::memory_footprint() const {
  const auto column = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  MemoryFootprint f;
  f.services = size();
  f.column_bytes = column(keys_) + column(onions_) + column(klasses_) +
                   column(labels_) + column(aliases_) + column(profiles_) +
                   column(topics_) + column(languages_) +
                   column(published_at_scan_) + column(daily_availability_) +
                   column(alive_at_crawl_) + column(requests_per_2h_) +
                   column(paper_ranks_) + column(physical_servers_);
  // One bucket pointer + one node (key view, id, chain pointer) per
  // entry — the same estimate style as StringInterner::bytes().
  f.index_bytes = by_onion_.size() *
                  (sizeof(std::string_view) + sizeof(ServiceId) +
                   2 * sizeof(void*));
  f.interner_bytes = util::global_interner().bytes();
  f.legacy_record_bytes = size() * sizeof(LegacyRecordShape);
  const util::StringInterner& interner = util::global_interner();
  for (ServiceId id = 0; id < onions_.size(); ++id) {
    f.legacy_record_bytes += legacy_string_heap_bytes(
        interner.view(onions_[id]).size());
    f.legacy_record_bytes += legacy_string_heap_bytes(
        interner.view(labels_[id]).size());
    f.legacy_record_bytes += legacy_string_heap_bytes(
        interner.view(aliases_[id]).size());
  }
  return f;
}

/// Build-time handle: every accessor re-indexes the columns through the
/// population pointer, so column growth between calls can never leave a
/// dangling reference (the legacy builder handed out ServiceRecord&
/// into a reallocating vector — the invalidation bug class this layout
/// retires; tests/data_layout_test.cpp pins it).
class Population::MutableRef {
 public:
  MutableRef(Population* pop, ServiceId id) : pop_(pop), id_(id) {}

  ServiceId index() const { return id_; }
  std::string_view onion() const { return pop_->onion(id_); }
  net::ServiceProfile& profile() { return pop_->profiles_[id_]; }
  content::Topic topic() const { return pop_->topics_[id_]; }
  content::Language language() const { return pop_->languages_[id_]; }
  int physical_server() const { return pop_->physical_servers_[id_]; }

  void set_label(std::string_view v) {
    pop_->labels_[id_] = util::global_interner().intern(v);
  }
  void set_paper_alias(std::string_view v) {
    pop_->aliases_[id_] = util::global_interner().intern(v);
  }
  void set_topic(content::Topic t) { pop_->topics_[id_] = t; }
  void set_language(content::Language l) { pop_->languages_[id_] = l; }
  void set_published_at_scan(bool b) {
    pop_->published_at_scan_[id_] = b ? 1 : 0;
  }
  void set_daily_availability(double v) {
    pop_->daily_availability_[id_] = v;
  }
  void set_alive_at_crawl(bool b) { pop_->alive_at_crawl_[id_] = b ? 1 : 0; }
  void set_requests_per_2h(double v) { pop_->requests_per_2h_[id_] = v; }
  void set_paper_rank(int r) { pop_->paper_ranks_[id_] = r; }
  void set_physical_server(int s) { pop_->physical_servers_[id_] = s; }

 private:
  Population* pop_;
  ServiceId id_;
};

Population Population::generate(const PopulationConfig& config) {
  Population pop(config);
  util::Rng rng(config.seed);
  content::PageGenerator pages;
  const double s = config.scale;
  util::StringInterner& interner = util::global_interner();
  const util::StringInterner::Id empty_id = interner.intern("");

  // Satellite fix: the legacy builder reserved only by_onion_; the
  // column vectors grew by doubling. The section counts below are all
  // deterministic functions of the scale, so the exact final size is
  // known up front: the inflated class counts (sections 1–8), topped up
  // by section 9 to the paper's 39,824-service total when that is
  // larger (it is at every non-degenerate scale).
  const std::int64_t pinned =
      static_cast<std::int64_t>(table2_rows().size()) +
      std::max<std::int64_t>(1, std::llround(15 * s));
  const std::int64_t inflated =
      scaled(s, 13854) + scaled(s, 2661) + scaled(s, 1168) + scaled(s, 34) +
      scaled(s, 57) + scaled(s, 107) + scaled(s, 1238) + scaled(s, 385) +
      scaled(s, 138) + scaled(s, 113) + scaled(s, 886);
  const std::size_t expected_total = static_cast<std::size_t>(
      std::max<std::int64_t>(pinned + inflated, std::llround(39824 * s)));
  pop.keys_.reserve(expected_total);
  pop.onions_.reserve(expected_total);
  pop.klasses_.reserve(expected_total);
  pop.labels_.reserve(expected_total);
  pop.aliases_.reserve(expected_total);
  pop.profiles_.reserve(expected_total);
  pop.topics_.reserve(expected_total);
  pop.languages_.reserve(expected_total);
  pop.published_at_scan_.reserve(expected_total);
  pop.daily_availability_.reserve(expected_total);
  pop.alive_at_crawl_.reserve(expected_total);
  pop.requests_per_2h_.reserve(expected_total);
  pop.paper_ranks_.reserve(expected_total);
  pop.physical_servers_.reserve(expected_total);

  const auto add_service = [&](ServiceClass klass,
                               crypto::KeyPair key) -> MutableRef {
    const ServiceId id = static_cast<ServiceId>(pop.keys_.size());
    const std::string onion = crypto::onion_address(
        crypto::permanent_id_from_fingerprint(key.fingerprint()));
    pop.keys_.push_back(std::move(key));
    pop.onions_.push_back(interner.intern(onion));
    pop.klasses_.push_back(klass);
    pop.labels_.push_back(empty_id);
    pop.aliases_.push_back(empty_id);
    pop.profiles_.emplace_back();
    pop.topics_.push_back(content::Topic::kOther);
    pop.languages_.push_back(content::Language::kEnglish);
    pop.published_at_scan_.push_back(1);
    pop.daily_availability_.push_back(rng.uniform(0.80, 0.94));
    pop.alive_at_crawl_.push_back(rng.bernoulli(0.95) ? 1 : 0);
    pop.requests_per_2h_.push_back(0.0);
    pop.paper_ranks_.push_back(0);
    pop.physical_servers_.push_back(-1);
    return MutableRef(&pop, id);
  };
  const auto add = [&](ServiceClass klass) -> MutableRef {
    return add_service(klass, crypto::KeyPair::generate(rng));
  };

  const auto page_words = [&] {
    return static_cast<int>(
        rng.uniform_int(config.page_words_min, config.page_words_max));
  };

  // Shared content distribution for a generic HTTP page; mirrors the
  // crawl funnel: ~40% stubs (<20 words), ~3% HTML error pages, the
  // rest real pages with paper-calibrated topic/language mixes. (The
  // stub/error rates are set so the *measured* Sec. IV funnel lands on
  // the paper's 2,348 / 73 exclusions after scan+crawl losses.)
  const auto fill_http_page = [&](MutableRef svc, std::uint16_t port,
                                  bool allow_stub = true) {
    const double roll = rng.uniform01();
    net::PortService service;
    service.protocol =
        port == net::kPortHttps ? net::Protocol::kHttps : net::Protocol::kHttp;
    if (allow_stub && roll < 0.40) {
      service.http = make_page_response(pages.generate_stub(rng), false);
    } else if (allow_stub && roll < 0.43) {
      service.http = make_page_response(
          std::string(content::html_error_page()), true);
    } else {
      svc.set_topic(sample_topic(rng));
      svc.set_language(sample_language(rng));
      service.http = make_page_response(
          pages.generate(svc.topic(), svc.language(), page_words(), rng),
          false);
    }
    svc.profile().listen(port, std::move(service));
  };

  // ---------------------------------------------------------------
  // 1. Pinned Table II services (always generated, at any scale).
  // ---------------------------------------------------------------
  int goldnet_group_toggle = 0;
  for (const PopularService& row : table2_rows()) {
    ServiceClass klass = ServiceClass::kNamed;
    const std::string label(row.label);
    if (label == "Goldnet" || label == "Unknown")
      klass = ServiceClass::kGoldnetCnC;
    else if (label == "Skynet")
      klass = ServiceClass::kSkynetCnC;
    else if (label == "BcMine")
      klass = ServiceClass::kBitcoinMiner;
    else if (label == "Adult")
      klass = ServiceClass::kWebSite;

    MutableRef svc = add(klass);
    svc.set_label(label);
    svc.set_paper_alias(row.paper_onion);
    svc.set_paper_rank(row.paper_rank);
    svc.set_requests_per_2h(static_cast<double>(row.requests_per_2h));
    svc.set_published_at_scan(true);
    svc.set_daily_availability(0.98);
    svc.set_alive_at_crawl(true);

    switch (klass) {
      case ServiceClass::kGoldnetCnC: {
        // Port 80 only; 503 errors; server-status exposed; two physical
        // servers distinguishable by identical Apache uptimes.
        svc.set_physical_server(goldnet_group_toggle++ % 2);
        net::PortService web;
        web.protocol = net::Protocol::kHttp;
        net::HttpResponse resp;
        resp.status = 503;
        resp.body = "503 service unavailable";
        resp.error_page = true;
        resp.server_status_page = true;
        resp.traffic_bytes_per_sec = 330.0 * 1024.0 + rng.uniform(-5e3, 5e3);
        resp.requests_per_sec = 10.0 + rng.uniform(-0.8, 0.8);
        resp.apache_uptime_seconds =
            svc.physical_server() == 0 ? 8123456 : 12345678;
        web.http = resp;
        svc.profile().listen(net::kPortHttp, std::move(web));
        break;
      }
      case ServiceClass::kSkynetCnC: {
        net::PortService irc;
        irc.protocol = net::Protocol::kIrc;
        irc.banner = ":skynet NOTICE AUTH :*** Looking up your hostname...";
        svc.profile().listen(net::kPortIrc, std::move(irc));
        svc.profile().set_abnormal_close(net::kPortSkynet);
        break;
      }
      case ServiceClass::kBitcoinMiner: {
        net::PortService pool;
        pool.protocol = net::Protocol::kBitcoinPool;
        pool.banner = "{\"id\":1,\"method\":\"mining.subscribe\"}";
        svc.profile().listen(3333, std::move(pool));
        break;
      }
      case ServiceClass::kWebSite: {  // pinned Adult sites
        svc.set_topic(content::Topic::kAdult);
        svc.set_language(content::Language::kEnglish);
        net::PortService web;
        web.protocol = net::Protocol::kHttp;
        web.http = make_page_response(
            pages.generate_english(content::Topic::kAdult, page_words(), rng),
            false);
        svc.profile().listen(net::kPortHttp, std::move(web));
        break;
      }
      default: {  // kNamed: pinned non-botnet services
        content::Topic topic = content::Topic::kOther;
        if (label == "SilkRoad" || label == "BlackMarketReloaded")
          topic = content::Topic::kDrugs;
        else if (label == "SilkRoadWiki" || label == "OnionBookmarks" ||
                 label == "TorDir")
          topic = content::Topic::kFaqsTutorials;
        else if (label == "DuckDuckGo")
          topic = content::Topic::kTechnology;
        else if (label == "FreedomHosting" || label == "TorHost")
          topic = content::Topic::kAnonymity;
        svc.set_topic(topic);
        svc.set_language(content::Language::kEnglish);
        net::PortService web;
        web.protocol = net::Protocol::kHttp;
        web.http = make_page_response(
            pages.generate_english(topic, page_words(), rng), false);
        svc.profile().listen(net::kPortHttp, std::move(web));
        break;
      }
    }
  }

  // "silkroa"-prefixed phishing/copycat addresses: the paper found 15.
  // Grinding a full 7-character prefix is ~2^35 hashes; we grind a
  // 3-character "sil" prefix (~2^15) to exercise the same key-grinding
  // machinery (documented substitution).
  {
    const int phishing = static_cast<int>(
        std::max<std::int64_t>(1, std::llround(15 * s)));
    for (int i = 0; i < phishing; ++i) {
      crypto::KeyPair key = crypto::KeyPair::generate(rng);
      while (true) {
        const auto onion = crypto::onion_address(
            crypto::permanent_id_from_fingerprint(key.fingerprint()));
        if (util::starts_with(onion, "sil")) break;
        key = crypto::KeyPair::generate(rng);
      }
      MutableRef svc = add_service(ServiceClass::kWebSite, std::move(key));
      svc.set_label("SilkroadPhishing");
      svc.set_topic(content::Topic::kCounterfeit);
      svc.set_language(content::Language::kEnglish);
      net::PortService web;
      web.protocol = net::Protocol::kHttp;
      web.http = make_page_response(
          pages.generate_english(content::Topic::kCounterfeit, page_words(),
                                 rng),
          false);
      svc.profile().listen(net::kPortHttp, std::move(web));
    }
  }

  // ---------------------------------------------------------------
  // 2. Skynet bots: no open ports, only the 55080 abnormal close.
  // ---------------------------------------------------------------
  for (std::int64_t i = 0, n = scaled(s, 13854); i < n; ++i) {
    MutableRef svc = add(ServiceClass::kSkynetBot);
    svc.set_label("Skynet");
    svc.profile().set_abnormal_close(net::kPortSkynet);
  }

  // ---------------------------------------------------------------
  // 3. Plain HTTP sites (port 80 only).
  // ---------------------------------------------------------------
  for (std::int64_t i = 0, n = scaled(s, 2661); i < n; ++i) {
    MutableRef svc = add(ServiceClass::kWebSite);
    fill_http_page(svc, net::kPortHttp);
  }

  // ---------------------------------------------------------------
  // 4. TorHost-hosted sites: 80 + 443 with the shared esjqyk CN cert;
  //    most serve identical content on both ports; many still show the
  //    hosting service's default page.
  // ---------------------------------------------------------------
  for (std::int64_t i = 0, n = scaled(s, 1168); i < n; ++i) {
    MutableRef svc = add(ServiceClass::kTorHostSite);
    svc.set_label("TorHostHosted");
    const bool default_page = rng.bernoulli(0.62);
    std::string body;
    if (default_page) {
      body = std::string(content::torhost_default_page());
      svc.set_topic(content::Topic::kOther);
      svc.set_language(content::Language::kEnglish);
    } else {
      svc.set_topic(sample_topic(rng));
      svc.set_language(sample_language(rng));
      body = pages.generate(svc.topic(), svc.language(), page_words(), rng);
    }
    net::PortService web;
    web.protocol = net::Protocol::kHttp;
    web.http = make_page_response(body, false);
    svc.profile().listen(net::kPortHttp, web);

    net::PortService tls;
    tls.protocol = net::Protocol::kHttps;
    const bool duplicate = rng.bernoulli(1108.0 / 1168.0);
    tls.http = make_page_response(
        duplicate ? body
                  : body + " secure area members only additional content",
        false);
    tls.certificate = torhost_certificate();
    svc.profile().listen(net::kPortHttps, std::move(tls));
  }

  // ---------------------------------------------------------------
  // 5. Independent HTTPS sites: 34/1225 of the paper's certificates
  //    carried public DNS names (deanonymising); the rest self-signed
  //    with matching or mismatching onion CNs.
  // ---------------------------------------------------------------
  {
    const std::int64_t n_public_dns = scaled(s, 34);
    const std::int64_t n_mismatch = scaled(s, 57);
    const std::int64_t n_match = scaled(s, 107);
    for (std::int64_t i = 0, n = n_public_dns + n_mismatch + n_match; i < n;
         ++i) {
      MutableRef svc = add(ServiceClass::kHttpsSite);
      svc.set_topic(sample_topic(rng));
      svc.set_language(sample_language(rng));
      const std::string body =
          pages.generate(svc.topic(), svc.language(), page_words(), rng);

      net::PortService web;
      web.protocol = net::Protocol::kHttp;
      web.http = make_page_response(body, false);
      svc.profile().listen(net::kPortHttp, web);

      net::PortService tls;
      tls.protocol = net::Protocol::kHttps;
      // Most independent HTTPS sites, like the TorHost ones, serve the
      // same document on both ports (the paper excluded 1,108 of 1,366
      // port-443 destinations as copies).
      tls.http = make_page_response(
          rng.bernoulli(0.70)
              ? body
              : body + " secure login area for registered members",
          false);
      net::TlsCertificate cert;
      if (i < n_public_dns) {
        cert.common_name =
            "host" + std::to_string(i) + ".example-clearnet.com";
        cert.self_signed = true;
        cert.matches_requested_host = false;
        svc.set_label("CertLeaksDns");
      } else if (i < n_public_dns + n_mismatch) {
        cert.common_name = "wrongservice" + std::to_string(i) + ".onion";
        cert.self_signed = true;
        cert.matches_requested_host = false;
      } else {
        cert.common_name = std::string(svc.onion()) + ".onion";
        cert.self_signed = true;
        cert.matches_requested_host = true;
      }
      tls.certificate = cert;
      svc.profile().listen(net::kPortHttps, std::move(tls));
    }
  }

  // ---------------------------------------------------------------
  // 6. SSH-only hosts.
  // ---------------------------------------------------------------
  for (std::int64_t i = 0, n = scaled(s, 1238); i < n; ++i) {
    MutableRef svc = add(ServiceClass::kSshHost);
    net::PortService ssh;
    ssh.protocol = net::Protocol::kSsh;
    ssh.banner = std::string(content::ssh_banner());
    svc.profile().listen(net::kPortSsh, std::move(ssh));
  }

  // ---------------------------------------------------------------
  // 7. TorChat / port-4050 / IRC clusters.
  // ---------------------------------------------------------------
  for (std::int64_t i = 0, n = scaled(s, 385); i < n; ++i) {
    MutableRef svc = add(ServiceClass::kTorChat);
    net::PortService chat;
    chat.protocol = net::Protocol::kTorChat;
    svc.profile().listen(net::kPortTorChat, std::move(chat));
  }
  for (std::int64_t i = 0, n = scaled(s, 138); i < n; ++i) {
    MutableRef svc = add(ServiceClass::kPort4050);
    net::PortService raw;
    raw.protocol = net::Protocol::kRawTcp;
    svc.profile().listen(net::kPort4050, std::move(raw));
  }
  for (std::int64_t i = 0, n = scaled(s, 113); i < n; ++i) {
    MutableRef svc = add(ServiceClass::kIrcServer);
    net::PortService irc;
    irc.protocol = net::Protocol::kIrc;
    irc.banner = ":server NOTICE AUTH :*** Found your hostname";
    svc.profile().listen(net::kPortIrc, std::move(irc));
  }

  // ---------------------------------------------------------------
  // 8. Rare-port services: ~495 unique port numbers in total; slightly
  //    over half of these destinations actually speak HTTP (Table I's
  //    "Other 451" + the four port-8080 sites).
  // ---------------------------------------------------------------
  {
    const std::int64_t n_other = scaled(s, 886);
    const std::int64_t n_8080 = std::max<std::int64_t>(1, std::llround(4 * s));
    // The paper saw 886 rare-port services spread over ~487 distinct port
    // numbers (495 minus the named ones), i.e. ~1.8 services per port;
    // draw from a bounded pool rather than the whole 16-bit space.
    const std::size_t pool_size = static_cast<std::size_t>(
        std::max<std::int64_t>(8, std::llround(560 * s)));
    std::vector<std::uint16_t> port_pool;
    while (port_pool.size() < pool_size) {
      const auto candidate =
          static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
      if (candidate == net::kPortSkynet || candidate == net::kPortTorChat ||
          candidate == net::kPort4050 || candidate == net::kPortHttpAlt)
        continue;
      port_pool.push_back(candidate);
    }
    for (std::int64_t i = 0; i < n_other; ++i) {
      MutableRef svc = add(ServiceClass::kOtherPort);
      std::uint16_t port;
      if (i < n_8080) {
        port = net::kPortHttpAlt;
      } else {
        port = port_pool[rng.index(port_pool.size())];
      }
      if (i < n_8080 || rng.bernoulli(0.55)) {
        fill_http_page(svc, port);
      } else {
        net::PortService raw;
        raw.protocol = net::Protocol::kRawTcp;
        svc.profile().listen(port, std::move(raw));
      }
    }
  }

  // ---------------------------------------------------------------
  // 9. Dark services (published descriptor, no open ports) + the
  //    addresses whose descriptors had already vanished by the scan.
  // ---------------------------------------------------------------
  const std::int64_t target_total = std::llround(39824 * s);
  const std::int64_t target_published = std::llround(24511 * s);
  const std::int64_t have = static_cast<std::int64_t>(pop.keys_.size());
  const std::int64_t dark =
      std::max<std::int64_t>(0, target_published - have);
  for (std::int64_t i = 0; i < dark; ++i) add(ServiceClass::kDark);
  const std::int64_t unpublished = std::max<std::int64_t>(
      0, target_total - static_cast<std::int64_t>(pop.keys_.size()));
  for (std::int64_t i = 0; i < unpublished; ++i) {
    MutableRef svc = add(ServiceClass::kUnpublished);
    svc.set_published_at_scan(false);
    svc.set_alive_at_crawl(false);
  }

  // ---------------------------------------------------------------
  // 10. Popularity tail: ~10% of published services are ever requested
  //     (3,140 resolved onions for 24,511 published). The pinned head
  //     already has rates; give a Zipf-decaying trickle to enough
  //     unpinned published services to hit the paper's resolved count.
  // ---------------------------------------------------------------
  {
    std::vector<std::size_t> candidates;
    for (std::size_t i = 0; i < pop.keys_.size(); ++i)
      if (pop.published_at_scan_[i] != 0 && pop.requests_per_2h_[i] == 0.0)
        candidates.push_back(i);
    rng.shuffle(candidates);
    const std::size_t want = static_cast<std::size_t>(
        std::max<std::int64_t>(0, std::llround((3140 - 36) * s)));
    const std::size_t tail = std::min(want, candidates.size());
    for (std::size_t rank = 0; rank < tail; ++rank) {
      // Two-regime decay fitted to Table II's deep rows: a moderately
      // flat shoulder (so ~150 unnamed services sit between the pinned
      // head and DuckDuckGo's 55 req/2h near paper-rank 157), then a
      // steeper power-law tail down to a couple of requests per window.
      const double r = static_cast<double>(rank + 1);
      const double rate = r <= 100.0 ? 400.0 / std::pow(r, 0.30)
                                     : 100.5 * std::pow(100.0 / r, 1.3);
      pop.requests_per_2h_[candidates[rank]] = std::max(2.5, rate);
    }
  }

  pop.by_onion_.reserve(pop.keys_.size());
  for (std::size_t i = 0; i < pop.onions_.size(); ++i)
    pop.by_onion_.emplace(interner.view(pop.onions_[i]),
                          static_cast<ServiceId>(i));
  return pop;
}

}  // namespace torsim::population
