#include "population/paper_constants.hpp"

namespace torsim::population {

const PaperConstants& paper() {
  static const PaperConstants constants;
  return constants;
}

const std::vector<PopularService>& table2_rows() {
  static const std::vector<PopularService> rows = {
      {"uecbcfgfofuwkcrd.onion", 13714, "Goldnet", 1},
      {"arloppepzch53w3i.onion", 11582, "Goldnet", 2},
      {"pomyeasfnmtn544p.onion", 11315, "Goldnet", 3},
      {"lqqciuwa5yzxewc3.onion", 7324, "Goldnet", 4},
      {"eqlbyxrpd2wdjeig.onion", 7183, "Goldnet", 5},
      {"onhiimfoqy4acjv4.onion", 6852, "Unknown", 6},
      {"saxtca3ktuhcyqx3.onion", 6528, "Goldnet", 7},
      {"qxc7mc24mj7m4e2o.onion", 4941, "Unknown", 8},
      {"mwjjmmahc4cjjlqp.onion", 3746, "BcMine", 9},
      {"mepogl2rljvj374e.onion", 3678, "Skynet", 10},
      {"m3hjrfh4hlqc6wyx.onion", 2573, "Adult", 11},
      {"ua4ttfm47jt32igm.onion", 1950, "Skynet", 12},
      {"opva2pilsncvtwmh.onion", 1863, "Adult", 13},
      {"nbo32el47o5clwzy.onion", 1665, "Adult", 14},
      {"firelol5skg6efgh.onion", 1631, "Adult", 15},
      {"niazgxzlrbpevgvq.onion", 1481, "Skynet", 16},
      {"owbm3sjqdnndmydf.onion", 1326, "Skynet", 17},
      {"silkroadvb5piz3r.onion", 1175, "SilkRoad", 18},
      {"candy4ci6id24qkm.onion", 1094, "Adult", 19},
      {"x3wyzqg6cfbqrwht.onion", 1021, "Skynet", 20},
      {"4njzp3wzi6leo772.onion", 942, "Skynet", 21},
      {"qdzjxwujdtxrjkrz.onion", 899, "Skynet", 22},
      {"6tkpktox73usm5vq.onion", 898, "Skynet", 23},
      {"kk2wajy64oip2abc.onion", 889, "Adult", 24},
      {"gpt2u5hhaqvmnwhr.onion", 781, "Skynet", 25},
      {"smouse2lbzrgeof4.onion", 746, "Unknown", 26},
      {"xqz3u5drneuzhaeo.onion", 694, "FreedomHosting", 27},
      {"f2ylgv2jochpzm4c.onion", 667, "Skynet", 28},
      {"kdq2y44aaas2axyz.onion", 585, "Adult", 29},
      {"4pms4sejqrrycxlq.onion", 542, "Adult", 30},
      {"dkn255hz262ypmii.onion", 453, "SilkRoadWiki", 34},
      {"dppmfxaacucguzpc.onion", 255, "TorDir", 47},
      {"5onwnspjvuk7cwvk.onion", 172, "BlackMarketReloaded", 62},
      {"3g2upl4pq6kufc4m.onion", 55, "DuckDuckGo", 157},
      {"x7yxqg5v4j6yzhti.onion", 30, "OnionBookmarks", 250},
      {"torhostg5s7pa2sn.onion", 10, "TorHost", 547},
  };
  return rows;
}

}  // namespace torsim::population
