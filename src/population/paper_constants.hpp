// Every number the paper publishes about the February 2013 hidden-service
// landscape, collected in one place. The population generator calibrates
// against these; the benches print measured-vs-paper columns from them;
// EXPERIMENTS.md is generated from the same source of truth.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace torsim::population {

struct PortCount {
  std::uint16_t port;
  std::int64_t count;
  std::string_view label;
};

struct PaperConstants {
  // --- Sec. I / III: harvest & port scan -----------------------------
  std::int64_t total_onions = 39824;          ///< harvested 4 Feb 2013
  std::int64_t descriptors_at_scan = 24511;   ///< reachable 14–21 Feb
  std::int64_t open_ports_total = 22007;
  double port_coverage = 0.87;
  std::int64_t unique_open_ports = 495;
  std::int64_t harvest_ec2_instances = 58;

  /// Fig. 1 (ports with count >= 50; the rest grouped as "other").
  std::vector<PortCount> fig1_ports = {
      {55080, 13854, "55080-Skynet"}, {80, 4027, "80-http"},
      {443, 1366, "443-https"},       {22, 1238, "22-ssh"},
      {11009, 385, "11009-TorChat"},  {4050, 138, "4050"},
      {6667, 113, "6667-irc"},        {0, 886, "other"}};

  // --- Sec. III: HTTPS certificates -----------------------------------
  std::int64_t certs_selfsigned_mismatch = 1225;
  std::int64_t certs_torhost_cn = 1168;  ///< CN = esjqyk2khizsy43i.onion
  std::int64_t certs_public_dns_cn = 34; ///< deanonymising certificates

  // --- Sec. IV: crawl & content (Table I, Fig. 2) ----------------------
  std::int64_t crawl_destinations = 8153;  ///< non-55080 open ports
  std::int64_t crawl_open = 7114;
  std::int64_t crawl_connected = 6579;
  /// Table I: onion addresses per port among connected destinations.
  std::vector<PortCount> table1 = {{80, 3741, "http"},
                                   {443, 1289, "https"},
                                   {22, 1094, "ssh-banner"},
                                   {8080, 4, "http-alt"},
                                   {0, 451, "other"}};
  std::int64_t excluded_short = 2348;
  std::int64_t excluded_ssh_banners = 1092;
  std::int64_t excluded_dup443 = 1108;
  std::int64_t excluded_error_pages = 73;
  std::int64_t classifiable = 3050;
  double english_share = 0.84;
  std::int64_t english_pages = 2618;
  std::int64_t torhost_default_pages = 805;
  std::int64_t classified_pages = 1813;
  std::int64_t languages_found = 17;

  // --- Sec. V: popularity (Table II) -----------------------------------
  std::int64_t total_requests = 1031176;
  std::int64_t unique_descriptor_ids = 29123;
  std::int64_t resolved_descriptor_ids = 6113;
  std::int64_t resolved_onions = 3140;
  double nonexistent_request_share = 0.80;
  double published_ever_requested_share = 0.10;

  // --- Sec. VII: consensus (for tracking detection) --------------------
  std::int64_t hsdirs_2011_feb = 757;
  std::int64_t hsdirs_2013_oct = 1862;
};

/// Canonical instance.
const PaperConstants& paper();

/// One pinned row of Table II (the popularity ranking head and the
/// named services deeper in the ranking).
struct PopularService {
  std::string_view paper_onion;  ///< address as printed in Table II
  std::int64_t requests_per_2h;
  std::string_view label;        ///< Goldnet / Skynet / SilkRoad / ...
  int paper_rank;
};

/// All Table II rows the paper prints (head ranks 1..30 plus the named
/// tail entries 34, 47, 62, 157, 250, 547).
const std::vector<PopularService>& table2_rows();

}  // namespace torsim::population
