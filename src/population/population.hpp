// The synthetic hidden-service population.
//
// The paper measured ~40k real services operated by strangers; we cannot
// re-crawl 2013's Tor, so we synthesize a population whose *observable
// surface* (ports, TLS certificates, page content, popularity, uptime
// behaviour) is calibrated to the marginals the paper publishes, then run
// the paper's measurement pipelines against it. `scale` shrinks the
// population proportionally for tests (pinned head services are always
// generated).
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "content/page_generator.hpp"
#include "content/topics.hpp"
#include "crypto/digest.hpp"
#include "crypto/keypair.hpp"
#include "net/service.hpp"
#include "population/paper_constants.hpp"
#include "util/rng.hpp"

namespace torsim::population {

/// Behavioural class of a synthetic hidden service.
enum class ServiceClass {
  kSkynetBot,       ///< infected machine: only the 55080 abnormal-close
  kSkynetCnC,       ///< Skynet command & control (popular, port 80)
  kGoldnetCnC,      ///< the "Goldnet" botnet the paper discovered (503s)
  kBitcoinMiner,    ///< Skynet bitcoin pooling server ("BcMine")
  kWebSite,         ///< generic HTTP site (port 80, maybe 443)
  kTorHostSite,     ///< hosted on TorHost (80+443, esjqyk CN cert)
  kHttpsSite,       ///< independent HTTPS site
  kSshHost,         ///< port 22 only
  kTorChat,         ///< port 11009
  kIrcServer,       ///< port 6667
  kPort4050,        ///< the unexplained port-4050 cluster
  kOtherPort,       ///< one of the ~487 rare ports
  kNamed,           ///< pinned Table II services (SilkRoad, DuckDuckGo, …)
  kDark,            ///< published but no open ports
  kUnpublished,     ///< harvested address whose descriptor was gone
};

const char* to_string(ServiceClass klass);

/// One synthetic hidden service.
struct ServiceRecord {
  std::size_t index = 0;
  crypto::KeyPair key;
  std::string onion;            ///< 16-char base32 (derived from key)
  ServiceClass klass = ServiceClass::kDark;
  std::string label;            ///< "Goldnet", "SilkRoad", "" for generic
  std::string paper_alias;      ///< Table II address this service stands for
  net::ServiceProfile profile;
  content::Topic topic = content::Topic::kOther;
  content::Language language = content::Language::kEnglish;

  /// Descriptor published during the 14–21 Feb scan window.
  bool published_at_scan = true;
  /// Probability the host answers on a given scan day (captures the
  /// churn that limited the paper to 87% port coverage).
  double daily_availability = 0.95;
  /// Still alive at the crawl two months later.
  bool alive_at_crawl = true;
  /// Expected descriptor fetches per 2-hour window (Table II scale);
  /// 0 for the ~90% of published services nobody ever asked for.
  double requests_per_2h = 0.0;
  /// Ground-truth Table II rank for pinned services (0 = unpinned).
  int paper_rank = 0;
  /// Goldnet physical-server grouping (Apache uptime fingerprinting);
  /// -1 for services that are not Goldnet fronts.
  int physical_server = -1;

  explicit ServiceRecord(crypto::KeyPair k) : key(std::move(k)) {}
};

struct PopulationConfig {
  std::uint64_t seed = 42;
  /// 1.0 reproduces the paper's full 39,824-service landscape; tests use
  /// smaller scales. Pinned head services are generated at any scale.
  double scale = 1.0;
  /// Words per generated page (min/max).
  int page_words_min = 60;
  int page_words_max = 260;
};

class Population {
 public:
  /// Generates the full calibrated population.
  static Population generate(const PopulationConfig& config);

  const std::vector<ServiceRecord>& services() const { return services_; }
  std::vector<ServiceRecord>& services() { return services_; }

  std::size_t size() const { return services_.size(); }

  /// Lookup by onion address (nullptr if unknown).
  const ServiceRecord* find(const std::string& onion) const;

  /// All services of a class.
  std::vector<const ServiceRecord*> of_class(ServiceClass klass) const;

  /// Count of services whose descriptor is published at scan time.
  std::size_t published_count() const;

  const PopulationConfig& config() const { return config_; }

 private:
  explicit Population(PopulationConfig config) : config_(config) {}

  PopulationConfig config_;
  std::vector<ServiceRecord> services_;
  /// Lookup-only index (never iterated): hash map is safe and fast.
  std::unordered_map<std::string, std::size_t> by_onion_;
};

}  // namespace torsim::population
