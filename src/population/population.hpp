// The synthetic hidden-service population.
//
// The paper measured ~40k real services operated by strangers; we cannot
// re-crawl 2013's Tor, so we synthesize a population whose *observable
// surface* (ports, TLS certificates, page content, popularity, uptime
// behaviour) is calibrated to the marginals the paper publishes, then run
// the paper's measurement pipelines against it. `scale` shrinks the
// population proportionally for tests (pinned head services are always
// generated).
//
// Storage is structure-of-arrays (ROADMAP item 3, docs/data-layout.md):
// one column per field, addressed by dense ServiceId. Identity is the
// index — stable for the population's lifetime and across copies/moves —
// never a pointer or an owning string. Onion addresses, labels, and
// paper aliases live in util::global_interner(); the columns carry
// 4-byte intern ids and the facade hands out string_views at the edges.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "content/page_generator.hpp"
#include "content/topics.hpp"
#include "crypto/digest.hpp"
#include "crypto/keypair.hpp"
#include "net/service.hpp"
#include "population/paper_constants.hpp"
#include "util/interner.hpp"
#include "util/rng.hpp"

namespace torsim::population {

/// Behavioural class of a synthetic hidden service.
enum class ServiceClass : std::uint8_t {
  kSkynetBot,       ///< infected machine: only the 55080 abnormal-close
  kSkynetCnC,       ///< Skynet command & control (popular, port 80)
  kGoldnetCnC,      ///< the "Goldnet" botnet the paper discovered (503s)
  kBitcoinMiner,    ///< Skynet bitcoin pooling server ("BcMine")
  kWebSite,         ///< generic HTTP site (port 80, maybe 443)
  kTorHostSite,     ///< hosted on TorHost (80+443, esjqyk CN cert)
  kHttpsSite,       ///< independent HTTPS site
  kSshHost,         ///< port 22 only
  kTorChat,         ///< port 11009
  kIrcServer,       ///< port 6667
  kPort4050,        ///< the unexplained port-4050 cluster
  kOtherPort,       ///< one of the ~487 rare ports
  kNamed,           ///< pinned Table II services (SilkRoad, DuckDuckGo, …)
  kDark,            ///< published but no open ports
  kUnpublished,     ///< harvested address whose descriptor was gone
};

const char* to_string(ServiceClass klass);

/// Dense index of one service in its Population — the stable identity
/// every pipeline joins on (pointer/string identity is gone with the
/// SoA layout).
using ServiceId = std::uint32_t;

struct PopulationConfig {
  std::uint64_t seed = 42;
  /// 1.0 reproduces the paper's full 39,824-service landscape; tests use
  /// smaller scales. Pinned head services are generated at any scale.
  double scale = 1.0;
  /// Words per generated page (min/max).
  int page_words_min = 60;
  int page_words_max = 260;
};

class Population {
 public:
  /// Read-only view of one service: a (population, id) handle whose
  /// accessors read the SoA columns. Copy it freely; it stays valid (and
  /// keeps denoting the same service) for the population's lifetime.
  class ServiceRef {
   public:
    ServiceId index() const { return id_; }
    const crypto::KeyPair& key() const { return pop_->keys_[id_]; }
    /// 16-char base32 (derived from key); view into the intern table.
    std::string_view onion() const { return pop_->onion(id_); }
    ServiceClass klass() const { return pop_->klasses_[id_]; }
    /// "Goldnet", "SilkRoad", "" for generic.
    std::string_view label() const { return pop_->label(id_); }
    /// Table II address this service stands for.
    std::string_view paper_alias() const { return pop_->paper_alias(id_); }
    const net::ServiceProfile& profile() const { return pop_->profiles_[id_]; }
    content::Topic topic() const { return pop_->topics_[id_]; }
    content::Language language() const { return pop_->languages_[id_]; }
    /// Descriptor published during the 14–21 Feb scan window.
    bool published_at_scan() const {
      return pop_->published_at_scan_[id_] != 0;
    }
    /// Probability the host answers on a given scan day (captures the
    /// churn that limited the paper to 87% port coverage).
    double daily_availability() const {
      return pop_->daily_availability_[id_];
    }
    /// Still alive at the crawl two months later.
    bool alive_at_crawl() const { return pop_->alive_at_crawl_[id_] != 0; }
    /// Expected descriptor fetches per 2-hour window (Table II scale);
    /// 0 for the ~90% of published services nobody ever asked for.
    double requests_per_2h() const { return pop_->requests_per_2h_[id_]; }
    /// Ground-truth Table II rank for pinned services (0 = unpinned).
    int paper_rank() const { return pop_->paper_ranks_[id_]; }
    /// Goldnet physical-server grouping (Apache uptime fingerprinting);
    /// -1 for services that are not Goldnet fronts.
    int physical_server() const { return pop_->physical_servers_[id_]; }

    /// Lets std::optional<ServiceRef> callers keep the svc-> spelling.
    const ServiceRef* operator->() const { return this; }

   private:
    friend class Population;
    ServiceRef(const Population* pop, ServiceId id) : pop_(pop), id_(id) {}
    const Population* pop_;
    ServiceId id_;
  };

  /// Forward range over every service, in id order.
  class ServiceRange {
   public:
    class iterator {
     public:
      ServiceRef operator*() const { return ServiceRef(pop_, id_); }
      iterator& operator++() {
        ++id_;
        return *this;
      }
      bool operator!=(const iterator& other) const { return id_ != other.id_; }

     private:
      friend class ServiceRange;
      iterator(const Population* pop, ServiceId id) : pop_(pop), id_(id) {}
      const Population* pop_;
      ServiceId id_;
    };
    iterator begin() const { return {pop_, 0}; }
    iterator end() const { return {pop_, static_cast<ServiceId>(pop_->size())}; }

   private:
    friend class Population;
    explicit ServiceRange(const Population* pop) : pop_(pop) {}
    const Population* pop_;
  };

  /// Generates the full calibrated population.
  static Population generate(const PopulationConfig& config);

  ServiceRange services() const { return ServiceRange(this); }

  ServiceRef service(ServiceId id) const { return ServiceRef(this, id); }

  std::size_t size() const { return keys_.size(); }

  /// Lookup by onion address (nullopt if unknown).
  std::optional<ServiceRef> find(std::string_view onion) const;

  /// Ids of all services of a class, ascending.
  std::vector<ServiceId> of_class(ServiceClass klass) const;

  /// Count of services whose descriptor is published at scan time.
  std::size_t published_count() const;

  /// Direct column reads for hot loops that already hold an id.
  std::string_view onion(ServiceId id) const {
    return util::global_interner().view(onions_[id]);
  }
  std::string_view label(ServiceId id) const {
    return util::global_interner().view(labels_[id]);
  }
  std::string_view paper_alias(ServiceId id) const {
    return util::global_interner().view(aliases_[id]);
  }

  /// The one sanctioned post-build mutation (test harnesses zero the
  /// popularity column to isolate phantom traffic).
  void set_requests_per_2h(ServiceId id, double value) {
    requests_per_2h_[id] = value;
  }

  const PopulationConfig& config() const { return config_; }

  /// Deterministic byte accounting for the BENCH JSON "population"
  /// section (bench_population): column footprints are exact; the
  /// interner share reports the whole global table.
  struct MemoryFootprint {
    std::size_t services = 0;
    /// Sum of column capacities (keys/profiles counted as slots only;
    /// their heap payloads are layout-independent and excluded).
    std::size_t column_bytes = 0;
    /// by_onion_ lookup index estimate.
    std::size_t index_bytes = 0;
    /// util::global_interner().bytes() at sampling time.
    std::size_t interner_bytes = 0;
    /// What the same records cost in the legacy array-of-structs layout
    /// (per-record struct slots; same exclusions as column_bytes).
    std::size_t legacy_record_bytes = 0;
  };
  MemoryFootprint memory_footprint() const;

 private:
  explicit Population(PopulationConfig config) : config_(config) {}

  /// Build-time handle used by generate(): setters write the columns
  /// through the population pointer, so column growth/reallocation
  /// never dangles (no references into vectors are held anywhere).
  class MutableRef;

  PopulationConfig config_;
  // One column per legacy ServiceRecord field, indexed by ServiceId.
  std::vector<crypto::KeyPair> keys_;
  std::vector<util::StringInterner::Id> onions_;
  std::vector<ServiceClass> klasses_;
  std::vector<util::StringInterner::Id> labels_;
  std::vector<util::StringInterner::Id> aliases_;
  std::vector<net::ServiceProfile> profiles_;
  std::vector<content::Topic> topics_;
  std::vector<content::Language> languages_;
  std::vector<std::uint8_t> published_at_scan_;
  std::vector<double> daily_availability_;
  std::vector<std::uint8_t> alive_at_crawl_;
  std::vector<double> requests_per_2h_;
  std::vector<std::int32_t> paper_ranks_;
  std::vector<std::int32_t> physical_servers_;
  /// Lookup-only index (never iterated): hash map is safe and fast.
  /// Keys are interner views, stable for the process lifetime.
  std::unordered_map<std::string_view, ServiceId> by_onion_;
};

}  // namespace torsim::population
