// The scenario DSL: a versioned text format that scripts multi-month
// network evolution — relay churn storms, a botnet takedown mid-run,
// v2->v3 onion-service migration waves, popularity flash-crowds,
// adversarial HSDir flooding, and authority outages — as timed event
// blocks over the deterministic sim::World substrate. The paper is a
// snapshot of early-2013 Tor; the related longitudinal work (Snorkeling,
// Dizzy) tracks services over years, and a ScenarioPack is the scripted,
// regression-tested version of exactly that kind of history.
//
// Format (one pack; parsed like dirspec, strict line-numbered errors):
//
//   torsim-scenario-version 1
//   name churn-storm
//   title Relay churn storm over a simulated month
//   seed 20130204
//   start 2013-02-01 00:00:00
//   relays 150
//   services 30
//   horizon-hours 720
//   sample-every-hours 24
//   faults drop=0.01,timeout=0.03        (optional; FaultPlan::parse)
//   at +48h churn-storm
//     hours 24
//     down 0.20
//     up 0.05
//   end
//   ...
//   scenario-end
//
// Header directives appear in exactly the order above. Event blocks are
// ordered by offset (non-decreasing); two blocks with the same offset
// and kind are rejected as duplicates. `#` comment lines and blank
// lines are ignored everywhere; render_pack() emits the canonical form
// (no comments), and parse(render(pack)) == pack holds for every valid
// pack (the round-trip property the DSL tests pin).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace torsim::scenario {

/// What a timed event block does to the world. Parameter validity is
/// enforced at parse time, so an engine never sees a half-formed event.
enum class EventKind {
  kChurnStorm,      ///< churn-storm: override churn rates for `hours`
  kTakedown,        ///< takedown: force `services` offline (botnet seizure)
  kMigrationWave,   ///< migration-wave: retire v2 services, spawn successors
  kFlashCrowd,      ///< flash-crowd: burst of client fetches for one service
  kHsdirFlood,      ///< hsdir-flood: adversary injects HSDir-bound relays
  kAuthorityOutage, ///< authority-outage: no consensus rebuilds for `hours`
  kFaultWindow,     ///< fault-window: swap in a fault plan for `hours`
  kRelayJoin,       ///< relay-join: honest relays join the network
  kAddServices,     ///< add-services: new hidden services appear
};

/// Canonical keyword for an event kind ("churn-storm", ...).
std::string_view event_kind_name(EventKind kind);

/// Inverse of event_kind_name; throws std::invalid_argument.
EventKind event_kind_from_name(std::string_view name);

/// One timed event block. Only the fields meaningful for `kind` are
/// rendered/parsed; the rest stay at their defaults so default equality
/// works for the round-trip property.
struct ScenarioEvent {
  int at_hours = 0;  ///< offset from pack start, in hours
  EventKind kind = EventKind::kChurnStorm;

  int hours = 0;            ///< churn-storm / authority-outage / fault-window
  double down = 0.0;        ///< churn-storm: hourly down probability
  double up = 0.0;          ///< churn-storm: hourly up probability
  int services = 0;         ///< takedown / migration-wave: how many
  int first = 0;            ///< takedown / migration-wave: first index
  int clients = 0;          ///< flash-crowd: client count
  int fetches = 1;          ///< flash-crowd: fetches per client
  int service = 0;          ///< flash-crowd: target service index
  int relays = 0;           ///< hsdir-flood / relay-join: relay count
  double bandwidth = 500.0; ///< hsdir-flood / relay-join: per-relay kbps
  int count = 0;            ///< add-services: how many
  std::string fault_spec;   ///< fault-window: FaultPlan::parse spec

  bool operator==(const ScenarioEvent&) const = default;
};

/// A parsed scenario pack: the fixed header plus the ordered event list.
struct ScenarioPack {
  int version = 1;
  std::string name;   ///< slug: [a-z0-9-]+
  std::string title;  ///< free-form one-liner
  std::uint64_t seed = 1;
  util::UnixTime start = 0;
  int relays = 0;
  int services = 0;
  int horizon_hours = 0;
  int sample_every_hours = 1;
  /// Baseline fault plan spec ("" = none); validated by FaultPlan::parse
  /// at pack-parse time and re-emitted verbatim by render_pack.
  std::string fault_spec;
  std::vector<ScenarioEvent> events;

  bool operator==(const ScenarioPack&) const = default;
};

/// Parses a pack. Throws std::invalid_argument with a message of the
/// form "scenario parse error at line N: ..." on any violation:
/// missing/reordered header directives, unknown event kinds or
/// parameters, out-of-range values, unordered or duplicate event
/// blocks, events beyond the horizon, or a missing scenario-end footer.
ScenarioPack parse_pack(std::string_view text);

/// Renders the canonical text form (the exact bytes parse_pack accepts;
/// parse_pack(render_pack(p)) == p for every valid pack).
std::string render_pack(const ScenarioPack& pack);

/// Validates a fully-built pack (used by parse_pack and by tests that
/// construct packs programmatically). Throws std::invalid_argument.
void validate_pack(const ScenarioPack& pack);

/// Sorted base names (no ".scn") of every pack file directly under
/// `directory` (subdirectories like golden/ and testdata/ are not
/// descended into). Throws std::runtime_error if the directory cannot
/// be read.
std::vector<std::string> list_packs(const std::string& directory);

/// Reads and parses `<directory>/<name>.scn`.
ScenarioPack load_pack(const std::string& directory, const std::string& name);

/// Reads and parses one pack file. Throws std::runtime_error when the
/// file cannot be read (distinct from parse errors, so the CLI can map
/// I/O and syntax failures to the right message).
ScenarioPack load_pack_file(const std::string& path);

}  // namespace torsim::scenario
