#include "scenario/pack.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "fault/plan.hpp"
#include "util/strings.hpp"

namespace torsim::scenario {
namespace {

constexpr std::string_view kVersionLine = "torsim-scenario-version 1";
constexpr std::string_view kFooterLine = "scenario-end";
constexpr std::string_view kEventEnd = "end";

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::invalid_argument("scenario parse error at line " +
                              std::to_string(line_no + 1) + ": " + message);
}

bool is_slug(std::string_view text) {
  if (text.empty()) return false;
  for (const char c : text)
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-'))
      return false;
  return true;
}

std::int64_t parse_int(std::string_view value, std::size_t line_no,
                       const std::string& what) {
  std::size_t consumed = 0;
  std::int64_t parsed = 0;
  try {
    parsed = std::stoll(std::string(value), &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != value.size() || value.empty())
    fail(line_no, what + " must be an integer, got '" + std::string(value) +
                      "'");
  return parsed;
}

std::uint64_t parse_u64(std::string_view value, std::size_t line_no,
                        const std::string& what) {
  std::size_t consumed = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(std::string(value), &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != value.size() || value.empty() || value.front() == '-')
    fail(line_no, what + " must be a non-negative integer, got '" +
                      std::string(value) + "'");
  return parsed;
}

double parse_double(std::string_view value, std::size_t line_no,
                    const std::string& what) {
  std::size_t consumed = 0;
  double parsed = 0;
  try {
    parsed = std::stod(std::string(value), &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != value.size() || value.empty())
    fail(line_no, what + " must be a number, got '" + std::string(value) +
                      "'");
  return parsed;
}

/// "%.17g" round-trips every finite double exactly, so rendered packs
/// re-parse to bit-identical values (the round-trip property).
std::string render_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

void check_fault_spec(const std::string& spec, std::size_t line_no) {
  try {
    (void)fault::FaultPlan::parse(spec);
  } catch (const std::exception& error) {
    // FaultPlan::parse can surface std::out_of_range from numeric
    // conversion; normalize to one parse-error type.
    fail(line_no, std::string("bad fault spec: ") + error.what());
  }
}

}  // namespace

std::string_view event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kChurnStorm: return "churn-storm";
    case EventKind::kTakedown: return "takedown";
    case EventKind::kMigrationWave: return "migration-wave";
    case EventKind::kFlashCrowd: return "flash-crowd";
    case EventKind::kHsdirFlood: return "hsdir-flood";
    case EventKind::kAuthorityOutage: return "authority-outage";
    case EventKind::kFaultWindow: return "fault-window";
    case EventKind::kRelayJoin: return "relay-join";
    case EventKind::kAddServices: return "add-services";
  }
  return "unknown";
}

EventKind event_kind_from_name(std::string_view name) {
  if (name == "churn-storm") return EventKind::kChurnStorm;
  if (name == "takedown") return EventKind::kTakedown;
  if (name == "migration-wave") return EventKind::kMigrationWave;
  if (name == "flash-crowd") return EventKind::kFlashCrowd;
  if (name == "hsdir-flood") return EventKind::kHsdirFlood;
  if (name == "authority-outage") return EventKind::kAuthorityOutage;
  if (name == "fault-window") return EventKind::kFaultWindow;
  if (name == "relay-join") return EventKind::kRelayJoin;
  if (name == "add-services") return EventKind::kAddServices;
  throw std::invalid_argument("unknown event kind '" + std::string(name) +
                              "'");
}

namespace {

/// Applies one "key value" parameter line to `event`, enforcing that the
/// key is meaningful for the event's kind.
void apply_event_param(ScenarioEvent& event, std::string_view key,
                       std::string_view value, std::size_t line_no) {
  const EventKind k = event.kind;
  const auto reject = [&] {
    fail(line_no, "parameter '" + std::string(key) + "' not valid for " +
                      std::string(event_kind_name(k)));
  };
  if (key == "hours") {
    if (k != EventKind::kChurnStorm && k != EventKind::kAuthorityOutage &&
        k != EventKind::kFaultWindow)
      reject();
    event.hours = static_cast<int>(parse_int(value, line_no, "hours"));
  } else if (key == "down") {
    if (k != EventKind::kChurnStorm) reject();
    event.down = parse_double(value, line_no, "down");
  } else if (key == "up") {
    if (k != EventKind::kChurnStorm) reject();
    event.up = parse_double(value, line_no, "up");
  } else if (key == "services") {
    if (k != EventKind::kTakedown && k != EventKind::kMigrationWave) reject();
    event.services = static_cast<int>(parse_int(value, line_no, "services"));
  } else if (key == "first") {
    if (k != EventKind::kTakedown && k != EventKind::kMigrationWave) reject();
    event.first = static_cast<int>(parse_int(value, line_no, "first"));
  } else if (key == "clients") {
    if (k != EventKind::kFlashCrowd) reject();
    event.clients = static_cast<int>(parse_int(value, line_no, "clients"));
  } else if (key == "fetches") {
    if (k != EventKind::kFlashCrowd) reject();
    event.fetches = static_cast<int>(parse_int(value, line_no, "fetches"));
  } else if (key == "service") {
    if (k != EventKind::kFlashCrowd) reject();
    event.service = static_cast<int>(parse_int(value, line_no, "service"));
  } else if (key == "relays") {
    if (k != EventKind::kHsdirFlood && k != EventKind::kRelayJoin) reject();
    event.relays = static_cast<int>(parse_int(value, line_no, "relays"));
  } else if (key == "bandwidth") {
    if (k != EventKind::kHsdirFlood && k != EventKind::kRelayJoin) reject();
    event.bandwidth = parse_double(value, line_no, "bandwidth");
  } else if (key == "count") {
    if (k != EventKind::kAddServices) reject();
    event.count = static_cast<int>(parse_int(value, line_no, "count"));
  } else if (key == "faults") {
    if (k != EventKind::kFaultWindow) reject();
    event.fault_spec = std::string(value);
    check_fault_spec(event.fault_spec, line_no);
  } else {
    fail(line_no, "unknown event parameter '" + std::string(key) + "'");
  }
}

void validate_event(const ScenarioEvent& event, std::size_t line_no) {
  const auto need = [&](bool ok, const std::string& what) {
    if (!ok)
      fail(line_no, std::string(event_kind_name(event.kind)) + ": " + what);
  };
  need(event.at_hours >= 0, "offset must be >= 0");
  switch (event.kind) {
    case EventKind::kChurnStorm:
      need(event.hours > 0, "hours must be > 0");
      need(event.down >= 0.0 && event.down <= 1.0, "down must be in [0,1]");
      need(event.up >= 0.0 && event.up <= 1.0, "up must be in [0,1]");
      break;
    case EventKind::kTakedown:
    case EventKind::kMigrationWave:
      need(event.services > 0, "services must be > 0");
      need(event.first >= 0, "first must be >= 0");
      break;
    case EventKind::kFlashCrowd:
      need(event.clients > 0, "clients must be > 0");
      need(event.fetches > 0, "fetches must be > 0");
      need(event.service >= 0, "service must be >= 0");
      break;
    case EventKind::kHsdirFlood:
    case EventKind::kRelayJoin:
      need(event.relays > 0, "relays must be > 0");
      need(event.bandwidth > 0.0, "bandwidth must be > 0");
      break;
    case EventKind::kAuthorityOutage:
      need(event.hours > 0, "hours must be > 0");
      break;
    case EventKind::kFaultWindow:
      need(event.hours > 0, "hours must be > 0");
      need(!event.fault_spec.empty(), "faults spec is required");
      break;
    case EventKind::kAddServices:
      need(event.count > 0, "count must be > 0");
      break;
  }
}

/// Lines of `text` with index tracking; blank and '#' comment lines are
/// skipped by next().
class LineCursor {
 public:
  explicit LineCursor(std::string_view text)
      : lines_(util::split(text, '\n')) {}

  /// Advances to the next content line; false at end of input.
  bool next() {
    while (next_ < lines_.size()) {
      current_ = next_++;
      const std::string_view line = util::trim(lines_[current_]);
      if (!line.empty() && line[0] != '#') return true;
    }
    current_ = next_;
    return false;
  }

  std::string_view line() const { return util::trim(lines_[current_]); }
  std::size_t line_no() const { return current_; }

 private:
  std::vector<std::string> lines_;
  std::size_t next_ = 0;
  std::size_t current_ = 0;
};

/// Requires the current line to be "<directive> <value>"; returns value.
std::string_view directive_value(const LineCursor& cursor,
                                 std::string_view directive) {
  const std::string_view line = cursor.line();
  const std::string prefix = std::string(directive) + " ";
  if (!util::starts_with(line, prefix))
    fail(cursor.line_no(),
         "expected '" + std::string(directive) + " <value>', got '" +
             std::string(line) + "'");
  return util::trim(line.substr(prefix.size()));
}

}  // namespace

void validate_pack(const ScenarioPack& pack) {
  const auto need = [](bool ok, const std::string& what) {
    if (!ok) throw std::invalid_argument("scenario pack invalid: " + what);
  };
  need(pack.version == 1, "version must be 1");
  need(is_slug(pack.name), "name must be a [a-z0-9-]+ slug");
  need(!pack.title.empty(), "title is required");
  need(pack.relays > 0, "relays must be > 0");
  need(pack.services >= 0, "services must be >= 0");
  need(pack.horizon_hours > 0, "horizon-hours must be > 0");
  need(pack.sample_every_hours > 0, "sample-every-hours must be > 0");
  if (!pack.fault_spec.empty()) {
    try {
      (void)fault::FaultPlan::parse(pack.fault_spec);
    } catch (const std::exception& error) {
      throw std::invalid_argument(
          std::string("scenario pack invalid: bad fault spec: ") +
          error.what());
    }
  }
  int previous = 0;
  for (std::size_t i = 0; i < pack.events.size(); ++i) {
    const ScenarioEvent& event = pack.events[i];
    validate_event(event, 0);
    if (event.at_hours < previous)
      throw std::invalid_argument(
          "scenario pack invalid: event at +" +
          std::to_string(event.at_hours) + "h out of order (previous +" +
          std::to_string(previous) + "h)");
    previous = event.at_hours;
    if (event.at_hours >= pack.horizon_hours)
      throw std::invalid_argument(
          "scenario pack invalid: event at +" +
          std::to_string(event.at_hours) + "h is beyond the horizon (" +
          std::to_string(pack.horizon_hours) + "h)");
    for (std::size_t j = 0; j < i; ++j)
      if (pack.events[j].at_hours == event.at_hours &&
          pack.events[j].kind == event.kind)
        throw std::invalid_argument(
            "scenario pack invalid: duplicate event " +
            std::string(event_kind_name(event.kind)) + " at +" +
            std::to_string(event.at_hours) + "h");
  }
}

ScenarioPack parse_pack(std::string_view text) {
  LineCursor cursor(text);
  const auto advance = [&](const std::string& expected) {
    if (!cursor.next())
      fail(cursor.line_no(), "unexpected end of pack (expected " + expected +
                                 ")");
  };

  advance("version line");
  if (cursor.line() != kVersionLine)
    fail(cursor.line_no(), "expected version line '" +
                               std::string(kVersionLine) + "', got '" +
                               std::string(cursor.line()) + "'");

  ScenarioPack pack;
  advance("name");
  pack.name = std::string(directive_value(cursor, "name"));
  if (!is_slug(pack.name))
    fail(cursor.line_no(), "name must be a [a-z0-9-]+ slug, got '" +
                               pack.name + "'");
  advance("title");
  pack.title = std::string(directive_value(cursor, "title"));
  advance("seed");
  pack.seed = parse_u64(directive_value(cursor, "seed"), cursor.line_no(),
                        "seed");
  advance("start");
  try {
    pack.start = util::parse_utc(directive_value(cursor, "start"));
  } catch (const std::exception& error) {
    // parse_utc throws out_of_range for bad field values; normalize so
    // every parse failure surfaces as one exception type.
    fail(cursor.line_no(), std::string("bad start time: ") + error.what());
  }
  advance("relays");
  pack.relays = static_cast<int>(parse_int(directive_value(cursor, "relays"),
                                           cursor.line_no(), "relays"));
  if (pack.relays <= 0) fail(cursor.line_no(), "relays must be > 0");
  advance("services");
  pack.services = static_cast<int>(parse_int(
      directive_value(cursor, "services"), cursor.line_no(), "services"));
  if (pack.services < 0) fail(cursor.line_no(), "services must be >= 0");
  advance("horizon-hours");
  pack.horizon_hours =
      static_cast<int>(parse_int(directive_value(cursor, "horizon-hours"),
                                 cursor.line_no(), "horizon-hours"));
  if (pack.horizon_hours <= 0)
    fail(cursor.line_no(), "horizon-hours must be > 0");
  advance("sample-every-hours");
  pack.sample_every_hours =
      static_cast<int>(parse_int(directive_value(cursor, "sample-every-hours"),
                                 cursor.line_no(), "sample-every-hours"));
  if (pack.sample_every_hours <= 0)
    fail(cursor.line_no(), "sample-every-hours must be > 0");

  advance("faults, an event block, or scenario-end");
  if (util::starts_with(cursor.line(), "faults ")) {
    pack.fault_spec = std::string(directive_value(cursor, "faults"));
    check_fault_spec(pack.fault_spec, cursor.line_no());
    advance("an event block or scenario-end");
  }

  // --- event blocks --------------------------------------------------
  int previous_offset = 0;
  while (cursor.line() != kFooterLine) {
    const std::string_view header = cursor.line();
    const std::size_t header_line = cursor.line_no();
    if (!util::starts_with(header, "at "))
      fail(header_line, "expected 'at +<hours>h <kind>' or '" +
                            std::string(kFooterLine) + "', got '" +
                            std::string(header) + "'");
    const auto fields = util::split(header.substr(3), ' ');
    if (fields.size() != 2)
      fail(header_line, "event header needs exactly '+<hours>h <kind>'");
    const std::string& offset = fields[0];
    if (offset.size() < 3 || offset.front() != '+' || offset.back() != 'h')
      fail(header_line, "event offset must look like +<hours>h, got '" +
                            offset + "'");
    ScenarioEvent event;
    event.at_hours = static_cast<int>(parse_int(
        std::string_view(offset).substr(1, offset.size() - 2), header_line,
        "event offset"));
    try {
      event.kind = event_kind_from_name(fields[1]);
    } catch (const std::invalid_argument& error) {
      fail(header_line, error.what());
    }
    if (event.at_hours < previous_offset)
      fail(header_line, "event at +" + std::to_string(event.at_hours) +
                            "h out of order (previous +" +
                            std::to_string(previous_offset) + "h)");
    previous_offset = event.at_hours;
    if (event.at_hours >= pack.horizon_hours)
      fail(header_line, "event at +" + std::to_string(event.at_hours) +
                            "h is beyond the horizon (" +
                            std::to_string(pack.horizon_hours) + "h)");
    for (const ScenarioEvent& seen : pack.events)
      if (seen.at_hours == event.at_hours && seen.kind == event.kind)
        fail(header_line, "duplicate event " +
                              std::string(event_kind_name(event.kind)) +
                              " at +" + std::to_string(event.at_hours) + "h");

    // Parameter lines until the block's "end".
    for (;;) {
      advance("event parameter or 'end'");
      if (cursor.line() == kEventEnd) break;
      const std::string_view param = cursor.line();
      const auto space = param.find(' ');
      if (space == std::string_view::npos)
        fail(cursor.line_no(), "event parameter needs '<key> <value>', got '" +
                                   std::string(param) + "'");
      apply_event_param(event, param.substr(0, space),
                        util::trim(param.substr(space + 1)),
                        cursor.line_no());
    }
    validate_event(event, header_line);
    pack.events.push_back(std::move(event));
    advance("an event block or scenario-end");
  }
  if (cursor.next())
    fail(cursor.line_no(), "unexpected content after " +
                               std::string(kFooterLine));
  validate_pack(pack);
  return pack;
}

std::string render_pack(const ScenarioPack& pack) {
  std::string out;
  out += kVersionLine;
  out += '\n';
  out += "name " + pack.name + '\n';
  out += "title " + pack.title + '\n';
  out += "seed " + std::to_string(pack.seed) + '\n';
  out += "start " + util::format_utc(pack.start) + '\n';
  out += "relays " + std::to_string(pack.relays) + '\n';
  out += "services " + std::to_string(pack.services) + '\n';
  out += "horizon-hours " + std::to_string(pack.horizon_hours) + '\n';
  out += "sample-every-hours " + std::to_string(pack.sample_every_hours) +
         '\n';
  if (!pack.fault_spec.empty()) out += "faults " + pack.fault_spec + '\n';
  for (const ScenarioEvent& event : pack.events) {
    out += "at +" + std::to_string(event.at_hours) + "h " +
           std::string(event_kind_name(event.kind)) + '\n';
    const auto param = [&](std::string_view key, const std::string& value) {
      out += "  " + std::string(key) + ' ' + value + '\n';
    };
    switch (event.kind) {
      case EventKind::kChurnStorm:
        param("hours", std::to_string(event.hours));
        param("down", render_double(event.down));
        param("up", render_double(event.up));
        break;
      case EventKind::kTakedown:
      case EventKind::kMigrationWave:
        param("services", std::to_string(event.services));
        param("first", std::to_string(event.first));
        break;
      case EventKind::kFlashCrowd:
        param("clients", std::to_string(event.clients));
        param("fetches", std::to_string(event.fetches));
        param("service", std::to_string(event.service));
        break;
      case EventKind::kHsdirFlood:
      case EventKind::kRelayJoin:
        param("relays", std::to_string(event.relays));
        param("bandwidth", render_double(event.bandwidth));
        break;
      case EventKind::kAuthorityOutage:
        param("hours", std::to_string(event.hours));
        break;
      case EventKind::kFaultWindow:
        param("hours", std::to_string(event.hours));
        param("faults", event.fault_spec);
        break;
      case EventKind::kAddServices:
        param("count", std::to_string(event.count));
        break;
    }
    out += "end\n";
  }
  out += kFooterLine;
  out += '\n';
  return out;
}

std::vector<std::string> list_packs(const std::string& directory) {
  std::error_code ec;
  std::filesystem::directory_iterator it(directory, ec);
  if (ec)
    throw std::runtime_error("cannot list scenario directory '" + directory +
                             "': " + ec.message());
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& path = entry.path();
    if (path.extension() != ".scn") continue;
    names.push_back(path.stem().string());
  }
  // Directory iteration order is filesystem-dependent; pin it.
  std::sort(names.begin(), names.end());
  return names;
}

ScenarioPack load_pack_file(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec)
    throw std::runtime_error("cannot read scenario pack '" + path + "'");
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("cannot read scenario pack '" + path + "'");
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  if (in.bad())
    throw std::runtime_error("cannot read scenario pack '" + path + "'");
  return parse_pack(text);
}

ScenarioPack load_pack(const std::string& directory, const std::string& name) {
  return load_pack_file(directory + "/" + name + ".scn");
}

}  // namespace torsim::scenario
