// The scenario interpreter: replays a ScenarioPack against sim::World,
// hour by hour, firing timed event blocks and sampling a deterministic
// timeline. The whole run is a pure function of (pack, fault override):
// the timeline CSV and the metrics snapshot are byte-identical for every
// --threads value and with the memo caches on or off — which is what
// makes the committed goldens under scenarios/golden/ possible (see
// docs/scenarios.md and tests/scenario_golden_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/pack.hpp"
#include "util/csv.hpp"
#include "util/time.hpp"

namespace torsim::scenario {

struct ScenarioRunConfig {
  /// Worker threads for the world's publish fan-out; <= 0 = hardware,
  /// 1 = serial. Outputs are identical for every value.
  int threads = 0;
  /// Overrides the pack's baseline `faults` directive when non-empty
  /// (the CLI's --faults knob; parsed by fault::FaultPlan::parse).
  /// Timed fault-window events still replace the plan for their window
  /// and restore this baseline afterwards.
  std::string fault_override;
  /// Optional sinks; must outlive the run. The metrics registry receives
  /// the world's "sim.*"/"hsdir.*" series plus the engine's "scenario.*"
  /// counters, all deterministic.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

/// One sampled timeline row. Totals are cumulative since the run start,
/// gauges are the state at the sampled hour.
struct TimelineRow {
  int hour = 0;  ///< elapsed hours since pack start
  util::UnixTime time = 0;
  int relays_total = 0;
  int relays_online = 0;
  int consensus_relays = 0;
  int hsdirs = 0;
  int services_total = 0;
  int services_online = 0;
  std::int64_t descriptors_stored = 0;
  std::int64_t migrated_total = 0;
  std::int64_t taken_down_total = 0;
  std::int64_t flash_ok_total = 0;
  std::int64_t flash_failed_total = 0;
  /// Event kinds fired at this hour, space-joined ("" = quiet hour).
  std::string events;
};

struct ScenarioRunReport {
  std::string pack_name;
  int horizon_hours = 0;
  int events_applied = 0;
  std::int64_t services_migrated = 0;
  std::int64_t services_taken_down = 0;
  std::int64_t services_added = 0;
  std::int64_t relays_injected = 0;
  std::int64_t flash_fetches_ok = 0;
  std::int64_t flash_fetches_failed = 0;
  int churn_storm_hours = 0;
  int authority_outage_hours = 0;
  int fault_window_hours = 0;
  std::vector<TimelineRow> timeline;

  /// Emits the timeline (header + one row per sample) — the golden CSV.
  void write_timeline(util::CsvWriter& csv) const;

  /// One-line human summary for CLI banners.
  std::string describe() const;
};

/// Replays `pack` from bootstrap to its horizon. Throws
/// std::invalid_argument on a bad fault override.
ScenarioRunReport run_pack(const ScenarioPack& pack,
                           const ScenarioRunConfig& config);

}  // namespace torsim::scenario
