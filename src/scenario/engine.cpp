#include "scenario/engine.hpp"

#include <cstdio>

#include "fault/plan.hpp"
#include "hs/client.hpp"
#include "relay/registry.hpp"
#include "sim/world.hpp"

namespace torsim::scenario {
namespace {

/// A scheduled end-of-window action (churn storm / authority outage /
/// fault window). Windows of the same kind are not meant to overlap in
/// curated packs; when they do, each restore still resets to the run
/// baseline, so the last-ending window wins.
struct Restore {
  int hour = 0;
  enum class What { kChurn, kAuthority, kFaults } what = What::kChurn;
};

struct Counters {
  obs::Counter* events = nullptr;
  obs::Counter* migrated = nullptr;
  obs::Counter* taken_down = nullptr;
  obs::Counter* added = nullptr;
  obs::Counter* relays = nullptr;
  obs::Counter* flash_ok = nullptr;
  obs::Counter* flash_failed = nullptr;
};

Counters make_counters(obs::MetricsRegistry* metrics) {
  Counters c;
  if (metrics == nullptr) return c;
  c.events = &metrics->counter("scenario.events_applied");
  c.migrated = &metrics->counter("scenario.services_migrated");
  c.taken_down = &metrics->counter("scenario.services_taken_down");
  c.added = &metrics->counter("scenario.services_added");
  c.relays = &metrics->counter("scenario.relays_injected");
  c.flash_ok = &metrics->counter("scenario.flash_fetches_ok");
  c.flash_failed = &metrics->counter("scenario.flash_fetches_failed");
  return c;
}

void bump(obs::Counter* counter, std::int64_t delta = 1) {
  if (counter != nullptr && delta != 0) counter->inc(delta);
}

std::int64_t descriptors_stored(const sim::World& world) {
  std::int64_t total = 0;
  for (const auto& [relay_id, store] : world.directories().stores()) {
    (void)relay_id;
    total += static_cast<std::int64_t>(store.size());
  }
  return total;
}

int services_online(const sim::World& world) {
  int online = 0;
  for (std::size_t i = 0; i < world.service_count(); ++i)
    if (world.service(i).online()) ++online;
  return online;
}

int relays_online(const sim::World& world) {
  int online = 0;
  for (const relay::Relay& r : world.registry().all())
    if (r.online()) ++online;
  return online;
}

/// The engine owns the world non-const only through this helper set;
/// every mutation below runs in the serial hour loop, so world.rng()
/// draws happen in one fixed order regardless of --threads.
class EventApplier {
 public:
  EventApplier(sim::World& world, ScenarioRunReport& report,
               const Counters& counters, const fault::FaultPlan& baseline,
               int horizon)
      : world_(world),
        report_(report),
        counters_(counters),
        baseline_faults_(baseline),
        horizon_(horizon) {}

  std::vector<Restore>& restores() { return restores_; }

  void apply(const ScenarioEvent& event, int hour) {
    ++report_.events_applied;
    bump(counters_.events);
    switch (event.kind) {
      case EventKind::kChurnStorm: apply_churn_storm(event, hour); break;
      case EventKind::kTakedown: apply_takedown(event); break;
      case EventKind::kMigrationWave: apply_migration(event); break;
      case EventKind::kFlashCrowd: apply_flash_crowd(event); break;
      case EventKind::kHsdirFlood: apply_relay_injection(event, true); break;
      case EventKind::kRelayJoin: apply_relay_injection(event, false); break;
      case EventKind::kAuthorityOutage: apply_outage(event, hour); break;
      case EventKind::kFaultWindow: apply_fault_window(event, hour); break;
      case EventKind::kAddServices: apply_add_services(event); break;
    }
  }

  void restore(const Restore& action) {
    switch (action.what) {
      case Restore::What::kChurn:
        world_.set_churn_rates(baseline_down_, baseline_up_);
        break;
      case Restore::What::kAuthority:
        world_.set_authority_online(true);
        break;
      case Restore::What::kFaults:
        world_.set_fault_plan(baseline_faults_);
        break;
    }
  }

  void capture_baseline_churn() {
    baseline_down_ = world_.hourly_down_probability();
    baseline_up_ = world_.hourly_up_probability();
  }

 private:
  int window_hours(const ScenarioEvent& event, int hour) const {
    return std::min(event.hours, horizon_ - hour);
  }

  void schedule(int hour, Restore::What what) {
    restores_.push_back({hour, what});
  }

  void apply_churn_storm(const ScenarioEvent& event, int hour) {
    world_.set_churn_rates(event.down, event.up);
    report_.churn_storm_hours += window_hours(event, hour);
    schedule(hour + event.hours, Restore::What::kChurn);
  }

  void apply_takedown(const ScenarioEvent& event) {
    const auto count = static_cast<std::int64_t>(world_.service_count());
    std::int64_t hit = 0;
    for (int i = 0; i < event.services; ++i) {
      const std::int64_t index = event.first + i;
      if (index >= count) break;
      hs::ServiceHost& service =
          world_.service(static_cast<std::size_t>(index));
      if (!service.online()) continue;
      service.set_online(false);
      ++hit;
    }
    report_.services_taken_down += hit;
    bump(counters_.taken_down, hit);
  }

  void apply_migration(const ScenarioEvent& event) {
    const auto count = static_cast<std::int64_t>(world_.service_count());
    std::int64_t migrated = 0;
    for (int i = 0; i < event.services; ++i) {
      const std::int64_t index = event.first + i;
      if (index >= count) break;
      hs::ServiceHost& old_service =
          world_.service(static_cast<std::size_t>(index));
      if (!old_service.online()) continue;
      // The v2 identity retires; its successor appears under a fresh
      // key (the simulator's stand-in for a v3 address) and publishes
      // immediately.
      old_service.set_online(false);
      world_.add_service();
      ++migrated;
    }
    report_.services_migrated += migrated;
    bump(counters_.migrated, migrated);
  }

  void apply_flash_crowd(const ScenarioEvent& event) {
    if (world_.service_count() == 0) {
      report_.flash_fetches_failed +=
          static_cast<std::int64_t>(event.clients) * event.fetches;
      bump(counters_.flash_failed,
           static_cast<std::int64_t>(event.clients) * event.fetches);
      return;
    }
    const std::size_t target = static_cast<std::size_t>(event.service) %
                               world_.service_count();
    const std::string onion = world_.service(target).onion_address();
    std::int64_t ok = 0;
    std::int64_t failed = 0;
    for (int c = 0; c < event.clients; ++c) {
      hs::Client client(util::Ipv4::random_public(world_.rng()),
                        world_.rng().next());
      client.maintain(world_.consensus(), world_.now());
      for (int f = 0; f < event.fetches; ++f) {
        const auto outcome =
            client.fetch_descriptor(onion, world_.consensus(),
                                    world_.directories(), world_.now());
        if (outcome.found)
          ++ok;
        else
          ++failed;
      }
    }
    report_.flash_fetches_ok += ok;
    report_.flash_fetches_failed += failed;
    bump(counters_.flash_ok, ok);
    bump(counters_.flash_failed, failed);
  }

  void apply_relay_injection(const ScenarioEvent& event, bool flood) {
    for (int i = 0; i < event.relays; ++i) {
      relay::RelayConfig rc;
      rc.nickname = (flood ? "flood" : "join") +
                    std::to_string(injected_serial_++);
      rc.address = util::Ipv4::random_public(world_.rng());
      rc.or_port = 9001;
      rc.bandwidth_kbps = event.bandwidth;
      const relay::RelayId id =
          world_.registry().create(rc, world_.rng(), world_.now());
      world_.registry().get(id).set_online(true, world_.now());
      // Flood relays are adversary-operated: pinned online so they ripen
      // into HSDir positions on schedule. Joins churn like any relay.
      if (flood) world_.set_churn_exempt(id, true);
    }
    report_.relays_injected += event.relays;
    bump(counters_.relays, event.relays);
  }

  void apply_outage(const ScenarioEvent& event, int hour) {
    world_.set_authority_online(false);
    report_.authority_outage_hours += window_hours(event, hour);
    schedule(hour + event.hours, Restore::What::kAuthority);
  }

  void apply_fault_window(const ScenarioEvent& event, int hour) {
    world_.set_fault_plan(fault::FaultPlan::parse(event.fault_spec));
    report_.fault_window_hours += window_hours(event, hour);
    schedule(hour + event.hours, Restore::What::kFaults);
  }

  void apply_add_services(const ScenarioEvent& event) {
    for (int i = 0; i < event.count; ++i) world_.add_service();
    report_.services_added += event.count;
    bump(counters_.added, event.count);
  }

  sim::World& world_;
  ScenarioRunReport& report_;
  Counters counters_;
  fault::FaultPlan baseline_faults_;
  int horizon_;
  double baseline_down_ = 0.0;
  double baseline_up_ = 0.0;
  int injected_serial_ = 0;
  std::vector<Restore> restores_;
};

TimelineRow sample_row(const sim::World& world, int hour,
                       const ScenarioRunReport& report,
                       std::string events_fired) {
  TimelineRow row;
  row.hour = hour;
  row.time = world.now();
  row.relays_total = static_cast<int>(world.registry().size());
  row.relays_online = relays_online(world);
  row.consensus_relays = static_cast<int>(world.consensus().entries().size());
  row.hsdirs = static_cast<int>(world.consensus().hsdir_count());
  row.services_total = static_cast<int>(world.service_count());
  row.services_online = services_online(world);
  row.descriptors_stored = descriptors_stored(world);
  row.migrated_total = report.services_migrated;
  row.taken_down_total = report.services_taken_down;
  row.flash_ok_total = report.flash_fetches_ok;
  row.flash_failed_total = report.flash_fetches_failed;
  row.events = std::move(events_fired);
  return row;
}

}  // namespace

void ScenarioRunReport::write_timeline(util::CsvWriter& csv) const {
  csv.row({"hour", "time", "relays_total", "relays_online",
           "consensus_relays", "hsdirs", "services_total", "services_online",
           "descriptors_stored", "migrated_total", "taken_down_total",
           "flash_ok_total", "flash_failed_total", "events"});
  for (const TimelineRow& row : timeline)
    csv.typed_row(row.hour, util::format_utc(row.time), row.relays_total,
                  row.relays_online, row.consensus_relays, row.hsdirs,
                  row.services_total, row.services_online,
                  row.descriptors_stored, row.migrated_total,
                  row.taken_down_total, row.flash_ok_total,
                  row.flash_failed_total, row.events);
}

std::string ScenarioRunReport::describe() const {
  char line[256];
  std::snprintf(
      line, sizeof line,
      "scenario %s: %d hours, %d events | migrated %lld, taken down %lld, "
      "added %lld, relays injected %lld | flash fetches %lld ok / %lld "
      "failed",
      pack_name.c_str(), horizon_hours, events_applied,
      static_cast<long long>(services_migrated),
      static_cast<long long>(services_taken_down),
      static_cast<long long>(services_added),
      static_cast<long long>(relays_injected),
      static_cast<long long>(flash_fetches_ok),
      static_cast<long long>(flash_fetches_failed));
  return line;
}

ScenarioRunReport run_pack(const ScenarioPack& pack,
                           const ScenarioRunConfig& config) {
  validate_pack(pack);
  const fault::FaultPlan baseline =
      !config.fault_override.empty()
          ? fault::FaultPlan::parse(config.fault_override)
          : (!pack.fault_spec.empty() ? fault::FaultPlan::parse(pack.fault_spec)
                                      : fault::FaultPlan{});

  sim::WorldConfig wc;
  wc.seed = pack.seed;
  wc.start = pack.start;
  wc.honest_relays = pack.relays;
  wc.threads = config.threads;
  wc.faults = baseline;
  wc.metrics = config.metrics;
  wc.trace = config.trace;
  // Multi-month horizons at hourly consensus granularity: keeping every
  // consensus would dominate memory for zero scenario value.
  wc.record_archive = false;
  sim::World world(wc);
  for (int i = 0; i < pack.services; ++i) world.add_service();

  ScenarioRunReport report;
  report.pack_name = pack.name;
  report.horizon_hours = pack.horizon_hours;

  const Counters counters = make_counters(config.metrics);
  EventApplier applier(world, report, counters, baseline,
                       pack.horizon_hours);
  applier.capture_baseline_churn();

  std::size_t next_event = 0;
  for (int hour = 0; hour < pack.horizon_hours; ++hour) {
    // End-of-window restores land before new events so back-to-back
    // windows hand over cleanly at the shared boundary hour.
    for (const Restore& action : applier.restores())
      if (action.hour == hour) applier.restore(action);

    std::string fired;
    while (next_event < pack.events.size() &&
           pack.events[next_event].at_hours == hour) {
      const ScenarioEvent& event = pack.events[next_event];
      if (!fired.empty()) fired += ' ';
      fired += event_kind_name(event.kind);
      applier.apply(event, hour);
      ++next_event;
    }

    if (hour % pack.sample_every_hours == 0 || !fired.empty())
      report.timeline.push_back(
          sample_row(world, hour, report, std::move(fired)));

    world.step_hour();
  }
  for (const Restore& action : applier.restores())
    if (action.hour == pack.horizon_hours) applier.restore(action);
  report.timeline.push_back(
      sample_row(world, pack.horizon_hours, report, std::string()));

  if (config.metrics != nullptr) {
    obs::MetricsRegistry& m = *config.metrics;
    m.gauge("scenario.timeline_rows")
        .set(static_cast<std::int64_t>(report.timeline.size()));
    m.gauge("scenario.horizon_hours").set(report.horizon_hours);
  }
  return report;
}

}  // namespace torsim::scenario
