#include "serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "obs/stopwatch.hpp"
#include "serve/client.hpp"
#include "util/rng.hpp"

namespace torsim::serve {
namespace {

/// Latency bucket edges in microseconds (powers-of-~3 up to 1 s).
const std::vector<std::int64_t> kLatencyEdgesUs = {
    100, 300, 1000, 3000, 10000, 30000, 100000, 300000, 1000000};

struct WorkerStats {
  std::int64_t retries = 0;
  std::int64_t reconnects = 0;
};

void backoff(std::uint64_t ticks) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1 + 2 * ticks));
}

/// One closed-loop round trip with bounded retry-after/reconnect
/// handling. Writes the final response into `slot`.
void call_with_retries(Client& client, const Request& request, Response& slot,
                       const LoadConfig& config, WorkerStats& stats,
                       obs::Histogram* latency) {
  for (int attempt = 0; attempt <= config.max_retries; ++attempt) {
    try {
      if (!client.connected()) client.connect();
      const double t0 = obs::wall_clock_seconds();
      const Response response = client.call(request);
      if (response.status == Status::kRetryAfter) {
        ++stats.retries;
        backoff(response.retry_after);
        continue;
      }
      if (latency != nullptr)
        latency->observe(static_cast<std::int64_t>(
            (obs::wall_clock_seconds() - t0) * 1e6));
      slot = response;
      return;
    } catch (const std::invalid_argument&) {
      // Garbled response frame (chaos corruption): drop the
      // connection and replay.
      client.close();
      ++stats.reconnects;
      backoff(1);
    } catch (const std::runtime_error&) {
      client.close();
      ++stats.reconnects;
      backoff(1);
    }
  }
  throw std::runtime_error("serve load: request id " +
                           std::to_string(request.id) +
                           " exhausted its retry budget");
}

void run_worker_closed(const LoadConfig& config,
                       const std::vector<Request>& mix,
                       std::vector<Response>& responses, int worker,
                       WorkerStats& stats, obs::Histogram* latency) {
  Client client(config.socket_path);
  client.set_timeout_millis(config.timeout_millis);
  for (std::size_t i = static_cast<std::size_t>(worker); i < mix.size();
       i += static_cast<std::size_t>(config.clients))
    call_with_retries(client, mix[i], responses[i], config, stats, latency);
}

void run_worker_open(const LoadConfig& config, const std::vector<Request>& mix,
                     std::vector<Response>& responses, int worker,
                     WorkerStats& stats, obs::Histogram* latency) {
  Client client(config.socket_path);
  client.set_timeout_millis(config.timeout_millis);
  std::vector<std::size_t> owned;
  for (std::size_t i = static_cast<std::size_t>(worker); i < mix.size();
       i += static_cast<std::size_t>(config.clients))
    owned.push_back(i);
  std::vector<bool> resolved(owned.size(), false);
  std::size_t outstanding = owned.size();
  const double t0 = obs::wall_clock_seconds();
  int budget = config.max_retries + static_cast<int>(owned.size());
  bool need_send_all = true;
  while (outstanding > 0) {
    if (budget-- < 0)
      throw std::runtime_error(
          "serve load: open-loop worker exhausted its retry budget");
    try {
      if (!client.connected()) {
        client.connect();
        need_send_all = true;
      }
      if (need_send_all) {
        // (Re)pipeline every unresolved request; pipelined responses
        // lost with a dead connection are simply asked for again.
        for (std::size_t j = 0; j < owned.size(); ++j)
          if (!resolved[j]) client.send(mix[owned[j]]);
        need_send_all = false;
      }
      const Response response = client.receive();
      for (std::size_t j = 0; j < owned.size(); ++j) {
        if (resolved[j] || mix[owned[j]].id != response.id) continue;
        if (response.status == Status::kRetryAfter) {
          ++stats.retries;
          backoff(response.retry_after);
          client.send(mix[owned[j]]);
          break;
        }
        responses[owned[j]] = response;
        resolved[j] = true;
        --outstanding;
        break;
      }
    } catch (const std::exception&) {
      client.close();
      ++stats.reconnects;
      backoff(1);
      need_send_all = true;
    }
  }
  // Open loop has no per-request latency; record the per-worker drain
  // time once so the histogram still reflects the run.
  if (latency != nullptr && !owned.empty())
    latency->observe(static_cast<std::int64_t>(
        (obs::wall_clock_seconds() - t0) * 1e6 /
        static_cast<double>(owned.size())));
}

}  // namespace

const std::vector<std::int64_t>& latency_edges_us() {
  return kLatencyEdgesUs;
}

std::vector<Request> default_request_mix(std::uint64_t seed, int requests,
                                         std::uint64_t services,
                                         int clients) {
  const util::Rng base(seed ^ 0x6c6f6164ULL);  // "load"
  std::vector<Request> mix;
  mix.reserve(static_cast<std::size_t>(requests));
  const std::uint64_t n = services > 0 ? services : 1;
  for (int i = 0; i < requests; ++i) {
    util::Rng rng = base.child(static_cast<std::uint64_t>(i));
    Request request;
    request.id = static_cast<std::uint64_t>(i) + 1;
    request.client =
        clients > 0 ? static_cast<std::uint64_t>(i % clients) : 0;
    const std::int64_t roll = rng.uniform_int(0, 99);
    if (roll < 10) {
      request.kind = QueryKind::kStats;
    } else if (roll < 40) {
      request.kind = QueryKind::kHarvest;
      request.first = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      request.count = static_cast<std::uint64_t>(rng.uniform_int(
          1, std::min<std::int64_t>(8, static_cast<std::int64_t>(
                                           n - request.first))));
    } else if (roll < 65) {
      request.kind = QueryKind::kResolve;
      request.first = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      request.count = static_cast<std::uint64_t>(rng.uniform_int(
          1, std::min<std::int64_t>(8, static_cast<std::int64_t>(
                                           n - request.first))));
    } else if (roll < 85) {
      request.kind = QueryKind::kScan;
      request.first = static_cast<std::uint64_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      request.count = static_cast<std::uint64_t>(rng.uniform_int(
          1, std::min<std::int64_t>(4, static_cast<std::int64_t>(
                                           n - request.first))));
      request.seed = rng.next();
    } else {
      request.kind = QueryKind::kPopularity;
      request.requests = static_cast<std::uint64_t>(rng.uniform_int(50, 200));
      request.top = static_cast<std::uint64_t>(rng.uniform_int(1, 5));
      request.seed = rng.next();
    }
    mix.push_back(request);
  }
  return mix;
}

LoadResult run_load(const LoadConfig& config) {
  if (config.clients < 1)
    throw std::invalid_argument("serve load: clients must be >= 1");
  LoadResult result;
  result.requests = config.script.empty()
                        ? default_request_mix(config.seed, config.requests,
                                              config.services, config.clients)
                        : config.script;
  result.responses.resize(result.requests.size());

  obs::Histogram* latency = nullptr;
  if (config.telemetry != nullptr)
    latency = &config.telemetry->histogram("load.latency_us", kLatencyEdgesUs);

  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(config.clients), result.requests.size()));
  std::vector<WorkerStats> stats(
      static_cast<std::size_t>(std::max(workers, 1)));
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(std::max(workers, 1)));
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      try {
        if (config.open_loop)
          run_worker_open(config, result.requests, result.responses, w,
                          stats[static_cast<std::size_t>(w)], latency);
        else
          run_worker_closed(config, result.requests, result.responses, w,
                            stats[static_cast<std::size_t>(w)], latency);
      } catch (...) {
        errors[static_cast<std::size_t>(w)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& error : errors)
    if (error) std::rethrow_exception(error);

  for (const WorkerStats& s : stats) {
    result.retries += s.retries;
    result.reconnects += s.reconnects;
  }

  if (config.shutdown) {
    Request request;
    request.id = result.requests.size() + 1;
    request.client = 0;
    request.kind = QueryKind::kShutdown;
    Client client(config.socket_path);
    client.set_timeout_millis(config.timeout_millis);
    WorkerStats s;
    Response response;
    call_with_retries(client, request, response, config, s, nullptr);
    result.retries += s.retries;
    result.reconnects += s.reconnects;
    result.requests.push_back(request);
    result.responses.push_back(response);
  }

  if (config.telemetry != nullptr) {
    obs::MetricsRegistry& t = *config.telemetry;
    t.counter("load.requests_total")
        .inc(static_cast<std::int64_t>(result.requests.size()));
    t.counter("load.retries_total").inc(result.retries);
    t.counter("load.reconnects_total").inc(result.reconnects);
  }
  return result;
}

}  // namespace torsim::serve
