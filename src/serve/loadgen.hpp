// Closed/open-loop load generator against a running torsimd: N worker
// threads, each owning one connection, replaying a deterministic
// request mix. Latency histograms flow through obs::MetricsRegistry as
// *telemetry* (wall-clock dependent, never golden); the matched
// (request, response) pairs come back ordered by request sequence, so
// the CSV a caller renders from them is byte-identical to the batch
// CLI executing the same mix — the serve equivalence gate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/proto.hpp"

namespace torsim::serve {

struct LoadConfig {
  std::string socket_path;
  /// Concurrent worker connections; request sequence i is owned by
  /// worker i % clients.
  int clients = 4;
  /// Total requests when generating the default mix (ignored when
  /// `script` is non-empty).
  int requests = 100;
  /// false = closed loop (send, await, send); true = open loop
  /// (pipeline every owned request, then collect).
  bool open_loop = false;
  /// Seed of the generated mix.
  std::uint64_t seed = 1;
  /// Service count the generated ranges stay inside (must match the
  /// daemon's --services for all-ok runs).
  std::uint64_t services = 16;
  /// Append a final shutdown request after all workers finish.
  bool shutdown = false;
  /// Explicit request list (from a script file); overrides generation.
  std::vector<Request> script;
  /// Per-request budget for retry-after/reconnect cycles before the
  /// run fails.
  int max_retries = 200;
  /// Receive timeout per response.
  int timeout_millis = 10000;
  /// Optional latency/robustness telemetry sink ("load.*"). Must
  /// outlive the run.
  obs::MetricsRegistry* telemetry = nullptr;
};

struct LoadResult {
  /// The replayed mix, in sequence order (including the trailing
  /// shutdown request when configured).
  std::vector<Request> requests;
  /// Final response for each request, same order. Retry-after answers
  /// are consumed by the retry loop and never appear here.
  std::vector<Response> responses;
  std::int64_t retries = 0;
  std::int64_t reconnects = 0;
};

/// The deterministic default read-only mix shared by `torsim load` and
/// `torsim query`: request i is a pure function of (seed, i, services).
/// ids are 1-based sequence numbers; client is i % clients.
std::vector<Request> default_request_mix(std::uint64_t seed, int requests,
                                         std::uint64_t services, int clients);

/// Bucket edges (microseconds) of the "load.latency_us" telemetry
/// histogram; callers re-registering the name must pass these.
const std::vector<std::int64_t>& latency_edges_us();

/// Runs the load; throws std::runtime_error when a request exhausts
/// its retry budget or a connection cannot be (re)established.
LoadResult run_load(const LoadConfig& config);

}  // namespace torsim::serve
