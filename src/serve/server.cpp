#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace torsim::serve {
namespace {

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(WorldSession& session, ServerConfig config)
    : session_(session), config_(std::move(config)), chaos_(config_.chaos) {}

Server::~Server() {
  for (Connection& c : connections_)
    if (c.fd >= 0) ::close(c.fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(config_.socket_path.c_str());
  }
  for (const int fd : wake_fds_)
    if (fd >= 0) ::close(fd);
}

void Server::start() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.empty() ||
      config_.socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("serve: socket path empty or longer than " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes: '" + config_.socket_path + "'");
  std::memcpy(addr.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("serve: socket");
  ::unlink(config_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    throw_errno("serve: bind '" + config_.socket_path + "'");
  if (::listen(listen_fd_, 64) != 0) throw_errno("serve: listen");
  set_nonblocking(listen_fd_);

  if (::pipe(wake_fds_) != 0) throw_errno("serve: pipe");
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
}

void Server::stop() {
  // Async-signal-unsafe state stays on the loop thread; the pipe write
  // is the only cross-thread communication.
  const char byte = 's';
  (void)::write(wake_fds_[1], &byte, 1);
}

void Server::accept_connections() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    set_nonblocking(fd);
    Connection connection;
    connection.fd = fd;
    connection.conn_id = next_conn_id_++;
    if (config_.telemetry != nullptr)
      config_.telemetry->counter("serve_edge.accepts").inc();
    if (chaos_.enabled()) {
      switch (chaos_.connect_fault(connection.conn_id, 0, 1)) {
        case fault::ConnectFault::kDrop:
          ::close(fd);
          if (config_.telemetry != nullptr)
            config_.telemetry->counter("serve_edge.chaos_dropped").inc();
          continue;
        case fault::ConnectFault::kTimeout:
          connection.delay_ticks = 3;
          if (config_.telemetry != nullptr)
            config_.telemetry->counter("serve_edge.chaos_delayed").inc();
          break;
        case fault::ConnectFault::kCorrupt:
          connection.corrupt = true;
          if (config_.telemetry != nullptr)
            config_.telemetry->counter("serve_edge.chaos_corrupted").inc();
          break;
        case fault::ConnectFault::kNone:
          break;
      }
    }
    connections_.push_back(std::move(connection));
  }
}

void Server::enqueue_frame(Connection& connection, const std::string& body) {
  Request request;
  try {
    request = parse_request(body);
  } catch (const std::invalid_argument& error) {
    Response response;
    response.status = Status::kError;
    response.error = error.what();
    queue_response(connection.conn_id, response);
    if (config_.telemetry != nullptr)
      config_.telemetry->counter("serve_edge.parse_errors").inc();
    return;
  }
  if (pending_.size() >= static_cast<std::size_t>(config_.queue_capacity)) {
    Response response;
    response.id = request.id;
    response.status = Status::kRetryAfter;
    response.retry_after = config_.retry_after;
    queue_response(connection.conn_id, response);
    if (config_.telemetry != nullptr)
      config_.telemetry->counter("serve_edge.admission_rejects").inc();
    return;
  }
  pending_.push_back({next_seq_++, request, connection.conn_id});
}

bool Server::read_connection(Connection& connection) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(connection.fd, buf, sizeof buf, 0);
    if (n > 0) {
      try {
        connection.reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      } catch (const std::invalid_argument&) {
        // Oversized/garbled framing: the connection is unrecoverable.
        return false;
      }
      std::string body;
      while (connection.reader.next_frame(body)) enqueue_frame(connection, body);
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

void Server::queue_response(std::uint64_t conn_id, const Response& response) {
  const auto it = std::find_if(
      connections_.begin(), connections_.end(),
      [conn_id](const Connection& c) { return c.conn_id == conn_id; });
  if (it == connections_.end()) return;  // owner vanished; drop the answer
  std::string body = render_response(response);
  if (it->corrupt && !body.empty()) body[body.size() / 2] ^= 0x20;
  it->out += encode_frame(body);
  if (it->delay_ticks > 0) it->ready_tick = tick_ + it->delay_ticks;
}

bool Server::write_connection(Connection& connection) {
  if (tick_ < connection.ready_tick) return true;  // chaos delay window
  while (connection.out_pos < connection.out.size()) {
    const ssize_t n =
        ::send(connection.fd, connection.out.data() + connection.out_pos,
               connection.out.size() - connection.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      connection.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  connection.out.clear();
  connection.out_pos = 0;
  return true;
}

void Server::run_batch() {
  if (pending_.empty()) return;
  const std::size_t take =
      std::min(pending_.size(), static_cast<std::size_t>(config_.max_batch));
  std::vector<Pending> batch(pending_.begin(),
                             pending_.begin() + static_cast<std::ptrdiff_t>(take));
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(take));
  // The determinism contract's batch order: arrival sequence first,
  // client id as the (currently redundant) tiebreak.
  std::sort(batch.begin(), batch.end(), [](const Pending& a, const Pending& b) {
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.request.client < b.request.client;
  });
  std::vector<Request> requests;
  requests.reserve(batch.size());
  for (const Pending& p : batch) requests.push_back(p.request);
  const std::vector<Response> responses = session_.execute_batch(requests);
  for (std::size_t i = 0; i < batch.size(); ++i)
    queue_response(batch[i].conn_id, responses[i]);
  if (config_.telemetry != nullptr) {
    obs::MetricsRegistry& t = *config_.telemetry;
    t.counter("serve_edge.batches").inc();
    t.counter("serve_edge.requests").inc(static_cast<std::int64_t>(take));
    t.histogram("serve_edge.batch_size", {1, 4, 16, 64, 256})
        .observe(static_cast<std::int64_t>(take));
    t.gauge("serve_edge.queue_depth")
        .set(static_cast<std::int64_t>(pending_.size()));
  }
}

void Server::close_connection(Connection& connection) {
  if (connection.fd >= 0) ::close(connection.fd);
  connection.fd = -1;
}

void Server::drain_and_close() {
  // Best-effort flush of answers already queued (the shutdown ack in
  // particular) before the socket goes away.
  for (int round = 0; round < 200; ++round) {
    bool pending_bytes = false;
    for (Connection& c : connections_) {
      if (c.fd < 0) continue;
      c.ready_tick = 0;  // chaos delays do not outlive shutdown
      if (!write_connection(c)) close_connection(c);
      if (c.fd >= 0 && c.out_pos < c.out.size()) pending_bytes = true;
    }
    if (!pending_bytes) break;
    ::poll(nullptr, 0, 5);
  }
  for (Connection& c : connections_) close_connection(c);
  connections_.clear();
}

void Server::run() {
  if (listen_fd_ < 0)
    throw std::logic_error("serve: Server::run() before start()");
  while (!stop_requested_ && !session_.shutdown_requested()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    for (const Connection& c : connections_) {
      short events = POLLIN;
      if (c.out_pos < c.out.size() && tick_ >= c.ready_tick)
        events = static_cast<short>(events | POLLOUT);
      fds.push_back({c.fd, events, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), config_.tick_millis);
    ++tick_;
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("serve: poll");
    }
    if ((fds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_fds_[0], drain, sizeof drain) > 0) {
      }
      stop_requested_ = true;
    }
    // Connections accepted below were not polled this tick, so the
    // revents walk covers only the pre-accept population.
    const std::size_t polled = fds.size() - 2;
    if ((fds[0].revents & POLLIN) != 0) accept_connections();
    for (std::size_t i = 0; i < polled; ++i) {
      Connection& c = connections_[i];
      const short revents = fds[2 + i].revents;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (revents & POLLIN) == 0) {
        close_connection(c);
        continue;
      }
      if ((revents & POLLIN) != 0 && !read_connection(c)) {
        close_connection(c);
        continue;
      }
      if (!write_connection(c)) close_connection(c);
    }
    run_batch();
    for (Connection& c : connections_)
      if (c.fd >= 0 && !write_connection(c)) close_connection(c);
    std::erase_if(connections_,
                  [](const Connection& c) { return c.fd < 0; });
  }
  drain_and_close();
}

}  // namespace torsim::serve
