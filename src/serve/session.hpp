// The deterministic core of the serving subsystem: a WorldSession owns
// a resident, warmed-up sim::World and executes typed protocol queries
// against it. Read-only queries are pure functions of (world state,
// request fields) — they touch no logs, no world RNG, and no locked
// caches — so a batch of them fans out via util/parallel and commits
// results in batch order, byte-identical to executing the same
// requests one at a time (the batch-equals-serial contract the
// equivalence goldens enforce; see docs/serving.md).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/proto.hpp"
#include "sim/world.hpp"

namespace torsim::serve {

struct SessionConfig {
  /// The resident world. Seed, relay population, fault plan, and the
  /// world-side metrics sink all come through here.
  sim::WorldConfig world{};
  /// Hidden services added after bootstrap (query targets).
  int services = 16;
  /// Hours stepped before the session starts answering, so services
  /// have published and churn has settled.
  int warmup_hours = 2;
  /// Fan-out width for read-only batch runs; 1 = serial. Results are
  /// bit-identical for every value (util/parallel contract).
  int threads = 1;
  /// Optional sink for the deterministic "serve.*" session counters
  /// (per-kind query totals, data lines, errors). These depend only on
  /// the executed request set, so a daemon session and a CLI session
  /// fed the same queries emit byte-identical registries. Must outlive
  /// the session.
  obs::MetricsRegistry* metrics = nullptr;
};

class WorldSession {
 public:
  explicit WorldSession(SessionConfig config);

  /// Executes one request (the CLI single-shot path). Equivalent to
  /// execute_batch({request}) by construction.
  Response execute(const Request& request);

  /// Executes a batch in order. The caller (the server's batcher)
  /// supplies requests already ordered by (arrival-seq, client-id);
  /// maximal runs of read-only requests fan out via parallel_map while
  /// mutating requests (scenario-step, shutdown) execute serially as
  /// barriers between runs. Response i answers batch[i].
  std::vector<Response> execute_batch(const std::vector<Request>& batch);

  sim::World& world() { return *world_; }
  const sim::World& world() const { return *world_; }

  /// True once a shutdown request has been executed; the server drains
  /// and stops when it sees this.
  bool shutdown_requested() const { return shutdown_; }

  const SessionConfig& config() const { return config_; }

 private:
  Response execute_readonly(const Request& request) const;
  Response execute_mutating(const Request& request);
  Response range_error(const Request& request) const;
  void count_query(const Request& request, const Response& response);

  SessionConfig config_;
  std::unique_ptr<sim::World> world_;
  bool shutdown_ = false;

  // Cached handles into config_.metrics (registration locks; the
  // increments from parallel regions do not).
  struct SessionCounters {
    obs::Counter* requests = nullptr;
    obs::Counter* data_lines = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* by_kind[7] = {};
  };
  SessionCounters counters_{};
};

}  // namespace torsim::serve
