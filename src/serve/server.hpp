// The async shell of the serving subsystem: a poll-based unix-socket
// event loop that frames requests off connections, applies admission
// control, and drives the deterministic WorldSession batcher.
//
// Split-of-concerns contract (docs/serving.md): everything
// scheduling-dependent lives here (arrival order, tick boundaries,
// queue depth, chaos) and is only ever surfaced as *edge telemetry*;
// everything answer-shaped lives in WorldSession and is byte-stable.
// The batcher orders each tick's requests by (arrival-seq, client-id)
// before execution, and clients match responses by request id, so the
// rendered answers are independent of how requests landed in ticks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "serve/proto.hpp"
#include "serve/session.hpp"

namespace torsim::serve {

struct ServerConfig {
  /// Filesystem path of the unix-domain listening socket.
  std::string socket_path;
  /// Requests executed per batch tick.
  int max_batch = 256;
  /// Pending-queue cap; arrivals beyond it are rejected with a
  /// retry-after response instead of queueing unboundedly.
  int queue_capacity = 1024;
  /// Back-off hint carried in retry-after responses, in ticks.
  std::uint64_t retry_after = 1;
  /// Poll timeout / batch flush cadence in milliseconds.
  int tick_millis = 5;
  /// Connection-level chaos (fault::FaultInjector over connection ids):
  /// drop connections at accept, delay their responses, or garble
  /// response bytes. Exercises client retry paths; defaults off.
  fault::FaultPlan chaos{};
  /// Optional sink for edge telemetry ("serve_edge.*": accepts,
  /// batches, admission rejects, queue depth, batch-size histogram).
  /// Scheduling-dependent by nature — never part of the deterministic
  /// goldens. Must outlive the server.
  obs::MetricsRegistry* telemetry = nullptr;
};

class Server {
 public:
  /// The session must outlive the server.
  Server(WorldSession& session, ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens (unlinking a stale socket file first). Throws
  /// std::runtime_error on socket errors.
  void start();

  /// Runs the event loop until a shutdown request executes or stop()
  /// is called. start() must have succeeded.
  void run();

  /// Thread-safe: wakes the loop and makes run() return after the
  /// current tick.
  void stop();

  const std::string& socket_path() const { return config_.socket_path; }

 private:
  struct Connection {
    int fd = -1;
    std::uint64_t conn_id = 0;
    FrameReader reader;
    std::string out;           ///< bytes awaiting write
    std::size_t out_pos = 0;
    bool corrupt = false;      ///< chaos: garble one byte per response
    std::uint64_t ready_tick = 0;  ///< chaos: hold writes until this tick
    std::uint64_t delay_ticks = 0;
  };

  struct Pending {
    std::uint64_t seq = 0;
    Request request;
    std::uint64_t conn_id = 0;
  };

  void accept_connections();
  /// Reads available bytes; returns false when the connection died.
  bool read_connection(Connection& connection);
  /// Writes buffered bytes; returns false when the connection died.
  bool write_connection(Connection& connection);
  void enqueue_frame(Connection& connection, const std::string& body);
  void queue_response(std::uint64_t conn_id, const Response& response);
  void run_batch();
  void close_connection(Connection& connection);
  void drain_and_close();

  WorldSession& session_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: stop() wakes poll()
  bool stop_requested_ = false;  ///< loop-thread view, set via the pipe
  std::vector<Connection> connections_;
  std::vector<Pending> pending_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_conn_id_ = 0;
  std::uint64_t tick_ = 0;
  fault::FaultInjector chaos_;
};

}  // namespace torsim::serve
