#include "serve/session.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "fault/injector.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace torsim::serve {
namespace {

/// Candidate ports for the simulated scan query — the common
/// hidden-service ports the paper's port harvest surfaced (HTTP(S),
/// SSH, IRC, alt-HTTP, Bitcoin).
constexpr std::array<std::uint16_t, 6> kScanPorts = {22, 80, 443,
                                                     6667, 8080, 8333};

std::string bool01(bool value) { return value ? "1" : "0"; }

}  // namespace

WorldSession::WorldSession(SessionConfig config) : config_(config) {
  world_ = std::make_unique<sim::World>(config_.world);
  for (int i = 0; i < config_.services; ++i) world_->add_service();
  world_->run_hours(config_.warmup_hours);
  if (config_.metrics != nullptr) {
    obs::MetricsRegistry& m = *config_.metrics;
    counters_.requests = &m.counter("serve.requests_total");
    counters_.data_lines = &m.counter("serve.data_lines_total");
    counters_.errors = &m.counter("serve.errors_total");
    static constexpr QueryKind kAllKinds[] = {
        QueryKind::kStats,        QueryKind::kHarvest,
        QueryKind::kResolve,      QueryKind::kScan,
        QueryKind::kPopularity,   QueryKind::kScenarioStep,
        QueryKind::kShutdown};
    for (const QueryKind kind : kAllKinds) {
      std::string name(query_kind_name(kind));
      std::replace(name.begin(), name.end(), '-', '_');
      counters_.by_kind[static_cast<int>(kind)] =
          &m.counter("serve.query_" + name);
    }
  }
}

Response WorldSession::execute(const Request& request) {
  return execute_batch({request}).front();
}

std::vector<Response> WorldSession::execute_batch(
    const std::vector<Request>& batch) {
  std::vector<Response> responses(batch.size());
  std::size_t run_start = 0;
  while (run_start < batch.size()) {
    if (is_mutating(batch[run_start].kind)) {
      responses[run_start] = execute_mutating(batch[run_start]);
      ++run_start;
      continue;
    }
    std::size_t run_end = run_start;
    while (run_end < batch.size() && !is_mutating(batch[run_end].kind))
      ++run_end;
    const std::size_t n = run_end - run_start;
    auto run = util::parallel_map(n, config_.threads, [&](std::size_t i) {
      return execute_readonly(batch[run_start + i]);
    });
    for (std::size_t i = 0; i < n; ++i)
      responses[run_start + i] = std::move(run[i]);
    run_start = run_end;
  }
  for (std::size_t i = 0; i < batch.size(); ++i)
    count_query(batch[i], responses[i]);
  return responses;
}

void WorldSession::count_query(const Request& request,
                               const Response& response) {
  if (config_.metrics == nullptr) return;
  counters_.requests->inc();
  counters_.by_kind[static_cast<int>(request.kind)]->inc();
  if (response.status == Status::kError)
    counters_.errors->inc();
  else
    counters_.data_lines->inc(
        static_cast<std::int64_t>(response.data.size()));
}

Response WorldSession::range_error(const Request& request) const {
  Response response;
  response.id = request.id;
  response.status = Status::kError;
  response.error =
      "service range [" + std::to_string(request.first) + ", " +
      std::to_string(request.first + request.count) + ") out of range (have " +
      std::to_string(world_->service_count()) + ")";
  return response;
}

Response WorldSession::execute_readonly(const Request& request) const {
  Response response;
  response.id = request.id;
  const std::string invalid = validate_request(request);
  if (!invalid.empty()) {
    response.status = Status::kError;
    response.error = invalid;
    return response;
  }
  try {
    const sim::World& world = *world_;
    switch (request.kind) {
      case QueryKind::kStats: {
        const sim::NetworkStats s = world.network_stats();
        response.data.push_back(
            "hour " + std::to_string(s.hours_since_start) + " relays_online " +
            std::to_string(s.relays_online) + " hsdirs " +
            std::to_string(s.hsdir_count) + " services_online " +
            std::to_string(s.services_online) + " descriptors_stored " +
            std::to_string(s.descriptors_stored) + " consensus_valid_after " +
            std::to_string(s.consensus_valid_after));
        break;
      }
      case QueryKind::kHarvest: {
        const std::size_t n = world.service_count();
        if (request.first > n || request.count > n - request.first)
          return range_error(request);
        for (std::uint64_t i = request.first;
             i < request.first + request.count; ++i) {
          const sim::ServiceView v =
              world.service_view(static_cast<std::size_t>(i));
          response.data.push_back(
              "service " + std::to_string(v.index) + " onion " + v.onion +
              " online " + bool01(v.online) + " period " +
              std::to_string(v.last_published_period) + " desc0 " +
              v.descriptor_hex[0] + " desc1 " + v.descriptor_hex[1]);
        }
        break;
      }
      case QueryKind::kResolve: {
        const std::size_t n = world.service_count();
        if (request.first > n || request.count > n - request.first)
          return range_error(request);
        for (std::uint64_t i = request.first;
             i < request.first + request.count; ++i) {
          const sim::ResolveView v =
              world.resolve_view(static_cast<std::size_t>(i));
          response.data.push_back(
              "service " + std::to_string(v.index) + " resolved0 " +
              bool01(v.resolved[0]) + " resolved1 " + bool01(v.resolved[1]) +
              " unresponsive " + std::to_string(v.dirs_unresponsive));
        }
        break;
      }
      case QueryKind::kScan: {
        const std::size_t n = world.service_count();
        if (request.first > n || request.count > n - request.first)
          return range_error(request);
        const fault::FaultInjector* injector = world.fault_injector();
        // Pure derivation base: (world seed, query seed) fixes every
        // per-service stream, independent of execution order/thread.
        const util::Rng base =
            util::Rng(world.config().seed ^ 0x7365727665ULL)
                .child(request.seed);
        for (std::uint64_t i = request.first;
             i < request.first + request.count; ++i) {
          const sim::ServiceView v =
              world.service_view(static_cast<std::size_t>(i));
          util::Rng rng = base.child(i);
          std::string ports;
          int open = 0;
          if (v.online) {
            const std::uint64_t key = fault::FaultInjector::key_of(v.onion);
            for (const std::uint16_t port : kScanPorts) {
              if (!rng.bernoulli(port == 80 ? 0.6 : 0.25)) continue;
              if (injector != nullptr &&
                  injector->connect_fault(key, port, 1) !=
                      fault::ConnectFault::kNone)
                continue;
              if (!ports.empty()) ports += ',';
              ports += std::to_string(port);
              ++open;
            }
          }
          response.data.push_back("service " + std::to_string(i) + " open " +
                                  std::to_string(open) + " ports " +
                                  (ports.empty() ? "-" : ports));
        }
        break;
      }
      case QueryKind::kPopularity: {
        const std::size_t n = world.service_count();
        if (n == 0) {
          response.status = Status::kError;
          response.error = "popularity query needs at least one service";
          return response;
        }
        // Zipf(s=1) fetch popularity over service indexes: cumulative
        // harmonic weights, one uniform draw per simulated fetch.
        std::vector<double> cumulative(n);
        double total = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          total += 1.0 / static_cast<double>(j + 1);
          cumulative[j] = total;
        }
        const util::Rng base =
            util::Rng(world.config().seed ^ 0x706f70ULL).child(request.seed);
        std::vector<std::uint64_t> tally(n, 0);
        for (std::uint64_t d = 0; d < request.requests; ++d) {
          const double u = base.child(d).uniform01() * total;
          const std::size_t j = static_cast<std::size_t>(
              std::lower_bound(cumulative.begin(), cumulative.end(), u) -
              cumulative.begin());
          ++tally[std::min(j, n - 1)];
        }
        std::vector<std::size_t> order(n);
        for (std::size_t j = 0; j < n; ++j) order[j] = j;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                    if (tally[a] != tally[b]) return tally[a] > tally[b];
                    return a < b;
                  });
        const std::uint64_t top =
            std::min<std::uint64_t>(request.top, order.size());
        for (std::uint64_t r = 0; r < top; ++r) {
          response.data.push_back(
              "rank " + std::to_string(r + 1) + " service " +
              std::to_string(order[static_cast<std::size_t>(r)]) +
              " requests " +
              std::to_string(tally[order[static_cast<std::size_t>(r)]]));
        }
        break;
      }
      case QueryKind::kScenarioStep:
      case QueryKind::kShutdown:
        // Unreachable: the batcher routes mutating kinds to
        // execute_mutating.
        response.status = Status::kError;
        response.error = "mutating request on the read-only path";
        break;
    }
  } catch (const std::exception& error) {
    response.status = Status::kError;
    response.data.clear();
    response.error = error.what();
  }
  return response;
}

Response WorldSession::execute_mutating(const Request& request) {
  Response response;
  response.id = request.id;
  const std::string invalid = validate_request(request);
  if (!invalid.empty()) {
    response.status = Status::kError;
    response.error = invalid;
    return response;
  }
  try {
    switch (request.kind) {
      case QueryKind::kScenarioStep: {
        world_->run_hours(static_cast<int>(request.hours));
        Request stats_probe;
        stats_probe.id = request.id;
        stats_probe.kind = QueryKind::kStats;
        return execute_readonly(stats_probe);
      }
      case QueryKind::kShutdown:
        shutdown_ = true;
        response.data.push_back("bye");
        break;
      default:
        response.status = Status::kError;
        response.error = "read-only request on the mutating path";
        break;
    }
  } catch (const std::exception& error) {
    response.status = Status::kError;
    response.data.clear();
    response.error = error.what();
  }
  return response;
}

}  // namespace torsim::serve
