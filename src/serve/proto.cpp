#include "serve/proto.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace torsim::serve {
namespace {

constexpr std::string_view kRequestHeader = "torsim-serve-v1 request";
constexpr std::string_view kResponseHeader = "torsim-serve-v1 response";
constexpr std::string_view kDataIndent = "  ";

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::invalid_argument("serve parse error at line " +
                              std::to_string(line_no + 1) + ": " + message);
}

std::uint64_t parse_u64(std::string_view value, std::size_t line_no,
                        const std::string& what) {
  std::size_t consumed = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(std::string(value), &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  if (consumed != value.size() || value.empty() || value.front() == '-')
    fail(line_no, what + " must be a non-negative integer, got '" +
                      std::string(value) + "'");
  return parsed;
}

/// Cursor over pre-split lines. Significant lines are everything except
/// blanks and '#' comments; data payload lines are read raw (a payload
/// may legitimately start with '#').
struct LineCursor {
  const std::vector<std::string>& lines;
  std::size_t pos = 0;

  std::size_t peek() const {
    std::size_t i = pos;
    while (i < lines.size()) {
      const std::string_view t = util::trim(lines[i]);
      if (!t.empty() && t.front() != '#') break;
      ++i;
    }
    return i;
  }

  bool at_end() const { return peek() >= lines.size(); }

  std::size_t next(const std::string& what) {
    const std::size_t i = peek();
    if (i >= lines.size())
      fail(lines.size(), "unexpected end of input: expected " + what);
    pos = i + 1;
    return i;
  }
};

struct Field {
  std::string value;
  std::size_t line_no = 0;
};

/// Consumes the next significant line, which must be "<key> <value>".
Field expect_field(LineCursor& cursor, std::string_view key) {
  const std::size_t i = cursor.next("'" + std::string(key) + "'");
  const std::string_view line = util::trim(cursor.lines[i]);
  const std::size_t space = line.find(' ');
  const std::string_view got =
      space == std::string_view::npos ? line : line.substr(0, space);
  if (got != key)
    fail(i, "expected '" + std::string(key) + "', got '" + std::string(got) +
                "'");
  const std::string_view value =
      space == std::string_view::npos
          ? std::string_view{}
          : util::trim(line.substr(space + 1));
  if (value.empty())
    fail(i, "'" + std::string(key) + "' needs a value");
  return {std::string(value), i};
}

std::uint64_t expect_u64(LineCursor& cursor, std::string_view key) {
  const Field f = expect_field(cursor, key);
  return parse_u64(f.value, f.line_no, "'" + std::string(key) + "'");
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < text.size())
        lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

Request parse_request_at(LineCursor& cursor) {
  const std::size_t header_line = cursor.next("the request header");
  if (util::trim(cursor.lines[header_line]) != kRequestHeader)
    fail(header_line, "expected '" + std::string(kRequestHeader) +
                          "' header, got '" +
                          std::string(util::trim(cursor.lines[header_line])) +
                          "'");
  Request request;
  request.id = expect_u64(cursor, "id");
  request.client = expect_u64(cursor, "client");
  const Field kind_field = expect_field(cursor, "kind");
  try {
    request.kind = query_kind_from_name(kind_field.value);
  } catch (const std::invalid_argument& error) {
    fail(kind_field.line_no, error.what());
  }
  switch (request.kind) {
    case QueryKind::kStats:
    case QueryKind::kShutdown:
      break;
    case QueryKind::kHarvest:
    case QueryKind::kResolve:
      request.first = expect_u64(cursor, "first");
      request.count = expect_u64(cursor, "count");
      break;
    case QueryKind::kScan:
      request.first = expect_u64(cursor, "first");
      request.count = expect_u64(cursor, "count");
      request.seed = expect_u64(cursor, "seed");
      break;
    case QueryKind::kPopularity:
      request.requests = expect_u64(cursor, "requests");
      request.top = expect_u64(cursor, "top");
      request.seed = expect_u64(cursor, "seed");
      break;
    case QueryKind::kScenarioStep:
      request.hours = expect_u64(cursor, "hours");
      break;
  }
  return request;
}

void reject_trailing(const LineCursor& cursor) {
  if (!cursor.at_end())
    fail(cursor.peek(), "unexpected trailing content '" +
                            std::string(util::trim(
                                cursor.lines[cursor.peek()])) +
                            "'");
}

}  // namespace

std::string_view query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::kStats: return "stats";
    case QueryKind::kHarvest: return "harvest";
    case QueryKind::kResolve: return "resolve";
    case QueryKind::kScan: return "scan";
    case QueryKind::kPopularity: return "popularity";
    case QueryKind::kScenarioStep: return "scenario-step";
    case QueryKind::kShutdown: return "shutdown";
  }
  return "unknown";
}

QueryKind query_kind_from_name(std::string_view name) {
  if (name == "stats") return QueryKind::kStats;
  if (name == "harvest") return QueryKind::kHarvest;
  if (name == "resolve") return QueryKind::kResolve;
  if (name == "scan") return QueryKind::kScan;
  if (name == "popularity") return QueryKind::kPopularity;
  if (name == "scenario-step") return QueryKind::kScenarioStep;
  if (name == "shutdown") return QueryKind::kShutdown;
  throw std::invalid_argument("unknown query kind '" + std::string(name) +
                              "'");
}

bool is_mutating(QueryKind kind) {
  return kind == QueryKind::kScenarioStep || kind == QueryKind::kShutdown;
}

std::string_view status_name(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kError: return "error";
    case Status::kRetryAfter: return "retry-after";
  }
  return "unknown";
}

Status status_from_name(std::string_view name) {
  if (name == "ok") return Status::kOk;
  if (name == "error") return Status::kError;
  if (name == "retry-after") return Status::kRetryAfter;
  throw std::invalid_argument("unknown status '" + std::string(name) + "'");
}

Request parse_request(std::string_view text) {
  const std::vector<std::string> lines = split_lines(text);
  LineCursor cursor{lines};
  const Request request = parse_request_at(cursor);
  reject_trailing(cursor);
  return request;
}

std::string render_request(const Request& request) {
  std::string out(kRequestHeader);
  out += '\n';
  out += "id " + std::to_string(request.id) + '\n';
  out += "client " + std::to_string(request.client) + '\n';
  out += "kind " + std::string(query_kind_name(request.kind)) + '\n';
  switch (request.kind) {
    case QueryKind::kStats:
    case QueryKind::kShutdown:
      break;
    case QueryKind::kHarvest:
    case QueryKind::kResolve:
      out += "first " + std::to_string(request.first) + '\n';
      out += "count " + std::to_string(request.count) + '\n';
      break;
    case QueryKind::kScan:
      out += "first " + std::to_string(request.first) + '\n';
      out += "count " + std::to_string(request.count) + '\n';
      out += "seed " + std::to_string(request.seed) + '\n';
      break;
    case QueryKind::kPopularity:
      out += "requests " + std::to_string(request.requests) + '\n';
      out += "top " + std::to_string(request.top) + '\n';
      out += "seed " + std::to_string(request.seed) + '\n';
      break;
    case QueryKind::kScenarioStep:
      out += "hours " + std::to_string(request.hours) + '\n';
      break;
  }
  return out;
}

Response parse_response(std::string_view text) {
  const std::vector<std::string> lines = split_lines(text);
  LineCursor cursor{lines};

  const std::size_t header_line = cursor.next("the response header");
  if (util::trim(lines[header_line]) != kResponseHeader)
    fail(header_line, "expected '" + std::string(kResponseHeader) +
                          "' header, got '" +
                          std::string(util::trim(lines[header_line])) + "'");
  Response response;
  response.id = expect_u64(cursor, "id");
  const Field status_field = expect_field(cursor, "status");
  try {
    response.status = status_from_name(status_field.value);
  } catch (const std::invalid_argument& error) {
    fail(status_field.line_no, error.what());
  }
  switch (response.status) {
    case Status::kOk: {
      const std::uint64_t n = expect_u64(cursor, "data");
      for (std::uint64_t j = 0; j < n; ++j) {
        if (cursor.pos >= lines.size())
          fail(lines.size(), "unexpected end of input: expected data line " +
                                 std::to_string(j + 1) + " of " +
                                 std::to_string(n));
        const std::string& raw = lines[cursor.pos];
        if (!util::starts_with(raw, kDataIndent))
          fail(cursor.pos, "data line must start with two spaces");
        const std::string content = raw.substr(kDataIndent.size());
        if (content.empty() || content.front() == ' ')
          fail(cursor.pos, "data line must carry non-indented content");
        response.data.push_back(content);
        ++cursor.pos;
      }
      break;
    }
    case Status::kError: {
      const Field f = expect_field(cursor, "error");
      response.error = f.value;
      break;
    }
    case Status::kRetryAfter:
      response.retry_after = expect_u64(cursor, "retry-after");
      break;
  }
  reject_trailing(cursor);
  return response;
}

std::string render_response(const Response& response) {
  std::string out(kResponseHeader);
  out += '\n';
  out += "id " + std::to_string(response.id) + '\n';
  out += "status " + std::string(status_name(response.status)) + '\n';
  switch (response.status) {
    case Status::kOk:
      out += "data " + std::to_string(response.data.size()) + '\n';
      for (const std::string& line : response.data) {
        out += kDataIndent;
        out += line;
        out += '\n';
      }
      break;
    case Status::kError:
      out += "error " + response.error + '\n';
      break;
    case Status::kRetryAfter:
      out += "retry-after " + std::to_string(response.retry_after) + '\n';
      break;
  }
  return out;
}

std::vector<Request> parse_script(std::string_view text) {
  const std::vector<std::string> lines = split_lines(text);
  LineCursor cursor{lines};
  std::vector<Request> requests;
  while (!cursor.at_end()) requests.push_back(parse_request_at(cursor));
  return requests;
}

std::string validate_request(const Request& request) {
  switch (request.kind) {
    case QueryKind::kStats:
    case QueryKind::kShutdown:
      break;
    case QueryKind::kHarvest:
    case QueryKind::kResolve:
    case QueryKind::kScan:
      if (request.count == 0) return "count must be >= 1";
      break;
    case QueryKind::kPopularity:
      if (request.requests == 0) return "requests must be >= 1";
      if (request.top == 0) return "top must be >= 1";
      break;
    case QueryKind::kScenarioStep:
      if (request.hours == 0) return "hours must be >= 1";
      break;
  }
  return {};
}

std::string encode_frame(std::string_view body) {
  if (body.size() > kMaxFrameBytes)
    throw std::invalid_argument(
        "serve frame error: body of " + std::to_string(body.size()) +
        " bytes exceeds the frame cap");
  std::string frame;
  frame.reserve(4 + body.size());
  const std::uint32_t n = static_cast<std::uint32_t>(body.size());
  frame.push_back(static_cast<char>((n >> 24) & 0xff));
  frame.push_back(static_cast<char>((n >> 16) & 0xff));
  frame.push_back(static_cast<char>((n >> 8) & 0xff));
  frame.push_back(static_cast<char>(n & 0xff));
  frame.append(body);
  return frame;
}

std::size_t FrameReader::feed(std::string_view bytes) {
  if (poisoned_)
    throw std::invalid_argument(
        "serve frame error: reader poisoned by an oversized frame");
  buffer_.append(bytes);
  while (buffer_.size() - read_pos_ >= 4) {
    const auto* p =
        reinterpret_cast<const unsigned char*>(buffer_.data() + read_pos_);
    const std::uint32_t n = (static_cast<std::uint32_t>(p[0]) << 24) |
                            (static_cast<std::uint32_t>(p[1]) << 16) |
                            (static_cast<std::uint32_t>(p[2]) << 8) |
                            static_cast<std::uint32_t>(p[3]);
    if (n > kMaxFrameBytes) {
      poisoned_ = true;
      throw std::invalid_argument(
          "serve frame error: declared length " + std::to_string(n) +
          " exceeds the frame cap");
    }
    if (buffer_.size() - read_pos_ < 4 + static_cast<std::size_t>(n)) break;
    complete_.emplace_back(buffer_, read_pos_ + 4, n);
    read_pos_ += 4 + static_cast<std::size_t>(n);
  }
  if (read_pos_ > 0 && read_pos_ == buffer_.size()) {
    buffer_.clear();
    read_pos_ = 0;
  } else if (read_pos_ > (std::size_t{64} << 10)) {
    buffer_.erase(0, read_pos_);
    read_pos_ = 0;
  }
  return complete_.size();
}

bool FrameReader::next_frame(std::string& body) {
  if (complete_.empty()) return false;
  body = std::move(complete_.front());
  complete_.erase(complete_.begin());
  return true;
}

}  // namespace torsim::serve
