// Blocking protocol client for torsimd's unix socket: the building
// block of the load generator and of test harnesses. One Client is one
// connection; it is not thread-safe (each load-generator worker owns
// its own).
#pragma once

#include <string>

#include "serve/proto.hpp"

namespace torsim::serve {

class Client {
 public:
  /// Remembers the path; connect() establishes the connection.
  explicit Client(std::string socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (closing any previous connection). Throws
  /// std::runtime_error on failure.
  void connect();
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Sends one request frame. Throws std::runtime_error on a dead
  /// connection.
  void send(const Request& request);

  /// Blocks for the next response frame (any id). Throws
  /// std::runtime_error on connection loss or receive timeout, and
  /// std::invalid_argument when the peer's frame fails strict parsing
  /// (a garbled connection — reconnect and resend).
  Response receive();

  /// Closed-loop round trip: send, then receive until the response id
  /// matches `request.id` (responses for other ids — stale retries —
  /// are discarded). Retry-after responses are returned to the caller,
  /// which owns the back-off policy.
  Response call(const Request& request);

  /// Receive timeout; guards tests against a wedged daemon.
  void set_timeout_millis(int millis) { timeout_millis_ = millis; }

 private:
  std::string socket_path_;
  int fd_ = -1;
  int timeout_millis_ = 10000;
  FrameReader reader_;
};

}  // namespace torsim::serve
