// torsim-serve-v1: the wire protocol between the warm-world daemon
// (torsimd) and its clients (torsim load / torsim query scripts).
//
// A message is a length-prefixed frame (4-byte big-endian length, then
// that many bytes of text) whose body is a small line-oriented document
// in the scenario-DSL house style: fixed header line, fixed field
// order, strict parse with 1-based line-numbered errors, and a
// canonical renderer with parse(render(x)) == x. See docs/serving.md
// for the full specification and the determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace torsim::serve {

/// Protocol version; bumped on any wire-visible change.
inline constexpr int kProtocolVersion = 1;

/// Hard cap on one frame's body; a peer announcing a larger frame is
/// malformed (or garbled) and the connection is torn down.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{1} << 20;

/// The typed queries a WorldSession executes.
enum class QueryKind {
  kStats,         ///< network totals at the current hour
  kHarvest,       ///< service snapshots (onion, descriptor ids) for a range
  kResolve,       ///< read-only descriptor resolution probe for a range
  kScan,          ///< simulated port scan over a range
  kPopularity,    ///< Zipf-weighted fetch tally, top-N services
  kScenarioStep,  ///< advance the world N hours (mutating)
  kShutdown,      ///< stop the daemon after acknowledging (mutating)
};

/// Canonical kind name ("scenario-step" style slugs).
std::string_view query_kind_name(QueryKind kind);

/// Inverse of query_kind_name; throws std::invalid_argument on unknown
/// names.
QueryKind query_kind_from_name(std::string_view name);

/// True for kinds that mutate the world: the batcher executes them as
/// serial barriers instead of fanning them out (docs/serving.md).
bool is_mutating(QueryKind kind);

/// One request. `id` is the client's correlation id (echoed back in
/// the response); `client` is the client's self-assigned id, used by
/// the batcher's (arrival-seq, client) ordering. The remaining fields
/// are per-kind parameters; unused ones must stay 0 (the canonical
/// renderer only emits the fields meaningful for the kind, so a
/// request with stray values would not survive a render/parse
/// round-trip).
struct Request {
  std::uint64_t id = 0;
  std::uint64_t client = 0;
  QueryKind kind = QueryKind::kStats;
  std::uint64_t first = 0;     ///< harvest/resolve/scan: first service index
  std::uint64_t count = 0;     ///< harvest/resolve/scan: number of services
  std::uint64_t seed = 0;      ///< scan/popularity: query-local RNG label
  std::uint64_t requests = 0;  ///< popularity: fetches to draw
  std::uint64_t top = 0;       ///< popularity: ranks to report
  std::uint64_t hours = 0;     ///< scenario-step: hours to advance

  bool operator==(const Request&) const = default;
};

enum class Status {
  kOk,
  kError,       ///< request was understood but failed; see `error`
  kRetryAfter,  ///< admission control rejected; retry after `retry_after`
};

std::string_view status_name(Status status);
Status status_from_name(std::string_view name);

/// One response. `data` carries the payload lines for kOk (rendered
/// with a two-space indent on the wire); `error` the message for
/// kError; `retry_after` the back-off hint in batch ticks for
/// kRetryAfter.
struct Response {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::string error;
  std::uint64_t retry_after = 0;
  std::vector<std::string> data;

  bool operator==(const Response&) const = default;
};

// --- document parse/render ----------------------------------------

/// Parses one request document. Strict: fixed field order, no unknown
/// keys, full-consumption integers, per-kind parameter validation.
/// Blank lines and '#' comments are ignored. Throws
/// std::invalid_argument("serve parse error at line N: ...").
Request parse_request(std::string_view text);

/// Canonical request rendering; parse_request(render_request(r)) == r
/// for every valid request.
std::string render_request(const Request& request);

/// Parses one response document; same strictness and error style.
Response parse_response(std::string_view text);

/// Canonical response rendering; round-trips like render_request.
std::string render_response(const Response& response);

/// Parses a script: a sequence of request documents (each starting
/// with its header line) separated by optional blank lines/comments.
/// Line numbers in errors refer to the whole script.
std::vector<Request> parse_script(std::string_view text);

/// Validates per-kind parameters beyond what parsing enforces (e.g.
/// count > 0 for range queries); returns a non-empty message on the
/// first violation, empty when valid. The session rejects invalid
/// requests with a kError response built from this message.
std::string validate_request(const Request& request);

// --- framing -------------------------------------------------------

/// Wraps a document body into a frame: 4-byte big-endian length, then
/// the body bytes. Throws std::invalid_argument when the body exceeds
/// kMaxFrameBytes.
std::string encode_frame(std::string_view body);

/// Incremental frame decoder for one connection: feed() raw bytes as
/// they arrive, take complete bodies out of frames(). A declared
/// length above kMaxFrameBytes poisons the reader — feed() throws
/// std::invalid_argument then and on every later call, and the caller
/// must drop the connection.
class FrameReader {
 public:
  /// Appends raw bytes; returns the number of complete frames now
  /// available via next_frame().
  std::size_t feed(std::string_view bytes);

  /// Pops the oldest complete frame body; returns false when none is
  /// pending.
  bool next_frame(std::string& body);

  /// Bytes buffered but not yet forming a complete frame.
  std::size_t pending_bytes() const { return buffer_.size() - read_pos_; }

 private:
  std::string buffer_;
  std::vector<std::string> complete_;
  std::size_t read_pos_ = 0;
  bool poisoned_ = false;
};

}  // namespace torsim::serve
