#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace torsim::serve {

Client::Client(std::string socket_path)
    : socket_path_(std::move(socket_path)) {}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  reader_ = FrameReader();
}

void Client::connect() {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.empty() || socket_path_.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("serve client: bad socket path '" +
                             socket_path_ + "'");
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error(std::string("serve client: socket: ") +
                             std::strerror(errno));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    close();
    throw std::runtime_error("serve client: connect '" + socket_path_ +
                             "': " + std::strerror(saved));
  }
  timeval tv{};
  tv.tv_sec = timeout_millis_ / 1000;
  tv.tv_usec = (timeout_millis_ % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

void Client::send(const Request& request) {
  if (fd_ < 0) throw std::runtime_error("serve client: not connected");
  const std::string frame = encode_frame(render_request(request));
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int saved = errno;
    close();
    throw std::runtime_error(std::string("serve client: send: ") +
                             std::strerror(saved));
  }
}

Response Client::receive() {
  if (fd_ < 0) throw std::runtime_error("serve client: not connected");
  std::string body;
  while (!reader_.next_frame(body)) {
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      // A framing error (oversized/garbled length) poisons the reader;
      // surface it as std::invalid_argument for the caller's
      // reconnect path.
      reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int saved = errno;
    close();
    if (n == 0)
      throw std::runtime_error("serve client: connection closed by peer");
    if (saved == EAGAIN || saved == EWOULDBLOCK)
      throw std::runtime_error("serve client: receive timed out");
    throw std::runtime_error(std::string("serve client: recv: ") +
                             std::strerror(saved));
  }
  return parse_response(body);
}

Response Client::call(const Request& request) {
  send(request);
  for (;;) {
    const Response response = receive();
    if (response.id == request.id) return response;
  }
}

}  // namespace torsim::serve
