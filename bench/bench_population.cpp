// Data-layout bench: the SoA population columns vs the retired
// array-of-structs layout (ROADMAP item 3, docs/data-layout.md).
//
// Measures three things and exports them in the BENCH_population.json
// "population" section:
//   * deterministic byte accounting from Population::memory_footprint()
//     (column/index/interner bytes vs the legacy per-record cost),
//   * the *observed* resident-set delta of building each layout's
//     identity shell (keys/profiles excluded from both, so the delta
//     difference is purely the string-vs-intern-id storage),
//   * hsdir descriptor-arena telemetry after a publish/refresh round
//     (payload bytes live vs held, compaction count).
// The section also carries peak_rss_budget_bytes — the ceiling
// tools/check_bench_json.py enforces against the document's own
// peak_rss_bytes, and tools/check_rss_budget.py tracks across commits.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "hsdir/descriptor.hpp"
#include "hsdir/store.hpp"
#include "util/interner.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace {

using namespace torsim;

void BM_PopulationGenerate(benchmark::State& state) {
  for (auto _ : state) {
    population::PopulationConfig config;
    config.seed = 1;
    config.scale = 0.02;
    auto pop = population::Population::generate(config);
    benchmark::DoNotOptimize(pop.size());
  }
}
BENCHMARK(BM_PopulationGenerate)->Unit(benchmark::kMillisecond);

// The by-onion join every pipeline leans on (resolver labels, crawler
// liveness): hash lookup keyed by interner-backed string_view.
void BM_FindByOnion(benchmark::State& state) {
  const auto& pop = bench::full_population();
  std::vector<std::string> probes;
  probes.reserve(1024);
  for (std::size_t i = 0; i < 1024; ++i)
    probes.emplace_back(
        pop.onion(static_cast<population::ServiceId>(i % pop.size())));
  std::size_t hits = 0;
  for (auto _ : state) {
    for (const std::string& onion : probes)
      if (pop.find(onion)) ++hits;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_FindByOnion)->Unit(benchmark::kMicrosecond);

// Column sweep vs handle sweep: the facade's per-id accessors against a
// direct column read, to keep the abstraction's cost on the record.
void BM_SweepRequestRates(benchmark::State& state) {
  const auto& pop = bench::full_population();
  double total = 0.0;
  for (auto _ : state) {
    total = 0.0;
    for (const auto svc : pop.services()) total += svc.requests_per_2h();
    benchmark::DoNotOptimize(total);
  }
  state.counters["requested_total"] = total;
}
BENCHMARK(BM_SweepRequestRates)->Unit(benchmark::kMicrosecond);

/// Legacy identity shell: what the retired ServiceRecord kept per
/// service once keys/profiles are excluded — three owned strings plus
/// the scalar fields.
struct LegacyShell {
  std::string onion;
  std::string label;
  std::string paper_alias;
  population::ServiceClass klass{};
  content::Topic topic{};
  content::Language language{};
  bool published_at_scan = false;
  double daily_availability = 0.0;
  bool alive_at_crawl = false;
  double requests_per_2h = 0.0;
  int paper_rank = 0;
  int physical_server = -1;
};

/// SoA identity shell: the same fields as columns, strings as intern
/// ids (interning is a no-op here — generate() already interned every
/// string, so building this allocates column storage only).
struct SoaShell {
  std::vector<util::StringInterner::Id> onions, labels, aliases;
  std::vector<population::ServiceClass> klasses;
  std::vector<content::Topic> topics;
  std::vector<content::Language> languages;
  std::vector<std::uint8_t> published, alive;
  std::vector<double> availability, requests;
  std::vector<std::int32_t> ranks, servers;
};

struct RssMeasurement {
  std::int64_t legacy_delta = 0;
  std::int64_t soa_delta = 0;
};

/// Builds the legacy shell, then the SoA shell, reading the resident
/// set around each build. Both shells stay live until both deltas are
/// read, so the second build cannot recycle the first one's pages.
RssMeasurement measure_layout_rss() {
  const auto& pop = bench::full_population();
  const auto n = pop.size();
  RssMeasurement out;

  const std::int64_t rss0 = obs::current_rss_bytes();
  std::vector<LegacyShell> legacy;
  legacy.reserve(n);
  for (const auto svc : pop.services()) {
    LegacyShell rec;
    rec.onion = std::string(svc.onion());
    rec.label = std::string(svc.label());
    rec.paper_alias = std::string(svc.paper_alias());
    rec.klass = svc.klass();
    rec.topic = svc.topic();
    rec.language = svc.language();
    rec.published_at_scan = svc.published_at_scan();
    rec.daily_availability = svc.daily_availability();
    rec.alive_at_crawl = svc.alive_at_crawl();
    rec.requests_per_2h = svc.requests_per_2h();
    rec.paper_rank = svc.paper_rank();
    rec.physical_server = svc.physical_server();
    legacy.push_back(std::move(rec));
  }
  const std::int64_t rss1 = obs::current_rss_bytes();

  SoaShell soa;
  soa.onions.reserve(n);
  soa.labels.reserve(n);
  soa.aliases.reserve(n);
  soa.klasses.reserve(n);
  soa.topics.reserve(n);
  soa.languages.reserve(n);
  soa.published.reserve(n);
  soa.alive.reserve(n);
  soa.availability.reserve(n);
  soa.requests.reserve(n);
  soa.ranks.reserve(n);
  soa.servers.reserve(n);
  util::StringInterner& interner = util::global_interner();
  for (const auto svc : pop.services()) {
    soa.onions.push_back(interner.intern(svc.onion()));
    soa.labels.push_back(interner.intern(svc.label()));
    soa.aliases.push_back(interner.intern(svc.paper_alias()));
    soa.klasses.push_back(svc.klass());
    soa.topics.push_back(svc.topic());
    soa.languages.push_back(svc.language());
    soa.published.push_back(svc.published_at_scan() ? 1 : 0);
    soa.alive.push_back(svc.alive_at_crawl() ? 1 : 0);
    soa.availability.push_back(svc.daily_availability());
    soa.requests.push_back(svc.requests_per_2h());
    soa.ranks.push_back(svc.paper_rank());
    soa.servers.push_back(svc.physical_server());
  }
  const std::int64_t rss2 = obs::current_rss_bytes();

  benchmark::DoNotOptimize(legacy.size());
  benchmark::DoNotOptimize(soa.onions.size());
  out.legacy_delta = rss1 - rss0;
  out.soa_delta = rss2 - rss1;
  return out;
}

/// Publish + refresh round against one DescriptorStore: every refresh
/// orphans the old payload span, and the epoch change triggers the
/// dead-dominated compaction.
void arena_round(obs::PopulationSummary& summary) {
  const auto& pop = bench::full_population();
  util::Rng rng(77);
  hsdir::DescriptorStore store;
  const std::size_t count =
      std::min<std::size_t>(pop.size(), 2000);
  const util::UnixTime t0 = util::make_utc(2013, 2, 14);
  std::vector<crypto::Fingerprint> intros(3);
  for (auto& fp : intros)
    for (auto& byte : fp) byte = static_cast<std::uint8_t>(rng.index(256));

  store.observe_epoch(1);
  for (std::size_t i = 0; i < count; ++i)
    store.store(hsdir::make_descriptor(pop.service(
        static_cast<population::ServiceId>(i)).key(), intros, 0, t0));
  // Two refresh rounds: same ids, fresh payload spans each time — two
  // thirds of the arena is now dead (strictly more than live, which is
  // the compaction trigger).
  for (int round = 0; round < 2; ++round)
    for (std::size_t i = 0; i < count; ++i)
      store.store(hsdir::make_descriptor(pop.service(
          static_cast<population::ServiceId>(i)).key(), intros, 0, t0));
  // Next consensus generation: dead > live, so this compacts.
  store.observe_epoch(2);

  summary.arena_bytes = static_cast<std::int64_t>(store.arena_bytes());
  summary.arena_live_bytes =
      static_cast<std::int64_t>(store.live_payload_bytes());
  summary.arena_compactions = store.compactions();
}

void print_population_section() {
  const auto& pop = bench::full_population();
  const auto footprint = pop.memory_footprint();
  const RssMeasurement rss = measure_layout_rss();

  obs::PopulationSummary summary;
  summary.services = static_cast<std::int64_t>(footprint.services);
  summary.column_bytes = static_cast<std::int64_t>(footprint.column_bytes);
  summary.index_bytes = static_cast<std::int64_t>(footprint.index_bytes);
  summary.interner_bytes =
      static_cast<std::int64_t>(footprint.interner_bytes);
  summary.interner_strings =
      static_cast<std::int64_t>(util::global_interner().size());
  summary.legacy_record_bytes =
      static_cast<std::int64_t>(footprint.legacy_record_bytes);
  summary.legacy_rss_delta_bytes = rss.legacy_delta;
  summary.soa_rss_delta_bytes = rss.soa_delta;
  arena_round(summary);
  // Ceiling with ~3-5x headroom over observed peaks (8 MiB at scale
  // 0.05, 24 MiB at 0.5): a fixed floor for the binary + allocator
  // slack plus a per-scale population allowance.
  // tools/check_bench_json.py fails the document if peak RSS crosses
  // it, and tools/check_rss_budget.py flags >10% regressions vs the
  // committed baseline, so layout regressions surface in CI.
  summary.peak_rss_budget_bytes =
      64ll * 1024 * 1024 +
      static_cast<std::int64_t>(bench::scale() * 128.0 * 1024.0 * 1024.0);
  bench::report().set_population_summary(summary);

  bench::print_header("Data layout — SoA columns vs legacy records");
  bench::print_row("services", static_cast<double>(summary.services), 0.0);
  bench::print_row("column_bytes",
                   static_cast<double>(summary.column_bytes), 0.0);
  bench::print_row("legacy_record_bytes",
                   static_cast<double>(summary.legacy_record_bytes), 0.0);
  bench::print_row("interner_bytes",
                   static_cast<double>(summary.interner_bytes), 0.0);
  std::printf("  shell RSS delta: legacy %lld bytes, soa %lld bytes, "
              "reduction %lld bytes\n",
              static_cast<long long>(rss.legacy_delta),
              static_cast<long long>(rss.soa_delta),
              static_cast<long long>(rss.legacy_delta - rss.soa_delta));
  std::printf("  descriptor arena: %lld bytes held, %lld live, "
              "%lld compactions\n",
              static_cast<long long>(summary.arena_bytes),
              static_cast<long long>(summary.arena_live_bytes),
              static_cast<long long>(summary.arena_compactions));
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("population", &argc, argv);
  torsim::bench::run_benchmarks();
  print_population_section();
  return torsim::bench::finish();
}
