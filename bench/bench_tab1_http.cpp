// Table I: HTTP and HTTPS access — onion-address counts per port among
// the destinations the crawler could connect to two months after the
// scan (80: 3741, 443: 1289, 22: 1094, 8080: 4, other: 451 in the
// paper), plus the crawl funnel (8,153 -> 7,114 -> 6,579) and the
// Sec. III certificate analysis.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace torsim;

void BM_Crawl(benchmark::State& state) {
  const auto& pop = bench::full_population();
  const auto& scan_report = bench::full_scan();
  for (auto _ : state) {
    scan::Crawler crawler(scan::CrawlConfig{.seed = 3,
                                            .connect_success = 0.975});
    auto report = crawler.crawl(pop, scan_report);
    benchmark::DoNotOptimize(report.connected);
  }
}
BENCHMARK(BM_Crawl)->Unit(benchmark::kMillisecond);

void BM_CertAnalysis(benchmark::State& state) {
  const auto& pop = bench::full_population();
  const auto& scan_report = bench::full_scan();
  for (auto _ : state) {
    auto report = scan::analyse_certificates(pop, scan_report);
    benchmark::DoNotOptimize(report.certificates_seen);
  }
}
BENCHMARK(BM_CertAnalysis)->Unit(benchmark::kMillisecond);

void print_table1() {
  const auto& crawl = bench::full_crawl();
  const auto& paper = population::paper();

  bench::print_header("Table I — HTTP(S) access");
  bench::print_row("crawl destinations",
                   static_cast<double>(crawl.destinations),
                   static_cast<double>(paper.crawl_destinations));
  bench::print_row("still open", static_cast<double>(crawl.still_open),
                   static_cast<double>(paper.crawl_open));
  bench::print_row("connected (HTTP/HTTPS)",
                   static_cast<double>(crawl.connected),
                   static_cast<double>(paper.crawl_connected));

  // Per-port counts among connected destinations.
  std::int64_t p80 = 0, p443 = 0, p22 = 0, p8080 = 0, other = 0;
  for (const auto& page : crawl.pages) {
    switch (page.port) {
      case 80: ++p80; break;
      case 443: ++p443; break;
      case 22: ++p22; break;
      case 8080: ++p8080; break;
      default: ++other; break;
    }
  }
  std::printf("\n  Port  measured   paper\n");
  std::printf("  80    %8lld    3741\n", static_cast<long long>(p80));
  std::printf("  443   %8lld    1289\n", static_cast<long long>(p443));
  std::printf("  22    %8lld    1094\n", static_cast<long long>(p22));
  std::printf("  8080  %8lld       4\n", static_cast<long long>(p8080));
  std::printf("  other %8lld     451\n", static_cast<long long>(other));

  const auto certs =
      scan::analyse_certificates(bench::full_population(), bench::full_scan());
  std::printf("\n  HTTPS certificates (Sec. III):\n");
  bench::print_row("self-signed CN mismatch",
                   static_cast<double>(certs.selfsigned_mismatch),
                   static_cast<double>(paper.certs_selfsigned_mismatch));
  bench::print_row("TorHost shared CN",
                   static_cast<double>(certs.torhost_cn),
                   static_cast<double>(paper.certs_torhost_cn));
  bench::print_row("public-DNS CN (deanonymising)",
                   static_cast<double>(certs.public_dns_cn),
                   static_cast<double>(paper.certs_public_dns_cn));
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("tab1_http", &argc, argv);
  torsim::bench::run_benchmarks();
  print_table1();
  return torsim::bench::finish();
}
