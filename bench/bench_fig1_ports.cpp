// Figure 1: open-ports distribution over the harvested hidden services.
//
// Regenerates the paper's bar chart: port 55080 (Skynet) dominating with
// >50% of open ports, then 80/443/22/11009/4050/6667 and the long tail
// of ~495 unique ports, from a full-scale (39,824-service) population
// and the multi-day scan with churn.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace torsim;

void BM_PopulationGenerate(benchmark::State& state) {
  for (auto _ : state) {
    population::PopulationConfig config;
    config.seed = 1;
    config.scale = 0.02;
    auto pop = population::Population::generate(config);
    benchmark::DoNotOptimize(pop.size());
  }
}
BENCHMARK(BM_PopulationGenerate)->Unit(benchmark::kMillisecond);

// Serial-vs-parallel sweep: the argument is the `threads` knob
// (1 = legacy serial path). Results are bit-identical across arguments;
// only wall-clock changes, so BENCH_*.json records the speedup curve.
void BM_FullPortScan(benchmark::State& state) {
  const auto& pop = bench::full_population();
  const int threads = static_cast<int>(state.range(0));
  std::int64_t open_total = -1;
  for (auto _ : state) {
    scan::PortScanner scanner(scan::ScanConfig{.seed = 2,
                                               .scan_days = 8,
                                               .probe_timeout_probability =
                                                   0.02,
                                               .threads = threads});
    auto report = scanner.scan(pop);
    open_total = report.open_ports.total();
    benchmark::DoNotOptimize(open_total);
  }
  // Cross-argument determinism check, recorded in the JSON counters.
  state.counters["open_ports"] = static_cast<double>(open_total);
}
BENCHMARK(BM_FullPortScan)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void print_figure1() {
  const auto& report = bench::full_scan();
  const auto& paper = population::paper();

  bench::print_header("Figure 1 — open ports distribution");
  std::printf("  descriptors available: measured %lld, paper %lld\n",
              static_cast<long long>(report.descriptors_available),
              static_cast<long long>(paper.descriptors_at_scan));
  std::printf("  open ports total:      measured %lld, paper %lld\n",
              static_cast<long long>(report.total_open_ports()),
              static_cast<long long>(paper.open_ports_total));
  std::printf("  unique port numbers:   measured %lld, paper %lld\n",
              static_cast<long long>(report.unique_ports()),
              static_cast<long long>(paper.unique_open_ports));
  std::printf("  port coverage:         measured %.2f, paper %.2f\n\n",
              report.coverage, paper.port_coverage);

  // Paper-style bar chart (threshold 50, as in the paper).
  const auto rows = report.figure1(50);
  const auto total = report.total_open_ports();
  for (const auto& [label, count] : rows)
    std::printf("  %s\n",
                stats::bar_line(label, count, total, 44).c_str());

  std::printf("\n  measured vs paper, named ports:\n");
  for (const auto& pc : paper.fig1_ports) {
    if (pc.port == 0) continue;
    bench::print_row(std::string(pc.label),
                     static_cast<double>(report.open_ports.count(pc.port)),
                     static_cast<double>(pc.count));
  }
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("fig1_ports", &argc, argv);
  torsim::bench::run_benchmarks();
  print_figure1();
  return torsim::bench::finish();
}
