// Shared fixtures for the reproduction benches: the full-scale
// population and scan, built once per binary.
#pragma once

#include <cstdio>
#include <string>

#include "population/population.hpp"
#include "scan/cert_analysis.hpp"
#include "scan/crawler.hpp"
#include "scan/port_scanner.hpp"

namespace torsim::bench {

/// The paper-scale population (39,824 services), generated once.
inline const population::Population& full_population() {
  static const population::Population pop = [] {
    population::PopulationConfig config;
    config.seed = 20130204;
    config.scale = 1.0;
    return population::Population::generate(config);
  }();
  return pop;
}

/// The full multi-day port scan of the harvested addresses.
inline const scan::ScanReport& full_scan() {
  static const scan::ScanReport report = [] {
    scan::PortScanner scanner;
    return scanner.scan(full_population());
  }();
  return report;
}

/// The crawl two months after the scan.
inline const scan::CrawlReport& full_crawl() {
  static const scan::CrawlReport report = [] {
    scan::Crawler crawler;
    return crawler.crawl(full_population(), full_scan());
  }();
  return report;
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_row(const std::string& label, double measured,
                      double paper) {
  const double ratio = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  %-28s measured %10.0f   paper %10.0f   x%.2f\n",
              label.c_str(), measured, paper, ratio);
}

}  // namespace torsim::bench
