// Shared harness for the reproduction benches: the scaled population /
// scan / crawl fixtures, the measured-vs-paper console table, and the
// BENCH_<name>.json exporter (obs::BenchReport).
//
// Every bench main follows the same shape:
//
//   int main(int argc, char** argv) {
//     torsim::bench::init("fig1_ports", &argc, argv);
//     torsim::bench::run_benchmarks();
//     print_figure1();               // bench::print_row(...) calls
//     return torsim::bench::finish();  // writes BENCH_fig1_ports.json
//   }
//
// init() strips three custom flags that google-benchmark leaves in argv:
//   --scale=S       fixture scale (default 1.0 — the paper's numbers)
//   --bench-out=DIR where BENCH_<name>.json is written (default ".")
//   --cache=MODE    on|off (default on): the deterministic memo caches
//                   (docs/performance.md); the rows section is
//                   byte-identical either way, only timings move
//   --ring-index=MODE on|off (default on): the eytzinger HSDir ring
//                   index (dirauth/ring_index.hpp); off routes every
//                   ring lookup through the kept sorted-scan oracle —
//                   same rows, only timings move
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "dirauth/ring_cache.hpp"
#include "obs/report.hpp"
#include "population/population.hpp"
#include "scan/cert_analysis.hpp"
#include "scan/crawler.hpp"
#include "scan/port_scanner.hpp"
#include "util/memo.hpp"

namespace torsim::bench {

namespace detail {

inline std::unique_ptr<obs::BenchReport>& report_slot() {
  static std::unique_ptr<obs::BenchReport> slot;
  return slot;
}

inline std::string& out_dir() {
  static std::string dir = ".";
  return dir;
}

}  // namespace detail

/// The active report. init() names it; calling report() first falls
/// back to an "unnamed" report so fixtures stay usable from tests.
inline obs::BenchReport& report() {
  auto& slot = detail::report_slot();
  if (!slot) slot = std::make_unique<obs::BenchReport>("unnamed");
  return *slot;
}

/// Fixture scale set via --scale= (1.0 = the paper-scale population).
inline double scale() { return report().scale(); }

/// ConsoleReporter that also records every run into the BENCH_*.json
/// benchmarks section (per-iteration seconds).
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      report().add_benchmark(run.benchmark_name(),
                             run.real_accumulated_time / iters,
                             run.cpu_accumulated_time / iters,
                             static_cast<std::int64_t>(run.iterations));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

/// Initialises google-benchmark, names the report, and consumes the
/// harness's own --scale= / --bench-out= flags.
inline void init(const std::string& name, int* argc, char** argv) {
  benchmark::Initialize(argc, argv);
  detail::report_slot() = std::make_unique<obs::BenchReport>(name);
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      report().set_scale(std::stod(arg.substr(8)));
      continue;
    }
    if (arg.rfind("--bench-out=", 0) == 0) {
      detail::out_dir() = arg.substr(12);
      continue;
    }
    if (arg.rfind("--cache=", 0) == 0) {
      const std::string mode = arg.substr(8);
      if (mode != "on" && mode != "off")
        throw std::invalid_argument("--cache expects on|off, got " + mode);
      util::set_memo_enabled(mode == "on");
      continue;
    }
    if (arg.rfind("--ring-index=", 0) == 0) {
      const std::string mode = arg.substr(13);
      if (mode != "on" && mode != "off")
        throw std::invalid_argument("--ring-index expects on|off, got " + mode);
      dirauth::set_ring_index_enabled(mode == "on");
      continue;
    }
    argv[kept++] = argv[i];
  }
  *argc = kept;
  if (*argc > 1)
    throw std::invalid_argument(std::string("unknown bench flag ") + argv[1]);
}

/// RunSpecifiedBenchmarks through the recording reporter.
inline void run_benchmarks() {
  RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
}

/// Writes BENCH_<name>.json into --bench-out (default "."); returns the
/// process exit code. Snapshots the memo-cache telemetry (hit/miss/evict
/// totals, see docs/performance.md) into the JSON "cache" section first.
inline int finish() {
  report().set_cache_enabled(util::memo_enabled());
  report().set_cache_stats("derivation", crypto::derivation_cache_stats());
  report().set_cache_stats("ring_lookup", dirauth::ResponsibleSetCache::stats());
  report().set_cache_stats("secret_id_part", crypto::secret_cache_stats());
  const std::string path = report().write_json(detail::out_dir());
  if (path.empty()) {
    std::fprintf(stderr, "error: cannot write BENCH_%s.json under %s\n",
                 report().name().c_str(), detail::out_dir().c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  return 0;
}

/// The scaled population (scale 1.0 = the paper's 39,824 services),
/// generated once per binary.
inline const population::Population& full_population() {
  static const population::Population pop = [] {
    const auto timer = report().phases().scope("population");
    population::PopulationConfig config;
    config.seed = 20130204;
    config.scale = scale();
    return population::Population::generate(config);
  }();
  return pop;
}

/// The full multi-day port scan of the harvested addresses.
inline const scan::ScanReport& full_scan() {
  static const scan::ScanReport report_ = [] {
    const auto timer = report().phases().scope("scan");
    scan::PortScanner scanner(
        scan::ScanConfig{.metrics = &report().metrics()});
    return scanner.scan(full_population());
  }();
  return report_;
}

/// The crawl two months after the scan.
inline const scan::CrawlReport& full_crawl() {
  static const scan::CrawlReport report_ = [] {
    const auto timer = report().phases().scope("crawl");
    scan::Crawler crawler(
        scan::CrawlConfig{.metrics = &report().metrics()});
    return crawler.crawl(full_population(), full_scan());
  }();
  return report_;
}

/// Measured-vs-paper console table, recorded into the JSON rows
/// section (obs::BenchReport prints "n/a" when paper == 0).
inline void print_header(const std::string& title) {
  report().print_header(title);
}

inline void print_row(const std::string& label, double measured,
                      double paper) {
  report().print_row(label, measured, paper);
}

}  // namespace torsim::bench
