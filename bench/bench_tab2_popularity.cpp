// Table II: ranking of the most popular hidden services by client
// descriptor-request rate over a 2-hour window — the Goldnet botnet
// head, the Skynet cluster, Silk Road at rank ~18, and the named
// services further down — plus the Sec. V resolution statistics
// (1,031,176 requests, 29,123 unique descriptor IDs, 6,113 resolved to
// 3,140 onions, ~80% unresolvable).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "crypto/digest.hpp"
#include "popularity/botnet_inference.hpp"
#include "popularity/request_generator.hpp"
#include "popularity/resolver.hpp"
#include "util/memo.hpp"
#include "util/rng.hpp"

namespace {

using namespace torsim;

const popularity::RequestStream& full_stream() {
  static const popularity::RequestStream stream = [] {
    const auto timer = bench::report().phases().scope("generate_requests");
    popularity::RequestGenerator generator(popularity::RequestGeneratorConfig{
        .metrics = &bench::report().metrics()});
    return generator.generate(bench::full_population());
  }();
  return stream;
}

struct FullResolution {
  popularity::DescriptorResolver resolver{popularity::ResolverConfig{
      .metrics = &bench::report().metrics()}};
  popularity::ResolutionReport report;
  FullResolution() {
    const auto timer = bench::report().phases().scope("resolve");
    resolver.build_dictionary(bench::full_population());
    report = resolver.resolve(full_stream(), bench::full_population());
  }
};

const FullResolution& full_resolution() {
  static const FullResolution fixture;
  return fixture;
}

void BM_GenerateRequests(benchmark::State& state) {
  const auto& pop = bench::full_population();
  for (auto _ : state) {
    popularity::RequestGenerator generator(
        popularity::RequestGeneratorConfig{.seed = 9});
    auto stream = generator.generate(pop);
    benchmark::DoNotOptimize(stream.requests.size());
  }
}
BENCHMARK(BM_GenerateRequests)->Unit(benchmark::kMillisecond);

// Descriptor-ID-derivation microbench: the resolver-shaped hot loop
// (services x days x replicas) with the memo cache forced off (cache:0)
// vs on (cache:1). The derived IDs are identical in both modes — the
// cache contract (docs/performance.md) — so only the timings differ,
// and they land in the benchmarks section, never in the rows goldens.
void BM_DeriveDescriptorIds(benchmark::State& state) {
  const util::MemoEnabledGuard cache_guard(state.range(0) != 0);
  util::Rng rng(42);
  std::vector<crypto::PermanentId> pids(512);
  for (auto& pid : pids) rng.fill_bytes(pid.data(), pid.size());
  const util::UnixTime t0 = util::make_utc(2013, 2, 4);
  for (auto _ : state) {
    std::uint32_t sink = 0;
    for (const auto& pid : pids) {
      for (int day = 0; day < 3; ++day) {
        const std::uint32_t period =
            crypto::time_period(t0 + day * util::kSecondsPerDay, pid);
        const auto ids = crypto::descriptor_ids_for_period(pid, period);
        sink ^= static_cast<std::uint32_t>(ids[0][0]) ^
                static_cast<std::uint32_t>(ids[1][19]);
      }
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_DeriveDescriptorIds)->Arg(0)->Arg(1)->ArgName("cache");

// Serial-vs-parallel sweep over the multi-day descriptor-ID derivation
// (the Sec. V dictionary): the argument is the `threads` knob. The
// dictionary is bit-identical across arguments; BENCH_*.json records
// the wall-clock speedup.
void BM_BuildDictionary(benchmark::State& state) {
  const auto& pop = bench::full_population();
  const int threads = static_cast<int>(state.range(0));
  std::size_t dict_size = 0;
  for (auto _ : state) {
    popularity::DescriptorResolver resolver(
        popularity::ResolverConfig{.threads = threads});
    resolver.build_dictionary(pop);
    dict_size = resolver.dictionary_size();
    benchmark::DoNotOptimize(dict_size);
  }
  state.counters["dictionary_size"] = static_cast<double>(dict_size);
}
BENCHMARK(BM_BuildDictionary)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ResolveStream(benchmark::State& state) {
  const auto& fixture = full_resolution();
  for (auto _ : state) {
    auto report =
        fixture.resolver.resolve(full_stream(), bench::full_population());
    benchmark::DoNotOptimize(report.resolved_onions);
  }
}
BENCHMARK(BM_ResolveStream)->Unit(benchmark::kMillisecond);

void print_table2() {
  const auto& report = full_resolution().report;
  const auto& paper = population::paper();

  bench::print_header("Sec. V — request-stream statistics");
  bench::print_row("total requests",
                   static_cast<double>(report.total_requests),
                   static_cast<double>(paper.total_requests));
  bench::print_row("unique descriptor ids",
                   static_cast<double>(report.unique_descriptor_ids),
                   static_cast<double>(paper.unique_descriptor_ids));
  bench::print_row("resolved descriptor ids",
                   static_cast<double>(report.resolved_descriptor_ids),
                   static_cast<double>(paper.resolved_descriptor_ids));
  bench::print_row("resolved onions",
                   static_cast<double>(report.resolved_onions),
                   static_cast<double>(paper.resolved_onions));
  std::printf("  unresolved request share: measured %.2f, paper %.2f\n",
              report.unresolved_request_share(),
              paper.nonexistent_request_share);

  bench::print_header("Table II — most popular hidden services");
  std::printf("  %-4s %-8s %-18s %-20s %s\n", "rank", "reqs/2h", "onion",
              "label", "paper(rank:reqs)");
  for (std::size_t i = 0; i < report.ranking.size() && i < 30; ++i) {
    const auto& row = report.ranking[i];
    std::string paper_info = "-";
    if (row.paper_rank > 0) {
      for (const auto& t2 : population::table2_rows())
        if (t2.paper_rank == row.paper_rank)
          paper_info = std::to_string(t2.paper_rank) + ":" +
                       std::to_string(t2.requests_per_2h);
    }
    std::printf("  %-4zu %-8lld %-18s %-20s %s\n", i + 1,
                static_cast<long long>(row.requests), row.onion.c_str(),
                row.label.empty() ? "-" : row.label.c_str(),
                paper_info.c_str());
  }

  const auto shares =
      popularity::category_shares(report, bench::full_population());
  std::printf("\n  request volume by category (the paper's conclusion):\n");
  std::printf("    botnet C&C %.0f%%   adult %.0f%%   markets %.0f%%   "
              "other %.0f%%\n",
              shares.botnet * 100, shares.adult * 100, shares.market * 100,
              shares.other * 100);

  // Named services deeper in the ranking (paper ranks 34..547).
  std::printf("\n  named services beyond the head:\n");
  for (std::size_t i = 0; i < report.ranking.size(); ++i) {
    const auto& row = report.ranking[i];
    if (row.paper_rank >= 31) {
      std::printf("  rank %-5zu %-8lld %-20s (paper rank %d)\n", i + 1,
                  static_cast<long long>(row.requests), row.label.c_str(),
                  row.paper_rank);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("tab2_popularity", &argc, argv);
  torsim::bench::run_benchmarks();
  print_table2();
  return torsim::bench::finish();
}
