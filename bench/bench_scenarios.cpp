// Scenario-pack sweep: one google-benchmark per curated pack under
// scenarios/ (full replay to the horizon), plus a deterministic summary
// pass that records every pack into the BENCH_scenarios.json rows and
// "scenarios" sections (schema-checked by tools/check_bench_json.py).
#include "bench_common.hpp"
#include "scenario/engine.hpp"
#include "scenario/pack.hpp"

namespace {

using namespace torsim;

const std::vector<std::string>& pack_names() {
  static const std::vector<std::string> names =
      scenario::list_packs(TORSIM_SCENARIO_DIR);
  return names;
}

void replay_pack(benchmark::State& state, const std::string& name) {
  const scenario::ScenarioPack pack =
      scenario::load_pack(TORSIM_SCENARIO_DIR, name);
  for (auto _ : state) {
    scenario::ScenarioRunConfig config;
    scenario::ScenarioRunReport report = scenario::run_pack(pack, config);
    benchmark::DoNotOptimize(report);
  }
}

/// The deterministic summary pass: one replay per pack, recorded into
/// the rows section (paper = 0 -> ratio null; there is no paper
/// baseline for scripted histories) and the scenarios section.
void record_summaries() {
  bench::print_header("scenario packs");
  for (const std::string& name : pack_names()) {
    const scenario::ScenarioPack pack =
        scenario::load_pack(TORSIM_SCENARIO_DIR, name);
    const auto timer = bench::report().phases().scope("replay/" + name);
    scenario::ScenarioRunConfig config;
    config.metrics = &bench::report().metrics();
    const scenario::ScenarioRunReport result =
        scenario::run_pack(pack, config);

    bench::print_row(name + " events applied", result.events_applied, 0);
    bench::print_row(name + " timeline rows",
                     static_cast<double>(result.timeline.size()), 0);

    obs::ScenarioSummary summary;
    summary.name = result.pack_name;
    summary.horizon_hours = result.horizon_hours;
    summary.events_applied = result.events_applied;
    summary.timeline_rows = static_cast<std::int64_t>(result.timeline.size());
    summary.services_migrated = result.services_migrated;
    summary.services_taken_down = result.services_taken_down;
    summary.services_added = result.services_added;
    summary.relays_injected = result.relays_injected;
    summary.flash_fetches_ok = result.flash_fetches_ok;
    summary.flash_fetches_failed = result.flash_fetches_failed;
    bench::report().add_scenario(summary);
  }
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("scenarios", &argc, argv);
  for (const std::string& name : pack_names())
    benchmark::RegisterBenchmark(
        ("scenario/" + name).c_str(),
        [name](benchmark::State& state) { replay_pack(state, name); });
  torsim::bench::run_benchmarks();
  record_summaries();
  return torsim::bench::finish();
}
