// Ablation: the ring-position "distance ratio" statistic.
//
// Sec. VII's most reliable rule compares avg_dist/distance for
// responsible HSDirs. We measure the ratio's distribution for honest
// (random-fingerprint) rings vs. positioned (key-ground) relays across
// grinding budgets, validating the paper's thresholds (honest ~ O(1),
// their own relays > 100, the May campaign > 10k).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <vector>

#include "attack/grinding.hpp"
#include "crypto/digest.hpp"
#include "dirauth/consensus.hpp"
#include "dirauth/ring_cache.hpp"
#include "stats/descriptive.hpp"
#include "util/memo.hpp"
#include "util/rng.hpp"

namespace {

using namespace torsim;

// Ratio of the first responsible HSDir in an honest ring of size n.
double honest_first_ratio(util::Rng& rng, int n) {
  crypto::DescriptorId target;
  rng.fill_bytes(target.data(), target.size());
  double best = std::ldexp(1.0, 160);
  for (int i = 0; i < n; ++i) {
    crypto::Sha1Digest fp;
    rng.fill_bytes(fp.data(), fp.size());
    best = std::min(best, crypto::ring_distance(target, fp));
  }
  const double avg = std::ldexp(1.0, 160) / n;
  return avg / best;
}

void BM_GrindToBeatRing(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  util::Rng rng(70);
  crypto::DescriptorId target;
  rng.fill_bytes(target.data(), target.size());
  for (auto _ : state) {
    // Beat an n-relay ring: land within 1/(4n) of the ring.
    auto result =
        attack::grind_key_after(target, 0.25 / n, rng, 10'000'000);
    benchmark::DoNotOptimize(result->attempts);
  }
}
BENCHMARK(BM_GrindToBeatRing)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

// A synthetic consensus of `n` HSDir relays with random fingerprints —
// the ring every publish/fetch walks.
dirauth::Consensus make_ring_consensus(int n) {
  util::Rng rng(72);
  std::vector<dirauth::ConsensusEntry> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    dirauth::ConsensusEntry e;
    e.relay = static_cast<relay::RelayId>(i + 1);
    rng.fill_bytes(e.fingerprint.data(), e.fingerprint.size());
    e.flags = dirauth::with_flag(0, dirauth::Flag::kHSDir);
    entries.push_back(e);
  }
  return {0, std::move(entries)};
}

// Ring-lookup microbench: the fetch-path responsible-set resolution
// through dirauth::ResponsibleSetCache with the memo cache forced off
// (cache:0 — every call re-walks the ring) vs on (cache:1 — walks are
// memoized until the consensus generation changes). The resolved sets
// are identical in both modes (docs/performance.md).
void BM_RingLookup(benchmark::State& state) {
  const util::MemoEnabledGuard cache_guard(state.range(0) != 0);
  const dirauth::Consensus consensus = make_ring_consensus(1300);
  util::Rng rng(73);
  std::vector<crypto::DescriptorId> ids(1024);
  for (auto& id : ids) rng.fill_bytes(id.data(), id.size());
  dirauth::ResponsibleSetCache cache;
  for (auto _ : state) {
    std::size_t sink = 0;
    for (const auto& id : ids) sink += cache.responsible(consensus, id).count;
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_RingLookup)->Arg(0)->Arg(1)->ArgName("cache");

void print_ablation() {
  std::printf("\n==== Ablation — distance ratio: honest vs positioned ====\n");
  util::Rng rng(71);

  // Honest baseline across ring sizes.
  std::printf("\n  honest rings (first responsible HSDir):\n");
  std::printf("  %-10s %-10s %-10s %-10s\n", "ring size", "median", "p95",
              "max(1k)");
  for (int n : {757, 1300, 1862}) {
    std::vector<double> ratios;
    for (int i = 0; i < 1000; ++i) ratios.push_back(honest_first_ratio(rng, n));
    std::printf("  %-10d %-10.1f %-10.1f %-10.1f\n", n,
                stats::median(ratios), stats::percentile(ratios, 95),
                stats::max(ratios));
  }

  // Positioned relays at the paper's two grinding tightnesses.
  std::printf("\n  positioned relays (key grinding):\n");
  std::printf("  %-22s %-14s %-12s %s\n", "arc (ring fraction)", "mean tries",
              "mean ratio", "paper analogue");
  struct Case {
    double fraction;
    const char* analogue;
  };
  const Case cases[] = {
      {1e-3, "loose placement"},
      {1e-5, "authors' own relays (>100)"},
      {1e-6, "aggressive tracker"},
  };
  const int ring = 1300;
  for (const auto& c : cases) {
    double tries = 0.0, ratio_sum = 0.0;
    const int trials = 5;
    for (int i = 0; i < trials; ++i) {
      crypto::DescriptorId target;
      rng.fill_bytes(target.data(), target.size());
      const auto result =
          attack::grind_key_after(target, c.fraction, rng, 50'000'000);
      tries += static_cast<double>(result->attempts);
      const double avg = std::ldexp(1.0, 160) / ring;
      ratio_sum += avg / result->distance;
    }
    std::printf("  %-22.0e %-14.0f %-12.0f %s\n", c.fraction, tries / trials,
                ratio_sum / trials, c.analogue);
  }
  std::printf(
      "\n  Honest first-responsible ratios concentrate around ~1 and rarely\n"
      "  exceed ~100 even at p95 over a year of periods; ground keys sit\n"
      "  orders of magnitude closer — the separation the detector exploits.\n");
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("abl_ring", &argc, argv);
  torsim::bench::run_benchmarks();
  print_ablation();
  return torsim::bench::finish();
}
