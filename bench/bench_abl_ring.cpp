// Ablation: the ring-position "distance ratio" statistic.
//
// Sec. VII's most reliable rule compares avg_dist/distance for
// responsible HSDirs. We measure the ratio's distribution for honest
// (random-fingerprint) rings vs. positioned (key-ground) relays across
// grinding budgets, validating the paper's thresholds (honest ~ O(1),
// their own relays > 100, the May campaign > 10k).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <vector>

#include "attack/grinding.hpp"
#include "crypto/digest.hpp"
#include "dirauth/consensus.hpp"
#include "dirauth/ring_cache.hpp"
#include "stats/descriptive.hpp"
#include "util/memo.hpp"
#include "util/rng.hpp"

namespace {

using namespace torsim;

// Ratio of the first responsible HSDir in an honest ring of size n.
double honest_first_ratio(util::Rng& rng, int n) {
  crypto::DescriptorId target;
  rng.fill_bytes(target.data(), target.size());
  double best = std::ldexp(1.0, 160);
  for (int i = 0; i < n; ++i) {
    crypto::Sha1Digest fp;
    rng.fill_bytes(fp.data(), fp.size());
    best = std::min(best, crypto::ring_distance(target, fp));
  }
  const double avg = std::ldexp(1.0, 160) / n;
  return avg / best;
}

void BM_GrindToBeatRing(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  util::Rng rng(70);
  crypto::DescriptorId target;
  rng.fill_bytes(target.data(), target.size());
  for (auto _ : state) {
    // Beat an n-relay ring: land within 1/(4n) of the ring.
    auto result =
        attack::grind_key_after(target, 0.25 / n, rng, 10'000'000);
    benchmark::DoNotOptimize(result->attempts);
  }
}
BENCHMARK(BM_GrindToBeatRing)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

// A synthetic consensus of `n` HSDir relays with random fingerprints —
// the ring every publish/fetch walks.
dirauth::Consensus make_ring_consensus(int n) {
  util::Rng rng(72);
  std::vector<dirauth::ConsensusEntry> entries;
  entries.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    dirauth::ConsensusEntry e;
    e.relay = static_cast<relay::RelayId>(i + 1);
    rng.fill_bytes(e.fingerprint.data(), e.fingerprint.size());
    e.flags = dirauth::with_flag(0, dirauth::Flag::kHSDir);
    entries.push_back(e);
  }
  return {0, std::move(entries)};
}

// Ring-lookup microbench: the fetch-path responsible-set resolution
// through dirauth::ResponsibleSetCache with the memo cache forced off
// (cache:0 — every call re-walks the ring) vs on (cache:1 — walks are
// memoized until the consensus generation changes). The resolved sets
// are identical in both modes (docs/performance.md).
// The 1024 lookup targets every ring bench (and the deterministic
// checksum rows) share.
std::vector<crypto::DescriptorId> lookup_ids() {
  util::Rng rng(73);
  std::vector<crypto::DescriptorId> ids(1024);
  for (auto& id : ids) rng.fill_bytes(id.data(), id.size());
  return ids;
}

void BM_RingLookup(benchmark::State& state) {
  const util::MemoEnabledGuard cache_guard(state.range(0) != 0);
  const dirauth::Consensus consensus = make_ring_consensus(1300);
  const std::vector<crypto::DescriptorId> ids = lookup_ids();
  dirauth::ResponsibleSetCache cache;
  for (auto _ : state) {
    std::size_t sink = 0;
    for (const auto& id : ids) sink += cache.responsible(consensus, id).count;
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_RingLookup)->Arg(0)->Arg(1)->ArgName("cache");

// Oracle: the pre-index cold path — a per-id result vector plus the
// sorted scan over hsdir_indices() with full-entry dereferences — kept
// callable precisely for this before/after comparison. Timings land in
// the BENCH json "index" section next to BM_RingLookup/cache:0.
void BM_RingLookupOracle(benchmark::State& state) {
  const util::MemoEnabledGuard cache_guard(false);
  const dirauth::Consensus consensus = make_ring_consensus(1300);
  const std::vector<crypto::DescriptorId> ids = lookup_ids();
  for (auto _ : state) {
    std::size_t sink = 0;
    for (const auto& id : ids)
      sink += consensus.responsible_hsdirs_scan(id).size();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_RingLookupOracle);

// Derivation fixture: 32 services x 8 consecutive time periods — the
// resolver's dictionary-builder shape (many days per onion).
std::vector<crypto::PermanentId> derive_pids() {
  util::Rng rng(74);
  std::vector<crypto::PermanentId> pids(32);
  for (auto& pid : pids) rng.fill_bytes(pid.data(), pid.size());
  return pids;
}

std::vector<std::uint32_t> derive_periods() {
  std::vector<std::uint32_t> periods(8);
  for (std::size_t p = 0; p < periods.size(); ++p)
    periods[p] = 16000 + static_cast<std::uint32_t>(p);
  return periods;
}

// Descriptor-id derivation through the lane-batched kernel
// (crypto/sha1_batch.hpp). cache:0 hits the batch cold path on every
// call; cache:1 measures the memoized path (all hits after the first
// iteration).
void BM_DeriveDescriptorIds(benchmark::State& state) {
  const util::MemoEnabledGuard cache_guard(state.range(0) != 0);
  const std::vector<crypto::PermanentId> pids = derive_pids();
  const std::vector<std::uint32_t> periods = derive_periods();
  for (auto _ : state) {
    std::size_t sink = 0;
    for (const auto& pid : pids) {
      const auto ids = crypto::descriptor_ids_for_periods(pid, periods);
      sink += ids.size() + ids[0][0];
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_DeriveDescriptorIds)->Arg(0)->Arg(1)->ArgName("cache");

// Oracle: the scalar midstate-fork derivation, one period at a time —
// the pre-batch implementation, uncached.
void BM_DeriveDescriptorIdsOracle(benchmark::State& state) {
  const std::vector<crypto::PermanentId> pids = derive_pids();
  const std::vector<std::uint32_t> periods = derive_periods();
  for (auto _ : state) {
    std::size_t sink = 0;
    for (const auto& pid : pids)
      for (const std::uint32_t period : periods) {
        const auto pair = crypto::descriptor_ids_for_period_scalar(pid, period);
        sink += pair[0][0];
      }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_DeriveDescriptorIdsOracle);

// Deterministic checksums over the two kernels' outputs, recorded as
// rows so tools/diff_bench_rows.py can byte-compare --ring-index=on vs
// off (and --cache=on vs off) runs in CI: both routes must resolve the
// same responsible sets and derive the same descriptor ids.
void print_ring_index_rows() {
  bench::print_header("Ring kernels — deterministic checksums");

  const dirauth::Consensus consensus = make_ring_consensus(1300);
  const std::vector<crypto::DescriptorId> ids = lookup_ids();
  double relay_sum = 0.0;
  for (const auto& set : consensus.responsible_hsdirs_batch(ids, 1))
    for (const dirauth::ConsensusEntry* e : set)
      relay_sum += static_cast<double>(e->relay);
  bench::print_row("responsible relay-id sum", relay_sum, 0.0);

  double byte_sum = 0.0;
  const std::vector<std::uint32_t> periods = derive_periods();
  for (const crypto::PermanentId& pid : derive_pids())
    for (const crypto::DescriptorId& id :
         crypto::descriptor_ids_for_periods(pid, periods))
      byte_sum += static_cast<double>(id[0]);
  bench::print_row("derived descriptor-id byte sum", byte_sum, 0.0);
}

// The non-golden "index" telemetry section: cold-path per-iteration
// seconds of each kernel against its kept oracle, read back from the
// recorded google-benchmark runs.
void record_index_stats() {
  const auto real_seconds = [](const std::string& name) {
    for (const obs::BenchReport::BenchmarkRun& run :
         bench::report().benchmarks())
      if (run.name == name) return run.real_time_seconds;
    return 0.0;  // benchmark filtered out of this run
  };
  bench::report().set_index_enabled(dirauth::ring_index_enabled());
  bench::report().set_index_stat("derive_descriptor_ids",
                                 real_seconds("BM_DeriveDescriptorIdsOracle"),
                                 real_seconds("BM_DeriveDescriptorIds/cache:0"));
  bench::report().set_index_stat("ring_lookup",
                                 real_seconds("BM_RingLookupOracle"),
                                 real_seconds("BM_RingLookup/cache:0"));
}

void print_ablation() {
  std::printf("\n==== Ablation — distance ratio: honest vs positioned ====\n");
  util::Rng rng(71);

  // Honest baseline across ring sizes.
  std::printf("\n  honest rings (first responsible HSDir):\n");
  std::printf("  %-10s %-10s %-10s %-10s\n", "ring size", "median", "p95",
              "max(1k)");
  for (int n : {757, 1300, 1862}) {
    std::vector<double> ratios;
    for (int i = 0; i < 1000; ++i) ratios.push_back(honest_first_ratio(rng, n));
    std::printf("  %-10d %-10.1f %-10.1f %-10.1f\n", n,
                stats::median(ratios), stats::percentile(ratios, 95),
                stats::max(ratios));
  }

  // Positioned relays at the paper's two grinding tightnesses.
  std::printf("\n  positioned relays (key grinding):\n");
  std::printf("  %-22s %-14s %-12s %s\n", "arc (ring fraction)", "mean tries",
              "mean ratio", "paper analogue");
  struct Case {
    double fraction;
    const char* analogue;
  };
  const Case cases[] = {
      {1e-3, "loose placement"},
      {1e-5, "authors' own relays (>100)"},
      {1e-6, "aggressive tracker"},
  };
  const int ring = 1300;
  for (const auto& c : cases) {
    double tries = 0.0, ratio_sum = 0.0;
    const int trials = 5;
    for (int i = 0; i < trials; ++i) {
      crypto::DescriptorId target;
      rng.fill_bytes(target.data(), target.size());
      const auto result =
          attack::grind_key_after(target, c.fraction, rng, 50'000'000);
      tries += static_cast<double>(result->attempts);
      const double avg = std::ldexp(1.0, 160) / ring;
      ratio_sum += avg / result->distance;
    }
    std::printf("  %-22.0e %-14.0f %-12.0f %s\n", c.fraction, tries / trials,
                ratio_sum / trials, c.analogue);
  }
  std::printf(
      "\n  Honest first-responsible ratios concentrate around ~1 and rarely\n"
      "  exceed ~100 even at p95 over a year of periods; ground keys sit\n"
      "  orders of magnitude closer — the separation the detector exploits.\n");
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("abl_ring", &argc, argv);
  torsim::bench::run_benchmarks();
  print_ablation();
  print_ring_index_rows();
  record_index_stats();
  return torsim::bench::finish();
}
