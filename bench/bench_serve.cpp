// Serving-path bench (docs/serving.md): google-benchmarks over the
// deterministic batcher core, the wire protocol, and the full daemon
// round trip, plus a closed-loop load pass against a real torsimd
// event loop that records sustained requests/s and the latency
// histogram into the "serve" section of BENCH_serve.json
// (schema-checked by tools/check_bench_json.py).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "serve/proto.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"

namespace {

using namespace torsim;

constexpr int kServices = 16;
constexpr int kClients = 8;
constexpr int kRequests = 4000;

/// Smoke-scale session: the same relay mapping the CLIs use
/// (tools/serve_common.hpp), so --scale=0.05 in CI builds the same
/// world `torsim serve --scale 0.05` would.
serve::SessionConfig smoke_config(obs::MetricsRegistry* metrics) {
  serve::SessionConfig config;
  config.world.seed = 20130204;
  config.world.honest_relays =
      std::max(50, static_cast<int>(3000 * bench::scale()));
  config.world.metrics = metrics;
  config.services = kServices;
  config.warmup_hours = 2;
  config.threads = 0;  // hardware concurrency
  config.metrics = metrics;
  return config;
}

std::vector<serve::Request> bench_mix(int requests) {
  return serve::default_request_mix(20130204, requests, kServices, kClients);
}

/// Deterministic core only: the batcher executing the default mix
/// in-process (no socket, no framing).
void BM_SessionBatch(benchmark::State& state) {
  serve::WorldSession session(smoke_config(nullptr));
  const std::vector<serve::Request> mix = bench_mix(64);
  for (auto _ : state) {
    auto responses = session.execute_batch(mix);
    benchmark::DoNotOptimize(responses);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mix.size()));
}

/// Wire protocol only: canonical render + strict parse round trip.
void BM_ProtoRoundTrip(benchmark::State& state) {
  const std::vector<serve::Request> mix = bench_mix(16);
  std::size_t i = 0;
  for (auto _ : state) {
    const serve::Request parsed =
        serve::parse_request(serve::render_request(mix[i++ % mix.size()]));
    benchmark::DoNotOptimize(parsed);
  }
}

/// Full daemon path, one closed-loop client: unix socket, framing,
/// admission, batch tick, response match.
void BM_SocketRoundTrip(benchmark::State& state) {
  serve::WorldSession session(smoke_config(nullptr));
  serve::ServerConfig edge;
  edge.socket_path = "/tmp/torsim_bench_serve_rt_" +
                     std::to_string(::getpid()) + ".sock";
  serve::Server server(session, edge);
  server.start();
  std::thread loop([&] { server.run(); });
  serve::Client client(edge.socket_path);
  client.connect();
  serve::Request request;
  request.kind = serve::QueryKind::kStats;
  for (auto _ : state) {
    ++request.id;
    benchmark::DoNotOptimize(client.call(request));
  }
  client.close();
  server.stop();
  loop.join();
  std::remove(edge.socket_path.c_str());
}

/// Upper edge of the bucket holding quantile `q` (the last edge for
/// the overflow bucket) — the histogram keeps no raw samples.
std::int64_t percentile_us(const obs::Histogram& histogram, double q) {
  const std::vector<std::int64_t> buckets = histogram.bucket_counts();
  const std::int64_t total = histogram.count();
  if (total == 0) return 0;
  const std::int64_t target = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(q * static_cast<double>(total) + 0.5));
  std::int64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target)
      return i < histogram.edges().size() ? histogram.edges()[i]
                                          : histogram.edges().back();
  }
  return histogram.edges().back();
}

/// The record pass: a real daemon on a unix socket, the closed-loop
/// client fleet replaying the default mix, and the throughput/latency
/// summary into the rows and "serve" sections.
void record_load() {
  bench::print_header("serving throughput");

  std::unique_ptr<serve::WorldSession> session;
  {
    const auto timer = bench::report().phases().scope("serve/warmup");
    session = std::make_unique<serve::WorldSession>(
        smoke_config(&bench::report().metrics()));
  }

  serve::ServerConfig edge;
  edge.socket_path = "/tmp/torsim_bench_serve_" +
                     std::to_string(::getpid()) + ".sock";
  obs::MetricsRegistry telemetry;  // edge/load telemetry, never golden
  edge.telemetry = &telemetry;
  serve::Server server(*session, edge);
  server.start();
  std::thread loop([&] { server.run(); });

  serve::LoadConfig load;
  load.socket_path = edge.socket_path;
  load.clients = kClients;
  load.requests = kRequests;
  load.services = kServices;
  load.seed = 20130204;
  load.shutdown = true;  // ends the daemon loop after the run
  load.telemetry = &telemetry;

  serve::LoadResult result;
  double seconds = 0.0;
  try {
    const auto timer = bench::report().phases().scope("serve/load");
    const double t0 = obs::wall_clock_seconds();
    result = serve::run_load(load);
    seconds = obs::wall_clock_seconds() - t0;
  } catch (...) {
    server.stop();
    loop.join();
    std::remove(edge.socket_path.c_str());
    throw;
  }
  loop.join();
  std::remove(edge.socket_path.c_str());

  const obs::Histogram& latency =
      telemetry.histogram("load.latency_us", serve::latency_edges_us());
  const double rps =
      seconds > 0.0 ? static_cast<double>(result.responses.size()) / seconds
                    : 0.0;

  obs::ServeSummary summary;
  summary.clients = kClients;
  summary.threads = 0;  // hardware concurrency
  summary.requests = static_cast<std::int64_t>(result.responses.size());
  summary.retries = result.retries;
  summary.reconnects = result.reconnects;
  summary.seconds = seconds;
  summary.requests_per_second = rps;
  summary.latency_edges_us = latency.edges();
  summary.latency_buckets = latency.bucket_counts();
  summary.latency_count = latency.count();
  summary.latency_sum_us = latency.sum();
  summary.latency_p50_us = percentile_us(latency, 0.50);
  summary.latency_p90_us = percentile_us(latency, 0.90);
  summary.latency_p99_us = percentile_us(latency, 0.99);
  bench::report().set_serve_summary(summary);

  // No paper baseline for any of these (the paper never served its
  // simulator), so every ratio is n/a.
  bench::print_row("sustained requests/s", rps, 0);
  bench::print_row("p50 latency us",
                   static_cast<double>(summary.latency_p50_us), 0);
  bench::print_row("p99 latency us",
                   static_cast<double>(summary.latency_p99_us), 0);
  bench::print_row("retries", static_cast<double>(result.retries), 0);
  bench::print_row("reconnects", static_cast<double>(result.reconnects), 0);
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("serve", &argc, argv);
  benchmark::RegisterBenchmark("BM_SessionBatch", BM_SessionBatch);
  benchmark::RegisterBenchmark("BM_ProtoRoundTrip", BM_ProtoRoundTrip);
  benchmark::RegisterBenchmark("BM_SocketRoundTrip", BM_SocketRoundTrip);
  torsim::bench::run_benchmarks();
  record_load();
  return torsim::bench::finish();
}
