// Ablation: the *opportunistic* nature of Sec. VI over time.
//
// Per-fetch deanonymisation probability equals the attacker's share of
// guard selections, but clients rotate guards every 30-60 days — so the
// probability that a *persistent* client (the paper's example: a Silk
// Road seller who logs in periodically) is deanonymised at least once
// grows week over week. We simulate client cohorts over months of guard
// churn and report the cumulative compromise curve.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <vector>

#include "attack/deanonymizer.hpp"
#include "hs/rendezvous.hpp"
#include "sim/world.hpp"

namespace {

using namespace torsim;

struct CohortResult {
  int weeks = 0;
  double compromised_fraction = 0.0;
};

std::vector<CohortResult> run_cohort(std::uint64_t seed, int attacker_guards,
                                     int clients, int weeks) {
  sim::WorldConfig wc;
  wc.seed = seed;
  wc.honest_relays = 250;
  wc.record_archive = false;  // months of hourly consensuses otherwise
  sim::World world(wc);
  const auto target = world.add_service();

  attack::DeanonymizerConfig dc;
  dc.guard_relays = attacker_guards;
  attack::ClientDeanonymizer attacker(dc);
  attacker.deploy_guards(world);
  attacker.position_hsdirs(world, world.service(target));
  world.step_hour();

  std::vector<hs::Client> cohort;
  for (int i = 0; i < clients; ++i)
    cohort.emplace_back(util::Ipv4::random_public(world.rng()),
                        seed + 50 + static_cast<std::uint64_t>(i));

  std::vector<bool> compromised(static_cast<std::size_t>(clients), false);
  std::vector<CohortResult> curve;
  util::Rng trace_rng(seed + 1);
  const auto onion = world.service(target).onion_address();

  for (int week = 1; week <= weeks; ++week) {
    // One week of world time; sellers check the market weekly.
    for (int d = 0; d < 7; ++d) world.run_hours(24);
    attacker.position_hsdirs(world, world.service(target));
    world.step_hour();
    for (int i = 0; i < clients; ++i) {
      cohort[static_cast<std::size_t>(i)].maintain(world.consensus(),
                                                   world.now());
      const auto outcome =
          cohort[static_cast<std::size_t>(i)].fetch_descriptor(
              onion, world.consensus(), world.directories(), world.now());
      if (attacker.observe_fetch(outcome, trace_rng))
        compromised[static_cast<std::size_t>(i)] = true;
    }
    int hit = 0;
    for (bool c : compromised) hit += c;
    curve.push_back(
        {week, static_cast<double>(hit) / static_cast<double>(clients)});
  }
  return curve;
}

void BM_CohortWeek(benchmark::State& state) {
  std::uint64_t seed = 7000;
  for (auto _ : state) {
    auto curve = run_cohort(seed++, 15, 20, 1);
    benchmark::DoNotOptimize(curve.size());
  }
}
BENCHMARK(BM_CohortWeek)->Unit(benchmark::kMillisecond);

void print_ablation() {
  std::printf("\n==== Ablation — cumulative client compromise over time ====\n");
  std::printf("  (60-client cohorts fetching the target weekly; attacker "
              "holds the responsible HSDirs)\n\n");
  std::printf("  %-6s", "week");
  for (int guards : {5, 15, 40}) std::printf(" guards=%-6d", guards);
  std::printf("\n");

  std::vector<std::vector<CohortResult>> curves;
  for (int guards : {5, 15, 40})
    curves.push_back(run_cohort(8000 + guards, guards, 60, 12));

  for (int week = 1; week <= 12; ++week) {
    std::printf("  %-6d", week);
    for (const auto& curve : curves)
      std::printf(" %-13.2f",
                  curve[static_cast<std::size_t>(week - 1)]
                      .compromised_fraction);
    std::printf("\n");
  }
  std::printf(
      "\n  Even a small guard share compounds: a periodic visitor (the\n"
      "  paper's Silk Road 'seller' profile) is eventually deanonymised\n"
      "  with probability far above the per-fetch rate.\n");
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("abl_guards", &argc, argv);
  torsim::bench::run_benchmarks();
  print_ablation();
  return torsim::bench::finish();
}
