// Sec. VII: tracking detection on the Silk Road consensus history —
// three years of (synthetic) daily HSDir snapshots containing the three
// tracking episodes the paper found: the authors' own 2012 relays
// (ratio > 100), the May-2013 name-sharing campaign (1 of 6 slots,
// 4 skipped periods, ratio > 10k), and the 31-Aug-2013 full takeover of
// all 6 responsible HSDirs from 3 IPs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hpp"
#include "trackdet/scenario.hpp"

namespace {

using namespace torsim;
using namespace torsim::trackdet;

const SilkroadStudy& study() {
  static const SilkroadStudy instance = run_silkroad_study(20130204);
  return instance;
}

void BM_SimulateThreeYearHistory(benchmark::State& state) {
  std::uint64_t seed = 40;
  for (auto _ : state) {
    HistoryConfig config;
    config.seed = seed++;
    HistorySimulator simulator(config);
    auto history = simulator.simulate(silkroad_target(), silkroad_campaigns());
    benchmark::DoNotOptimize(history.snapshots.size());
  }
}
BENCHMARK(BM_SimulateThreeYearHistory)->Unit(benchmark::kMillisecond);

void BM_AnalyzeHistory(benchmark::State& state) {
  const auto& s = study();
  TrackingDetector detector;
  for (auto _ : state) {
    auto report = detector.analyze(s.history, silkroad_target());
    benchmark::DoNotOptimize(report.suspicious.size());
  }
}
BENCHMARK(BM_AnalyzeHistory)->Unit(benchmark::kMillisecond);

void print_report() {
  const auto& s = study();
  bench::print_header("Sec. VII — Silk Road tracking detection");
  std::printf("  archive: %lld daily snapshots, mean %0.f HSDirs "
              "(paper: 757 -> 1862)\n",
              static_cast<long long>(s.report.snapshots),
              s.report.mean_hsdirs);
  std::printf("  binomial suspicion threshold (mu+3sigma): %.1f periods\n",
              s.report.suspicion_threshold);
  std::printf("  full-takeover periods (all 6 slots suspicious): %lld\n\n",
              static_cast<long long>(s.report.full_takeover_periods));

  std::printf("  suspicious-server clusters:\n");
  std::printf("  %-14s %-8s %-9s %-10s %-9s %s\n", "name-stem", "servers",
              "periods", "max-ratio", "takeover", "first..last");
  for (const auto& cluster : s.report.clusters) {
    if (cluster.periods_covered == 0) continue;
    std::printf("  %-14s %-8zu %-9lld %-10.0f %-9s %s .. %s\n",
                cluster.shared_prefix.c_str(), cluster.servers.size(),
                static_cast<long long>(cluster.periods_covered),
                cluster.max_ratio, cluster.full_takeover ? "YES" : "no",
                util::format_utc(cluster.first_seen).substr(0, 10).c_str(),
                util::format_utc(cluster.last_seen).substr(0, 10).c_str());
  }

  std::printf("\n  year-by-year verdicts (paper: 2011 clean; 2012 the "
              "authors' own relays; 2013 two campaigns):\n");
  const char* expectations[3] = {
      "paper: no clear indication of tracking",
      "paper: the authors' own measurement relays (ratio > 100)",
      "paper: May name-sharing set (>10k) + 31 Aug full takeover"};
  for (std::size_t y = 0; y < s.yearly.size(); ++y) {
    int campaign_servers = 0;
    double max_ratio = 0.0;
    for (const auto& susp : s.yearly[y].suspicious) {
      if (!susp.truth_campaign.empty()) ++campaign_servers;
      max_ratio = std::max(max_ratio, susp.stats.max_ratio);
    }
    std::printf("  %d: %d campaign servers flagged, max ratio %.0f, "
                "takeovers %lld\n       %s\n",
                2011 + static_cast<int>(y), campaign_servers, max_ratio,
                static_cast<long long>(s.yearly[y].full_takeover_periods),
                expectations[y]);
  }

  std::printf("\n  top suspicious servers:\n");
  std::printf("  %-14s %-7s %-9s %-9s %-8s %s\n", "name", "resp", "switches",
              "maxratio", "flags", "ground-truth");
  int shown = 0;
  for (const auto& susp : s.report.suspicious) {
    if (shown++ >= 15) break;
    std::printf("  %-14s %-7lld %-9lld %-9.0f %-8d %s\n", susp.name.c_str(),
                static_cast<long long>(susp.stats.periods_responsible),
                static_cast<long long>(susp.stats.fingerprint_switches),
                susp.stats.max_ratio, susp.flags.count(),
                susp.truth_campaign.empty() ? "-"
                                            : susp.truth_campaign.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("sec7_tracking", &argc, argv);
  torsim::bench::run_benchmarks();
  print_report();
  return torsim::bench::finish();
}
