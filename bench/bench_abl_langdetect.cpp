// Ablation: language detection accuracy vs. document length.
//
// The paper ran langdetect over crawled pages after excluding documents
// under 20 words — this ablation shows why that floor matters: n-gram
// language identification degrades sharply on very short texts, and the
// 20-word exclusion keeps the Fig. 2 language split trustworthy.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "content/language_detector.hpp"
#include "content/page_generator.hpp"

namespace {

using namespace torsim;
using namespace torsim::content;

double accuracy_at_length(int words, int trials_per_language,
                          std::uint64_t seed) {
  PageGenerator gen;
  util::Rng rng(seed);
  const LanguageDetector& detector = LanguageDetector::instance();
  int correct = 0, total = 0;
  for (int li = 0; li < kNumLanguages; ++li) {
    const Language lang = language_from_index(li);
    for (int i = 0; i < trials_per_language; ++i) {
      const auto page = gen.generate(Topic::kOther, lang, words, rng);
      if (detector.detect(page).language == lang) ++correct;
      ++total;
    }
  }
  return static_cast<double>(correct) / total;
}

void BM_DetectShortText(benchmark::State& state) {
  PageGenerator gen;
  util::Rng rng(1);
  const auto page = gen.generate(Topic::kOther, Language::kFrench,
                                 static_cast<int>(state.range(0)), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        LanguageDetector::instance().detect(page).language);
}
BENCHMARK(BM_DetectShortText)->Arg(5)->Arg(20)->Arg(100)->Arg(400);

void print_ablation() {
  std::printf("\n==== Ablation — language detection vs document length ====\n");
  std::printf("  (why the paper's <20-words exclusion matters)\n\n");
  std::printf("  %-10s %-10s %s\n", "words", "accuracy", "");
  for (int words : {3, 5, 10, 20, 40, 80, 160}) {
    const double acc =
        accuracy_at_length(words, 20, 4000 + static_cast<std::uint64_t>(words));
    std::printf("  %-10d %-10.3f %s\n", words, acc,
                words < 20 ? "<-- below the paper's exclusion floor" : "");
  }
  std::printf(
      "\n  Confidence is also length-dependent; the detector's normalized\n"
      "  posterior can gate low-confidence verdicts on short fragments.\n");
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("abl_langdetect", &argc, argv);
  torsim::bench::run_benchmarks();
  print_ablation();
  return torsim::bench::finish();
}
