// Sec. VI: opportunistic client deanonymisation — sweep the attacker's
// guard share and report the per-fetch deanonymisation probability
// (which should track the share of guard selections the attacker owns),
// plus signature fidelity (detection and false-positive rates).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "attack/deanonymizer.hpp"
#include "attack/signature.hpp"
#include "bench_common.hpp"
#include "sim/world.hpp"

namespace {

using namespace torsim;

struct SweepPoint {
  int attacker_guards = 0;
  double guard_share = 0.0;        // fraction of guard *bandwidth*
  double success_per_fetch = 0.0;  // deanonymised / fetches
  std::int64_t fetches = 0;
};

SweepPoint run_point(std::uint64_t seed, int attacker_guards) {
  sim::WorldConfig wc;
  wc.seed = seed;
  wc.honest_relays = 300;
  wc.record_archive = false;
  sim::World world(wc);
  const auto target = world.add_service();

  attack::DeanonymizerConfig dc;
  dc.guard_relays = attacker_guards;
  attack::ClientDeanonymizer attacker(dc);
  if (attacker_guards > 0) attacker.deploy_guards(world);
  attacker.position_hsdirs(world, world.service(target));
  world.step_hour();

  util::Rng trace_rng(seed + 1);
  const auto onion = world.service(target).onion_address();
  for (int i = 0; i < 150; ++i) {
    hs::Client client(util::Ipv4::random_public(world.rng()),
                      seed + 10 + static_cast<std::uint64_t>(i));
    client.maintain(world.consensus(), world.now());
    for (int r = 0; r < 2; ++r) {
      const auto outcome = client.fetch_descriptor(
          onion, world.consensus(), world.directories(), world.now());
      attacker.observe_fetch(outcome, trace_rng);
    }
  }

  SweepPoint point;
  point.attacker_guards = attacker_guards;
  // Guard selection is bandwidth-weighted, so the relevant attacker
  // share is of guard *bandwidth*, not of guard count.
  double total_bw = 0.0, attacker_bw = 0.0;
  for (const auto* g : world.consensus().with_flag(dirauth::Flag::kGuard)) {
    total_bw += g->bandwidth_kbps;
    for (const auto id : attacker.guard_ids())
      if (g->relay == id) attacker_bw += g->bandwidth_kbps;
  }
  point.guard_share = total_bw > 0.0 ? attacker_bw / total_bw : 0.0;
  point.fetches = attacker.report().fetches_observed;
  point.success_per_fetch =
      static_cast<double>(attacker.report().deanonymized) /
      static_cast<double>(point.fetches);
  return point;
}

void BM_ObserveFetch(benchmark::State& state) {
  const auto sig = attack::TrafficSignature::standard();
  util::Rng rng(2);
  for (auto _ : state) {
    auto trace = attack::background_trace(rng, 30);
    sig.inject(trace);
    benchmark::DoNotOptimize(sig.detect(trace));
  }
}
BENCHMARK(BM_ObserveFetch);

void BM_DeanonSweepPoint(benchmark::State& state) {
  std::uint64_t seed = 900;
  for (auto _ : state) {
    auto point = run_point(seed++, 20);
    benchmark::DoNotOptimize(point.success_per_fetch);
  }
}
BENCHMARK(BM_DeanonSweepPoint)->Unit(benchmark::kMillisecond);

void print_sweep() {
  bench::print_header("Sec. VI — deanonymisation probability vs guard share");
  std::printf("  %-16s %-12s %-14s %s\n", "attacker guards", "bw share",
              "P(deanon)/fetch", "ratio");
  for (int guards : {0, 5, 10, 20, 40, 80}) {
    const auto point = run_point(1700 + guards, guards);
    const double ratio = point.guard_share > 0
                             ? point.success_per_fetch / point.guard_share
                             : 0.0;
    std::printf("  %-16d %-12.3f %-14.3f %.2f\n", point.attacker_guards,
                point.guard_share, point.success_per_fetch, ratio);
  }
  std::printf(
      "\n  (per-fetch success should track the attacker's share of guard\n"
      "   bandwidth; the paper's attack is 'opportunistic' for exactly\n"
      "   this reason — and fast guards buy share cheaply)\n");

  // Signature fidelity.
  const auto sig = attack::TrafficSignature::standard();
  util::Rng rng(3);
  int detected = 0, false_pos = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    auto clean = attack::background_trace(rng, 40);
    if (sig.detect(clean)) ++false_pos;
    sig.inject(clean);
    if (sig.detect(clean)) ++detected;
  }
  bench::print_header("Traffic-signature fidelity");
  std::printf("  detection rate:      %.4f\n",
              static_cast<double>(detected) / trials);
  std::printf("  false-positive rate: %.5f\n",
              static_cast<double>(false_pos) / trials);
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("sec6_deanon", &argc, argv);
  torsim::bench::run_benchmarks();
  print_sweep();
  return torsim::bench::finish();
}
