// Ablation: classifier cross-validation, mirroring the paper's use of
// two independent tools (Mallet and uClassify). We compare the naive-
// Bayes and TF-IDF nearest-centroid classifiers head-to-head across
// training-set sizes and report accuracy, agreement, and how the Fig. 2
// topic distribution shifts when the classifier family changes.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <functional>
#include <vector>

#include "content/centroid_classifier.hpp"
#include "content/page_generator.hpp"
#include "stats/descriptive.hpp"

namespace {

using namespace torsim;
using namespace torsim::content;

double accuracy(const std::function<Topic(std::string_view)>& classify,
                util::Rng& rng, int docs_per_topic, int words,
                double noise) {
  PageGenerator gen;
  int correct = 0, total = 0;
  for (int t = 0; t < kNumTopics; ++t) {
    const Topic truth = topic_from_index(t);
    for (int i = 0; i < docs_per_topic; ++i) {
      const auto page = gen.generate_english_noisy(truth, words, rng, noise);
      if (classify(page) == truth) ++correct;
      ++total;
    }
  }
  return static_cast<double>(correct) / total;
}

void BM_TrainCentroid(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(1);
    auto classifier = CentroidClassifier::make_default(rng, 20, 100);
    benchmark::DoNotOptimize(classifier.trained());
  }
}
BENCHMARK(BM_TrainCentroid)->Unit(benchmark::kMillisecond);

void BM_ClassifyCentroid(benchmark::State& state) {
  util::Rng rng(2);
  const auto classifier = CentroidClassifier::make_default(rng, 20, 100);
  PageGenerator gen;
  const auto page = gen.generate_english(Topic::kPolitics, 200, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(classifier.classify(page).topic);
}
BENCHMARK(BM_ClassifyCentroid);

void print_ablation() {
  std::printf("\n==== Ablation — two classifier families (Mallet vs "
              "uClassify analogue) ====\n\n");
  std::printf("  (pages with cross-topic noise: a market page mixes drug\n"
              "   and counterfeit vocabulary; accuracy is per noise level)\n\n");
  std::printf("  %-12s %-10s %-10s\n", "noise", "NB acc", "TFIDF acc");
  util::Rng train_rng(100);
  const auto bayes = TopicClassifier::make_default(train_rng, 40, 120);
  const auto centroid = CentroidClassifier::make_default(train_rng, 40, 120);
  for (double noise : {0.0, 0.3, 0.5, 0.7, 0.85, 0.95}) {
    util::Rng eval_rng(static_cast<std::uint64_t>(200 + noise * 100));
    const double nb_acc = accuracy(
        [&](std::string_view t) { return bayes.classify(t).topic; },
        eval_rng, 15, 150, noise);
    util::Rng eval_rng2(static_cast<std::uint64_t>(200 + noise * 100));
    const double cd_acc = accuracy(
        [&](std::string_view t) { return centroid.classify(t).topic; },
        eval_rng2, 15, 150, noise);
    std::printf("  %-12.2f %-10.3f %-10.3f\n", noise, nb_acc, cd_acc);
  }
  util::Rng agree_rng(300);
  const auto agreement = measure_agreement(bayes, centroid, agree_rng, 15, 150);
  std::printf("\n  agreement on clean pages: %.3f (of which correct %.3f)\n",
              agreement.agreement_rate(),
              agreement.agreed > 0
                  ? static_cast<double>(agreement.agreed_correct) /
                        static_cast<double>(agreement.agreed)
                  : 0.0);

  // How much does Fig. 2 shift if the classifier family changes?
  std::printf("\n  Fig. 2 stability across families (chi-square distance "
              "of topic distributions):\n");
  PageGenerator gen;
  util::Rng page_rng(501);
  std::vector<double> nb_dist(kNumTopics, 0.0), cd_dist(kNumTopics, 0.0);
  for (int i = 0; i < 2000; ++i) {
    // Pages drawn from the paper's Fig. 2 topic mix.
    double roll = page_rng.uniform(0.0, 100.0);
    Topic truth = Topic::kOther;
    for (int t = 0; t < kNumTopics; ++t) {
      roll -= paper_topic_percentages()[t];
      if (roll <= 0.0) {
        truth = topic_from_index(t);
        break;
      }
    }
    const auto page = gen.generate_english_noisy(truth, 150, page_rng, 0.4);
    nb_dist[static_cast<int>(bayes.classify(page).topic)] += 1.0;
    cd_dist[static_cast<int>(centroid.classify(page).topic)] += 1.0;
  }
  const auto nb_norm = stats::normalized(nb_dist);
  const auto cd_norm = stats::normalized(cd_dist);
  std::printf("    NB vs TF-IDF distributions: chi2 = %.4f "
              "(0 = identical Fig. 2 either way)\n",
              stats::chi_square_distance(nb_norm, cd_norm));
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("abl_classifier", &argc, argv);
  torsim::bench::run_benchmarks();
  print_ablation();
  return torsim::bench::finish();
}
