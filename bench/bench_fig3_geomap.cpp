// Figure 3: geographic map of the clients of a popular ("Goldnet")
// hidden service. The paper deanonymised clients with the Sec. VI
// attack and plotted their IPs; we run the same attack end-to-end in a
// simulated world with geographically distributed clients and print the
// per-country aggregation (the analytic content of the map).
#include <benchmark/benchmark.h>

#include "attack/deanonymizer.hpp"
#include "bench_common.hpp"
#include "geo/client_map.hpp"
#include "sim/world.hpp"

namespace {

using namespace torsim;

struct GeoStudy {
  geo::ClientMap map;
  attack::DeanonymizationReport report;
  int clients_total = 0;
};

GeoStudy run_geo_study(std::uint64_t seed, int client_count, int rounds) {
  sim::WorldConfig wc;
  wc.seed = seed;
  wc.honest_relays = 300;
  wc.record_archive = false;
  sim::World world(wc);
  const auto target = world.add_service();

  attack::DeanonymizerConfig dc;
  dc.guard_relays = 40;
  attack::ClientDeanonymizer attacker(dc);
  attacker.deploy_guards(world);
  attacker.position_hsdirs(world, world.service(target));
  world.step_hour();

  const auto geodb = geo::GeoDatabase::standard();
  util::Rng client_rng(seed + 1);
  util::Rng trace_rng(seed + 2);
  const auto onion = world.service(target).onion_address();
  for (int i = 0; i < client_count; ++i) {
    hs::Client client(geodb.sample_global(client_rng),
                      seed + 100 + static_cast<std::uint64_t>(i));
    client.maintain(world.consensus(), world.now());
    for (int r = 0; r < rounds; ++r) {
      const auto outcome = client.fetch_descriptor(
          onion, world.consensus(), world.directories(), world.now());
      attacker.observe_fetch(outcome, trace_rng);
    }
  }

  GeoStudy study;
  study.report = attacker.report();
  study.clients_total = client_count;
  std::vector<util::Ipv4> ips;
  for (const auto addr : study.report.client_addresses)
    ips.emplace_back(util::Ipv4(addr));
  study.map = geo::build_client_map(ips, geodb);
  return study;
}

void BM_GeoStudy(benchmark::State& state) {
  std::uint64_t seed = 500;
  for (auto _ : state) {
    auto study = run_geo_study(seed++, 50, 2);
    benchmark::DoNotOptimize(study.map.total_clients);
  }
}
BENCHMARK(BM_GeoStudy)->Unit(benchmark::kMillisecond);

void BM_GeoLookup(benchmark::State& state) {
  const auto db = geo::GeoDatabase::standard();
  util::Rng rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(db.lookup(util::Ipv4::random_public(rng)).code);
}
BENCHMARK(BM_GeoLookup);

void print_figure3() {
  const auto study = run_geo_study(1300, 400, 3);
  bench::print_header("Figure 3 — clients of a popular hidden service");
  std::printf("  clients simulated: %d; fetches observed: %lld\n",
              study.clients_total,
              static_cast<long long>(study.report.fetches_observed));
  std::printf("  signatures injected: %lld; via our guards: %lld\n",
              static_cast<long long>(study.report.signatures_injected),
              static_cast<long long>(study.report.through_our_guard));
  std::printf("  deanonymised clients: %zu (%.1f%% of population)\n\n",
              study.report.client_addresses.size(),
              100.0 * static_cast<double>(
                          study.report.client_addresses.size()) /
                  study.clients_total);
  std::printf("  %-4s %-20s %8s %7s\n", "cc", "country", "clients", "share");
  for (const auto& row : study.map.rows()) {
    std::printf("  %-4s %-20s %8lld %6.1f%%\n", row.code.c_str(),
                row.name.c_str(), static_cast<long long>(row.clients),
                row.share * 100.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("fig3_geomap", &argc, argv);
  torsim::bench::run_benchmarks();
  print_figure3();
  return torsim::bench::finish();
}
