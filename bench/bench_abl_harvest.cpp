// Ablation: harvest coverage vs. attacker resources.
//
// The paper claims a naive attacker would need >300 IP addresses for
// 27+ hours, while shadowing let them do it with 58. We sweep the
// number of rented IPs (and relays per IP) and report what fraction of
// the published hidden services the 24-hour harvest recovers, plus the
// no-shadowing baseline (2 relays per IP — what the per-IP cap was
// supposed to enforce).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>
#include <set>

#include "attack/harvester.hpp"
#include "sim/world.hpp"

namespace {

using namespace torsim;

struct HarvestPoint {
  int ips = 0;
  int relays_per_ip = 0;
  double coverage = 0.0;  // recovered / published services
  int positions = 0;
};

HarvestPoint run_point(std::uint64_t seed, int ips, int relays_per_ip,
                       int services = 60, int honest = 250) {
  sim::WorldConfig wc;
  wc.seed = seed;
  wc.honest_relays = honest;
  wc.record_archive = false;
  sim::World world(wc);

  std::set<std::string> published;
  for (int i = 0; i < services; ++i) {
    const auto index = world.add_service();
    published.insert(world.service(index).onion_address());
  }

  attack::HarvesterConfig hc;
  hc.num_ips = ips;
  hc.relays_per_ip = relays_per_ip;
  attack::ShadowHarvester harvester(hc);
  harvester.deploy(world);
  const auto report = harvester.run(world, 24);

  std::size_t recovered = 0;
  for (const auto& onion : report.onions)
    if (published.count(onion)) ++recovered;

  HarvestPoint point;
  point.ips = ips;
  point.relays_per_ip = relays_per_ip;
  point.coverage =
      static_cast<double>(recovered) / static_cast<double>(published.size());
  point.positions = report.positions_used;
  return point;
}

void BM_Harvest24h(benchmark::State& state) {
  std::uint64_t seed = 60;
  for (auto _ : state) {
    auto point = run_point(seed++, 8, 8, 30, 150);
    benchmark::DoNotOptimize(point.coverage);
  }
}
BENCHMARK(BM_Harvest24h)->Unit(benchmark::kMillisecond);

void print_ablation() {
  std::printf("\n==== Ablation — harvest coverage vs attacker resources ====\n");
  std::printf("  (world: 250 honest relays, 60 published services, 24 h)\n\n");
  std::printf("  %-6s %-12s %-10s %-9s %s\n", "IPs", "relays/IP",
              "positions", "coverage", "note");
  struct Config {
    int ips, per_ip;
    const char* note;
  };
  const Config configs[] = {
      {2, 2, "no shadowing (per-IP cap honoured)"},
      {8, 2, "no shadowing, more IPs"},
      {2, 12, "shadowing, tiny fleet"},
      {4, 12, "shadowing"},
      {8, 12, "shadowing"},
      {12, 16, "shadowing, paper-like ratio"},
  };
  for (const auto& config : configs) {
    const auto point =
        run_point(3100 + config.ips * 100 + config.per_ip, config.ips,
                  config.per_ip);
    std::printf("  %-6d %-12d %-10d %-9.2f %s\n", point.ips,
                point.relays_per_ip, point.positions, point.coverage,
                config.note);
  }
  std::printf(
      "\n  The paper's claim: without shadowing an attacker needs ~300 IPs;\n"
      "  with shadowing, 58 IPs sufficed. The sweep shows coverage scaling\n"
      "  with total relay-positions (IPs x relays/IP), not with IPs alone.\n");
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("abl_harvest", &argc, argv);
  torsim::bench::run_benchmarks();
  print_ablation();
  return torsim::bench::finish();
}
