// Figure 2: topic distribution of English hidden-service pages, plus the
// in-text language distribution (84% English, 17 languages) and the
// Sec. IV exclusion funnel (2,348 short incl. 1,092 SSH banners; 1,108
// port-443 duplicates; 73 error pages; 805 TorHost defaults; 1,813
// classified).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "content/pipeline.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace torsim;

const content::TopicClassifier& shared_classifier() {
  static const content::TopicClassifier classifier = [] {
    util::Rng rng(77);
    return content::TopicClassifier::make_default(rng);
  }();
  return classifier;
}

const content::PipelineResult& full_pipeline_result() {
  static const content::PipelineResult result = [] {
    content::ContentPipeline pipeline(shared_classifier(),
                                      content::LanguageDetector::instance());
    return pipeline.run(bench::full_crawl().pages);
  }();
  return result;
}

void BM_TrainClassifier(benchmark::State& state) {
  for (auto _ : state) {
    util::Rng rng(5);
    auto classifier = content::TopicClassifier::make_default(rng, 20, 100);
    benchmark::DoNotOptimize(classifier.trained());
  }
}
BENCHMARK(BM_TrainClassifier)->Unit(benchmark::kMillisecond);

void BM_ClassifyPage(benchmark::State& state) {
  util::Rng rng(6);
  content::PageGenerator gen;
  const auto page = gen.generate_english(content::Topic::kDrugs, 200, rng);
  const auto& classifier = shared_classifier();
  for (auto _ : state)
    benchmark::DoNotOptimize(classifier.classify(page).topic);
}
BENCHMARK(BM_ClassifyPage);

void BM_DetectLanguage(benchmark::State& state) {
  util::Rng rng(7);
  content::PageGenerator gen;
  const auto page =
      gen.generate(content::Topic::kOther, content::Language::kRussian, 150,
                   rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        content::LanguageDetector::instance().detect(page).language);
}
BENCHMARK(BM_DetectLanguage);

// Serial-vs-parallel sweep: the argument is the `threads` knob of the
// per-page classification fan-out. Results are bit-identical across
// arguments; BENCH_*.json records the wall-clock speedup.
void BM_FullContentPipeline(benchmark::State& state) {
  content::ContentPipeline pipeline(
      shared_classifier(), content::LanguageDetector::instance(),
      {.threads = static_cast<int>(state.range(0))});
  const auto& pages = bench::full_crawl().pages;
  std::size_t classified = 0;
  for (auto _ : state) {
    auto result = pipeline.run(pages);
    classified = result.classified;
    benchmark::DoNotOptimize(classified);
  }
  state.counters["classified"] = static_cast<double>(classified);
}
BENCHMARK(BM_FullContentPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void print_figure2() {
  const auto& result = full_pipeline_result();
  const auto& paper = population::paper();

  bench::print_header("Sec. IV funnel");
  bench::print_row("connected destinations",
                   static_cast<double>(result.connected),
                   static_cast<double>(paper.crawl_connected));
  bench::print_row("excluded <20 words",
                   static_cast<double>(result.excluded_short),
                   static_cast<double>(paper.excluded_short));
  bench::print_row("  of which SSH banners",
                   static_cast<double>(result.excluded_ssh_banner),
                   static_cast<double>(paper.excluded_ssh_banners));
  bench::print_row("excluded 443 duplicates",
                   static_cast<double>(result.excluded_dup443),
                   static_cast<double>(paper.excluded_dup443));
  bench::print_row("excluded error pages",
                   static_cast<double>(result.excluded_error),
                   static_cast<double>(paper.excluded_error_pages));
  bench::print_row("classifiable", static_cast<double>(result.classifiable),
                   static_cast<double>(paper.classifiable));
  bench::print_row("English pages", static_cast<double>(result.english),
                   static_cast<double>(paper.english_pages));
  bench::print_row("TorHost default pages",
                   static_cast<double>(result.torhost_default),
                   static_cast<double>(paper.torhost_default_pages));
  bench::print_row("topic-classified",
                   static_cast<double>(result.classified),
                   static_cast<double>(paper.classified_pages));

  bench::print_header("Language distribution (in-text)");
  const auto lang_shares = result.language_shares();
  int languages_seen = 0;
  for (int i = 0; i < content::kNumLanguages; ++i)
    if (result.language_counts[i] > 0) ++languages_seen;
  std::printf("  languages seen: measured %d, paper %lld\n",
              languages_seen,
              static_cast<long long>(paper.languages_found));
  std::printf("  English share: measured %.1f%%, paper %.0f%%\n",
              lang_shares[0] * 100.0, paper.english_share * 100.0);

  bench::print_header("Figure 2 — topic distribution (%)");
  const auto pct = result.topic_percentages();
  const auto& paper_pct = content::paper_topic_percentages();
  std::printf("  %-20s measured   paper\n", "topic");
  for (int i = 0; i < content::kNumTopics; ++i) {
    std::printf("  %-20s %7.1f   %6.0f\n",
                std::string(content::topic_name(
                                content::topic_from_index(i)))
                    .c_str(),
                pct[i], paper_pct[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("fig2_topics", &argc, argv);
  torsim::bench::run_benchmarks();
  print_figure2();
  return torsim::bench::finish();
}
