// Ablation: how the Fig. 1 port-scan coverage degrades as injected
// connection faults ramp up, and that the degradation is identical for
// serial and parallel sweeps.
//
// The paper reports ~87% coverage from churn and persistent timeouts
// alone; this sweep shows how additional network-level faults (drops,
// timeouts, corruption) eat into the reachable landscape, and how much
// the scanner's bounded retries claw back.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <cstdio>

#include "fault/plan.hpp"
#include "population/population.hpp"
#include "scan/port_scanner.hpp"

namespace {

using namespace torsim;

population::Population make_population() {
  population::PopulationConfig config;
  config.seed = 20130204;
  config.scale = 0.05;
  return population::Population::generate(config);
}

scan::ScanReport run_scan(const population::Population& pop,
                          double fault_rate, int threads) {
  fault::FaultPlan plan;
  plan.connect_drop_rate = fault_rate / 3.0;
  plan.connect_timeout_rate = 2.0 * fault_rate / 3.0;
  scan::PortScanner scanner(scan::ScanConfig{.threads = threads,
                                             .faults = plan});
  return scanner.scan(pop);
}

void BM_ScanWithFaults(benchmark::State& state) {
  const auto pop = make_population();
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  const int threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const auto report = run_scan(pop, rate, threads);
    benchmark::DoNotOptimize(report.total_open_ports());
  }
  state.counters["coverage"] = run_scan(pop, rate, threads).coverage;
}
BENCHMARK(BM_ScanWithFaults)
    ->ArgsProduct({{0, 10, 30, 50}, {1, 4}})
    ->Unit(benchmark::kMillisecond);

void print_ablation() {
  const auto pop = make_population();
  std::printf("\n==== Ablation — Fig. 1 coverage vs connection-fault rate "
              "====\n");
  std::printf("  (drop:timeout split 1:2; retries per the default policy)\n\n");
  std::printf("  %-8s %-10s %-10s %-10s %-10s %-10s\n", "rate", "coverage",
              "open", "timeout", "closed", "recovered");
  double last = 2.0;
  for (int pct : {0, 5, 10, 20, 30, 40, 50}) {
    const auto report = run_scan(pop, pct / 100.0, 0);
    std::printf("  %-8.2f %-10.3f %-10lld %-10lld %-10lld %-10lld%s\n",
                pct / 100.0, report.coverage,
                static_cast<long long>(report.total_open_ports()),
                static_cast<long long>(report.probe_timeouts),
                static_cast<long long>(report.probes_closed),
                static_cast<long long>(report.probes_recovered),
                report.coverage <= last ? "" : "  <-- NOT MONOTONE");
    last = report.coverage;
  }
  std::printf("\n  Coverage is non-increasing in the fault rate by\n"
              "  construction (threshold coupling, docs/fault-injection.md)\n"
              "  and identical across --threads values.\n");
}

}  // namespace

int main(int argc, char** argv) {
  torsim::bench::init("abl_faults", &argc, argv);
  torsim::bench::run_benchmarks();
  print_ablation();
  return torsim::bench::finish();
}
