// Parameterized property sweeps over the protocol-critical invariants:
// the HSDir ring, descriptor rotation, consensus construction, and the
// world simulation loop.
#include <gtest/gtest.h>

#include <set>

#include "dirspec/consensus_doc.hpp"
#include "sim/world.hpp"
#include "trackdet/history.hpp"

namespace torsim {
namespace {

// ---------------------------------------------------------------------
// Ring invariants across ring sizes
// ---------------------------------------------------------------------

class RingPropertyTest : public ::testing::TestWithParam<int> {};

trackdet::Snapshot random_ring(int size, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<trackdet::SnapshotEntry> entries(
      static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    rng.fill_bytes(entries[static_cast<std::size_t>(i)].fingerprint.data(),
                   20);
    entries[static_cast<std::size_t>(i)].server =
        static_cast<std::uint32_t>(i);
  }
  return trackdet::Snapshot(0, std::move(entries));
}

TEST_P(RingPropertyTest, ResponsibleSetSizeIsMinOfThreeAndRing) {
  const int n = GetParam();
  const auto ring = random_ring(n, 1000 + static_cast<std::uint64_t>(n));
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    crypto::DescriptorId id;
    rng.fill_bytes(id.data(), id.size());
    EXPECT_EQ(ring.responsible(id).size(),
              static_cast<std::size_t>(std::min(3, n)));
  }
}

TEST_P(RingPropertyTest, ResponsibleAreDistinctAndConsecutive) {
  const int n = GetParam();
  if (n < 3) GTEST_SKIP() << "needs >= 3 relays";
  const auto ring = random_ring(n, 2000 + static_cast<std::uint64_t>(n));
  util::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    crypto::DescriptorId id;
    rng.fill_bytes(id.data(), id.size());
    const auto responsible = ring.responsible(id);
    // Distinct servers.
    std::set<std::uint32_t> servers;
    for (const auto* e : responsible) servers.insert(e->server);
    EXPECT_EQ(servers.size(), 3u);
    // Consecutive in ring order: no other entry's fingerprint falls
    // strictly between the id and the last responsible fingerprint
    // (travelling clockwise) unless it is one of the responsible three.
    const double span =
        crypto::ring_distance(id, responsible.back()->fingerprint);
    for (const auto& e : ring.entries()) {
      const double d = crypto::ring_distance(id, e.fingerprint);
      if (d > 0 && d < span) {
        EXPECT_TRUE(servers.count(e.server))
            << "entry inside responsible arc but not responsible";
      }
    }
  }
}

TEST_P(RingPropertyTest, EveryRelayResponsibleForSomeId) {
  const int n = GetParam();
  if (n < 3 || n > 64) GTEST_SKIP() << "coverage check for small rings";
  const auto ring = random_ring(n, 3000 + static_cast<std::uint64_t>(n));
  // An id placed just before each fingerprint makes that relay first
  // responsible.
  for (const auto& e : ring.entries()) {
    crypto::U160 just_before =
        crypto::U160(e.fingerprint)
            .ring_distance_from(crypto::U160::from_u64(1));
    const auto responsible = ring.responsible(just_before.to_digest());
    ASSERT_FALSE(responsible.empty());
    EXPECT_EQ(responsible[0]->server, e.server);
  }
}

INSTANTIATE_TEST_SUITE_P(RingSizes, RingPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50, 200, 1000));

// ---------------------------------------------------------------------
// Descriptor rotation properties across many services
// ---------------------------------------------------------------------

class RotationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RotationPropertyTest, ExactlyOneRotationPerDay) {
  util::Rng rng(4000 + static_cast<std::uint64_t>(GetParam()));
  const auto key = crypto::KeyPair::generate(rng);
  const auto id = crypto::permanent_id_from_fingerprint(key.fingerprint());
  const util::UnixTime start = util::make_utc(2013, 2, 1);
  // Over 10 days, the period increments exactly once per 86400 s.
  int rotations = 0;
  std::uint32_t prev = crypto::time_period(start, id);
  for (util::UnixTime t = start; t < start + 10 * util::kSecondsPerDay;
       t += util::kSecondsPerHour) {
    const auto period = crypto::time_period(t, id);
    EXPECT_GE(period, prev);
    EXPECT_LE(period - prev, 1u);
    rotations += period != prev;
    prev = period;
  }
  EXPECT_EQ(rotations, 10);
}

TEST_P(RotationPropertyTest, ReplicasNeverCollide) {
  util::Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  const auto key = crypto::KeyPair::generate(rng);
  const auto id = crypto::permanent_id_from_fingerprint(key.fingerprint());
  for (std::uint32_t period = 15000; period < 15030; ++period)
    EXPECT_NE(crypto::descriptor_id(id, period, 0),
              crypto::descriptor_id(id, period, 1));
}

TEST_P(RotationPropertyTest, DescriptorIdsLookUniform) {
  // Descriptor ids across services/periods should scatter over the ring
  // (no clustering in the top byte).
  util::Rng rng(6000 + static_cast<std::uint64_t>(GetParam()));
  std::set<int> top_bytes;
  for (int i = 0; i < 64; ++i) {
    const auto key = crypto::KeyPair::generate(rng);
    const auto id = crypto::permanent_id_from_fingerprint(key.fingerprint());
    top_bytes.insert(crypto::descriptor_id(id, 15000, 0)[0]);
  }
  EXPECT_GT(top_bytes.size(), 40u);  // near-uniform over 256 buckets
}

INSTANTIATE_TEST_SUITE_P(Seeds, RotationPropertyTest,
                         ::testing::Range(0, 5));

// ---------------------------------------------------------------------
// World invariants over simulated time
// ---------------------------------------------------------------------

class WorldInvariantTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldInvariantTest, ConsensusInvariantsHoldEveryHour) {
  sim::WorldConfig config;
  config.seed = GetParam();
  config.honest_relays = 120;
  sim::World world(config);

  for (int hour = 0; hour < 30; ++hour) {
    world.step_hour();
    const auto& consensus = world.consensus();

    // Sorted by fingerprint.
    for (std::size_t i = 1; i < consensus.size(); ++i)
      ASSERT_LT(consensus.entries()[i - 1].fingerprint,
                consensus.entries()[i].fingerprint);

    std::map<std::uint32_t, int> per_ip;
    for (const auto& e : consensus.entries()) {
      // Per-IP cap.
      ASSERT_LE(++per_ip[e.address.value()], 2);
      // Everyone listed is Running; the underlying relay is online and
      // reachable.
      ASSERT_TRUE(has_flag(e.flags, dirauth::Flag::kRunning));
      const auto& relay = world.registry().get(e.relay);
      ASSERT_TRUE(relay.online());
      ASSERT_TRUE(relay.authority_reachable());
      // HSDir implies >= 25 h continuous uptime.
      if (has_flag(e.flags, dirauth::Flag::kHSDir)) {
        ASSERT_GE(relay.continuous_uptime(world.now()),
                  25 * util::kSecondsPerHour);
      }
      // Fingerprint in the consensus is the relay's current identity.
      ASSERT_EQ(e.fingerprint, relay.fingerprint());
    }
  }
  // Archive strictly increasing.
  for (std::size_t i = 1; i < world.archive().size(); ++i)
    ASSERT_LT(world.archive().at(i - 1).valid_after(),
              world.archive().at(i).valid_after());
}

TEST_P(WorldInvariantTest, PublishedDescriptorsAlwaysFetchable) {
  sim::WorldConfig config;
  config.seed = GetParam() + 100;
  config.honest_relays = 150;
  sim::World world(config);
  std::vector<std::size_t> services;
  for (int i = 0; i < 5; ++i) services.push_back(world.add_service());

  for (int hour = 0; hour < 50; ++hour) {
    world.step_hour();
    for (const auto index : services) {
      const auto ids =
          world.service(index).current_descriptor_ids(world.now());
      for (const auto& id : ids) {
        relay::RelayId hsdir;
        const auto d = world.directories().fetch_from(world.consensus(), id,
                                                      world.now(), hsdir);
        ASSERT_TRUE(d.has_value())
            << "hour " << hour << ": published descriptor unreachable";
        ASSERT_EQ(d->onion_address(), world.service(index).onion_address());
      }
    }
  }
}

TEST_P(WorldInvariantTest, ConsensusDocumentsRoundTripEveryHour) {
  sim::WorldConfig config;
  config.seed = GetParam() + 200;
  config.honest_relays = 60;
  sim::World world(config);
  for (int hour = 0; hour < 10; ++hour) {
    world.step_hour();
    const auto parsed = dirspec::parse_consensus(
        dirspec::render_consensus(world.consensus()));
    ASSERT_EQ(parsed.size(), world.consensus().size());
    ASSERT_EQ(parsed.hsdir_count(), world.consensus().hsdir_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldInvariantTest,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace torsim
