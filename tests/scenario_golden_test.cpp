// Golden regression gate for the scenario engine (`ctest -L scenario`):
// every curated pack under scenarios/ must replay byte-identically —
// timeline CSV and metrics JSON — against the committed goldens under
// scenarios/golden/, at --threads 1/4/8 with the memo caches on and
// off. A diff here means the simulation's observable history changed;
// regenerate deliberately (docs/scenarios.md) or fix the regression.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "scenario/engine.hpp"
#include "scenario/pack.hpp"
#include "util/csv.hpp"
#include "util/memo.hpp"

namespace torsim::scenario {
namespace {

const std::string kScenarioDir = TORSIM_SCENARIO_DIR;

const std::vector<std::string>& pack_names() {
  static const std::vector<std::string> names = list_packs(kScenarioDir);
  return names;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " — regenerate per docs/scenarios.md";
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

struct RunBytes {
  std::string timeline_csv;
  std::string metrics_json;
};

/// Replays `pack` and captures the exact bytes the CLI would emit for
/// --csv and --metrics-out (same CsvWriter / MetricsRegistry code
/// paths, so golden equality really is artifact equality).
RunBytes run_bytes(const ScenarioPack& pack, int threads,
                   const std::string& fault_override = "") {
  obs::MetricsRegistry metrics;
  ScenarioRunConfig config;
  config.threads = threads;
  config.fault_override = fault_override;
  config.metrics = &metrics;
  const ScenarioRunReport report = run_pack(pack, config);

  const std::string path =
      "/tmp/torsim_scenario_golden_" + pack.name + ".csv";
  {
    util::CsvWriter csv(path);
    report.write_timeline(csv);
  }
  std::ifstream in(path, std::ios::binary);
  RunBytes bytes{std::string(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>()),
                 metrics.to_json()};
  std::remove(path.c_str());
  return bytes;
}

class ScenarioGoldenTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioGoldenTest, ReplaysByteIdenticalAcrossThreadsAndCache) {
  const ScenarioPack pack = load_pack(kScenarioDir, GetParam());
  const std::string golden_csv =
      read_file(kScenarioDir + "/golden/" + pack.name + ".timeline.csv");
  const std::string golden_metrics =
      read_file(kScenarioDir + "/golden/" + pack.name + ".metrics.json");
  ASSERT_FALSE(golden_csv.empty());
  ASSERT_FALSE(golden_metrics.empty());

  for (const int threads : {1, 4, 8}) {
    for (const bool cache : {true, false}) {
      util::MemoEnabledGuard guard(cache);
      const RunBytes bytes = run_bytes(pack, threads);
      EXPECT_EQ(bytes.timeline_csv, golden_csv)
          << pack.name << " timeline diverged at threads=" << threads
          << " cache=" << (cache ? "on" : "off");
      EXPECT_EQ(bytes.metrics_json, golden_metrics)
          << pack.name << " metrics diverged at threads=" << threads
          << " cache=" << (cache ? "on" : "off");
    }
  }
}

TEST_P(ScenarioGoldenTest, ShippedPackRoundTripsThroughRenderer) {
  const ScenarioPack pack = load_pack(kScenarioDir, GetParam());
  EXPECT_EQ(parse_pack(render_pack(pack)), pack);
}

INSTANTIATE_TEST_SUITE_P(
    Packs, ScenarioGoldenTest, ::testing::ValuesIn(pack_names()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(ScenarioPackInventoryTest, EveryPackHasBothGoldens) {
  ASSERT_GE(pack_names().size(), 6u)
      << "curated pack set shrank below the gate's floor";
  for (const std::string& name : pack_names()) {
    EXPECT_FALSE(
        read_file(kScenarioDir + "/golden/" + name + ".timeline.csv")
            .empty())
        << name;
    EXPECT_FALSE(
        read_file(kScenarioDir + "/golden/" + name + ".metrics.json")
            .empty())
        << name;
  }
}

TEST(ScenarioPackInventoryTest, ListPacksSkipsSubdirectories) {
  // golden/ and testdata/ live under scenarios/ but must not be listed.
  for (const std::string& name : pack_names()) {
    EXPECT_NE(name, "bad-version");
    EXPECT_EQ(name.find('/'), std::string::npos);
  }
}

// Chaos composition: a scenario replayed on top of a --faults override
// (the CLI's random-fault knob) must still be a pure function of the
// seed — identical bytes at every thread count and cache mode, even
// though the override changes the history itself.
TEST(ScenarioChaosComposeTest, FaultOverrideStaysDeterministic) {
  const ScenarioPack pack = load_pack(kScenarioDir, "authority-outage");
  const RunBytes reference = run_bytes(pack, 1, "severe");
  EXPECT_NE(reference.timeline_csv,
            run_bytes(pack, 1).timeline_csv)
      << "severe fault override should visibly change the timeline";
  for (const int threads : {4, 8}) {
    for (const bool cache : {true, false}) {
      util::MemoEnabledGuard guard(cache);
      const RunBytes bytes = run_bytes(pack, threads, "severe");
      EXPECT_EQ(bytes.timeline_csv, reference.timeline_csv)
          << "threads=" << threads << " cache=" << cache;
      EXPECT_EQ(bytes.metrics_json, reference.metrics_json)
          << "threads=" << threads << " cache=" << cache;
    }
  }
}

TEST(ScenarioChaosComposeTest, BadFaultOverrideThrows) {
  const ScenarioPack pack = load_pack(kScenarioDir, "baseline-quiet");
  ScenarioRunConfig config;
  config.fault_override = "frobnicate=1";
  EXPECT_THROW((void)run_pack(pack, config), std::invalid_argument);
}

}  // namespace
}  // namespace torsim::scenario
