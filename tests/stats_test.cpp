#include <gtest/gtest.h>

#include <cmath>

#include "stats/binomial.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/zipf.hpp"
#include "util/rng.hpp"

namespace torsim::stats {
namespace {

// ---------------------------------------------------------------------
// descriptive
// ---------------------------------------------------------------------

TEST(DescriptiveTest, SumMeanBasics) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(sum(v), 10.0);
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(DescriptiveTest, KahanSumStaysAccurate) {
  std::vector<double> v(1000000, 0.1);
  EXPECT_NEAR(sum(v), 100000.0, 1e-6);
}

TEST(DescriptiveTest, VarianceAndStddev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
  EXPECT_NEAR(sample_variance(v), 4.0 * 8 / 7, 1e-12);
  EXPECT_DOUBLE_EQ(sample_variance(std::vector<double>{1.0}), 0.0);
}

TEST(DescriptiveTest, PercentileAndMedian) {
  const std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(std::vector<double>{7.0}, 50), 7.0);
  EXPECT_THROW(percentile(std::vector<double>{}, 50), std::invalid_argument);
  EXPECT_THROW(percentile(v, -1), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101), std::invalid_argument);
}

TEST(DescriptiveTest, MinMax) {
  const std::vector<double> v = {3, -1, 7};
  EXPECT_DOUBLE_EQ(min(v), -1.0);
  EXPECT_DOUBLE_EQ(max(v), 7.0);
  EXPECT_THROW(min(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(max(std::vector<double>{}), std::invalid_argument);
}

TEST(DescriptiveTest, ChiSquareDistance) {
  const std::vector<double> a = {1, 0, 3};
  EXPECT_DOUBLE_EQ(chi_square_distance(a, a), 0.0);
  const std::vector<double> b = {0, 1, 3};
  EXPECT_DOUBLE_EQ(chi_square_distance(a, b), 1.0);  // 0.5*(1 + 1 + 0)
  EXPECT_THROW(chi_square_distance(a, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(DescriptiveTest, Normalized) {
  const std::vector<double> v = {1, 1, 2};
  const auto n = normalized(v);
  EXPECT_DOUBLE_EQ(n[0], 0.25);
  EXPECT_DOUBLE_EQ(n[2], 0.5);
  const std::vector<double> zeros = {0, 0};
  EXPECT_EQ(normalized(zeros), zeros);  // no-op, no NaN
}

// ---------------------------------------------------------------------
// binomial (the Sec. VII suspicion test)
// ---------------------------------------------------------------------

TEST(BinomialTest, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(binomial_mean(100, 0.3), 30.0);
  EXPECT_DOUBLE_EQ(binomial_stddev(100, 0.5), 5.0);
  EXPECT_THROW(binomial_mean(-1, 0.5), std::invalid_argument);
  EXPECT_THROW(binomial_stddev(10, 1.5), std::invalid_argument);
}

TEST(BinomialTest, ThreeSigmaThreshold) {
  // The paper's numbers: a year of periods (n=365) with N_hsdir ~ 1000
  // relays -> p = 0.006, mu = 2.19, sigma = 1.47, threshold ~ 6.6.
  const double threshold = binomial_three_sigma_threshold(365, 6.0 / 1000.0);
  EXPECT_NEAR(threshold, 365 * 0.006 + 3 * std::sqrt(365 * 0.006 * 0.994),
              1e-9);
  EXPECT_GT(threshold, 6.0);
  EXPECT_LT(threshold, 7.5);
}

TEST(BinomialTest, PmfSumsToOne) {
  for (double p : {0.01, 0.3, 0.9}) {
    double total = 0;
    for (int k = 0; k <= 50; ++k) total += binomial_pmf(50, k, p);
    EXPECT_NEAR(total, 1.0, 1e-9) << p;
  }
}

TEST(BinomialTest, PmfEdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_pmf(10, -1, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 11, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(10, 10, 1.0), 1.0);
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
}

TEST(BinomialTest, UpperTailMonotone) {
  double prev = 1.1;
  for (int k = 0; k <= 20; ++k) {
    const double tail = binomial_upper_tail(20, k, 0.3);
    EXPECT_LE(tail, prev + 1e-12);
    prev = tail;
  }
  EXPECT_DOUBLE_EQ(binomial_upper_tail(20, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_upper_tail(20, 21, 0.3), 0.0);
}

TEST(BinomialTest, TailBeyondThreeSigmaIsSmall) {
  const std::int64_t n = 1000;
  const double p = 0.006;
  const auto threshold = static_cast<std::int64_t>(
      std::ceil(binomial_three_sigma_threshold(n, p)));
  EXPECT_LT(binomial_upper_tail(n, threshold, p), 0.01);
}

TEST(BinomialTest, LogChoose) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_THROW(log_choose(5, 6), std::invalid_argument);
}

// ---------------------------------------------------------------------
// histogram
// ---------------------------------------------------------------------

TEST(HistogramTest, BasicCounting) {
  Histogram<int> h;
  h.add(80);
  h.add(80);
  h.add(443, 5);
  EXPECT_EQ(h.count(80), 2);
  EXPECT_EQ(h.count(443), 5);
  EXPECT_EQ(h.count(22), 0);
  EXPECT_EQ(h.total(), 7);
  EXPECT_EQ(h.distinct(), 2u);
}

TEST(HistogramTest, ByCountDesc) {
  Histogram<std::string> h;
  h.add("a", 1);
  h.add("b", 5);
  h.add("c", 3);
  const auto rows = h.by_count_desc();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "b");
  EXPECT_EQ(rows[1].first, "c");
  EXPECT_EQ(rows[2].first, "a");
}

TEST(HistogramTest, OtherBucket) {
  Histogram<int> h;
  h.add(1, 100);
  h.add(2, 60);
  h.add(3, 10);
  h.add(4, 5);
  const auto [kept, other] = h.with_other_bucket(50);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].second, 100);
  EXPECT_EQ(other, 15);
}

TEST(HistogramTest, BarLine) {
  const std::string line = bar_line("80-http", 50, 100, 10);
  EXPECT_NE(line.find("80-http"), std::string::npos);
  EXPECT_NE(line.find("50.0%"), std::string::npos);
  EXPECT_EQ(std::count(line.begin(), line.end(), '#'), 5);
  const std::string zero = bar_line("x", 0, 0);
  EXPECT_EQ(std::count(zero.begin(), zero.end(), '#'), 0);
}

// ---------------------------------------------------------------------
// zipf
// ---------------------------------------------------------------------

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler sampler(100, 1.0);
  double total = 0;
  for (std::size_t r = 1; r <= 100; ++r) total += sampler.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfDecreasing) {
  ZipfSampler sampler(50, 0.8);
  for (std::size_t r = 2; r <= 50; ++r)
    EXPECT_LT(sampler.pmf(r), sampler.pmf(r - 1));
}

TEST(ZipfTest, SampleRange) {
  ZipfSampler sampler(10, 1.2);
  util::Rng rng(61);
  for (int i = 0; i < 1000; ++i) {
    const auto r = sampler.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 10u);
  }
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfSampler sampler(20, 1.0);
  util::Rng rng(67);
  std::vector<int> counts(21, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, sampler.pmf(1), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, sampler.pmf(2), 0.01);
}

TEST(ZipfTest, ExpectedCounts) {
  const auto expected = zipf_expected_counts(10, 1.0, 1000);
  EXPECT_EQ(expected.size(), 10u);
  double total = 0;
  for (double e : expected) total += e;
  EXPECT_NEAR(total, 1000.0, 1e-6);
  EXPECT_GT(expected[0], expected[9]);
}

TEST(ZipfTest, RejectsEmpty) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  ZipfSampler sampler(5, 1.0);
  EXPECT_THROW(sampler.pmf(0), std::out_of_range);
  EXPECT_THROW(sampler.pmf(6), std::out_of_range);
}

}  // namespace
}  // namespace torsim::stats
