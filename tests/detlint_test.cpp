// Self-tests for the detlint pass pipeline: every check of every pass
// must fire on a minimal trigger snippet AND on the checked-in
// fixtures, and the known-safe shapes (member .time(), rng.child(i),
// sorted_items, per-shard subscripts, namespace aliases) must stay
// quiet. If a check silently stops firing, the lint gate becomes a
// green light for nondeterminism — these tests are the lint's lint.
#include "detlint/detlint.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using detlint::Finding;
using detlint::NameSets;

std::vector<Finding> scan(const std::string& code,
                          const std::string& path = "src/foo.cpp") {
  NameSets names = detlint::collect_names(code);
  return detlint::scan_file(path, code, names);
}

bool has_check(const std::vector<Finding>& findings,
               const std::string& check, bool suppressed = false) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.check == check &&
                              f.suppressed == suppressed;
                     });
}

std::size_t count_check(const std::vector<Finding>& findings,
                        const std::string& check) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.check == check; }));
}

// --- banned-call ------------------------------------------------------

TEST(DetlintBannedCall, FlagsLibcClockAndPrng) {
  const auto f = scan("void g() { std::srand(1); int r = std::rand();\n"
                      "  std::time_t t = std::time(nullptr); }\n");
  EXPECT_EQ(count_check(f, "banned-call"), 3u);
}

TEST(DetlintBannedCall, FlagsChronoClocksAndRandomDevice) {
  const auto f = scan(
      "auto a = std::chrono::system_clock::now();\n"
      "auto b = std::chrono::steady_clock::now();\n"
      "auto c = std::chrono::high_resolution_clock::now();\n"
      "std::random_device rd;\n");
  EXPECT_EQ(count_check(f, "banned-call"), 4u);
}

TEST(DetlintBannedCall, FlagsGetenvAndUnqualifiedCalls) {
  const auto f = scan("void g() { const char* h = getenv(\"HOME\");\n"
                      "  long t = time(nullptr); }\n");
  EXPECT_EQ(count_check(f, "banned-call"), 2u);
}

TEST(DetlintBannedCall, IgnoresMemberCallsAndDeclarations) {
  const auto f = scan(
      "struct S { long time() const; util::Clock& clock(); };\n"
      "long use(const S& s, S* p) { return s.time() + p->time(); }\n"
      "util::UnixTime time() const { return time_; }\n");
  EXPECT_FALSE(has_check(f, "banned-call"));
}

TEST(DetlintBannedCall, IgnoresOtherNamespaces) {
  const auto f = scan("long g() { return sim::time(w) + my::rand(); }\n");
  EXPECT_FALSE(has_check(f, "banned-call"));
}

TEST(DetlintBannedCall, IgnoresStringsAndComments) {
  const auto f = scan(
      "// calling std::rand() here would be bad\n"
      "/* std::time(nullptr) too */\n"
      "const char* msg = \"do not use rand() or time(0)\";\n");
  EXPECT_TRUE(f.empty());
}

TEST(DetlintBannedCall, RandomDeviceAllowedOnlyInRngImpl) {
  const std::string code = "std::random_device rd;\n";
  EXPECT_TRUE(has_check(scan(code, "src/scan/scanner.cpp"), "banned-call"));
  EXPECT_FALSE(has_check(scan(code, "src/util/rng.cpp"), "banned-call"));
}

TEST(DetlintBannedCall, SteadyClockAllowedOnlyInObsStopwatch) {
  const std::string code =
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(has_check(scan(code, "src/sim/world.cpp"), "banned-call"));
  EXPECT_TRUE(has_check(scan(code, "src/obs/metrics.cpp"), "banned-call"));
  EXPECT_FALSE(
      has_check(scan(code, "src/obs/stopwatch.cpp"), "banned-call"));
  EXPECT_FALSE(
      has_check(scan(code, "src/obs/stopwatch.hpp"), "banned-call"));
}

TEST(DetlintBannedCall, StopwatchExemptionIsSteadyClockOnly) {
  // The wall-clock module may not reach for the system clock or an
  // entropy source — only steady_clock is allowlisted there.
  EXPECT_TRUE(has_check(
      scan("auto t = std::chrono::system_clock::now();\n",
           "src/obs/stopwatch.cpp"),
      "banned-call"));
  EXPECT_TRUE(has_check(scan("std::random_device rd;\n",
                             "src/obs/stopwatch.cpp"),
                        "banned-call"));
}

// --- unordered-iter ---------------------------------------------------

TEST(DetlintUnorderedIter, FlagsRangeForOverUnorderedMap) {
  const auto f = scan(
      "std::unordered_map<std::string, int> tally;\n"
      "void g() { for (const auto& [k, v] : tally) { use(k, v); } }\n");
  EXPECT_TRUE(has_check(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, FlagsBeginWalk) {
  const auto f = scan("std::unordered_set<int> ids;\n"
                      "auto it = ids.begin();\n");
  EXPECT_TRUE(has_check(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, RecognisesHeaderDeclUsedInCpp) {
  // Two-pass name collection: the header declares, the .cpp iterates.
  const std::string header =
      "struct Index { std::unordered_map<int, int> by_id_; };\n";
  const std::string cpp =
      "void Index::dump() { for (auto& [k, v] : by_id_) emit(k, v); }\n";
  NameSets names = detlint::collect_names(header);
  detlint::merge_names(names, detlint::collect_names(cpp));
  const auto f = detlint::scan_file("src/index.cpp", cpp, names);
  EXPECT_TRUE(has_check(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, SortedItemsIsTheBlessedPath) {
  const auto f = scan(
      "std::unordered_map<std::string, int> buckets;\n"
      "void g() { for (auto& [k, v] : util::sorted_items(buckets)) emit(k); }\n");
  EXPECT_FALSE(has_check(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, OrderedMapIsFine) {
  const auto f = scan("std::map<std::string, int> tally;\n"
                      "void g() { for (auto& [k, v] : tally) emit(k); }\n");
  EXPECT_FALSE(has_check(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, CollectsNestedDeclarations) {
  // vector<unordered_map<...>> — the declared name is still collected.
  const NameSets names = detlint::collect_names(
      "std::vector<std::unordered_map<std::string, double>> word_count;\n");
  EXPECT_EQ(names.unordered.count("word_count"), 1u);
}

// --- pointer-key ------------------------------------------------------

TEST(DetlintPointerKey, FlagsPointerKeyedContainers) {
  EXPECT_TRUE(has_check(scan("std::map<Widget*, int> by_ptr;\n"),
                        "pointer-key"));
  EXPECT_TRUE(has_check(scan("std::set<const Node*> seen;\n"),
                        "pointer-key"));
  EXPECT_TRUE(has_check(scan("std::less<Relay*> cmp;\n"), "pointer-key"));
}

TEST(DetlintPointerKey, ValueKeysAreFine) {
  const auto f = scan("std::map<std::string, Widget*> by_name;\n"
                      "std::set<std::uint32_t> ids;\n");
  EXPECT_FALSE(has_check(f, "pointer-key"));
}

// --- float-accum / rng-parallel --------------------------------------

TEST(DetlintParallel, FlagsFloatAccumulationInParallelRegion) {
  const auto f = scan(
      "void g(double total) {\n"
      "  util::parallel_for(0, n, threads, [&](std::size_t i) {\n"
      "    total += weight(i);\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(has_check(f, "float-accum"));
}

TEST(DetlintParallel, FloatAccumOutsideRegionIsFine) {
  const auto f = scan("void g(double total) { total += 1.0; }\n");
  EXPECT_FALSE(has_check(f, "float-accum"));
}

TEST(DetlintParallel, FlagsSharedRngUse) {
  const auto f = scan(
      "void g(util::Rng& rng) {\n"
      "  util::parallel_for(0, n, threads, [&](std::size_t i) {\n"
      "    double u = rng.uniform();\n"
      "    use(u);\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(has_check(f, "rng-parallel"));
}

TEST(DetlintParallel, ChildDerivationIsTheBlessedPath) {
  const auto f = scan(
      "void g(util::Rng& rng) {\n"
      "  util::parallel_for(0, n, threads, [&](std::size_t i) {\n"
      "    util::Rng local = rng.child(i);\n"
      "    use(local);\n"
      "  });\n"
      "}\n");
  EXPECT_FALSE(has_check(f, "rng-parallel"));
}

// --- suppressions -----------------------------------------------------

TEST(DetlintSuppress, InlineSameLine) {
  const auto f = scan(
      "int r = std::rand();  // detlint-allow(banned-call) seeding demo\n");
  EXPECT_TRUE(has_check(f, "banned-call", /*suppressed=*/true));
  EXPECT_FALSE(has_check(f, "banned-call", /*suppressed=*/false));
}

TEST(DetlintSuppress, InlineNextLine) {
  const auto f = scan(
      "// detlint-allow-next-line(banned-call) seeding demo\n"
      "int r = std::rand();\n");
  EXPECT_TRUE(has_check(f, "banned-call", /*suppressed=*/true));
  EXPECT_FALSE(has_check(f, "banned-call", /*suppressed=*/false));
}

TEST(DetlintSuppress, AnnotationForWrongCheckDoesNotSuppress) {
  const auto f = scan(
      "int r = std::rand();  // detlint-allow(pointer-key) wrong check\n");
  EXPECT_TRUE(has_check(f, "banned-call", /*suppressed=*/false));
}

TEST(DetlintSuppress, FileBasedSuppression) {
  auto findings = scan("int r = std::rand();\n", "src/legacy/old.cpp");
  const auto sups = detlint::parse_suppressions(
      "# comment line\n"
      "\n"
      "src/legacy banned-call migrating off libc PRNG\n");
  ASSERT_EQ(sups.size(), 1u);
  EXPECT_EQ(sups[0].path_substring, "src/legacy");
  EXPECT_EQ(sups[0].check, "banned-call");
  EXPECT_EQ(sups[0].reason, "migrating off libc PRNG");
  detlint::apply_suppressions(findings, sups);
  EXPECT_TRUE(has_check(findings, "banned-call", /*suppressed=*/true));
  EXPECT_FALSE(has_check(findings, "banned-call", /*suppressed=*/false));
}

TEST(DetlintSuppress, PathMismatchDoesNotSuppress) {
  auto findings = scan("int r = std::rand();\n", "src/scan/scanner.cpp");
  const auto sups = detlint::parse_suppressions(
      "src/legacy banned-call migrating\n");
  detlint::apply_suppressions(findings, sups);
  EXPECT_TRUE(has_check(findings, "banned-call", /*suppressed=*/false));
}

// --- stripping --------------------------------------------------------

TEST(DetlintStrip, PreservesLineStructure) {
  const std::string code = "int a; // rand()\n/* time(\n0) */ int b;\n";
  const std::string stripped = detlint::strip_comments_and_strings(code);
  EXPECT_EQ(std::count(code.begin(), code.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(DetlintStrip, HandlesEscapesAndRawStrings) {
  const std::string code =
      "const char* a = \"quote \\\" rand()\";\n"
      "const char* b = R\"(time(nullptr))\";\n"
      "char c = '\\'';\n"
      "int after = 1;\n";
  const std::string stripped = detlint::strip_comments_and_strings(code);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_NE(stripped.find("int after = 1;"), std::string::npos);
}

// --- the checked-in fixtures -----------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(DetlintFixture, EveryCheckFiresOnBadPatterns) {
  const std::string path =
      std::string(DETLINT_TESTDATA_DIR) + "/bad_patterns.cpp";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();

  const NameSets names = detlint::collect_names(content);
  const auto findings = detlint::scan_file(path, content, names);

  for (const std::string check :
       {"banned-call", "unordered-iter", "pointer-key", "float-accum",
        "rng-parallel"}) {
    EXPECT_TRUE(has_check(findings, check))
        << "fixture did not trigger " << check;
  }
  // The fixture's two annotated banned-call lines must be suppressed...
  EXPECT_TRUE(has_check(findings, "banned-call", /*suppressed=*/true));
  // ...and the member call h.time() / rng.child(i) must not appear at
  // all: exactly the expected finding counts, nothing extra.
  EXPECT_EQ(count_check(findings, "rng-parallel"), 1u);
  EXPECT_EQ(count_check(findings, "float-accum"), 1u);
  EXPECT_EQ(count_check(findings, "pointer-key"), 1u);
}

TEST(DetlintFixture, KernelIdiomsStayQuiet) {
  // The PR-7 kernel shapes — eytzinger descent with __builtin_prefetch,
  // lane-transposed round loops, memcpy/memset block splicing — are
  // pure data movement and must never flag. The fixture ends in one
  // deliberate std::rand() canary: exactly one finding distinguishes
  // "nothing to flag" from "file never scanned".
  const std::string path =
      std::string(DETLINT_TESTDATA_DIR) + "/kernel_patterns.cpp";
  const std::string content = read_file(path);
  ASSERT_FALSE(content.empty());

  const NameSets names = detlint::collect_names(content);
  const auto findings = detlint::scan_file(path, content, names);

  EXPECT_EQ(findings.size(), 1u);
  EXPECT_EQ(count_check(findings, "banned-call"), 1u);
}

// --- the real kernel sources -----------------------------------------

TEST(DetlintSources, RingIndexAndSha1BatchAreClean) {
  // Scan the shipped eytzinger-index and batched-SHA-1 sources exactly
  // as the lint gate does (whole-file name pass, header merged with the
  // .cpp) and require zero findings, suppressed or not: the hot kernels
  // carry no determinism escapes at all.
  const std::string root = std::string(TORSIM_SOURCE_DIR);
  const std::vector<std::pair<std::string, std::string>> units = {
      {root + "/src/dirauth/ring_index.hpp",
       root + "/src/dirauth/ring_index.cpp"},
      {root + "/src/crypto/sha1_batch.hpp",
       root + "/src/crypto/sha1_batch.cpp"},
  };
  for (const auto& [header_path, cpp_path] : units) {
    const std::string header = read_file(header_path);
    const std::string cpp = read_file(cpp_path);
    ASSERT_FALSE(header.empty());
    ASSERT_FALSE(cpp.empty());
    NameSets names = detlint::collect_names(header);
    detlint::merge_names(names, detlint::collect_names(cpp));
    for (const auto& [path, content] :
         {std::pair{header_path, header}, std::pair{cpp_path, cpp}}) {
      const auto findings = detlint::scan_file(path, content, names);
      EXPECT_TRUE(findings.empty())
          << path << " has " << findings.size() << " detlint finding(s); "
          << "first: " << (findings.empty() ? "" : findings[0].message);
    }
  }
}

// --- pass registry ----------------------------------------------------

TEST(DetlintPasses, RegistryListsThePipelineInOrder) {
  const auto& p = detlint::passes();
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(p[0].name, "determinism");
  EXPECT_EQ(p[1].name, "layers");
  EXPECT_EQ(p[2].name, "globals");
  EXPECT_EQ(p[3].name, "captures");
  EXPECT_EQ(p[4].name, "hotalloc");
  for (const auto& info : p) EXPECT_FALSE(info.description.empty());
  EXPECT_TRUE(detlint::is_pass_name("layers"));
  EXPECT_FALSE(detlint::is_pass_name("linty"));
}

// --- blank_preprocessor ----------------------------------------------

TEST(DetlintStrip, BlankPreprocessorRemovesDirectivesAndContinuations) {
  const std::string code =
      "#include \"util/base.hpp\"\n"
      "#define BUMP(x) \\\n"
      "  static int x = 0;\n"
      "int live = 1;\n";
  const std::string out = detlint::blank_preprocessor(
      detlint::strip_comments_and_strings(code));
  EXPECT_EQ(out.find("include"), std::string::npos);
  EXPECT_EQ(out.find("define"), std::string::npos);
  // The backslash continuation belongs to the directive and must be
  // blanked too — otherwise the macro body reads as a static decl.
  EXPECT_EQ(out.find("static int x"), std::string::npos);
  EXPECT_NE(out.find("int live = 1;"), std::string::npos);
  EXPECT_EQ(std::count(code.begin(), code.end(), '\n'),
            std::count(out.begin(), out.end(), '\n'));
}

// --- layers pass ------------------------------------------------------

constexpr const char* kTinyLayers =
    "layer util stats\n"
    "layer hsdir\n"
    "layer sim\n"
    "edge hsdir util\n"
    "edge sim hsdir\n"
    "backedge util sim grandfathered callback registration\n";

TEST(DetlintLayers, ParsesLayersEdgesAndBackedges) {
  const detlint::LayerConfig cfg = detlint::parse_layers(kTinyLayers);
  ASSERT_TRUE(cfg.errors.empty()) << cfg.errors[0];
  EXPECT_EQ(cfg.layer_of.at("util"), 1);
  EXPECT_EQ(cfg.layer_of.at("stats"), 1);
  EXPECT_EQ(cfg.layer_of.at("hsdir"), 2);
  EXPECT_EQ(cfg.layer_of.at("sim"), 3);
  EXPECT_EQ(cfg.edges.count({"hsdir", "util"}), 1u);
  EXPECT_EQ(cfg.backedges.at({"util", "sim"}),
            "grandfathered callback registration");
}

TEST(DetlintLayers, RejectsBackedgeWithoutJustification) {
  const auto cfg = detlint::parse_layers(
      "layer util\nlayer sim\nbackedge util sim\n");
  ASSERT_FALSE(cfg.errors.empty());
  EXPECT_NE(cfg.errors[0].find("justification"), std::string::npos);
}

TEST(DetlintLayers, RejectsClimbingEdgeAndUnknownModule) {
  const auto climb =
      detlint::parse_layers("layer util\nlayer sim\nedge util sim\n");
  ASSERT_FALSE(climb.errors.empty());
  EXPECT_NE(climb.errors[0].find("climbs"), std::string::npos);
  const auto unknown = detlint::parse_layers("layer util\nedge util ghost\n");
  ASSERT_FALSE(unknown.errors.empty());
  EXPECT_NE(unknown.errors[0].find("ghost"), std::string::npos);
}

TEST(DetlintLayers, RejectsDuplicateModuleAndSameLayerCycle) {
  const auto dup = detlint::parse_layers("layer util\nlayer util\n");
  ASSERT_FALSE(dup.errors.empty());
  const auto cycle = detlint::parse_layers(
      "layer a b\nedge a b\nedge b a\n");
  ASSERT_FALSE(cycle.errors.empty());
  EXPECT_NE(cycle.errors[0].find("cycle"), std::string::npos);
}

TEST(DetlintLayers, ModuleOfUsesComponentAfterLastSrc) {
  EXPECT_EQ(detlint::module_of("src/hsdir/ring.cpp"), "hsdir");
  EXPECT_EQ(detlint::module_of("/repo/src/util/rng.hpp"), "util");
  // Fixture trees nest a second src/: the LAST one wins.
  EXPECT_EQ(detlint::module_of("tools/detlint/testdata/layers/src/sim/e.cpp"),
            "sim");
  // Outside any src/ tree (tools, tests): unconstrained.
  EXPECT_EQ(detlint::module_of("tools/torsim_cli.cpp"), "");
  EXPECT_EQ(detlint::module_of("src/version.cpp"), "");
}

TEST(DetlintLayers, FlagsBackedgeUndeclaredAndUnknown) {
  const detlint::LayerConfig cfg = detlint::parse_layers(kTinyLayers);
  ASSERT_TRUE(cfg.errors.empty());
  std::set<std::pair<std::string, std::string>> observed;
  const auto up = detlint::check_layers(
      "src/util/x.cpp", "#include \"hsdir/ring.hpp\"\n", cfg, &observed);
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].check, "layer-backedge");
  EXPECT_EQ(up[0].pass, "layers");
  EXPECT_EQ(up[0].line, 1);
  const auto sideways = detlint::check_layers(
      "src/hsdir/x.cpp", "#include \"stats/s.hpp\"\n", cfg, &observed);
  ASSERT_EQ(sideways.size(), 1u);
  EXPECT_EQ(sideways[0].check, "undeclared-edge");
  const auto unknown = detlint::check_layers(
      "src/sim/x.cpp", "#include \"mystery/m.hpp\"\n", cfg, &observed);
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].check, "unknown-module");
}

TEST(DetlintLayers, DeclaredEdgesAndBackedgesAreCleanAndObserved) {
  const detlint::LayerConfig cfg = detlint::parse_layers(kTinyLayers);
  std::set<std::pair<std::string, std::string>> observed;
  const auto f = detlint::check_layers(
      "src/sim/engine.cpp",
      "#include \"hsdir/ring.hpp\"\n"
      "#include \"sim/world.hpp\"\n"   // same-module: not an edge
      "#include <vector>\n",           // system include: ignored
      cfg, &observed);
  EXPECT_TRUE(f.empty());
  EXPECT_EQ(observed.count({"sim", "hsdir"}), 1u);
  // A declared backedge is grandfathered: no finding.
  const auto back = detlint::check_layers(
      "src/util/hook.cpp", "#include \"sim/world.hpp\"\n", cfg, &observed);
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(observed.count({"util", "sim"}), 1u);
}

// --- globals pass -----------------------------------------------------

TEST(DetlintGlobals, FlagsEveryKindOfMutableState) {
  const auto f = detlint::check_globals(
      "src/foo.cpp",
      "int counter = 0;\n"
      "thread_local bool tls_in_parallel = false;\n"
      "struct S { static int shared_calls; };\n"
      "int bump() { static int calls = 0; return ++calls; }\n");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0].symbol, "counter");
  EXPECT_EQ(f[1].symbol, "tls_in_parallel");
  EXPECT_EQ(f[2].symbol, "shared_calls");
  EXPECT_EQ(f[3].symbol, "calls");
  for (const auto& finding : f) {
    EXPECT_EQ(finding.pass, "globals");
    EXPECT_EQ(finding.check, "global-mutable");
  }
}

TEST(DetlintGlobals, ConstAliasesPrototypesAndLocalsStayQuiet) {
  const auto f = detlint::check_globals(
      "src/foo.cpp",
      "namespace fs = std::filesystem;\n"  // alias, not a variable
      "const int kLimit = 4;\n"
      "constexpr double kRatio = 0.5;\n"
      "int free_function(int x);\n"        // prototype
      "struct S { int per_instance = 0; static const int kMax = 8; };\n"
      "int g() { int local = 0; return local; }\n"
      "using Clock = std::uint64_t;\n");
  EXPECT_TRUE(f.empty()) << f[0].symbol;
}

TEST(DetlintGlobals, AllowlistRequiresJustification) {
  std::vector<std::string> errors;
  const auto entries = detlint::parse_globals_allowlist(
      "# comment\n"
      "src/util/memo.cpp enabled process-wide cache knob, epoch-invalidated\n"
      "src/util/logging.cpp g_level\n",  // no justification: error
      &errors);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path_substring, "src/util/memo.cpp");
  EXPECT_EQ(entries[0].symbol, "enabled");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("justification"), std::string::npos);
}

TEST(DetlintGlobals, AllowlistSuppressesMatchAndReportsStaleEntries) {
  auto findings = detlint::check_globals(
      "src/util/memo.cpp", "bool enabled = true;\nint stray = 0;\n");
  ASSERT_EQ(findings.size(), 2u);
  std::vector<std::string> errors;
  const auto entries = detlint::parse_globals_allowlist(
      "src/util/memo.cpp enabled cache knob\n"
      "src/gone.cpp nothing stale entry that matches no finding\n",
      &errors);
  ASSERT_TRUE(errors.empty());
  std::vector<bool> matched;
  detlint::apply_globals_allowlist(findings, entries, &matched);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_FALSE(findings[1].suppressed);  // 'stray' is not allowlisted
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_TRUE(matched[0]);
  EXPECT_FALSE(matched[1]);  // the --check-stale audit reports this one
}

// --- captures pass ----------------------------------------------------

TEST(DetlintCaptures, FlagsUnshardedRefWrite) {
  const auto f = detlint::check_captures(
      "src/foo.cpp",
      "void g(std::size_t n) {\n"
      "  int total = 0;\n"
      "  util::parallel_for(n, 4, [&](std::size_t shard) {\n"
      "    total += 1;\n"
      "  });\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].check, "ref-capture-write");
  EXPECT_EQ(f[0].symbol, "total");
  EXPECT_EQ(f[0].line, 4);
}

TEST(DetlintCaptures, FollowsNamedLambdaIndirection) {
  const auto f = detlint::check_captures(
      "src/foo.cpp",
      "void g(std::size_t n, std::vector<int>& sink) {\n"
      "  const auto body = [&](std::size_t i) { sink.push_back(1); };\n"
      "  util::parallel_map(n, 4, body);\n"
      "}\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].symbol, "sink");
}

TEST(DetlintCaptures, PerShardSubscriptAndValueCaptureAreClean) {
  const auto f = detlint::check_captures(
      "src/foo.cpp",
      "void g(std::size_t n, std::vector<int>& partials) {\n"
      "  int seed = 7;\n"
      "  util::parallel_for(n, 4, [&](std::size_t shard) {\n"
      "    partials[shard] += seed;\n"  // per-shard slot: clean
      "  });\n"
      "  util::parallel_for(n, 4, [seed](std::size_t shard) {\n"
      "    int local = seed + 1;\n"     // by-value + local: clean
      "    local += 1;\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(f.empty()) << f[0].message;
}

TEST(DetlintCaptures, MemberSelectionIsNotABaseWrite) {
  // Regression: `out[i].stage = ...` must not flag the member name
  // 'stage' as an unsharded by-ref write — only chain bases count.
  const auto f = detlint::check_captures(
      "src/foo.cpp",
      "void g(std::size_t n, std::vector<Row>& out) {\n"
      "  util::parallel_for(n, 4, [&](std::size_t i) {\n"
      "    out[i].stage = 1;\n"
      "    out[i].cells.push_back(2);\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(f.empty()) << f[0].symbol;
}

TEST(DetlintCaptures, LambdaOutsideParallelRegionIsClean) {
  const auto f = detlint::check_captures(
      "src/foo.cpp",
      "void g() {\n"
      "  int total = 0;\n"
      "  const auto bump = [&]() { total += 1; };\n"
      "  bump();\n"
      "}\n");
  EXPECT_TRUE(f.empty());
}

// --- hotalloc pass ----------------------------------------------------

TEST(DetlintHotalloc, FlagsAllocationsInsideAnnotatedFunction) {
  const auto f = detlint::check_hotalloc(
      "src/foo.cpp",
      "// detlint: hot\n"
      "int descend(std::vector<int>& scratch, int x) {\n"
      "  std::string label = \"node\";\n"
      "  scratch.push_back(x);\n"
      "  auto p = std::make_unique<int>(x);\n"
      "  int* raw = new int(x);\n"
      "  return *raw;\n"
      "}\n");
  ASSERT_EQ(f.size(), 4u);
  for (const auto& finding : f) {
    EXPECT_EQ(finding.pass, "hotalloc");
    EXPECT_EQ(finding.check, "hot-alloc");
  }
}

TEST(DetlintHotalloc, UnannotatedFunctionsMayAllocate) {
  const auto f = detlint::check_hotalloc(
      "src/foo.cpp",
      "std::string label(int x) { return std::to_string(x); }\n"
      "void grow(std::vector<int>& v) { v.push_back(1); }\n");
  EXPECT_TRUE(f.empty());
}

TEST(DetlintHotalloc, ProseMentionOfTheMarkerIsNotAnAnnotation) {
  // Regression: detlint's own docs describe the `// detlint: hot`
  // marker in comments; only a comment whose entire text is the bare
  // marker annotates the next function.
  const auto f = detlint::check_hotalloc(
      "src/foo.cpp",
      "// functions annotated '// detlint: hot' must not allocate\n"
      "// detlint: hot kernels are measured (also prose, has a tail)\n"
      "std::string describe() { return std::string(\"x\"); }\n");
  EXPECT_TRUE(f.empty()) << f[0].message;
}

TEST(DetlintHotalloc, StringViewIsNotStringConstruction) {
  const auto f = detlint::check_hotalloc(
      "src/foo.cpp",
      "// detlint: hot\n"
      "int measure(std::string_view name) { return (int)name.size(); }\n");
  EXPECT_TRUE(f.empty()) << f[0].message;
}

// --- JSON output ------------------------------------------------------

TEST(DetlintJson, EmitsStableSortedSchema) {
  std::vector<Finding> findings = {
      {"src/b.cpp", 9, "banned-call", "msg \"quoted\"", false, "",
       "determinism", ""},
      {"src/a.cpp", 3, "global-mutable", "later file first", true,
       "cache knob", "globals", "enabled"},
  };
  detlint::sort_findings(findings);
  EXPECT_EQ(findings[0].file, "src/a.cpp");  // sorted by file first
  const std::string json = detlint::findings_to_json(findings, 2);
  EXPECT_NE(json.find("\"schema\": \"detlint-json-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 1"), std::string::npos);
  EXPECT_NE(json.find("msg \\\"quoted\\\""), std::string::npos);
  EXPECT_LT(json.find("src/a.cpp"), json.find("src/b.cpp"));
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '\n');
  // Byte-stable: the same findings render the same document.
  EXPECT_EQ(json, detlint::findings_to_json(findings, 2));
}

// --- the new-pass fixtures -------------------------------------------

TEST(DetlintFixture, LayersFixtureTriggersAllThreeChecks) {
  const std::string base = std::string(DETLINT_TESTDATA_DIR) + "/layers";
  const detlint::LayerConfig cfg =
      detlint::parse_layers(read_file(base + "/layers.txt"));
  ASSERT_TRUE(cfg.errors.empty()) << cfg.errors[0];
  std::vector<Finding> findings;
  for (const std::string rel :
       {"/src/util/climbs.cpp", "/src/hsdir/sideways.cpp",
        "/src/sim/engine.cpp"}) {
    const std::string path = base + rel;
    const auto f = detlint::check_layers(path, read_file(path), cfg, nullptr);
    findings.insert(findings.end(), f.begin(), f.end());
  }
  EXPECT_EQ(count_check(findings, "layer-backedge"), 1u);
  EXPECT_EQ(count_check(findings, "undeclared-edge"), 1u);
  EXPECT_EQ(count_check(findings, "unknown-module"), 1u);
}

TEST(DetlintFixture, GlobalsFixtureCensusMatchesAnnotations) {
  const std::string path =
      std::string(DETLINT_TESTDATA_DIR) + "/globals/bad_globals.cpp";
  auto findings = detlint::check_globals(path, read_file(path));
  // Six FLAG comments + the allowlisted knob.
  ASSERT_EQ(findings.size(), 7u);
  std::vector<std::string> errors;
  const auto entries = detlint::parse_globals_allowlist(
      read_file(std::string(DETLINT_TESTDATA_DIR) + "/globals/allowlist.txt"),
      &errors);
  ASSERT_TRUE(errors.empty());
  detlint::apply_globals_allowlist(findings, entries, nullptr);
  EXPECT_EQ(count_check(findings, "global-mutable"), 7u);
  EXPECT_TRUE(has_check(findings, "global-mutable", /*suppressed=*/true));
  std::size_t unsuppressed = 0;
  for (const auto& f : findings)
    if (!f.suppressed) ++unsuppressed;
  EXPECT_EQ(unsuppressed, 6u);
}

TEST(DetlintFixture, CapturesFixturesSplitGoodFromBad) {
  const std::string base = std::string(DETLINT_TESTDATA_DIR) + "/captures";
  const auto bad = detlint::check_captures(base + "/bad_captures.cpp",
                                           read_file(base +
                                                     "/bad_captures.cpp"));
  EXPECT_EQ(count_check(bad, "ref-capture-write"), 3u);
  const auto good = detlint::check_captures(base + "/good_captures.cpp",
                                            read_file(base +
                                                      "/good_captures.cpp"));
  EXPECT_TRUE(good.empty()) << good[0].message;
}

TEST(DetlintFixture, HotallocFixturesSplitGoodFromBad) {
  const std::string base = std::string(DETLINT_TESTDATA_DIR) + "/hotalloc";
  const auto bad = detlint::check_hotalloc(base + "/bad_hotalloc.cpp",
                                           read_file(base +
                                                     "/bad_hotalloc.cpp"));
  EXPECT_EQ(count_check(bad, "hot-alloc"), 4u);
  const auto good = detlint::check_hotalloc(base + "/good_hotalloc.cpp",
                                            read_file(base +
                                                      "/good_hotalloc.cpp"));
  EXPECT_TRUE(good.empty()) << good[0].message;
}

// --- the shipped hot kernels stay clean under every pass --------------

TEST(DetlintSources, AnnotatedHotKernelsAreAllocationFree) {
  const std::string root = std::string(TORSIM_SOURCE_DIR);
  for (const std::string rel :
       {"/src/dirauth/ring_index.cpp", "/src/crypto/sha1_batch.cpp",
        "/src/util/memo.hpp", "/src/popularity/resolver.cpp"}) {
    const std::string path = root + rel;
    const std::string content = read_file(path);
    ASSERT_FALSE(content.empty()) << path;
    const auto f = detlint::check_hotalloc(path, content);
    EXPECT_TRUE(f.empty()) << path << ": " << (f.empty() ? "" : f[0].message);
    // And each of these files really carries at least one annotation —
    // an empty result must mean "clean", never "marker not found".
    EXPECT_NE(content.find("// detlint: hot"), std::string::npos) << path;
  }
}

// --- CLI end-to-end ---------------------------------------------------

#ifdef DETLINT_BIN

/// Runs the detlint binary, captures stdout+stderr, returns the exit
/// code (-1 on popen failure).
int run_cli(const std::string& args, std::string* output) {
  const std::string cmd = std::string(DETLINT_BIN) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  char buf[4096];
  output->clear();
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) *output += buf;
  const int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(DetlintCli, ListPassesPrintsThePipeline) {
  std::string out;
  EXPECT_EQ(run_cli("--list-passes", &out), 0);
  EXPECT_EQ(out, "determinism\nlayers\nglobals\ncaptures\nhotalloc\n");
}

TEST(DetlintCli, JsonOutputCarriesTheSchema) {
  const std::string fixture =
      std::string(DETLINT_TESTDATA_DIR) + "/hotalloc/good_hotalloc.cpp";
  std::string out;
  EXPECT_EQ(run_cli("--json --passes=hotalloc " + fixture, &out), 0);
  EXPECT_NE(out.find("\"schema\": \"detlint-json-v1\""), std::string::npos);
  EXPECT_NE(out.find("\"findings\": []"), std::string::npos);
}

TEST(DetlintCli, UnreadableInputIsAnIoErrorNotACleanRun) {
  // Regression: detlint used to exit 0 when an input file could not be
  // read — a vanished file silently passed the gate. I/O problems are
  // exit 3, distinct from findings (1) and usage errors (2).
  std::string out;
  EXPECT_EQ(run_cli("--passes=determinism /dev/null", &out), 3);
  EXPECT_NE(out.find("cannot read"), std::string::npos);
}

TEST(DetlintCli, UsageErrorsExitTwo) {
  std::string out;
  EXPECT_EQ(run_cli("--no-such-flag", &out), 2);
  EXPECT_EQ(run_cli("--passes=imaginary src", &out), 2);
}

#endif  // DETLINT_BIN

}  // namespace
