// Self-tests for the detlint determinism linter: every check must fire
// on a minimal trigger snippet AND on the checked-in fixture, and the
// known-safe shapes (member .time(), rng.child(i), sorted_items) must
// stay quiet. If a check silently stops firing, the lint gate becomes a
// green light for nondeterminism — these tests are the lint's lint.
#include "detlint/detlint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

using detlint::Finding;
using detlint::NameSets;

std::vector<Finding> scan(const std::string& code,
                          const std::string& path = "src/foo.cpp") {
  NameSets names = detlint::collect_names(code);
  return detlint::scan_file(path, code, names);
}

bool has_check(const std::vector<Finding>& findings,
               const std::string& check, bool suppressed = false) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return f.check == check &&
                              f.suppressed == suppressed;
                     });
}

std::size_t count_check(const std::vector<Finding>& findings,
                        const std::string& check) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.check == check; }));
}

// --- banned-call ------------------------------------------------------

TEST(DetlintBannedCall, FlagsLibcClockAndPrng) {
  const auto f = scan("void g() { std::srand(1); int r = std::rand();\n"
                      "  std::time_t t = std::time(nullptr); }\n");
  EXPECT_EQ(count_check(f, "banned-call"), 3u);
}

TEST(DetlintBannedCall, FlagsChronoClocksAndRandomDevice) {
  const auto f = scan(
      "auto a = std::chrono::system_clock::now();\n"
      "auto b = std::chrono::steady_clock::now();\n"
      "auto c = std::chrono::high_resolution_clock::now();\n"
      "std::random_device rd;\n");
  EXPECT_EQ(count_check(f, "banned-call"), 4u);
}

TEST(DetlintBannedCall, FlagsGetenvAndUnqualifiedCalls) {
  const auto f = scan("void g() { const char* h = getenv(\"HOME\");\n"
                      "  long t = time(nullptr); }\n");
  EXPECT_EQ(count_check(f, "banned-call"), 2u);
}

TEST(DetlintBannedCall, IgnoresMemberCallsAndDeclarations) {
  const auto f = scan(
      "struct S { long time() const; util::Clock& clock(); };\n"
      "long use(const S& s, S* p) { return s.time() + p->time(); }\n"
      "util::UnixTime time() const { return time_; }\n");
  EXPECT_FALSE(has_check(f, "banned-call"));
}

TEST(DetlintBannedCall, IgnoresOtherNamespaces) {
  const auto f = scan("long g() { return sim::time(w) + my::rand(); }\n");
  EXPECT_FALSE(has_check(f, "banned-call"));
}

TEST(DetlintBannedCall, IgnoresStringsAndComments) {
  const auto f = scan(
      "// calling std::rand() here would be bad\n"
      "/* std::time(nullptr) too */\n"
      "const char* msg = \"do not use rand() or time(0)\";\n");
  EXPECT_TRUE(f.empty());
}

TEST(DetlintBannedCall, RandomDeviceAllowedOnlyInRngImpl) {
  const std::string code = "std::random_device rd;\n";
  EXPECT_TRUE(has_check(scan(code, "src/scan/scanner.cpp"), "banned-call"));
  EXPECT_FALSE(has_check(scan(code, "src/util/rng.cpp"), "banned-call"));
}

TEST(DetlintBannedCall, SteadyClockAllowedOnlyInObsStopwatch) {
  const std::string code =
      "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(has_check(scan(code, "src/sim/world.cpp"), "banned-call"));
  EXPECT_TRUE(has_check(scan(code, "src/obs/metrics.cpp"), "banned-call"));
  EXPECT_FALSE(
      has_check(scan(code, "src/obs/stopwatch.cpp"), "banned-call"));
  EXPECT_FALSE(
      has_check(scan(code, "src/obs/stopwatch.hpp"), "banned-call"));
}

TEST(DetlintBannedCall, StopwatchExemptionIsSteadyClockOnly) {
  // The wall-clock module may not reach for the system clock or an
  // entropy source — only steady_clock is allowlisted there.
  EXPECT_TRUE(has_check(
      scan("auto t = std::chrono::system_clock::now();\n",
           "src/obs/stopwatch.cpp"),
      "banned-call"));
  EXPECT_TRUE(has_check(scan("std::random_device rd;\n",
                             "src/obs/stopwatch.cpp"),
                        "banned-call"));
}

// --- unordered-iter ---------------------------------------------------

TEST(DetlintUnorderedIter, FlagsRangeForOverUnorderedMap) {
  const auto f = scan(
      "std::unordered_map<std::string, int> tally;\n"
      "void g() { for (const auto& [k, v] : tally) { use(k, v); } }\n");
  EXPECT_TRUE(has_check(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, FlagsBeginWalk) {
  const auto f = scan("std::unordered_set<int> ids;\n"
                      "auto it = ids.begin();\n");
  EXPECT_TRUE(has_check(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, RecognisesHeaderDeclUsedInCpp) {
  // Two-pass name collection: the header declares, the .cpp iterates.
  const std::string header =
      "struct Index { std::unordered_map<int, int> by_id_; };\n";
  const std::string cpp =
      "void Index::dump() { for (auto& [k, v] : by_id_) emit(k, v); }\n";
  NameSets names = detlint::collect_names(header);
  detlint::merge_names(names, detlint::collect_names(cpp));
  const auto f = detlint::scan_file("src/index.cpp", cpp, names);
  EXPECT_TRUE(has_check(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, SortedItemsIsTheBlessedPath) {
  const auto f = scan(
      "std::unordered_map<std::string, int> buckets;\n"
      "void g() { for (auto& [k, v] : util::sorted_items(buckets)) emit(k); }\n");
  EXPECT_FALSE(has_check(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, OrderedMapIsFine) {
  const auto f = scan("std::map<std::string, int> tally;\n"
                      "void g() { for (auto& [k, v] : tally) emit(k); }\n");
  EXPECT_FALSE(has_check(f, "unordered-iter"));
}

TEST(DetlintUnorderedIter, CollectsNestedDeclarations) {
  // vector<unordered_map<...>> — the declared name is still collected.
  const NameSets names = detlint::collect_names(
      "std::vector<std::unordered_map<std::string, double>> word_count;\n");
  EXPECT_EQ(names.unordered.count("word_count"), 1u);
}

// --- pointer-key ------------------------------------------------------

TEST(DetlintPointerKey, FlagsPointerKeyedContainers) {
  EXPECT_TRUE(has_check(scan("std::map<Widget*, int> by_ptr;\n"),
                        "pointer-key"));
  EXPECT_TRUE(has_check(scan("std::set<const Node*> seen;\n"),
                        "pointer-key"));
  EXPECT_TRUE(has_check(scan("std::less<Relay*> cmp;\n"), "pointer-key"));
}

TEST(DetlintPointerKey, ValueKeysAreFine) {
  const auto f = scan("std::map<std::string, Widget*> by_name;\n"
                      "std::set<std::uint32_t> ids;\n");
  EXPECT_FALSE(has_check(f, "pointer-key"));
}

// --- float-accum / rng-parallel --------------------------------------

TEST(DetlintParallel, FlagsFloatAccumulationInParallelRegion) {
  const auto f = scan(
      "void g(double total) {\n"
      "  util::parallel_for(0, n, threads, [&](std::size_t i) {\n"
      "    total += weight(i);\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(has_check(f, "float-accum"));
}

TEST(DetlintParallel, FloatAccumOutsideRegionIsFine) {
  const auto f = scan("void g(double total) { total += 1.0; }\n");
  EXPECT_FALSE(has_check(f, "float-accum"));
}

TEST(DetlintParallel, FlagsSharedRngUse) {
  const auto f = scan(
      "void g(util::Rng& rng) {\n"
      "  util::parallel_for(0, n, threads, [&](std::size_t i) {\n"
      "    double u = rng.uniform();\n"
      "    use(u);\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(has_check(f, "rng-parallel"));
}

TEST(DetlintParallel, ChildDerivationIsTheBlessedPath) {
  const auto f = scan(
      "void g(util::Rng& rng) {\n"
      "  util::parallel_for(0, n, threads, [&](std::size_t i) {\n"
      "    util::Rng local = rng.child(i);\n"
      "    use(local);\n"
      "  });\n"
      "}\n");
  EXPECT_FALSE(has_check(f, "rng-parallel"));
}

// --- suppressions -----------------------------------------------------

TEST(DetlintSuppress, InlineSameLine) {
  const auto f = scan(
      "int r = std::rand();  // detlint-allow(banned-call) seeding demo\n");
  EXPECT_TRUE(has_check(f, "banned-call", /*suppressed=*/true));
  EXPECT_FALSE(has_check(f, "banned-call", /*suppressed=*/false));
}

TEST(DetlintSuppress, InlineNextLine) {
  const auto f = scan(
      "// detlint-allow-next-line(banned-call) seeding demo\n"
      "int r = std::rand();\n");
  EXPECT_TRUE(has_check(f, "banned-call", /*suppressed=*/true));
  EXPECT_FALSE(has_check(f, "banned-call", /*suppressed=*/false));
}

TEST(DetlintSuppress, AnnotationForWrongCheckDoesNotSuppress) {
  const auto f = scan(
      "int r = std::rand();  // detlint-allow(pointer-key) wrong check\n");
  EXPECT_TRUE(has_check(f, "banned-call", /*suppressed=*/false));
}

TEST(DetlintSuppress, FileBasedSuppression) {
  auto findings = scan("int r = std::rand();\n", "src/legacy/old.cpp");
  const auto sups = detlint::parse_suppressions(
      "# comment line\n"
      "\n"
      "src/legacy banned-call migrating off libc PRNG\n");
  ASSERT_EQ(sups.size(), 1u);
  EXPECT_EQ(sups[0].path_substring, "src/legacy");
  EXPECT_EQ(sups[0].check, "banned-call");
  EXPECT_EQ(sups[0].reason, "migrating off libc PRNG");
  detlint::apply_suppressions(findings, sups);
  EXPECT_TRUE(has_check(findings, "banned-call", /*suppressed=*/true));
  EXPECT_FALSE(has_check(findings, "banned-call", /*suppressed=*/false));
}

TEST(DetlintSuppress, PathMismatchDoesNotSuppress) {
  auto findings = scan("int r = std::rand();\n", "src/scan/scanner.cpp");
  const auto sups = detlint::parse_suppressions(
      "src/legacy banned-call migrating\n");
  detlint::apply_suppressions(findings, sups);
  EXPECT_TRUE(has_check(findings, "banned-call", /*suppressed=*/false));
}

// --- stripping --------------------------------------------------------

TEST(DetlintStrip, PreservesLineStructure) {
  const std::string code = "int a; // rand()\n/* time(\n0) */ int b;\n";
  const std::string stripped = detlint::strip_comments_and_strings(code);
  EXPECT_EQ(std::count(code.begin(), code.end(), '\n'),
            std::count(stripped.begin(), stripped.end(), '\n'));
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(DetlintStrip, HandlesEscapesAndRawStrings) {
  const std::string code =
      "const char* a = \"quote \\\" rand()\";\n"
      "const char* b = R\"(time(nullptr))\";\n"
      "char c = '\\'';\n"
      "int after = 1;\n";
  const std::string stripped = detlint::strip_comments_and_strings(code);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_NE(stripped.find("int after = 1;"), std::string::npos);
}

// --- the checked-in fixtures -----------------------------------------

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing file: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(DetlintFixture, EveryCheckFiresOnBadPatterns) {
  const std::string path =
      std::string(DETLINT_TESTDATA_DIR) + "/bad_patterns.cpp";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();

  const NameSets names = detlint::collect_names(content);
  const auto findings = detlint::scan_file(path, content, names);

  for (const std::string check :
       {"banned-call", "unordered-iter", "pointer-key", "float-accum",
        "rng-parallel"}) {
    EXPECT_TRUE(has_check(findings, check))
        << "fixture did not trigger " << check;
  }
  // The fixture's two annotated banned-call lines must be suppressed...
  EXPECT_TRUE(has_check(findings, "banned-call", /*suppressed=*/true));
  // ...and the member call h.time() / rng.child(i) must not appear at
  // all: exactly the expected finding counts, nothing extra.
  EXPECT_EQ(count_check(findings, "rng-parallel"), 1u);
  EXPECT_EQ(count_check(findings, "float-accum"), 1u);
  EXPECT_EQ(count_check(findings, "pointer-key"), 1u);
}

TEST(DetlintFixture, KernelIdiomsStayQuiet) {
  // The PR-7 kernel shapes — eytzinger descent with __builtin_prefetch,
  // lane-transposed round loops, memcpy/memset block splicing — are
  // pure data movement and must never flag. The fixture ends in one
  // deliberate std::rand() canary: exactly one finding distinguishes
  // "nothing to flag" from "file never scanned".
  const std::string path =
      std::string(DETLINT_TESTDATA_DIR) + "/kernel_patterns.cpp";
  const std::string content = read_file(path);
  ASSERT_FALSE(content.empty());

  const NameSets names = detlint::collect_names(content);
  const auto findings = detlint::scan_file(path, content, names);

  EXPECT_EQ(findings.size(), 1u);
  EXPECT_EQ(count_check(findings, "banned-call"), 1u);
}

// --- the real kernel sources -----------------------------------------

TEST(DetlintSources, RingIndexAndSha1BatchAreClean) {
  // Scan the shipped eytzinger-index and batched-SHA-1 sources exactly
  // as the lint gate does (whole-file name pass, header merged with the
  // .cpp) and require zero findings, suppressed or not: the hot kernels
  // carry no determinism escapes at all.
  const std::string root = std::string(TORSIM_SOURCE_DIR);
  const std::vector<std::pair<std::string, std::string>> units = {
      {root + "/src/dirauth/ring_index.hpp",
       root + "/src/dirauth/ring_index.cpp"},
      {root + "/src/crypto/sha1_batch.hpp",
       root + "/src/crypto/sha1_batch.cpp"},
  };
  for (const auto& [header_path, cpp_path] : units) {
    const std::string header = read_file(header_path);
    const std::string cpp = read_file(cpp_path);
    ASSERT_FALSE(header.empty());
    ASSERT_FALSE(cpp.empty());
    NameSets names = detlint::collect_names(header);
    detlint::merge_names(names, detlint::collect_names(cpp));
    for (const auto& [path, content] :
         {std::pair{header_path, header}, std::pair{cpp_path, cpp}}) {
      const auto findings = detlint::scan_file(path, content, names);
      EXPECT_TRUE(findings.empty())
          << path << " has " << findings.size() << " detlint finding(s); "
          << "first: " << (findings.empty() ? "" : findings[0].message);
    }
  }
}

}  // namespace
