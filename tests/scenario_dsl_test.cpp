// Property tests for the scenario DSL: the parse->render->parse
// round-trip, single-character mutation fuzzing (mirroring the dirspec
// mutation suite), and exact-message rejection goldens for malformed,
// duplicate, unordered, and beyond-horizon event blocks.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <string_view>

#include "scenario/pack.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace torsim::scenario {
namespace {

constexpr std::string_view kValidPack =
    "torsim-scenario-version 1\n"
    "name demo-pack\n"
    "title A demo pack\n"
    "seed 7\n"
    "start 2013-02-01 00:00:00\n"
    "relays 40\n"
    "services 4\n"
    "horizon-hours 48\n"
    "sample-every-hours 12\n"
    "faults drop=0.01\n"
    "at +6h churn-storm\n"
    "  hours 6\n"
    "  down 0.25\n"
    "  up 0.125\n"
    "end\n"
    "at +12h takedown\n"
    "  services 2\n"
    "  first 0\n"
    "end\n"
    "scenario-end\n";

/// A programmatic pack exercising every event kind once.
ScenarioPack sample_pack() {
  ScenarioPack p;
  p.name = "all-kinds";
  p.title = "Every event kind once";
  p.seed = 99;
  p.start = util::parse_utc("2013-02-01 00:00:00");
  p.relays = 50;
  p.services = 6;
  p.horizon_hours = 200;
  p.sample_every_hours = 10;
  p.fault_spec = "drop=0.02,timeout=0.05";

  const auto push = [&](EventKind kind, int at, auto&& fill) {
    ScenarioEvent e;
    e.kind = kind;
    e.at_hours = at;
    fill(e);
    p.events.push_back(e);
  };
  push(EventKind::kChurnStorm, 5, [](ScenarioEvent& e) {
    e.hours = 4;
    e.down = 0.33;
    e.up = 0.125;
  });
  push(EventKind::kTakedown, 20, [](ScenarioEvent& e) {
    e.services = 2;
    e.first = 1;
  });
  push(EventKind::kMigrationWave, 40, [](ScenarioEvent& e) {
    e.services = 3;
    e.first = 0;
  });
  push(EventKind::kFlashCrowd, 60, [](ScenarioEvent& e) {
    e.clients = 8;
    e.fetches = 2;
    e.service = 3;
  });
  push(EventKind::kHsdirFlood, 80, [](ScenarioEvent& e) {
    e.relays = 5;
    e.bandwidth = 750.5;
  });
  push(EventKind::kAuthorityOutage, 100,
       [](ScenarioEvent& e) { e.hours = 6; });
  push(EventKind::kFaultWindow, 120, [](ScenarioEvent& e) {
    e.hours = 12;
    e.fault_spec = "drop=0.2,retries=3";
  });
  push(EventKind::kRelayJoin, 140, [](ScenarioEvent& e) {
    e.relays = 4;
    e.bandwidth = 300.0;
  });
  push(EventKind::kAddServices, 160,
       [](ScenarioEvent& e) { e.count = 7; });
  return p;
}

/// Parses `text` and hands back the exact error message ("" if the text
/// unexpectedly parsed) — the rejection goldens below pin the full
/// line-numbered string, not just "it threw".
std::string parse_error(std::string_view text) {
  try {
    (void)parse_pack(text);
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return "";
}

// ---------------------------------------------------------------------
// round-trip property
// ---------------------------------------------------------------------

TEST(ScenarioDslTest, EventKindNamesRoundTrip) {
  for (const EventKind kind :
       {EventKind::kChurnStorm, EventKind::kTakedown,
        EventKind::kMigrationWave, EventKind::kFlashCrowd,
        EventKind::kHsdirFlood, EventKind::kAuthorityOutage,
        EventKind::kFaultWindow, EventKind::kRelayJoin,
        EventKind::kAddServices}) {
    EXPECT_EQ(event_kind_from_name(event_kind_name(kind)), kind);
  }
  EXPECT_THROW(event_kind_from_name("party"), std::invalid_argument);
}

TEST(ScenarioDslTest, ParseRenderParseIsIdentity) {
  const ScenarioPack pack = sample_pack();
  validate_pack(pack);
  const ScenarioPack reparsed = parse_pack(render_pack(pack));
  EXPECT_EQ(reparsed, pack);
  // And the canonical text is a fixed point.
  EXPECT_EQ(render_pack(reparsed), render_pack(pack));
}

TEST(ScenarioDslTest, TextPackRoundTripsThroughRenderer) {
  const ScenarioPack pack = parse_pack(kValidPack);
  EXPECT_EQ(pack.name, "demo-pack");
  EXPECT_EQ(pack.seed, 7u);
  EXPECT_EQ(pack.relays, 40);
  EXPECT_EQ(pack.horizon_hours, 48);
  EXPECT_EQ(pack.fault_spec, "drop=0.01");
  ASSERT_EQ(pack.events.size(), 2u);
  EXPECT_EQ(pack.events[0].kind, EventKind::kChurnStorm);
  EXPECT_EQ(pack.events[1].kind, EventKind::kTakedown);
  EXPECT_EQ(parse_pack(render_pack(pack)), pack);
}

TEST(ScenarioDslTest, CommentsAndBlankLinesAreIgnored) {
  std::string text(kValidPack);
  text.insert(0, "# leading comment\n\n");
  const auto pos = text.find("at +6h");
  text.insert(pos, "# events follow\n\n");
  EXPECT_EQ(parse_pack(text), parse_pack(kValidPack));
}

TEST(ScenarioDslTest, DoubleParametersSurviveExactly) {
  ScenarioPack pack = sample_pack();
  pack.events[0].down = 0.1 + 0.2;  // 0.30000000000000004
  pack.events[0].up = 1.0 / 3.0;
  EXPECT_EQ(parse_pack(render_pack(pack)), pack);
}

// ---------------------------------------------------------------------
// mutation fuzzing (mirrors the dirspec parser mutation suite)
// ---------------------------------------------------------------------

class ScenarioMutationTest : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioMutationTest, ParserNeverCrashes) {
  const std::string text = render_pack(sample_pack());
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 300; ++i) {
    std::string mutated = text;
    const auto pos = rng.index(mutated.size());
    mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    try {
      const ScenarioPack parsed = parse_pack(mutated);
      // A mutation that still parses must yield a pack that satisfies
      // the round-trip property like any hand-written one.
      EXPECT_EQ(parse_pack(render_pack(parsed)), parsed);
    } catch (const std::invalid_argument&) {
      // Expected for most mutations; the property is "throws cleanly".
    }
  }
}

TEST_P(ScenarioMutationTest, TruncationNeverCrashes) {
  const std::string text = render_pack(sample_pack());
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (int i = 0; i < 100; ++i) {
    const auto cut = rng.index(text.size());
    try {
      (void)parse_pack(std::string_view(text).substr(0, cut));
    } catch (const std::invalid_argument&) {
    }
  }
  EXPECT_THROW((void)parse_pack(""), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioMutationTest,
                         ::testing::Range(0, 4));

// ---------------------------------------------------------------------
// rejection goldens: exact line-numbered messages
// ---------------------------------------------------------------------

TEST(ScenarioDslRejectTest, WrongVersionLine) {
  EXPECT_EQ(parse_error("torsim-scenario-version 99\n"),
            "scenario parse error at line 1: expected version line "
            "'torsim-scenario-version 1', got 'torsim-scenario-version 99'");
}

TEST(ScenarioDslRejectTest, ReorderedHeaderDirective) {
  // `seed` where `title` belongs: the header order is fixed.
  EXPECT_EQ(parse_error("torsim-scenario-version 1\n"
                        "name demo\n"
                        "seed 7\n"),
            "scenario parse error at line 3: expected 'title <value>', "
            "got 'seed 7'");
}

TEST(ScenarioDslRejectTest, BadIntegerDirective) {
  EXPECT_EQ(parse_error("torsim-scenario-version 1\n"
                        "name demo\n"
                        "title T\n"
                        "seed 7\n"
                        "start 2013-02-01 00:00:00\n"
                        "relays many\n"),
            "scenario parse error at line 6: relays must be an integer, "
            "got 'many'");
}

TEST(ScenarioDslRejectTest, BadStartTime) {
  const std::string message =
      parse_error("torsim-scenario-version 1\n"
                  "name demo\n"
                  "title T\n"
                  "seed 7\n"
                  "start 2013-13-01 00:00:00\n");
  EXPECT_EQ(message.find("scenario parse error at line 5: bad start time:"),
            0u)
      << message;
}

TEST(ScenarioDslRejectTest, UnknownEventKind) {
  std::string text(kValidPack);
  const auto pos = text.find("at +12h takedown");
  text.replace(pos, std::string("at +12h takedown").size(),
               "at +12h party");
  EXPECT_EQ(parse_error(text),
            "scenario parse error at line 16: unknown event kind 'party'");
}

TEST(ScenarioDslRejectTest, ParameterInvalidForKind) {
  std::string text(kValidPack);
  const auto pos = text.find("  services 2");
  text.replace(pos, std::string("  services 2").size(), "  clients 2");
  EXPECT_EQ(parse_error(text),
            "scenario parse error at line 17: parameter 'clients' not "
            "valid for takedown");
}

TEST(ScenarioDslRejectTest, DuplicateEventBlock) {
  std::string text(kValidPack);
  const std::string block =
      "at +12h takedown\n  services 2\n  first 0\nend\n";
  text.insert(text.find("scenario-end"), block);
  EXPECT_EQ(parse_error(text),
            "scenario parse error at line 20: duplicate event takedown "
            "at +12h");
}

TEST(ScenarioDslRejectTest, UnorderedEventBlocks) {
  std::string text(kValidPack);
  const std::string block =
      "at +3h authority-outage\n  hours 2\nend\n";
  text.insert(text.find("scenario-end"), block);
  EXPECT_EQ(parse_error(text),
            "scenario parse error at line 20: event at +3h out of order "
            "(previous +12h)");
}

TEST(ScenarioDslRejectTest, EventBeyondHorizon) {
  std::string text(kValidPack);
  const std::string block =
      "at +999h authority-outage\n  hours 2\nend\n";
  text.insert(text.find("scenario-end"), block);
  EXPECT_EQ(parse_error(text),
            "scenario parse error at line 20: event at +999h is beyond "
            "the horizon (48h)");
}

TEST(ScenarioDslRejectTest, MissingFooter) {
  std::string text(kValidPack);
  text = text.substr(0, text.find("scenario-end"));
  EXPECT_EQ(parse_error(text),
            "scenario parse error at line 21: unexpected end of pack "
            "(expected an event block or scenario-end)");
}

TEST(ScenarioDslRejectTest, ContentAfterFooter) {
  std::string text(kValidPack);
  text += "at +20h takedown\n";
  EXPECT_EQ(parse_error(text),
            "scenario parse error at line 21: unexpected content after "
            "scenario-end");
}

TEST(ScenarioDslRejectTest, IncompleteEventBlockParameters) {
  std::string text(kValidPack);
  const auto pos = text.find("  services 2\n");
  text.erase(pos, std::string("  services 2\n").size());
  EXPECT_EQ(parse_error(text),
            "scenario parse error at line 16: takedown: services must "
            "be > 0");
}

TEST(ScenarioDslRejectTest, BadFaultSpecInHeader) {
  std::string text(kValidPack);
  const auto pos = text.find("faults drop=0.01");
  text.replace(pos, std::string("faults drop=0.01").size(),
               "faults frobnicate=1");
  const std::string message = parse_error(text);
  EXPECT_EQ(message.find("scenario parse error at line 10: bad fault spec:"),
            0u)
      << message;
}

// ---------------------------------------------------------------------
// validate_pack on programmatic packs
// ---------------------------------------------------------------------

TEST(ScenarioValidateTest, RejectsBadHeaderFields) {
  ScenarioPack pack = sample_pack();
  pack.name = "Not A Slug";
  EXPECT_THROW(validate_pack(pack), std::invalid_argument);
  pack = sample_pack();
  pack.relays = 0;
  EXPECT_THROW(validate_pack(pack), std::invalid_argument);
  pack = sample_pack();
  pack.horizon_hours = 0;
  EXPECT_THROW(validate_pack(pack), std::invalid_argument);
  pack = sample_pack();
  pack.version = 2;
  EXPECT_THROW(validate_pack(pack), std::invalid_argument);
}

TEST(ScenarioValidateTest, RejectsBadEventLists) {
  ScenarioPack pack = sample_pack();
  std::swap(pack.events[0], pack.events[1]);  // out of order
  EXPECT_THROW(validate_pack(pack), std::invalid_argument);
  pack = sample_pack();
  pack.events.push_back(pack.events.back());  // duplicate
  EXPECT_THROW(validate_pack(pack), std::invalid_argument);
  pack = sample_pack();
  pack.events.back().at_hours = pack.horizon_hours;  // beyond horizon
  EXPECT_THROW(validate_pack(pack), std::invalid_argument);
  pack = sample_pack();
  pack.events[0].down = 1.5;  // rate out of range
  EXPECT_THROW(validate_pack(pack), std::invalid_argument);
}

// ---------------------------------------------------------------------
// loader I/O errors are runtime_error, distinct from parse errors
// ---------------------------------------------------------------------

TEST(ScenarioLoaderTest, MissingFileIsRuntimeError) {
  EXPECT_THROW((void)load_pack_file("/nonexistent-torsim/pack.scn"),
               std::runtime_error);
  EXPECT_THROW((void)load_pack("/nonexistent-torsim", "pack"),
               std::runtime_error);
}

TEST(ScenarioLoaderTest, DirectoryPathIsRuntimeError) {
  EXPECT_THROW((void)load_pack_file("/tmp"), std::runtime_error);
}

TEST(ScenarioLoaderTest, MissingDirectoryIsRuntimeError) {
  EXPECT_THROW((void)list_packs("/nonexistent-torsim"), std::runtime_error);
}

}  // namespace
}  // namespace torsim::scenario
