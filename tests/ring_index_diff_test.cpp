// Differential suite for the eytzinger HSDir ring index
// (dirauth/ring_index.hpp): the kept sorted-scan oracle
// (Consensus::responsible_hsdirs_scan) is replayed against the indexed
// paths over randomized populations and query schedules — single
// lookups, the merge-walk batch, the ResponsibleSetCache, and the
// property edge cases (empty ring, < kHsDirsPerReplica HSDirs,
// duplicate fingerprints, exact-hit and past-ring-max queries), at
// cache on/off x threads 1/4/8.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "crypto/digest.hpp"
#include "dirauth/consensus.hpp"
#include "dirauth/ring_cache.hpp"
#include "dirauth/ring_index.hpp"
#include "util/memo.hpp"
#include "util/rng.hpp"

namespace torsim::dirauth {
namespace {

// A consensus of `hsdirs` HSDir-flagged relays plus `others` plain
// relays (the index must skip non-HSDirs like the oracle does).
Consensus make_consensus(util::Rng& rng, int hsdirs, int others) {
  std::vector<ConsensusEntry> entries;
  for (int i = 0; i < hsdirs + others; ++i) {
    ConsensusEntry e;
    e.relay = static_cast<relay::RelayId>(i + 1);
    rng.fill_bytes(e.fingerprint.data(), e.fingerprint.size());
    if (i < hsdirs) e.flags = with_flag(0, Flag::kHSDir);
    entries.push_back(e);
  }
  return {0, std::move(entries)};
}

std::vector<crypto::DescriptorId> random_ids(util::Rng& rng,
                                             std::size_t count) {
  std::vector<crypto::DescriptorId> ids(count);
  for (auto& id : ids) rng.fill_bytes(id.data(), id.size());
  return ids;
}

// A query mix that hits every interesting ring position: random points,
// exact fingerprints of ring members, ids past the ring maximum and
// before the minimum (both wraparound classes), and duplicates.
std::vector<crypto::DescriptorId> adversarial_ids(util::Rng& rng,
                                                  const Consensus& c) {
  std::vector<crypto::DescriptorId> ids = random_ids(rng, 32);
  for (const std::size_t idx : c.hsdir_indices()) {
    const crypto::Fingerprint& fp = c.entries()[idx].fingerprint;
    ids.push_back(fp);  // exactly on an entry: strict ">" must skip it
    crypto::DescriptorId below = fp;
    below[19] = static_cast<std::uint8_t>(below[19] - 1);
    ids.push_back(below);
    crypto::DescriptorId above = fp;
    above[19] = static_cast<std::uint8_t>(above[19] + 1);
    ids.push_back(above);
  }
  crypto::DescriptorId all_ff;
  all_ff.fill(0xff);  // past the ring max: must wrap to rank 0
  ids.push_back(all_ff);
  crypto::DescriptorId all_00{};
  ids.push_back(all_00);
  // Duplicates: the batch path must answer repeats identically.
  const std::size_t base = ids.size();
  for (std::size_t i = 0; i < std::min<std::size_t>(8, base); ++i)
    ids.push_back(ids[i * 3 % base]);
  return ids;
}

void expect_same_sets(
    const std::vector<std::vector<const ConsensusEntry*>>& got,
    const std::vector<std::vector<const ConsensusEntry*>>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_EQ(got[i], want[i]) << "query " << i;
}

TEST(RingIndexDiffTest, RandomizedPopulationsMatchScanOracle) {
  util::Rng rng(501);
  for (const int hsdirs : {1, 2, 3, 5, 64, 1300}) {
    const Consensus c = make_consensus(rng, hsdirs, hsdirs / 3);
    const auto ids = adversarial_ids(rng, c);
    for (const auto& id : ids) {
      const auto oracle = c.responsible_hsdirs_scan(id);
      {
        const RingIndexEnabledGuard on(true);
        EXPECT_EQ(c.responsible_hsdirs(id), oracle);
      }
      {
        const RingIndexEnabledGuard off(false);
        EXPECT_EQ(c.responsible_hsdirs(id), oracle);
      }
    }
  }
}

TEST(RingIndexDiffTest, EmptyConsensusAndNoHsdirs) {
  util::Rng rng(502);
  const Consensus empty;
  const Consensus no_hsdirs = make_consensus(rng, 0, 10);
  const auto id = random_ids(rng, 1)[0];
  for (const Consensus* c : {&empty, &no_hsdirs}) {
    EXPECT_TRUE(c->ring_index().empty());
    EXPECT_TRUE(c->responsible_hsdirs(id).empty());
    EXPECT_TRUE(c->responsible_hsdirs_scan(id).empty());
    const ConsensusEntry* buf[crypto::kHsDirsPerReplica];
    EXPECT_EQ(c->responsible_hsdirs_into(id, buf, crypto::kHsDirsPerReplica),
              0u);
    EXPECT_TRUE(c->responsible_hsdirs_batch({id, id}, 1)[0].empty());
  }
}

TEST(RingIndexDiffTest, FewerHsdirsThanReplicaSetWraps) {
  // With n < kHsDirsPerReplica the responsible set is the whole ring,
  // starting at the successor — both paths must agree on the rotation.
  util::Rng rng(503);
  for (const int hsdirs : {1, 2}) {
    const Consensus c = make_consensus(rng, hsdirs, 2);
    for (const auto& id : adversarial_ids(rng, c)) {
      const auto oracle = c.responsible_hsdirs_scan(id);
      EXPECT_EQ(oracle.size(), static_cast<std::size_t>(hsdirs));
      EXPECT_EQ(c.responsible_hsdirs(id), oracle);
    }
  }
}

TEST(RingIndexDiffTest, DuplicateFingerprintsMatchOracle) {
  // Duplicate ring keys: upper-bound semantics must land on the same
  // (first) duplicate in both implementations.
  util::Rng rng(504);
  std::vector<ConsensusEntry> entries;
  crypto::Fingerprint shared;
  rng.fill_bytes(shared.data(), shared.size());
  for (int i = 0; i < 6; ++i) {
    ConsensusEntry e;
    e.relay = static_cast<relay::RelayId>(i + 1);
    e.flags = with_flag(0, Flag::kHSDir);
    if (i < 3) {
      e.fingerprint = shared;  // three identical ring keys
    } else {
      rng.fill_bytes(e.fingerprint.data(), e.fingerprint.size());
    }
    entries.push_back(e);
  }
  const Consensus c(0, std::move(entries));
  for (const auto& id : adversarial_ids(rng, c))
    EXPECT_EQ(c.responsible_hsdirs(id), c.responsible_hsdirs_scan(id));
}

TEST(RingIndexDiffTest, BatchMatchesSinglesAcrossThreadsAndSettings) {
  util::Rng rng(505);
  const Consensus c = make_consensus(rng, 200, 40);
  auto ids = adversarial_ids(rng, c);
  const auto more = random_ids(rng, 3000);  // force multiple walk chunks
  ids.insert(ids.end(), more.begin(), more.end());

  std::vector<std::vector<const ConsensusEntry*>> oracle;
  oracle.reserve(ids.size());
  for (const auto& id : ids) oracle.push_back(c.responsible_hsdirs_scan(id));

  for (const bool index_on : {true, false}) {
    const RingIndexEnabledGuard index_guard(index_on);
    for (const int threads : {1, 4, 8})
      expect_same_sets(c.responsible_hsdirs_batch(ids, threads), oracle);
  }
}

TEST(RingIndexDiffTest, ResponsibleSetCacheMatchesOracle) {
  util::Rng rng(506);
  const Consensus c = make_consensus(rng, 300, 50);
  auto ids = adversarial_ids(rng, c);
  const auto more = random_ids(rng, 500);
  ids.insert(ids.end(), more.begin(), more.end());

  std::vector<std::vector<const ConsensusEntry*>> oracle;
  oracle.reserve(ids.size());
  for (const auto& id : ids) oracle.push_back(c.responsible_hsdirs_scan(id));

  for (const bool index_on : {true, false}) {
    const RingIndexEnabledGuard index_guard(index_on);
    for (const bool cache_on : {false, true}) {
      const util::MemoEnabledGuard cache_guard(cache_on);
      for (const int threads : {1, 4, 8}) {
        ResponsibleSetCache cache;
        expect_same_sets(cache.batch(c, ids, threads), oracle);
        // Single-id path, including repeat lookups (cache hits).
        for (std::size_t i = 0; i < ids.size(); i += 97) {
          const ResponsibleSet& set = cache.responsible(c, ids[i]);
          ASSERT_EQ(set.count, oracle[i].size());
          for (std::size_t k = 0; k < set.count; ++k)
            EXPECT_EQ(set.dirs[k], oracle[i][k]);
          const ResponsibleSet& again = cache.responsible(c, ids[i]);
          EXPECT_EQ(again.count, set.count);
        }
      }
    }
  }
}

TEST(RingIndexDiffTest, FirstAfterSortedMatchesPerIdDescent) {
  // The merge walk must equal per-id first_after for every query,
  // including duplicate ids and the wraparound sentinel (rank == n).
  util::Rng rng(507);
  const Consensus c = make_consensus(rng, 128, 0);
  const RingIndex& index = c.ring_index();
  auto ids = adversarial_ids(rng, c);
  std::vector<std::uint32_t> order(ids.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (ids[a] != ids[b]) return ids[a] < ids[b];
              return a < b;
            });
  std::vector<std::uint32_t> ranks(ids.size());
  index.first_after_sorted(ids, order.data(), order.size(), ranks.data());
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(ranks[i], index.first_after(ids[i])) << "query " << i;
}

TEST(RingIndexDiffTest, IndexSurvivesCopyAndMove) {
  util::Rng rng(508);
  Consensus original = make_consensus(rng, 50, 10);
  const auto ids = random_ids(rng, 64);
  std::vector<std::vector<const ConsensusEntry*>> oracle;
  for (const auto& id : ids) oracle.push_back(original.responsible_hsdirs_scan(id));
  const auto check = [&](const Consensus& c) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto got = c.responsible_hsdirs(ids[i]);
      ASSERT_EQ(got.size(), oracle[i].size());
      for (std::size_t k = 0; k < got.size(); ++k)
        EXPECT_EQ(got[k]->relay, oracle[i][k]->relay);
    }
  };
  const Consensus copy = original;
  check(copy);
  const Consensus moved = std::move(original);
  check(moved);
  EXPECT_TRUE(original.ring_index().empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(original.responsible_hsdirs(ids[0]).empty());
}

}  // namespace
}  // namespace torsim::dirauth
