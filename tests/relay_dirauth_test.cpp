#include <gtest/gtest.h>

#include "dirauth/archive.hpp"
#include "dirauth/authority.hpp"
#include "relay/registry.hpp"

namespace torsim {
namespace {

using dirauth::Authority;
using dirauth::AuthorityPolicy;
using dirauth::Consensus;
using dirauth::ConsensusArchive;
using dirauth::Flag;
using relay::Registry;
using relay::RelayConfig;

constexpr util::UnixTime kT0 = 1359676800;  // 2013-02-01

RelayConfig make_config(const std::string& nick, util::Ipv4 ip,
                        double bw = 100.0) {
  RelayConfig rc;
  rc.nickname = nick;
  rc.address = ip;
  rc.bandwidth_kbps = bw;
  return rc;
}

// ---------------------------------------------------------------------
// Relay
// ---------------------------------------------------------------------

TEST(RelayTest, UptimeAccrual) {
  util::Rng rng(1);
  Registry registry;
  const auto id = registry.create(make_config("r", util::Ipv4(1, 2, 3, 4)),
                                  rng, kT0);
  relay::Relay& r = registry.get(id);
  EXPECT_FALSE(r.online());
  EXPECT_EQ(r.continuous_uptime(kT0 + 100), 0);
  r.set_online(true, kT0);
  EXPECT_EQ(r.continuous_uptime(kT0 + 3600), 3600);
  r.set_online(false, kT0 + 3600);
  EXPECT_EQ(r.continuous_uptime(kT0 + 7200), 0);
  r.set_online(true, kT0 + 7200);
  EXPECT_EQ(r.continuous_uptime(kT0 + 7300), 100);  // reset after downtime
}

TEST(RelayTest, SetOnlineIdempotent) {
  util::Rng rng(2);
  Registry registry;
  const auto id = registry.create(make_config("r", util::Ipv4(1, 2, 3, 4)),
                                  rng, kT0);
  relay::Relay& r = registry.get(id);
  r.set_online(true, kT0);
  r.set_online(true, kT0 + 1000);  // should not reset uptime start
  EXPECT_EQ(r.continuous_uptime(kT0 + 2000), 2000);
}

TEST(RelayTest, IdentityRotationRecordsHistory) {
  util::Rng rng(3);
  Registry registry;
  const auto id = registry.create(make_config("r", util::Ipv4(1, 2, 3, 4)),
                                  rng, kT0);
  relay::Relay& r = registry.get(id);
  const auto fp0 = r.fingerprint();
  r.rotate_identity(rng, kT0 + 100);
  EXPECT_NE(r.fingerprint(), fp0);
  EXPECT_EQ(r.fingerprint_switches(), 1u);
  ASSERT_EQ(r.identity_history().size(), 2u);
  EXPECT_EQ(r.identity_history()[0].fingerprint, fp0);
  EXPECT_EQ(r.identity_history()[1].since, kT0 + 100);
}

TEST(RelayTest, RotationKeepsUptime) {
  util::Rng rng(4);
  Registry registry;
  const auto id = registry.create(make_config("r", util::Ipv4(1, 2, 3, 4)),
                                  rng, kT0);
  relay::Relay& r = registry.get(id);
  r.set_online(true, kT0);
  r.rotate_identity(rng, kT0 + 5000);
  EXPECT_EQ(r.continuous_uptime(kT0 + 10000), 10000);
}

TEST(RegistryTest, LookupAndAddressIndex) {
  util::Rng rng(5);
  Registry registry;
  const util::Ipv4 shared(9, 9, 9, 9);
  const auto a = registry.create(make_config("a", shared), rng, kT0);
  const auto b = registry.create(make_config("b", shared), rng, kT0);
  const auto c = registry.create(make_config("c", util::Ipv4(8, 8, 8, 8)),
                                 rng, kT0);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_EQ(registry.ids_at_address(shared),
            (std::vector<relay::RelayId>{a, b}));
  EXPECT_EQ(registry.ids_at_address(util::Ipv4(7, 7, 7, 7)).size(), 0u);
  EXPECT_THROW(registry.get(99), std::out_of_range);
  registry.get(c).set_online(true, kT0);
  EXPECT_EQ(registry.online_ids(), std::vector<relay::RelayId>{c});
}

// ---------------------------------------------------------------------
// Authority flags
// ---------------------------------------------------------------------

TEST(AuthorityTest, HsdirFlagRequires25Hours) {
  util::Rng rng(6);
  Registry registry;
  Authority authority;
  const auto id = registry.create(
      make_config("r", util::Ipv4(1, 2, 3, 4), 100.0), rng, kT0);
  relay::Relay& r = registry.get(id);
  r.set_online(true, kT0);

  const auto flags_at = [&](util::Seconds uptime) {
    return authority.compute_flags(r, 100.0, kT0 + uptime);
  };
  EXPECT_FALSE(has_flag(flags_at(24 * 3600), Flag::kHSDir));
  EXPECT_FALSE(has_flag(flags_at(25 * 3600 - 1), Flag::kHSDir));
  EXPECT_TRUE(has_flag(flags_at(25 * 3600), Flag::kHSDir));
}

TEST(AuthorityTest, StableAndFastFlags) {
  util::Rng rng(7);
  Registry registry;
  Authority authority;
  const auto id = registry.create(
      make_config("r", util::Ipv4(1, 2, 3, 4), 10.0), rng, kT0);
  relay::Relay& r = registry.get(id);
  r.set_online(true, kT0);
  auto flags = authority.compute_flags(r, 100.0, kT0 + 25 * 3600);
  EXPECT_FALSE(has_flag(flags, Flag::kFast));  // 10 kbps < 20 kbps floor
  EXPECT_TRUE(has_flag(flags, Flag::kStable));
  EXPECT_TRUE(has_flag(flags, Flag::kRunning));
}

TEST(AuthorityTest, GuardNeedsUptimeAndBandwidth) {
  util::Rng rng(8);
  Registry registry;
  Authority authority;
  const auto id = registry.create(
      make_config("r", util::Ipv4(1, 2, 3, 4), 200.0), rng, kT0);
  relay::Relay& r = registry.get(id);
  r.set_online(true, kT0);
  EXPECT_FALSE(has_flag(
      authority.compute_flags(r, 100.0, kT0 + 7 * util::kSecondsPerDay),
      Flag::kGuard));
  EXPECT_TRUE(has_flag(
      authority.compute_flags(r, 100.0, kT0 + 8 * util::kSecondsPerDay),
      Flag::kGuard));
  // Below-median bandwidth: no guard.
  EXPECT_FALSE(has_flag(
      authority.compute_flags(r, 300.0, kT0 + 9 * util::kSecondsPerDay),
      Flag::kGuard));
}

TEST(AuthorityTest, OfflineRelayHasNoFlags) {
  util::Rng rng(9);
  Registry registry;
  Authority authority;
  const auto id = registry.create(make_config("r", util::Ipv4(1, 2, 3, 4)),
                                  rng, kT0);
  EXPECT_EQ(authority.compute_flags(registry.get(id), 100.0, kT0 + 9999), 0);
}

// ---------------------------------------------------------------------
// Consensus building: the 2-per-IP rule and shadow relays
// ---------------------------------------------------------------------

TEST(AuthorityTest, TwoRelaysPerIpInConsensus) {
  util::Rng rng(10);
  Registry registry;
  Authority authority;
  const util::Ipv4 shared(5, 5, 5, 5);
  for (int i = 0; i < 5; ++i) {
    const auto id = registry.create(
        make_config("r" + std::to_string(i), shared, 100.0 + i), rng, kT0);
    registry.get(id).set_online(true, kT0);
  }
  const Consensus consensus =
      authority.build_consensus(registry, kT0 + 3600);
  EXPECT_EQ(consensus.size(), 2u);
  // The two highest-bandwidth relays won the election.
  for (const auto& entry : consensus.entries())
    EXPECT_GE(entry.bandwidth_kbps, 103.0);
}

TEST(AuthorityTest, ShadowRelayAccruesFlagsWhileHidden) {
  util::Rng rng(11);
  Registry registry;
  Authority authority;
  const util::Ipv4 shared(5, 5, 5, 5);
  // Two strong actives + one weak shadow, all up from t0.
  const auto a = registry.create(make_config("a", shared, 300), rng, kT0);
  const auto b = registry.create(make_config("b", shared, 200), rng, kT0);
  const auto shadow = registry.create(make_config("s", shared, 100), rng, kT0);
  for (auto id : {a, b, shadow}) registry.get(id).set_online(true, kT0);

  const util::UnixTime later = kT0 + 26 * 3600;
  Consensus before = authority.build_consensus(registry, later);
  EXPECT_EQ(before.find_relay(shadow), nullptr);  // hidden

  // Firewall the actives from the authorities (the shadowing move).
  registry.get(a).set_authority_reachable(false);
  registry.get(b).set_authority_reachable(false);
  Consensus after = authority.build_consensus(registry, later);
  const auto* entry = after.find_relay(shadow);
  ASSERT_NE(entry, nullptr);
  // Crucially: the shadow surfaces with HSDir immediately — its uptime
  // accrued while invisible.
  EXPECT_TRUE(has_flag(entry->flags, Flag::kHSDir));
}

TEST(ConsensusTest, EntriesSortedByFingerprint) {
  util::Rng rng(12);
  Registry registry;
  Authority authority;
  for (int i = 0; i < 20; ++i) {
    const auto id = registry.create(
        make_config("r" + std::to_string(i), util::Ipv4::random_public(rng)),
        rng, kT0);
    registry.get(id).set_online(true, kT0);
  }
  const Consensus consensus = authority.build_consensus(registry, kT0 + 60);
  for (std::size_t i = 1; i < consensus.size(); ++i)
    EXPECT_LT(consensus.entries()[i - 1].fingerprint,
              consensus.entries()[i].fingerprint);
}

TEST(ConsensusTest, FindByFingerprintAndRelay) {
  util::Rng rng(13);
  Registry registry;
  Authority authority;
  const auto id = registry.create(make_config("x", util::Ipv4(1, 1, 1, 1)),
                                  rng, kT0);
  registry.get(id).set_online(true, kT0);
  const Consensus consensus = authority.build_consensus(registry, kT0 + 60);
  ASSERT_EQ(consensus.size(), 1u);
  EXPECT_NE(consensus.find(registry.get(id).fingerprint()), nullptr);
  EXPECT_NE(consensus.find_relay(id), nullptr);
  crypto::Fingerprint bogus{};
  EXPECT_EQ(consensus.find(bogus), nullptr);
  EXPECT_EQ(consensus.find_relay(12345), nullptr);
}

TEST(ConsensusTest, ResponsibleHsdirsAreThreeSuccessors) {
  util::Rng rng(14);
  Registry registry;
  Authority authority;
  for (int i = 0; i < 30; ++i) {
    const auto id = registry.create(
        make_config("r" + std::to_string(i), util::Ipv4::random_public(rng)),
        rng, kT0 - 30 * 3600);
    registry.get(id).set_online(true, kT0 - 30 * 3600);  // all HSDir-ripe
  }
  const Consensus consensus = authority.build_consensus(registry, kT0);
  ASSERT_EQ(consensus.hsdir_count(), 30u);

  crypto::DescriptorId id{};
  id[0] = 0x42;
  const auto responsible = consensus.responsible_hsdirs(id);
  ASSERT_EQ(responsible.size(), 3u);
  // Each responsible fingerprint exceeds the id (or wrapped), and they
  // are the immediate successors in ring order.
  const auto& hsdirs = consensus.hsdir_indices();
  std::vector<crypto::Fingerprint> ring;
  for (auto idx : hsdirs) ring.push_back(consensus.entries()[idx].fingerprint);
  std::size_t first = ring.size();
  for (std::size_t i = 0; i < ring.size(); ++i)
    if (ring[i] > id) {
      first = i;
      break;
    }
  first %= ring.size();
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_EQ(responsible[k]->fingerprint, ring[(first + k) % ring.size()]);
}

TEST(ConsensusTest, ResponsibleWrapsAroundRing) {
  util::Rng rng(15);
  Registry registry;
  Authority authority;
  for (int i = 0; i < 5; ++i) {
    const auto id = registry.create(
        make_config("r" + std::to_string(i), util::Ipv4::random_public(rng)),
        rng, kT0 - 30 * 3600);
    registry.get(id).set_online(true, kT0 - 30 * 3600);
  }
  const Consensus consensus = authority.build_consensus(registry, kT0);
  crypto::DescriptorId max_id;
  max_id.fill(0xff);
  const auto responsible = consensus.responsible_hsdirs(max_id);
  ASSERT_EQ(responsible.size(), 3u);
  // Wrapped: first responsible is the smallest fingerprint.
  EXPECT_EQ(responsible[0]->fingerprint,
            consensus.entries()[consensus.hsdir_indices()[0]].fingerprint);
}

TEST(ConsensusTest, FewerHsdirsThanReplicaSlots) {
  util::Rng rng(16);
  Registry registry;
  Authority authority;
  const auto id = registry.create(make_config("solo", util::Ipv4(2, 2, 2, 2)),
                                  rng, kT0 - 30 * 3600);
  registry.get(id).set_online(true, kT0 - 30 * 3600);
  const Consensus consensus = authority.build_consensus(registry, kT0);
  crypto::DescriptorId some_id{};
  EXPECT_EQ(consensus.responsible_hsdirs(some_id).size(), 1u);
}

// ---------------------------------------------------------------------
// Archive
// ---------------------------------------------------------------------

TEST(ArchiveTest, LookupByTime) {
  ConsensusArchive archive;
  archive.add(Consensus(100, {}));
  archive.add(Consensus(200, {}));
  archive.add(Consensus(300, {}));
  EXPECT_EQ(archive.consensus_at(50), nullptr);
  EXPECT_EQ(archive.consensus_at(100)->valid_after(), 100);
  EXPECT_EQ(archive.consensus_at(250)->valid_after(), 200);
  EXPECT_EQ(archive.consensus_at(9999)->valid_after(), 300);
}

TEST(ArchiveTest, RejectsNonMonotonicInsert) {
  ConsensusArchive archive;
  archive.add(Consensus(100, {}));
  EXPECT_THROW(archive.add(Consensus(100, {})), std::invalid_argument);
  EXPECT_THROW(archive.add(Consensus(50, {})), std::invalid_argument);
}

TEST(ArchiveTest, Range) {
  ConsensusArchive archive;
  for (util::UnixTime t = 100; t <= 1000; t += 100)
    archive.add(Consensus(t, {}));
  EXPECT_EQ(archive.range(200, 500).size(), 3u);  // 200, 300, 400
  EXPECT_EQ(archive.first_time(), 100);
  EXPECT_EQ(archive.last_time(), 1000);
  ConsensusArchive empty;
  EXPECT_THROW(empty.first_time(), std::logic_error);
}

TEST(ConsensusTest, FlagsToString) {
  dirauth::FlagSet flags = 0;
  flags = with_flag(flags, Flag::kGuard);
  flags = with_flag(flags, Flag::kHSDir);
  EXPECT_EQ(dirauth::flags_to_string(flags), "Guard HSDir");
}

}  // namespace
}  // namespace torsim

namespace torsim {
namespace {

// ---------------------------------------------------------------------
// weighted fractional uptime (Guard gating)
// ---------------------------------------------------------------------

TEST(RelayTest, FractionalUptimeTracksHistory) {
  util::Rng rng(20);
  Registry registry;
  const auto id = registry.create(make_config("r", util::Ipv4(1, 2, 3, 4)),
                                  rng, kT0);
  relay::Relay& r = registry.get(id);
  r.set_online(true, kT0);
  EXPECT_NEAR(r.fractional_uptime(kT0 + 1000), 1.0, 1e-9);
  r.set_online(false, kT0 + 1000);
  EXPECT_NEAR(r.fractional_uptime(kT0 + 2000), 0.5, 1e-9);
  r.set_online(true, kT0 + 2000);
  EXPECT_NEAR(r.fractional_uptime(kT0 + 4000), 0.75, 1e-9);
}

TEST(RelayTest, FractionalUptimeNeverExceedsOne) {
  util::Rng rng(21);
  Registry registry;
  // Bootstrapped with past uptime (online_since before created).
  const auto id = registry.create(make_config("r", util::Ipv4(1, 2, 3, 5)),
                                  rng, kT0);
  relay::Relay& r = registry.get(id);
  r.set_online(true, kT0 - 10 * util::kSecondsPerDay);
  EXPECT_LE(r.fractional_uptime(kT0), 1.0);
  EXPECT_GT(r.fractional_uptime(kT0), 0.99);
}

TEST(AuthorityTest, FlappyRelayNeverBecomesGuard) {
  util::Rng rng(22);
  Registry registry;
  Authority authority;
  const auto id = registry.create(
      make_config("flappy", util::Ipv4(1, 2, 3, 6), 500.0), rng, kT0);
  relay::Relay& r = registry.get(id);
  // Nine days of 50% duty cycle (12 h on / 12 h off), then a long
  // continuous stretch that satisfies the raw-uptime rule...
  for (int day = 0; day < 9; ++day) {
    r.set_online(true, kT0 + day * util::kSecondsPerDay);
    r.set_online(false,
                 kT0 + day * util::kSecondsPerDay + 12 * 3600);
  }
  const util::UnixTime resume = kT0 + 9 * util::kSecondsPerDay;
  r.set_online(true, resume);
  const util::UnixTime later = resume + 9 * util::kSecondsPerDay;
  ASSERT_GE(r.continuous_uptime(later), 8 * util::kSecondsPerDay);
  // ...but WFU = (4.5 + 9) / 18 days = 0.75 < 0.90: still no Guard.
  const auto flags = authority.compute_flags(r, 100.0, later);
  EXPECT_FALSE(has_flag(flags, Flag::kGuard));
  EXPECT_TRUE(has_flag(flags, Flag::kHSDir));
}

TEST(AuthorityTest, SteadyRelayBecomesGuard) {
  util::Rng rng(23);
  Registry registry;
  Authority authority;
  const auto id = registry.create(
      make_config("steady", util::Ipv4(1, 2, 3, 7), 500.0), rng, kT0);
  relay::Relay& r = registry.get(id);
  r.set_online(true, kT0);
  const auto flags =
      authority.compute_flags(r, 100.0, kT0 + 9 * util::kSecondsPerDay);
  EXPECT_TRUE(has_flag(flags, Flag::kGuard));
}

}  // namespace
}  // namespace torsim

#include "dirauth/churn.hpp"
#include "sim/world.hpp"

namespace torsim {
namespace {

TEST(ChurnTest, EmptyAndSingleArchives) {
  ConsensusArchive empty;
  const auto none = dirauth::measure_churn(empty);
  EXPECT_EQ(none.consensuses, 0u);

  ConsensusArchive one;
  one.add(Consensus(100, {}));
  const auto single = dirauth::measure_churn(one);
  EXPECT_EQ(single.consensuses, 1u);
  EXPECT_DOUBLE_EQ(single.mean_joins, 0.0);
}

TEST(ChurnTest, StableNetworkHasFullSurvival) {
  util::Rng rng(40);
  Registry registry;
  Authority authority;
  for (int i = 0; i < 30; ++i) {
    const auto id = registry.create(
        make_config("r" + std::to_string(i), util::Ipv4::random_public(rng)),
        rng, kT0 - 30 * 3600);
    registry.get(id).set_online(true, kT0 - 30 * 3600);
  }
  ConsensusArchive archive;
  for (int h = 0; h < 5; ++h)
    archive.add(authority.build_consensus(registry, kT0 + h * 3600));
  const auto report = dirauth::measure_churn(archive);
  EXPECT_DOUBLE_EQ(report.mean_survival, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_joins, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_leaves, 0.0);
  EXPECT_EQ(report.hsdir_series.size(), 5u);
}

TEST(ChurnTest, FingerprintSwitchCountsAsLeavePlusJoin) {
  util::Rng rng(41);
  Registry registry;
  Authority authority;
  const auto id = registry.create(make_config("r", util::Ipv4(4, 4, 4, 4)),
                                  rng, kT0);
  registry.get(id).set_online(true, kT0);
  ConsensusArchive archive;
  archive.add(authority.build_consensus(registry, kT0 + 3600));
  registry.get(id).rotate_identity(rng, kT0 + 4000);
  archive.add(authority.build_consensus(registry, kT0 + 7200));
  const auto report = dirauth::measure_churn(archive);
  EXPECT_DOUBLE_EQ(report.mean_joins, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_leaves, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_survival, 0.0);
}

TEST(ChurnTest, WorldChurnRatesMatchConfig) {
  sim::WorldConfig wc;
  wc.seed = 42;
  wc.honest_relays = 200;
  wc.hourly_down_probability = 0.05;
  wc.hourly_up_probability = 0.5;
  sim::World world(wc);
  world.run_hours(40);
  const auto report = dirauth::measure_churn(world.archive());
  // Survival per hour ~ 1 - down_probability.
  EXPECT_NEAR(report.mean_survival, 0.95, 0.02);
  EXPECT_GT(report.mean_leaves, 2.0);
  EXPECT_GT(report.mean_joins, 2.0);
}

}  // namespace
}  // namespace torsim
