// Pins the data-oriented layout contracts (ROADMAP item 3,
// docs/data-layout.md): the global string interner's determinism and
// view stability, the Population facade's exact column reserves and
// handle (not reference) identity, the hsdir descriptor arena's
// epoch-gated compaction against Consensus::generation's copy/move
// semantics, and the interned Fig. 1 port labels feeding the scan CSV.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dirauth/authority.hpp"
#include "hsdir/descriptor.hpp"
#include "hsdir/store.hpp"
#include "population/population.hpp"
#include "relay/registry.hpp"
#include "scan/port_scanner.hpp"
#include "util/csv.hpp"
#include "util/interner.hpp"
#include "util/rng.hpp"

namespace torsim {
namespace {

constexpr util::UnixTime kT0 = 1360800000;  // 2013-02-14

// ---------------------------------------------------------------------
// util::StringInterner (satellite: interner coverage)
// ---------------------------------------------------------------------

TEST(StringInternerTest, IdsAreDenseAndInsertionOrdered) {
  util::StringInterner interner;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const std::string text = "svc-" + std::to_string(i);
    EXPECT_EQ(interner.intern(text), i);
  }
  EXPECT_EQ(interner.size(), 100u);
  // Re-interning never mints a new id.
  EXPECT_EQ(interner.intern("svc-42"), 42u);
  EXPECT_EQ(interner.size(), 100u);
}

TEST(StringInternerTest, RoundTripProperty) {
  util::StringInterner interner;
  util::Rng rng(991);
  std::vector<std::string> texts;
  std::set<std::string> seen;
  // Varied lengths: SSO-sized, heap-sized, and block-spanning.
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    const std::size_t len = 1 + rng.index(120);
    for (std::size_t j = 0; j < len; ++j)
      text.push_back(static_cast<char>('a' + rng.index(26)));
    if (!seen.insert(text).second) continue;
    texts.push_back(text);
  }
  std::vector<util::StringInterner::Id> ids;
  ids.reserve(texts.size());
  for (const std::string& text : texts) ids.push_back(interner.intern(text));
  ASSERT_EQ(interner.size(), texts.size());
  for (std::size_t i = 0; i < texts.size(); ++i) {
    EXPECT_EQ(interner.view(ids[i]), texts[i]);
    EXPECT_EQ(interner.intern(texts[i]), ids[i]);
    ASSERT_TRUE(interner.find(texts[i]).has_value());
    EXPECT_EQ(*interner.find(texts[i]), ids[i]);
  }
  EXPECT_FALSE(interner.find("never-interned").has_value());
}

TEST(StringInternerTest, OversizedStringGetsOwnBlock) {
  util::StringInterner interner;
  const std::string big(100 * 1024, 'x');  // past the 64 KiB block size
  const auto id = interner.intern(big);
  EXPECT_EQ(interner.view(id), big);
  // Neighbours before and after stay intact.
  const auto before = interner.intern("small-before");
  const std::string big2(70 * 1024, 'y');
  const auto mid = interner.intern(big2);
  const auto after = interner.intern("small-after");
  EXPECT_EQ(interner.view(before), "small-before");
  EXPECT_EQ(interner.view(mid), big2);
  EXPECT_EQ(interner.view(after), "small-after");
  EXPECT_GE(interner.bytes(), big.size() + big2.size());
}

TEST(StringInternerTest, ViewsAndIdsStableUnderRehashAndGrowth) {
  util::StringInterner interner;
  std::vector<std::string_view> early_views;
  std::vector<util::StringInterner::Id> early_ids;
  for (int i = 0; i < 16; ++i) {
    const std::string text = "stable-" + std::to_string(i);
    const auto id = interner.intern(text);
    early_ids.push_back(id);
    early_views.push_back(interner.view(id));
  }
  const char* first_data = early_views[0].data();
  // Force many index rehashes and fresh storage blocks.
  for (int i = 0; i < 50000; ++i)
    interner.intern("churn-" + std::to_string(i));
  for (int i = 0; i < 16; ++i) {
    const std::string text = "stable-" + std::to_string(i);
    // Same id on re-intern, same view content, same storage address:
    // nothing moved underneath the holders.
    EXPECT_EQ(interner.intern(text), early_ids[static_cast<std::size_t>(i)]);
    EXPECT_EQ(interner.view(early_ids[static_cast<std::size_t>(i)]), text);
  }
  EXPECT_EQ(early_views[0].data(), first_data);
}

// Interning happens only in serial sections, so the global table's
// contents are a function of the work done, not of the thread count:
// running the parallel scan sweep at 1/4/8 threads mints identical
// labels and never grows the table after the first run.
TEST(StringInternerTest, GlobalTableThreadCountInvariant) {
  population::PopulationConfig config;
  config.seed = 7;
  config.scale = 0.02;
  const auto pop = population::Population::generate(config);

  std::vector<std::vector<std::pair<std::string, std::int64_t>>> runs;
  std::vector<std::size_t> sizes;
  for (const int threads : {1, 4, 8}) {
    scan::PortScanner scanner(scan::ScanConfig{.threads = threads});
    const auto report = scanner.scan(pop);
    std::vector<std::pair<std::string, std::int64_t>> rows;
    for (const auto& [label, count] : report.figure1(2))
      rows.emplace_back(std::string(label), count);
    runs.push_back(std::move(rows));
    sizes.push_back(util::global_interner().size());
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
  // The 4- and 8-thread runs interned nothing the 1-thread run had not.
  EXPECT_EQ(sizes[0], sizes[1]);
  EXPECT_EQ(sizes[0], sizes[2]);
}

// ---------------------------------------------------------------------
// Population facade (satellite: builder reserves + handle identity)
// ---------------------------------------------------------------------

TEST(PopulationLayoutTest, ColumnsAreExactlyReserved) {
  population::PopulationConfig config;
  config.seed = 11;
  config.scale = 0.05;
  const auto pop = population::Population::generate(config);
  const auto fp = pop.memory_footprint();
  ASSERT_EQ(fp.services, pop.size());
  // column_bytes sums capacity * sizeof for all 14 columns. With the
  // spec-sized reserve in generate() no column ever reallocates, so
  // capacity == size and the footprint equals the exact per-element
  // cost (the bug this pins: only by_onion_ was reserved, so every
  // column doubled its way up and held up to 2x the needed bytes).
  const std::size_t per_service =
      sizeof(crypto::KeyPair) + 3 * sizeof(util::StringInterner::Id) +
      sizeof(population::ServiceClass) + sizeof(net::ServiceProfile) +
      sizeof(content::Topic) + sizeof(content::Language) +
      2 * sizeof(std::uint8_t) + 2 * sizeof(double) +
      2 * sizeof(std::int32_t);
  EXPECT_EQ(fp.column_bytes, per_service * pop.size());
}

TEST(PopulationLayoutTest, IdentityIsTheIndexNotAReference) {
  population::PopulationConfig config;
  config.seed = 11;
  config.scale = 0.01;
  auto pop = population::Population::generate(config);
  ASSERT_GT(pop.size(), 5u);

  const population::ServiceId id = 5;
  const std::string onion(pop.onion(id));
  const std::string_view onion_view = pop.onion(id);

  // Interner churn (rehash + new blocks) must not invalidate the views
  // the facade handed out or the by-onion index keyed on them.
  for (int i = 0; i < 20000; ++i)
    util::global_interner().intern("layout-churn-" + std::to_string(i));
  EXPECT_EQ(onion_view, onion);
  const auto found = pop.find(onion);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->index(), id);

  // Moving the population relocates the columns wholesale; the id keeps
  // denoting the same service in the destination, and interner-backed
  // views compare equal across the move.
  auto moved = std::move(pop);
  EXPECT_EQ(moved.onion(id), onion);
  EXPECT_EQ(moved.service(id).index(), id);
  ASSERT_TRUE(moved.find(onion).has_value());
  EXPECT_EQ(moved.find(onion)->index(), id);

  // A copy is an independent population with the same ids and bytes.
  const auto copy = moved;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.size(), moved.size());
  EXPECT_EQ(copy.onion(id), moved.onion(id));
  EXPECT_EQ(copy.service(id).requests_per_2h(),
            moved.service(id).requests_per_2h());
}

// ---------------------------------------------------------------------
// Consensus::generation vs the descriptor-arena epoch (satellite:
// copy-restamp / move-preserve lifetime audit)
// ---------------------------------------------------------------------

dirauth::Consensus tiny_consensus(std::uint64_t seed) {
  relay::Registry registry;
  util::Rng rng(seed);
  for (int i = 0; i < 12; ++i) {
    relay::RelayConfig rc;
    rc.nickname = "r" + std::to_string(i);
    rc.address = util::Ipv4::random_public(rng);
    rc.bandwidth_kbps = 100.0;
    const auto id = registry.create(rc, rng, kT0 - 40 * 3600);
    registry.get(id).set_online(true, kT0 - 40 * 3600);
  }
  dirauth::Authority authority;
  return authority.build_consensus(registry, kT0);
}

TEST(GenerationLifetimeTest, CopyRestampsMovePreservesSourceDecaysToZero) {
  const auto original = tiny_consensus(31);
  ASSERT_NE(original.generation(), 0u);

  // Copy: fresh entries buffer, fresh stamp.
  const auto copied = original;
  EXPECT_NE(copied.generation(), 0u);
  EXPECT_NE(copied.generation(), original.generation());
  EXPECT_EQ(copied.size(), original.size());

  // Move: the stamp travels with the storage; the source decays to the
  // empty generation-0 consensus.
  auto donor = tiny_consensus(32);
  const auto donor_generation = donor.generation();
  const auto moved = std::move(donor);
  EXPECT_EQ(moved.generation(), donor_generation);
  EXPECT_EQ(donor.generation(), 0u);  // NOLINT(bugprone-use-after-move)
  // The gen-0 pin the store's epoch contract leans on: a moved-from
  // consensus is EMPTY, so it can never route a publish that would
  // reach observe_epoch(0).
  EXPECT_EQ(donor.size(), 0u);
  EXPECT_EQ(donor.hsdir_count(), 0u);
  EXPECT_EQ(dirauth::Consensus().generation(), 0u);
}

TEST(GenerationLifetimeTest, ArenaCompactsOnlyWhenDeadExceedsLiveOnNewEpoch) {
  util::Rng rng(57);
  hsdir::DescriptorStore store;
  const auto key = crypto::KeyPair::generate(rng);
  std::vector<crypto::Fingerprint> intros(3);
  for (auto& fp : intros)
    for (auto& byte : fp) byte = static_cast<std::uint8_t>(rng.index(256));

  store.observe_epoch(1);
  const auto d = hsdir::make_descriptor(key, intros, 0, kT0);
  store.store(d);
  const std::size_t live = store.live_payload_bytes();
  ASSERT_GT(live, 0u);
  EXPECT_EQ(store.arena_bytes(), live);

  // Refresh under the same generation: dead bytes accumulate, but no
  // compaction may run mid-generation (fetch results could be copied
  // out while the publish round is still appending).
  store.store(hsdir::make_descriptor(key, intros, 0, kT0 + 60));
  EXPECT_EQ(store.arena_bytes(), 2 * live);
  store.observe_epoch(1);
  EXPECT_EQ(store.arena_bytes(), 2 * live);
  EXPECT_EQ(store.compactions(), 0);

  // New generation with dead == live: the rule is strictly dead > live,
  // so still no compaction.
  store.observe_epoch(2);
  EXPECT_EQ(store.arena_bytes(), 2 * live);
  EXPECT_EQ(store.compactions(), 0);

  // Another refresh makes dead == 2x live; the next generation change
  // compacts down to exactly the live bytes.
  store.store(hsdir::make_descriptor(key, intros, 0, kT0 + 120));
  EXPECT_EQ(store.arena_bytes(), 3 * live);
  store.observe_epoch(3);
  EXPECT_EQ(store.arena_bytes(), live);
  EXPECT_EQ(store.live_payload_bytes(), live);
  EXPECT_EQ(store.compactions(), 1);
  EXPECT_EQ(store.observed_epoch(), 3u);

  // Payloads survive the compaction byte-for-byte, and fetch hands out
  // owned copies — valid across any later compaction.
  const auto fetched = store.fetch(d.descriptor_id, kT0 + 180);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->service_public_key, d.service_public_key);
  EXPECT_EQ(fetched->introduction_points, d.introduction_points);
  EXPECT_EQ(fetched->published, kT0 + 120);
}

TEST(GenerationLifetimeTest, ExpiredPayloadsAreReclaimedAtNextEpoch) {
  util::Rng rng(58);
  hsdir::DescriptorStore store;
  std::vector<crypto::Fingerprint> intros(2);
  for (auto& fp : intros)
    for (auto& byte : fp) byte = static_cast<std::uint8_t>(rng.index(256));

  store.observe_epoch(1);
  const auto old_key = crypto::KeyPair::generate(rng);
  const auto fresh_key = crypto::KeyPair::generate(rng);
  store.store(hsdir::make_descriptor(old_key, intros, 0, kT0));
  const std::size_t one = store.live_payload_bytes();
  const auto fresh =
      hsdir::make_descriptor(fresh_key, intros, 0, kT0 + 30 * 3600);
  store.store(fresh);
  ASSERT_EQ(store.live_payload_bytes(), 2 * one);

  // Expiry turns the old descriptor's span into dead bytes; the arena
  // holds both until the next generation observes dead > live.
  store.expire(kT0 + 25 * 3600);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.live_payload_bytes(), one);
  EXPECT_EQ(store.arena_bytes(), 2 * one);
  store.observe_epoch(2);
  EXPECT_EQ(store.arena_bytes(), 2 * one);  // dead == live: kept
  store.store(hsdir::make_descriptor(fresh_key, intros, 0, kT0 + 31 * 3600));
  store.observe_epoch(3);
  EXPECT_EQ(store.arena_bytes(), one);
  EXPECT_EQ(store.compactions(), 1);
  const auto still = store.fetch(fresh.descriptor_id, kT0 + 32 * 3600);
  ASSERT_TRUE(still.has_value());
  EXPECT_EQ(still->service_public_key, fresh.service_public_key);
}

// ---------------------------------------------------------------------
// Interned Fig. 1 labels and the scan CSV (satellite: label-table fix)
// ---------------------------------------------------------------------

scan::ScanReport small_scan() {
  population::PopulationConfig config;
  config.seed = 7;
  config.scale = 0.02;
  const auto pop = population::Population::generate(config);
  scan::PortScanner scanner(scan::ScanConfig{.threads = 1});
  return scanner.scan(pop);
}

TEST(ScanLabelTest, Figure1LabelsAreAnnotatedAndStable) {
  const auto report = small_scan();
  const auto rows = report.figure1(2);
  ASSERT_FALSE(rows.empty());
  std::map<std::string_view, std::int64_t> by_label(rows.begin(), rows.end());
  // The paper's well-known ports carry their protocol annotation; the
  // Fig. 1 head at any reasonable scale includes HTTP and Skynet.
  EXPECT_TRUE(by_label.count("80-http"));
  EXPECT_TRUE(by_label.count("55080-Skynet"));
  EXPECT_FALSE(by_label.count("80"));  // never the bare digits for 80
  for (const auto& [label, count] : rows) {
    EXPECT_GT(count, 0);
    EXPECT_FALSE(label.empty());
  }

  // The label table is interned once per distinct port: a second
  // rendering returns pointer-identical views and mints nothing new.
  const std::size_t interned_before = util::global_interner().size();
  const auto again = report.figure1(2);
  ASSERT_EQ(again.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(again[i].second, rows[i].second);
    EXPECT_EQ(again[i].first.data(), rows[i].first.data());
  }
  EXPECT_EQ(util::global_interner().size(), interned_before);
}

TEST(ScanLabelTest, ScanCsvOutputUnchangedByLabelInterning) {
  const auto report = small_scan();
  // The CLI's per-port CSV (torsim scan --csv): ports as bare digits,
  // open/timeout/closed counts joined per port. Rebuilding the label
  // table must never leak annotations ("80-http") into the CSV, and
  // rendering Fig. 1 between writes must not perturb the bytes.
  const auto write_csv = [&](const std::string& path) {
    util::CsvWriter csv(path);
    csv.row({"port", "open", "timeout", "closed"});
    std::map<std::uint16_t, std::array<std::int64_t, 3>> per_port;
    for (const auto& [port, count] : report.open_ports.entries())
      per_port[port][0] = count;
    for (const auto& [port, count] : report.timeout_ports.entries())
      per_port[port][1] = count;
    for (const auto& [port, count] : report.closed_ports.entries())
      per_port[port][2] = count;
    for (const auto& [port, counts] : per_port)
      csv.typed_row(port, counts[0], counts[1], counts[2]);
  };
  const std::string path_a = ::testing::TempDir() + "/scan_a.csv";
  const std::string path_b = ::testing::TempDir() + "/scan_b.csv";
  write_csv(path_a);
  (void)report.figure1(2);  // interns/reads the label table in between
  write_csv(path_b);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  const std::string a = slurp(path_a);
  const std::string b = slurp(path_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("-http"), std::string::npos);
  EXPECT_EQ(a.find("-Skynet"), std::string::npos);
  EXPECT_NE(a.find("port,open,timeout,closed"), std::string::npos);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace torsim
