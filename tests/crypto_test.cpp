#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>

#include "crypto/digest.hpp"
#include "crypto/keypair.hpp"
#include "crypto/sha1.hpp"
#include "util/encoding.hpp"

namespace torsim::crypto {
namespace {

// ---------------------------------------------------------------------
// SHA-1 against FIPS 180-4 / RFC 3174 vectors
// ---------------------------------------------------------------------

TEST(Sha1Test, EmptyString) {
  EXPECT_EQ(sha1_hex(sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1Test, Abc) {
  EXPECT_EQ(sha1_hex(sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, TwoBlockMessage) {
  EXPECT_EQ(
      sha1_hex(sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1Test, QuickBrownFox) {
  EXPECT_EQ(sha1_hex(sha1("The quick brown fox jumps over the lazy dog")),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, FourBlockMessage) {
  // FIPS 180-4 / RFC 6234 896-bit two-through-four-block vector.
  EXPECT_EQ(sha1_hex(sha1(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")),
            "a49b2446a02c645bf419f995b67091253a04a259");
}

TEST(Sha1Test, RepeatedEightByteBlocks) {
  // RFC 3174 test case 4: "01234567" repeated 80 times (640 bytes).
  std::string msg;
  for (int i = 0; i < 80; ++i) msg += "01234567";
  EXPECT_EQ(sha1_hex(sha1(msg)),
            "dea356a2cddd90c7a7ecedc5ebb563934f460452");
}

TEST(Sha1Test, MillionAs) {
  Sha1 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(sha1_hex(hasher.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog etc";
  for (std::size_t cut = 0; cut <= msg.size(); ++cut) {
    Sha1 hasher;
    hasher.update(std::string_view(msg).substr(0, cut));
    hasher.update(std::string_view(msg).substr(cut));
    EXPECT_EQ(hasher.finalize(), sha1(msg)) << "cut=" << cut;
  }
}

TEST(Sha1Test, BlockBoundaryLengths) {
  // 55/56/57, 63/64/65 bytes exercise the padding edge cases.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string msg(len, 'x');
    Sha1 incremental;
    for (char c : msg) incremental.update(std::string_view(&c, 1));
    EXPECT_EQ(incremental.finalize(), sha1(msg)) << "len=" << len;
  }
}

TEST(Sha1Test, ResetAllowsReuse) {
  Sha1 hasher;
  hasher.update("garbage");
  (void)hasher.finalize();
  hasher.reset();
  hasher.update("abc");
  EXPECT_EQ(sha1_hex(hasher.finalize()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1Test, UseAfterFinalizeThrows) {
  Sha1 hasher;
  hasher.update("abc");
  (void)hasher.finalize();
  EXPECT_THROW(hasher.update("x"), std::logic_error);
  EXPECT_THROW(hasher.finalize(), std::logic_error);
}

// ---------------------------------------------------------------------
// Base32 round-trip properties (the onion-address codec)
// ---------------------------------------------------------------------

TEST(Base32PropertyTest, RoundTripRandomBytes) {
  util::Rng rng(20130404);
  for (int round = 0; round < 500; ++round) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    std::vector<std::uint8_t> data(len);
    if (len > 0) rng.fill_bytes(data.data(), len);
    const std::string encoded = util::base32_encode(data);
    EXPECT_EQ(encoded.size(), (len * 8 + 4) / 5) << "len=" << len;
    for (char c : encoded)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '2' && c <= '7'))
          << encoded;
    EXPECT_EQ(util::base32_decode(encoded), data) << "len=" << len;
  }
}

TEST(Base32PropertyTest, UppercaseDecodesToSameBytes) {
  util::Rng rng(20130405);
  for (int round = 0; round < 100; ++round) {
    std::vector<std::uint8_t> data(10);  // onion-address payload size
    rng.fill_bytes(data.data(), data.size());
    std::string upper = util::base32_encode(data);
    for (char& c : upper)
      if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
    EXPECT_EQ(util::base32_decode(upper), data);
  }
}

// ---------------------------------------------------------------------
// KeyPair
// ---------------------------------------------------------------------

TEST(KeyPairTest, DeterministicFromSeed) {
  util::Rng a(99), b(99);
  EXPECT_EQ(KeyPair::generate(a).fingerprint(),
            KeyPair::generate(b).fingerprint());
}

TEST(KeyPairTest, DistinctKeysDistinctFingerprints) {
  util::Rng rng(100);
  const auto k1 = KeyPair::generate(rng);
  const auto k2 = KeyPair::generate(rng);
  EXPECT_NE(k1.fingerprint(), k2.fingerprint());
}

TEST(KeyPairTest, FingerprintIsSha1OfPublicBytes) {
  util::Rng rng(101);
  const auto key = KeyPair::generate(rng);
  EXPECT_EQ(key.fingerprint(),
            sha1(std::span<const std::uint8_t>(key.public_bytes())));
  EXPECT_EQ(key.public_bytes().size(), kPublicKeyBytes);
}

TEST(KeyPairTest, FromPublicBytesRoundTrip) {
  util::Rng rng(102);
  const auto key = KeyPair::generate(rng);
  const auto rebuilt = KeyPair::from_public_bytes(key.public_bytes());
  EXPECT_EQ(rebuilt.fingerprint(), key.fingerprint());
  EXPECT_THROW(KeyPair::from_public_bytes({}), std::invalid_argument);
}

TEST(KeyPairTest, FingerprintHexIs40Chars) {
  util::Rng rng(103);
  EXPECT_EQ(KeyPair::generate(rng).fingerprint_hex().size(), 40u);
}

// ---------------------------------------------------------------------
// Onion addresses & descriptor IDs (rend-spec v2)
// ---------------------------------------------------------------------

TEST(DigestTest, OnionAddressShape) {
  util::Rng rng(104);
  const auto key = KeyPair::generate(rng);
  const auto id = permanent_id_from_fingerprint(key.fingerprint());
  const std::string onion = onion_address(id);
  EXPECT_EQ(onion.size(), 16u);
  for (char c : onion)
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '2' && c <= '7')) << onion;
  EXPECT_EQ(onion_address_full(id), onion + ".onion");
}

TEST(DigestTest, ParseOnionRoundTrip) {
  util::Rng rng(105);
  const auto key = KeyPair::generate(rng);
  const auto id = permanent_id_from_fingerprint(key.fingerprint());
  EXPECT_EQ(parse_onion_address(onion_address(id)), id);
  EXPECT_EQ(parse_onion_address(onion_address_full(id)), id);
}

TEST(DigestTest, ParseOnionRejectsBadInput) {
  EXPECT_THROW(parse_onion_address("tooshort"), std::invalid_argument);
  EXPECT_THROW(parse_onion_address("0123456789abcdef"),  // '0' not base32
               std::invalid_argument);
}

TEST(DigestTest, ParseOnionIsCaseInsensitiveAndCanonicalizes) {
  // Onion addresses are case-insensitive on the wire (base32 per
  // RFC 4648); the parser must accept any casing — including a
  // mixed-case ".OnIoN" suffix — and encoding must canonicalize to
  // lowercase, so encode(decode(x)) round-trips for every casing of x.
  util::Rng rng(109);
  for (int i = 0; i < 50; ++i) {
    PermanentId id;
    rng.fill_bytes(id.data(), id.size());
    const std::string lower = onion_address(id);
    std::string upper = lower;
    for (char& c : upper) c = static_cast<char>(std::toupper(c));
    EXPECT_EQ(parse_onion_address(upper), id);
    EXPECT_EQ(parse_onion_address(upper + ".ONION"), id);
    EXPECT_EQ(parse_onion_address(lower + ".OnIoN"), id);
    // Alternate the casing character by character.
    std::string mixed = lower;
    for (std::size_t k = 0; k < mixed.size(); k += 2)
      mixed[k] = static_cast<char>(std::toupper(mixed[k]));
    EXPECT_EQ(onion_address(parse_onion_address(mixed)), lower);
  }
}

TEST(DigestTest, KnownOnionFromTable2) {
  // Decoding a real Table II address and re-encoding must round-trip
  // (sanity for the base32 alphabet against real-world onions).
  const auto id = parse_onion_address("silkroadvb5piz3r.onion");
  EXPECT_EQ(onion_address(id), "silkroadvb5piz3r");
}

TEST(DigestTest, TimePeriodMatchesSpecFormula) {
  PermanentId id{};
  id[0] = 0;  // no offset
  EXPECT_EQ(time_period(86400 * 100 + 5, id), 100u);
  id[0] = 255;
  // offset = 255*86400/256 = 86062 -> pushes over the boundary
  EXPECT_EQ(time_period(86400 * 100 + 400, id), 101u);
}

TEST(DigestTest, TimePeriodBoundaries) {
  // The spec formula is period = (t + id[0]*86400/256) / 86400 with
  // integer arithmetic throughout.
  PermanentId id{};

  // Maximum offset: id[0] == 255 gives 255*86400/256 == 86062 (integer
  // division truncates the .5), so the period rolls over 338 seconds
  // after midnight: 338 + 86062 == 86400 exactly.
  id[0] = 255;
  EXPECT_EQ(time_period(0, id), 0u);
  EXPECT_EQ(time_period(337, id), 0u);
  EXPECT_EQ(time_period(338, id), 1u);

  // Zero offset: the rollover is midnight itself.
  id[0] = 0;
  EXPECT_EQ(time_period(0, id), 0u);
  EXPECT_EQ(time_period(86399, id), 0u);
  EXPECT_EQ(time_period(86400, id), 1u);

  EXPECT_THROW(time_period(-1, id), std::invalid_argument);
}

TEST(DigestTest, TimePeriodRotatesDaily) {
  util::Rng rng(106);
  const auto key = KeyPair::generate(rng);
  const auto id = permanent_id_from_fingerprint(key.fingerprint());
  const util::UnixTime t = util::make_utc(2013, 2, 4);
  EXPECT_EQ(time_period(t, id) + 1, time_period(t + util::kSecondsPerDay, id));
}

TEST(DigestTest, SecondsUntilRotationConsistent) {
  util::Rng rng(107);
  for (int i = 0; i < 20; ++i) {
    const auto key = KeyPair::generate(rng);
    const auto id = permanent_id_from_fingerprint(key.fingerprint());
    const util::UnixTime t = util::make_utc(2013, 2, 4, 13, 22, 7);
    const auto remaining = seconds_until_rotation(t, id);
    EXPECT_GT(remaining, 0);
    EXPECT_LE(remaining, util::kSecondsPerDay);
    EXPECT_EQ(time_period(t, id), time_period(t + remaining - 1, id));
    EXPECT_EQ(time_period(t, id) + 1, time_period(t + remaining, id));
  }
}

TEST(DigestTest, DescriptorIdDependsOnAllInputs) {
  util::Rng rng(108);
  const auto key = KeyPair::generate(rng);
  const auto id = permanent_id_from_fingerprint(key.fingerprint());
  const auto d0 = descriptor_id(id, 15000, 0);
  EXPECT_EQ(d0, descriptor_id(id, 15000, 0));  // deterministic
  EXPECT_NE(d0, descriptor_id(id, 15000, 1));  // replica matters
  EXPECT_NE(d0, descriptor_id(id, 15001, 0));  // period matters
  const auto other = KeyPair::generate(rng);
  EXPECT_NE(d0, descriptor_id(
                    permanent_id_from_fingerprint(other.fingerprint()), 15000,
                    0));  // identity matters
}

TEST(DigestTest, DescriptorIdMatchesManualSpecComputation) {
  util::Rng rng(109);
  const auto key = KeyPair::generate(rng);
  const auto id = permanent_id_from_fingerprint(key.fingerprint());
  const std::uint32_t period = 15741;
  const std::uint8_t replica = 1;
  // Manual: SHA1(id || SHA1(INT4(period) || replica)).
  std::vector<std::uint8_t> inner = {
      static_cast<std::uint8_t>(period >> 24),
      static_cast<std::uint8_t>(period >> 16),
      static_cast<std::uint8_t>(period >> 8),
      static_cast<std::uint8_t>(period), replica};
  const auto secret = sha1(std::span<const std::uint8_t>(inner));
  std::vector<std::uint8_t> outer(id.begin(), id.end());
  outer.insert(outer.end(), secret.begin(), secret.end());
  EXPECT_EQ(descriptor_id(id, period, replica),
            sha1(std::span<const std::uint8_t>(outer)));
}

// ---------------------------------------------------------------------
// U160 ring arithmetic
// ---------------------------------------------------------------------

Sha1Digest digest_from_hex(std::string_view hex) {
  const auto bytes = util::hex_decode(hex);
  Sha1Digest d{};
  std::copy(bytes.begin(), bytes.end(), d.begin());
  return d;
}

TEST(U160Test, OrderingMatchesBigEndianBytes) {
  const auto lo = digest_from_hex("0000000000000000000000000000000000000001");
  const auto hi = digest_from_hex("8000000000000000000000000000000000000000");
  EXPECT_LT(U160(lo), U160(hi));
  EXPECT_GT(U160(hi), U160(lo));
  EXPECT_EQ(U160(lo), U160(lo));
}

TEST(U160Test, DigestRoundTrip) {
  util::Rng rng(110);
  for (int i = 0; i < 50; ++i) {
    Sha1Digest d;
    rng.fill_bytes(d.data(), d.size());
    EXPECT_EQ(U160(d).to_digest(), d);
  }
}

TEST(U160Test, RingDistanceSimple) {
  const auto a = digest_from_hex("0000000000000000000000000000000000000005");
  const auto b = digest_from_hex("000000000000000000000000000000000000000a");
  EXPECT_DOUBLE_EQ(ring_distance(a, b), 5.0);
}

TEST(U160Test, RingDistanceWrapsAround) {
  const auto a = digest_from_hex("ffffffffffffffffffffffffffffffffffffffff");
  const auto b = digest_from_hex("0000000000000000000000000000000000000004");
  EXPECT_DOUBLE_EQ(ring_distance(a, b), 5.0);  // wraps through zero
}

TEST(U160Test, DistancesAreComplementary) {
  util::Rng rng(111);
  const double ring = std::ldexp(1.0, 160);
  for (int i = 0; i < 20; ++i) {
    Sha1Digest a, b;
    rng.fill_bytes(a.data(), a.size());
    rng.fill_bytes(b.data(), b.size());
    if (a == b) continue;
    const double ab = ring_distance(a, b);
    const double ba = ring_distance(b, a);
    EXPECT_NEAR((ab + ba) / ring, 1.0, 1e-9);
  }
}

TEST(U160Test, AddInverseOfDistance) {
  util::Rng rng(112);
  for (int i = 0; i < 20; ++i) {
    Sha1Digest a, b;
    rng.fill_bytes(a.data(), a.size());
    rng.fill_bytes(b.data(), b.size());
    const U160 ua(a), ub(b);
    const U160 diff = ub.ring_distance_from(ua);
    EXPECT_EQ(ua.add(diff), ub);
  }
}

TEST(U160Test, FromU64) {
  EXPECT_DOUBLE_EQ(U160::from_u64(12345).to_double(), 12345.0);
  EXPECT_LT(U160::from_u64(1), U160::from_u64(2));
}

}  // namespace
}  // namespace torsim::crypto
